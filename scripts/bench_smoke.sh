#!/usr/bin/env bash
# Smoke-test every figure/table bench binary at tiny scale, driving at
# least two registry kinds through each `--filter`-aware binary so
# registry/dispatch regressions fail fast. Total runtime: a few seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN="cargo run --release --locked -p aqf-bench --bin"

$RUN fig3_micro -- --qbits=8 --queries=1000 --filter=aqf,cf
$RUN fig4_parallel -- --qbits=8 --shard-bits=2 --max-threads=2
$RUN fig5_system_insert -- --qbits=8 --filter=aqf,tqf
$RUN fig6_adversarial -- --qbits=8 --queries=500 --io-us=1 --filter=aqf,qf
$RUN fig7_adaptivity -- --qbits=8 --queries=2000 --filter=aqf,acf
$RUN fig8_dynamic -- --qbits=8 --queries=2000 --filter=aqf,sharded-aqf
$RUN fig9_yesno_space -- --aggregate=1024 --filter=yesno,cbf
$RUN fig10_batch -- --qbits=8 --shard-bits=2 --batch=64 --max-threads=2 --reps=1 --filter=aqf,sharded-aqf,qf
$RUN fig11_persist -- --qbits=8 --db-qbits=8 --shard-bits=2 --reps=1 --filter=aqf,sharded-aqf,qf
$RUN fig12_layout -- --qbits=8 --queries=2000 --loads=0.5,0.9 --reps=1 --filter=aqf,qf
# Cross the small-batch bypass threshold (BATCH_PARTITION_MIN = 64) in
# both directions: batch=16 runs in input order, batch=256 partitions.
$RUN fig12_layout -- --qbits=8 --queries=2000 --batch=16 --loads=0.9 --reps=1 --filter=aqf,qf
$RUN fig12_layout -- --qbits=8 --queries=2000 --batch=256 --loads=0.9 --reps=1 --filter=aqf,qf
$RUN fig13_server -- --qbits=9 --ops=1000 --max-conns=2 --batch=16 --filter=sharded-aqf,qf
# PR 10 modes: global-lock vs read/write-split sweep, and the mux
# idle-connection capacity path.
$RUN fig13_server -- --compare=locking --qbits=9 --ops=500 --max-conns=2 --reps=1 --mixes=90
$RUN fig13_server -- --idle-conns=8 --idle-factor=2 --qbits=9
$RUN fig14_resize -- --qbits-start=8 --qbits-final=10 --file-qbits=14 --reps=1 --filter=aqf,sharded-aqf
$RUN sec69_extra_space -- --qbits=8 --queries=1000 --io-us=1 --filter=qf,cf
$RUN tab1_space -- --qbits=8 --probes=1000 --filter=all
$RUN tab2_revmap -- --qbits1=8 --qbits2=9 --filter=aqf,tqf,acf
$RUN tab3_revmap_setup -- --qbits=8 --queries=1000 --filter=aqf,sharded-aqf
$RUN tab4_realworld -- --qbits=8 --queries=1000 --filter=aqf,cf
$RUN tab5_merge_bulk -- --qbits=8

echo "bench smoke: all binaries OK"
