#!/usr/bin/env bash
# Emit the machine-readable perf trajectory point for the current tree:
# BENCH_PR5.json, produced by the fig12_layout harness (query/insert
# throughput vs load factor for the blocked, offset-indexed table layout).
#
# Usage: scripts/bench_json.sh [outfile] [extra fig12_layout flags...]
# Defaults: outfile=BENCH_PR5.json, 2^24 slots, 2M probes, best of 5 —
# the exact protocol of the recorded table in BENCHMARKS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR5.json}"
shift || true

cargo build --release --locked -p aqf-bench --bin fig12_layout
./target/release/fig12_layout \
  --qbits=24 --queries=2000000 --loads=0.5,0.8,0.9,0.95 --reps=5 \
  --filter=aqf,qf --json="$OUT" "$@"
echo "perf point written to $OUT"
