#!/usr/bin/env bash
# Emit the machine-readable perf trajectory points for the current tree:
#
# - BENCH_PR5.json — fig12_layout: query/insert throughput vs load factor
#   for the blocked, offset-indexed table layout.
# - BENCH_PR6.json — fig4_parallel --mode=mixed: lock-free (seqlock) vs
#   locked read throughput under concurrent write load, sweeping reader
#   count at 1 writer.
# - BENCH_PR7.json — fig13_server: loopback TCP server query throughput
#   vs client connections, per-op vs batched framing.
# - BENCH_PR8.json — fig14_resize: insert throughput across auto-grow
#   doublings vs a pre-sized filter, and file-backed snapshot open vs
#   full decode at 2^22 slots.
# - BENCH_PR9.json — fig12_layout re-run (same protocol as PR5) after the
#   word-parallel shift + prefetched-batch work: the insert-gap and
#   batched-lookup trajectory point.
# - BENCH_PR10.json — fig13_server --compare=locking + --idle-conns: the
#   global-lock vs read/write-split server QPS sweep (read/write mixes,
#   merged latency percentiles) and the thread-per-connection vs mux
#   idle-connection capacity comparison, concatenated as a 2-element
#   JSON array.
#
# Usage: scripts/bench_json.sh [pr5_outfile] [pr6_outfile] [pr7_outfile]
#                              [pr8_outfile] [pr9_outfile] [pr10_outfile]
# Defaults: BENCH_PR5.json / BENCH_PR6.json / BENCH_PR7.json /
# BENCH_PR8.json / BENCH_PR9.json / BENCH_PR10.json, with the exact
# protocols of the recorded tables in BENCHMARKS.md. Set SKIP_PR5=1 …
# SKIP_PR10=1 to emit a subset.
set -euo pipefail
cd "$(dirname "$0")/.."

PR5_OUT="${1:-BENCH_PR5.json}"
PR6_OUT="${2:-BENCH_PR6.json}"
PR7_OUT="${3:-BENCH_PR7.json}"
PR8_OUT="${4:-BENCH_PR8.json}"
PR9_OUT="${5:-BENCH_PR9.json}"
PR10_OUT="${6:-BENCH_PR10.json}"

if [[ -z "${SKIP_PR5:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig12_layout
  ./target/release/fig12_layout \
    --qbits=24 --queries=2000000 --loads=0.5,0.8,0.9,0.95 --reps=5 \
    --filter=aqf,qf --json="$PR5_OUT"
  echo "perf point written to $PR5_OUT"
fi

if [[ -z "${SKIP_PR6:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig4_parallel
  ./target/release/fig4_parallel \
    --mode=mixed --qbits=20 --shard-bits=3 --load=0.7 \
    --max-threads=8 --writers=1 --reads=200000 --reps=5 --json="$PR6_OUT"
  echo "perf point written to $PR6_OUT"
fi

if [[ -z "${SKIP_PR7:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig13_server
  ./target/release/fig13_server \
    --qbits=16 --load=0.6 --max-conns=8 --ops=30000 --batch=64 \
    --pipeline=32 --filter=aqf,sharded-aqf,qf --json="$PR7_OUT"
  echo "perf point written to $PR7_OUT"
fi

if [[ -z "${SKIP_PR8:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig14_resize
  ./target/release/fig14_resize \
    --qbits-start=14 --qbits-final=20 --threshold=0.85 --file-qbits=22 \
    --reps=5 --filter=aqf,sharded-aqf --json="$PR8_OUT"
  echo "perf point written to $PR8_OUT"
fi

if [[ -z "${SKIP_PR9:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig12_layout
  ./target/release/fig12_layout \
    --qbits=24 --queries=2000000 --loads=0.5,0.8,0.9,0.95 --reps=5 \
    --filter=aqf,qf --json="$PR9_OUT"
  echo "perf point written to $PR9_OUT"
fi

if [[ -z "${SKIP_PR10:-}" ]]; then
  cargo build --release --locked -p aqf-bench --bin fig13_server
  # qbits/load sized so the whole mixed sweep's fresh inserts fit
  # without triggering an auto-grow rebuild mid-cell; half the queries
  # are filter negatives and store I/O costs 20us/page against a
  # 64-page cache, the workload a filter front exists for. The sweep
  # stops at the default worker-pool cap (8): beyond it, connections
  # rotate through workers on idle ticks and that rotation — identical
  # in both lock modes — dominates, which is the regime the mux
  # (--idle-conns below) is for.
  ./target/release/fig13_server \
    --compare=locking --qbits=21 --load=0.0375 --max-conns=8 --ops=8000 \
    --pipeline=32 --mixes=100,90 --reps=10 --absent-pct=50 --io-us=20 \
    --cache-pages=64 --json="$PR10_OUT.locking"
  ./target/release/fig13_server \
    --idle-conns=64 --idle-factor=4 --qbits=12 --json="$PR10_OUT.idle"
  # Concatenate the two sections into one JSON array.
  { echo '['; cat "$PR10_OUT.locking"; echo ','; cat "$PR10_OUT.idle"; echo ']'; } \
    > "$PR10_OUT"
  rm -f "$PR10_OUT.locking" "$PR10_OUT.idle"
  echo "perf point written to $PR10_OUT"
fi
