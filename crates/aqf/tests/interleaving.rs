//! Concurrency interleaving suite for the optimistic (seqlock) read path
//! (PR 6).
//!
//! Real races are nondeterministic, so this suite turns the dangerous
//! interleavings into *single-threaded, perfectly reproducible
//! schedules*: the `aqf::testhooks` torn-point hook pauses every writer
//! at the exact moments the table is structurally torn (slots shifted
//! but metadata lanes not; a cluster cleared but not yet rewritten), and
//! the test probes the half-mutated arena through an [`AqfReader`] from
//! inside the pause — exactly what a concurrent lock-free reader could
//! observe.
//!
//! Properties pinned here:
//!
//! 1. **Safety**: probing a torn state never panics, never loops
//!    unboundedly (it returns an answer or `Torn`; bounds are the
//!    probe's own).
//! 2. **Protocol rejection**: every torn window lies inside a seqlock
//!    write section, so a protocol-following reader's `read_begin` is
//!    refused (forced retry) for the whole window — torn answers are
//!    never *accepted*.
//! 3. **Sensitivity** (the mutation check): on the same schedules, a
//!    deliberately-broken fencing variant — a reader that skips version
//!    validation — accepts fabricated answers (false negatives for
//!    settled keys). The suite fails if the windows stop being
//!    detectable, so breaking `SeqLock::write_guard` (e.g. removing the
//!    odd bump) or unhooking a writer path is caught, not silent.
//! 4. **Linearizability at op boundaries**: between operations, a
//!    validated optimistic read equals the single-threaded
//!    `AdaptiveQf::query` answer, while blocked-vs-reference navigation
//!    equivalence (`check_nav_equivalence`) continues to hold.
//! 5. **Fallback**: when optimistic reads cannot win (a shard's counter
//!    parked odd), `ShardedAqf::query` still answers correctly through
//!    the locked path.
//!
//! Case counts scale with `AQF_PROPTEST_CASES` (CI's deep profile).

use std::cell::RefCell;
use std::rc::Rc;

use aqf::probe::AqfReader;
use aqf::testhooks::{self, TornPoint};
use aqf::{AdaptiveQf, AqfConfig, FilterError, QueryResult, ShardedAqf};
use aqf_bits::SeqLock;
use proptest::prelude::*;

/// Proptest case count: default, or `AQF_PROPTEST_CASES` (deep profile).
fn cases(default: u32) -> u32 {
    std::env::var("AQF_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// What the torn-point hook observed over a schedule.
#[derive(Default, Debug)]
struct Tally {
    /// Torn windows entered (hook firings).
    windows: u64,
    /// Windows where a protocol reader's `read_begin` was refused.
    rejected: u64,
    /// Probes (within windows) that returned `Err(Torn)`.
    torn_probes: u64,
    /// Probes an **unfenced** reader would have accepted with a wrong
    /// answer: `Ok(Negative)` for a key settled both before and after
    /// the op — a fabricated false negative.
    fabricated_if_unfenced: u64,
}

/// A single shard's concurrency regime, reproduced at `AdaptiveQf` level
/// so schedules stay single-threaded: mutex-serialized writers (here:
/// the one test thread) wrap every mutation in a seqlock write section;
/// readers probe a shared arena view under version validation.
struct Harness {
    seq: Rc<SeqLock>,
    reader: Rc<AqfReader>,
    f: AdaptiveQf,
}

/// Clears the thread's torn-point hook even on panic/early return.
struct HookGuard;
impl Drop for HookGuard {
    fn drop(&mut self) {
        testhooks::clear();
    }
}

impl Harness {
    fn new(cfg: AqfConfig) -> Self {
        let f = AdaptiveQf::new(cfg).unwrap();
        Self {
            seq: Rc::new(SeqLock::new()),
            reader: Rc::new(f.reader()),
            f,
        }
    }

    /// Apply a mutation under the writer protocol.
    fn write<T>(&mut self, op: impl FnOnce(&mut AdaptiveQf) -> T) -> T {
        let _section = self.seq.write_guard();
        op(&mut self.f)
    }

    /// A protocol-following optimistic read: `None` after max retries
    /// (callers would fall back to the locked path).
    fn read(&self, key: u64) -> Option<QueryResult> {
        for _ in 0..8 {
            let Some(stamp) = self.seq.read_begin() else {
                continue;
            };
            let probe = self.reader.query(key);
            if self.seq.read_validate(stamp) {
                return Some(probe.expect("validated probe cannot be torn"));
            }
        }
        None
    }

    /// Arm the torn-point hook: on every window, check protocol
    /// rejection and score what an unfenced reader would accept for
    /// `settled` keys (present before and after the current op).
    fn arm_hook(&self, settled: Rc<RefCell<Vec<u64>>>, tally: Rc<RefCell<Tally>>) -> HookGuard {
        let seq = Rc::clone(&self.seq);
        let reader = Rc::clone(&self.reader);
        testhooks::install(Box::new(move |_point: TornPoint| {
            let mut t = tally.borrow_mut();
            t.windows += 1;
            // (2) Protocol rejection: the window lies inside a seqlock
            // write section, so a fenced reader is refused outright. If
            // this fails, a writer path mutates outside its write
            // section (or the seqlock's odd bump was broken).
            assert!(
                seq.read_begin().is_none(),
                "torn window observable outside a seqlock write section"
            );
            t.rejected += 1;
            // (1) Safety + (3) sensitivity: probe the torn arena the way
            // an unfenced reader would, for keys whose pre- and
            // post-state answer is identically Positive.
            for &k in settled.borrow().iter() {
                match reader.query(k) {
                    Err(_) => t.torn_probes += 1,
                    Ok(QueryResult::Negative) => t.fabricated_if_unfenced += 1,
                    Ok(QueryResult::Positive(_)) => {}
                }
            }
        }));
        HookGuard
    }
}

/// Dense sequential fill on a tiny geometry: long clusters, so almost
/// every insert shifts and every delete rebuilds a multi-run cluster.
fn dense_keys(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(0x9E37_79B9)).collect()
}

/// Drive a dense insert schedule with the hook armed, probing all
/// already-settled keys during every torn window.
fn run_dense_insert_schedule() -> Tally {
    let mut h = Harness::new(AqfConfig::new(6, 4).with_seed(11));
    let settled: Rc<RefCell<Vec<u64>>> = Rc::default();
    let tally: Rc<RefCell<Tally>> = Rc::default();
    let _guard = h.arm_hook(Rc::clone(&settled), Rc::clone(&tally));
    for k in dense_keys(58) {
        match h.write(|f| f.insert(k)) {
            Ok(_) => settled.borrow_mut().push(k),
            Err(FilterError::Full) => break,
            Err(e) => panic!("{e:?}"),
        }
        // (4) At the op boundary the filter is consistent again: a
        // validated optimistic read exists (no writer) and agrees with
        // the ground-truth query for every settled key.
        for &s in settled.borrow().iter() {
            let r = h.read(s).expect("no writer active between ops");
            assert_eq!(r, h.f.query(s), "settled key {s}");
            assert!(r.is_positive(), "false negative for settled key {s}");
        }
    }
    drop(_guard); // releases the hook's Rc clones
    Rc::try_unwrap(tally).unwrap().into_inner()
}

/// Insert-shift torn windows: rejected by the protocol, fabricated
/// without it. This is the PR's documented mutation check — see the
/// module docs (property 3) for what breaking the fencing does here.
#[test]
fn torn_insert_windows_rejected_fenced_fabricated_unfenced() {
    let t = run_dense_insert_schedule();
    assert!(t.windows > 0, "dense fill must shift: {t:?}");
    assert_eq!(t.windows, t.rejected, "every window must be refused");
    // The windows are real: an unfenced reader accepts wrong answers.
    assert!(
        t.fabricated_if_unfenced > 0,
        "no fabricated answer without fencing — windows not dangerous? {t:?}"
    );
}

/// Delete-side torn windows (cluster clear + rebuild), same contract.
#[test]
fn torn_delete_rebuild_windows_rejected() {
    let mut h = Harness::new(AqfConfig::new(6, 4).with_seed(11));
    let keys = dense_keys(58);
    let mut inserted = Vec::new();
    for &k in &keys {
        match h.write(|f| f.insert(k)) {
            Ok(_) => inserted.push(k),
            Err(FilterError::Full) => break,
            Err(e) => panic!("{e:?}"),
        }
    }
    // Delete every other key; during each delete, survivors (keys not
    // yet deleted, minus the victim) are the settled set.
    let settled: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(inserted.clone()));
    let tally: Rc<RefCell<Tally>> = Rc::default();
    let _guard = h.arm_hook(Rc::clone(&settled), Rc::clone(&tally));
    let mut remaining = inserted.clone();
    for k in inserted.iter().step_by(2) {
        remaining.retain(|&x| x != *k);
        *settled.borrow_mut() = remaining.clone();
        h.write(|f| f.delete(*k)).unwrap();
        for &s in remaining.iter() {
            let r = h.read(s).expect("no writer active between ops");
            assert!(r.is_positive(), "false negative for surviving key {s}");
        }
    }
    drop(_guard); // releases the hook's Rc clones
    let t = Rc::try_unwrap(tally).unwrap().into_inner();
    assert!(t.windows > 0, "dense deletes must rebuild clusters: {t:?}");
    assert_eq!(t.windows, t.rejected);
    assert!(
        t.fabricated_if_unfenced + t.torn_probes > 0,
        "rebuild windows should be observable in probes: {t:?}"
    );
}

/// Max-retry fallback at the harness level: while a writer is parked
/// inside a torn window, a protocol read exhausts its retries and
/// reports `None` — the signal to take the locked path.
#[test]
fn reads_inside_window_exhaust_retries() {
    let mut h = Harness::new(AqfConfig::new(6, 4).with_seed(7));
    for k in dense_keys(40) {
        let _ = h.write(|f| f.insert(k));
    }
    let seq = Rc::clone(&h.seq);
    let reader = Rc::clone(&h.reader);
    let reads: Rc<RefCell<Vec<Option<QueryResult>>>> = Rc::default();
    let reads_in_hook = Rc::clone(&reads);
    testhooks::install(Box::new(move |_| {
        // The full protocol loop, run *inside* the window.
        let attempt = || {
            for _ in 0..8 {
                let Some(stamp) = seq.read_begin() else {
                    continue;
                };
                let probe = reader.query(1234);
                if seq.read_validate(stamp) {
                    return Some(probe.expect("validated probe cannot be torn"));
                }
            }
            None
        };
        reads_in_hook.borrow_mut().push(attempt());
    }));
    let _guard = HookGuard;
    for k in dense_keys(58).into_iter().skip(40) {
        let _ = h.write(|f| f.insert(k));
    }
    let reads = reads.borrow();
    assert!(!reads.is_empty(), "late dense inserts must shift");
    assert!(
        reads.iter().all(|r| r.is_none()),
        "an optimistic read validated inside a write section"
    );
}

/// `ShardedAqf` end-to-end: a shard whose version counter is parked odd
/// (writer stuck mid-mutation forever) forces every read through the
/// locked fallback — with correct answers — and recovers afterwards.
#[test]
fn poisoned_shard_falls_back_to_locked_reads() {
    let f = ShardedAqf::new(AqfConfig::new(12, 9).with_seed(3), 2).unwrap();
    let keys: Vec<u64> = (0..2000u64).map(|i| i * 31 + 7).collect();
    for &k in &keys {
        f.insert(k).unwrap();
    }
    for shard in 0..f.shard_count() {
        f.debug_poison_shard(shard);
        let mut routed = 0;
        for &k in keys.iter().step_by(17) {
            if f.shard_of(k) == shard {
                routed += 1;
                assert_eq!(
                    f.query_optimistic_only(k),
                    None,
                    "optimistic read won against a parked writer"
                );
            }
            // The public paths still answer, poisoned or not.
            assert!(f.contains(k), "false negative for {k}");
        }
        assert!(routed > 0, "no sampled key routed to shard {shard}");
        // Batch reads cross the poisoned shard too.
        let sample: Vec<u64> = keys.iter().copied().step_by(13).collect();
        assert!(f.contains_batch(&sample).into_iter().all(|b| b));
        f.debug_unpoison_shard(shard);
        let k = keys
            .iter()
            .copied()
            .find(|&k| f.shard_of(k) == shard)
            .unwrap();
        assert!(
            f.query_optimistic_only(k).is_some(),
            "optimistic path did not recover after unpoison"
        );
    }
}

/// PR 8 acceptance: while one shard grows (rebuild under its own mutex +
/// seqlock write section), lock-free reads on the **other** shards keep
/// succeeding. The writer thread drives the victim shard through several
/// auto-grow doublings; reader threads spin on settled keys of the other
/// shards, where `query_optimistic_only` must *always* win first try
/// (their seqlocks are never held) and always answer positive. The
/// victim shard's own keys stay reachable through the public fallback
/// path concurrently with the rebuilds.
#[test]
fn reads_on_other_shards_succeed_during_shard_grow() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    // 4 shards of 2^6 slots; rbits 8 leaves headroom for many doublings.
    let f = Arc::new(ShardedAqf::new(AqfConfig::new(8, 8).with_seed(5), 2).unwrap());
    f.set_auto_grow(Some(0.8)).unwrap();

    // Bucket a key stream by shard: settle a below-threshold population
    // everywhere, and reserve a large insert set for the victim shard.
    const VICTIM: usize = 0;
    let mut settled: Vec<Vec<u64>> = vec![Vec::new(); f.shard_count()];
    let mut victim_feed: Vec<u64> = Vec::new();
    let mut k = 0u64;
    while victim_feed.len() < 600 {
        let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x55;
        k += 1;
        let s = f.shard_of(key);
        if settled[s].len() < 30 {
            f.insert(key).unwrap();
            settled[s].push(key);
        } else if s == VICTIM {
            victim_feed.push(key);
        }
    }
    let grows_before = f.stats().grows;

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for shard in (0..f.shard_count()).filter(|&s| s != VICTIM) {
        let (f, done, reads) = (Arc::clone(&f), Arc::clone(&done), Arc::clone(&reads));
        let keys = settled[shard].clone();
        readers.push(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                for &key in &keys {
                    let r = f
                        .query_optimistic_only(key)
                        .expect("optimistic read failed on a shard with no writer");
                    assert!(r.is_positive(), "false negative for settled key {key}");
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // A reader on the victim shard itself: the public path must stay
    // correct right through the grows (it may block on the mutex).
    let victim_reader = {
        let (f, done) = (Arc::clone(&f), Arc::clone(&done));
        let keys = settled[VICTIM].clone();
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                for &key in &keys {
                    assert!(f.contains(key), "victim-shard key {key} lost mid-grow");
                }
            }
        })
    };

    // Drive the victim shard through several doublings (600 inserts into
    // 64 slots at threshold 0.8 needs at least 4).
    for &key in &victim_feed {
        f.insert(key).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for t in readers {
        t.join().unwrap();
    }
    victim_reader.join().unwrap();

    let grew = f.stats().grows - grows_before;
    assert!(grew >= 3, "victim shard grew only {grew} times");
    assert!(
        reads.load(Ordering::Relaxed) > 0,
        "no concurrent reads observed"
    );
    // All settled keys everywhere survived the grows.
    for keys in &settled {
        for &key in keys {
            assert!(f.contains(key), "settled key {key} lost");
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    QueryAdapt(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..key_space).prop_map(Op::Insert),
        2 => (0..key_space).prop_map(Op::Delete),
        3 => (0..key_space).prop_map(Op::QueryAdapt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// Random insert/delete/adapt schedules with the torn-point hook
    /// armed throughout: every torn window (insert-shift, adapt/extend,
    /// cluster rebuild) is protocol-rejected and probe-safe, and at
    /// every op boundary a validated optimistic read is linearizable
    /// against the single-threaded answer while blocked-vs-reference
    /// navigation equivalence holds.
    #[test]
    fn schedules_reject_torn_windows_and_linearize(
        ops in proptest::collection::vec(op_strategy(400), 1..250),
        seed in 0u64..300,
    ) {
        let mut h = Harness::new(AqfConfig::new(6, 3).with_seed(seed));
        let mut revmap: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        let settled: Rc<RefCell<Vec<u64>>> = Rc::default();
        let tally: Rc<RefCell<Tally>> = Rc::default();
        let _guard = h.arm_hook(Rc::clone(&settled), Rc::clone(&tally));
        // Keys probed at op boundaries: every key the schedule mentions.
        let mentioned: Vec<u64> = ops.iter().map(|op| match *op {
            Op::Insert(k) | Op::Delete(k) | Op::QueryAdapt(k) => k,
        }).collect();
        for (i, op) in ops.iter().enumerate() {
            // During this op, in-window probes check keys the op cannot
            // affect's membership: adaptation may legitimately flip other
            // keys' *query* answers, so restrict the settled set to
            // member keys during inserts/deletes only.
            match *op {
                Op::Insert(k) | Op::Delete(k) => {
                    let members: Vec<u64> = revmap.values().flatten().copied()
                        .filter(|&m| m != k)
                        .collect();
                    *settled.borrow_mut() = members;
                }
                Op::QueryAdapt(_) => settled.borrow_mut().clear(),
            }
            match *op {
                Op::Insert(k) => {
                    match h.write(|f| f.insert(k)) {
                        Ok(out) => {
                            if !out.duplicate {
                                revmap.entry(out.minirun_id).or_default()
                                    .insert(out.rank as usize, k);
                            }
                        }
                        Err(FilterError::Full) => {}
                        Err(e) => panic!("{e:?}"),
                    }
                }
                Op::Delete(k) => {
                    if let Some(out) = h.write(|f| f.delete(k)).unwrap() {
                        if out.removed_group {
                            let list = revmap.get_mut(&out.minirun_id).unwrap();
                            list.remove(out.rank as usize);
                            if list.is_empty() {
                                revmap.remove(&out.minirun_id);
                            }
                        }
                    }
                }
                Op::QueryAdapt(k) => {
                    if let QueryResult::Positive(hit) = h.f.query(k) {
                        let stored = revmap[&hit.minirun_id][hit.rank as usize];
                        if stored != k {
                            match h.write(|f| f.adapt(&hit, stored, k)) {
                                Ok(_) | Err(FilterError::Full) => {}
                                Err(e) => panic!("{e:?}"),
                            }
                        }
                    }
                }
            }
            // Op boundary: validated reads linearize against the
            // single-threaded answer for every mentioned key.
            for &k in &mentioned {
                let r = h.read(k).expect("no writer active between ops");
                prop_assert_eq!(r, h.f.query(k), "key {} after op {}", k, i);
            }
            if i % 11 == 0 || i + 1 == ops.len() {
                h.f.validate().map_err(TestCaseError::fail)?;
                h.f.check_nav_equivalence().map_err(TestCaseError::fail)?;
            }
        }
        let t = tally.borrow();
        prop_assert_eq!(t.windows, t.rejected, "unrejected torn window");
    }
}
