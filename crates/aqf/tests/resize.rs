//! Property tests for online capacity growth (PR 8).
//!
//! The grow remap is an identity on fingerprints: the hash bit string is
//! merely re-split at `qbits+1`, so a filter grown `g` times from
//! `(q, r)` must be **element-wise equivalent** to a never-grown filter
//! built directly at `(q+g, r-g)` over the same insert history — same
//! membership, same minirun ids and ranks (the `query_loc` contract the
//! reverse map depends on), same occupancy. Grown filters must also
//! round-trip through snapshot v3 (which records the grow count and
//! table backing), and legacy v2 frames must still load.
//!
//! Case counts scale with `AQF_PROPTEST_CASES` (CI's deep profile).

use aqf::{AdaptiveQf, AqfConfig, QueryResult};
use proptest::prelude::*;

/// Proptest case count: default, or `AQF_PROPTEST_CASES` (deep profile).
fn cases(default: u32) -> u32 {
    std::env::var("AQF_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Compare two filters element-wise over members and a probe space.
fn assert_equivalent(a: &AdaptiveQf, b: &AdaptiveQf, members: &[u64], probes: u64, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: len");
    assert_eq!(
        a.distinct_fingerprints(),
        b.distinct_fingerprints(),
        "{ctx}: distinct fingerprints"
    );
    assert_eq!(a.slots_in_use(), b.slots_in_use(), "{ctx}: slots in use");
    assert_eq!(a.capacity(), b.capacity(), "{ctx}: capacity");
    for &k in members {
        assert!(a.contains(k) && b.contains(k), "{ctx}: member {k} lost");
    }
    for k in 0..probes {
        let key = k.wrapping_mul(0x9E37_79B9) ^ 0xABCD;
        match (a.query(key), b.query(key)) {
            (QueryResult::Negative, QueryResult::Negative) => {}
            (QueryResult::Positive(ha), QueryResult::Positive(hb)) => {
                assert_eq!(ha.minirun_id, hb.minirun_id, "{ctx}: minirun id for {key}");
                assert_eq!(ha.rank, hb.rank, "{ctx}: rank for {key}");
            }
            (ra, rb) => panic!("{ctx}: probe {key} diverged: {ra:?} vs {rb:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// A filter grown `g` times equals a never-grown filter built at the
    /// final geometry, element-wise.
    #[test]
    fn grown_matches_never_grown_at_final_size(
        keys in proptest::collection::vec(0u64..1_000_000, 1..60),
        seed in 0u64..500,
        grows in 1u32..=3,
    ) {
        let mut keys = keys; keys.sort_unstable(); keys.dedup();
        let mut grown = AdaptiveQf::new(AqfConfig::new(7, 6).with_seed(seed)).unwrap();
        for &k in &keys {
            grown.insert(k).unwrap();
        }
        for _ in 0..grows {
            grown.grow_in_place().unwrap();
        }
        grown.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(grown.stats().grows, grows as u64);

        let mut fresh =
            AdaptiveQf::new(AqfConfig::new(7 + grows, 6 - grows).with_seed(seed)).unwrap();
        for &k in &keys {
            fresh.insert(k).unwrap();
        }
        assert_equivalent(&grown, &fresh, &keys, 2000, "grown vs fresh");
    }

    /// Auto-grow driven by inserts reaches the same state as explicit
    /// grows: members survive, the structure validates, and occupancy
    /// stays below the threshold's doubling headroom.
    #[test]
    fn auto_grow_equals_explicit_grow(
        seed in 0u64..200,
    ) {
        let mut f = AdaptiveQf::new(AqfConfig::new(6, 6).with_seed(seed)).unwrap();
        f.set_auto_grow(Some(0.85)).unwrap();
        let n = 512u64; // 8x the 2^6 initial capacity
        for i in 0..n {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            f.insert(k).unwrap();
        }
        f.validate().map_err(TestCaseError::fail)?;
        prop_assert!(f.stats().grows >= 3, "needed >=3 doublings, saw {}", f.stats().grows);
        prop_assert!(f.capacity() >= n);
        for i in 0..n {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            prop_assert!(f.contains(k), "lost key {} across auto-grows", k);
        }
    }

    /// Grown filters round-trip through snapshot v3: geometry, grow
    /// count, and element-wise behavior all survive.
    #[test]
    fn grown_filter_roundtrips_snapshot_v3(
        keys in proptest::collection::vec(0u64..1_000_000, 1..60),
        seed in 0u64..200,
    ) {
        let mut keys = keys; keys.sort_unstable(); keys.dedup();
        let mut f = AdaptiveQf::new(AqfConfig::new(7, 5).with_seed(seed)).unwrap();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        f.grow_in_place().unwrap();
        f.grow_in_place().unwrap();

        let bytes = f.to_snapshot_bytes();
        let r = AdaptiveQf::from_snapshot_bytes(&bytes).unwrap();
        r.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(r.stats().grows, 2, "grow count lost in snapshot");
        prop_assert_eq!(r.config().qbits, 9);
        prop_assert_eq!(r.config().rbits, 3);
        assert_equivalent(&f, &r, &keys, 2000, "snapshot roundtrip");
    }

    /// Legacy v2 frames (no backing/grow metadata) still load; the grow
    /// counter resets but the element-wise state is intact.
    #[test]
    fn legacy_v2_frames_still_load(
        keys in proptest::collection::vec(0u64..1_000_000, 1..60),
        seed in 0u64..200,
    ) {
        let mut keys = keys; keys.sort_unstable(); keys.dedup();
        let mut f = AdaptiveQf::new(AqfConfig::new(7, 5).with_seed(seed)).unwrap();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        f.grow_in_place().unwrap();

        let bytes = f.to_snapshot_bytes_legacy_v2();
        let r = AdaptiveQf::from_snapshot_bytes(&bytes).unwrap();
        r.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(r.stats().grows, 0, "v2 frames carry no grow count");
        assert_equivalent(&f, &r, &keys, 2000, "v2 load");
    }
}

/// A grown, file-backed filter snapshots by arena reference and reopens
/// from the mapped file with its state intact (deterministic, so kept
/// outside the proptest block).
#[test]
fn grown_file_backed_filter_reopens() {
    let dir = std::env::temp_dir().join(format!("aqf-resize-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut f = AdaptiveQf::new(AqfConfig::new(7, 5).with_seed(11)).unwrap();
    let keys: Vec<u64> = (0..90u64).map(|i| i * 7919 + 3).collect();
    for &k in &keys {
        f.insert(k).unwrap();
    }
    f.grow_in_place().unwrap();
    // Grow falls back to the heap; re-attach the arena, then snapshot.
    f.set_file_backing(&dir.join("table.arena")).unwrap();
    assert!(f.is_file_backed());
    f.save(&dir.join("filter.snap")).unwrap();

    let r = AdaptiveQf::load(&dir.join("filter.snap")).unwrap();
    assert!(r.is_file_backed(), "reopened filter lost its arena backing");
    assert_eq!(r.stats().grows, 1);
    assert_equivalent(&f, &r, &keys, 2000, "file-backed reopen");
    std::fs::remove_dir_all(&dir).ok();
}
