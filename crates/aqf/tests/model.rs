//! Reference-model testing: every AdaptiveQf operation is mirrored against
//! a naive model (a map of miniruns to fingerprint groups), and the
//! filter's structural invariants are validated after every mutation.
//!
//! Small geometries (qbits 5..8, rbits 2..5) are used deliberately: they
//! force heavy quotient and remainder collisions, long clusters, shifting
//! across block boundaries, miniruns with many members, and adaptation
//! chains — the hard paths.

use std::collections::BTreeMap;

use aqf::fingerprint::Fingerprint;
use aqf::{AdaptiveQf, AqfConfig, QueryResult};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A logical fingerprint group in the model.
#[derive(Clone, Debug)]
struct MGroup {
    /// The first key that created this group (what the reverse map would
    /// return for adaptation).
    repr: u64,
    /// Extension chunks stored so far.
    ext: Vec<u64>,
    count: u64,
}

/// Naive mirror of AdaptiveQf semantics. `counting = true` mirrors
/// `insert_counting` (exact-fingerprint matches bump a counter);
/// `counting = false` mirrors `insert` (always a new group).
struct Model {
    cfg: AqfConfig,
    counting: bool,
    miniruns: BTreeMap<u64, Vec<MGroup>>,
    inserted: BTreeMap<u64, u64>, // key -> times inserted
}

impl Model {
    fn new(cfg: AqfConfig, counting: bool) -> Self {
        Self {
            cfg,
            counting,
            miniruns: BTreeMap::new(),
            inserted: BTreeMap::new(),
        }
    }

    fn fp(&self, key: u64) -> Fingerprint {
        Fingerprint::new(key, self.cfg.seed, self.cfg.qbits, self.cfg.rbits)
    }

    fn matches(fp: &Fingerprint, g: &MGroup) -> bool {
        g.ext
            .iter()
            .enumerate()
            .all(|(i, &c)| fp.chunk(i as u64) == c)
    }

    fn insert(&mut self, key: u64) -> (u64, u32, bool) {
        let fp = self.fp(key);
        let id = fp.minirun_id();
        *self.inserted.entry(key).or_insert(0) += 1;
        let counting = self.counting;
        let groups = self.miniruns.entry(id).or_default();
        if counting {
            for (rank, g) in groups.iter_mut().enumerate() {
                if Self::matches(&fp, g) {
                    g.count += 1;
                    return (id, rank as u32, true);
                }
            }
        }
        groups.push(MGroup {
            repr: key,
            ext: Vec::new(),
            count: 1,
        });
        (id, groups.len() as u32 - 1, false)
    }

    /// Expected query result: first matching group's rank.
    fn query(&self, key: u64) -> Option<u32> {
        let fp = self.fp(key);
        let groups = self.miniruns.get(&fp.minirun_id())?;
        groups
            .iter()
            .position(|g| Self::matches(&fp, g))
            .map(|r| r as u32)
    }

    fn adapt(&mut self, id: u64, rank: u32, query_key: u64) {
        let qfp = self.fp(query_key);
        let groups = self.miniruns.get_mut(&id).unwrap();
        let g = &mut groups[rank as usize];
        let sfp = Fingerprint::new(g.repr, self.cfg.seed, self.cfg.qbits, self.cfg.rbits);
        let mut len = g.ext.len() as u64;
        loop {
            let c = sfp.chunk(len);
            g.ext.push(c);
            let diverged = c != qfp.chunk(len);
            len += 1;
            if diverged {
                break;
            }
        }
    }

    fn repr_of(&self, id: u64, rank: u32) -> u64 {
        self.miniruns[&id][rank as usize].repr
    }

    fn delete(&mut self, key: u64) -> Option<(u32, bool)> {
        let fp = self.fp(key);
        let id = fp.minirun_id();
        let groups = self.miniruns.get_mut(&id)?;
        let rank = groups.iter().position(|g| Self::matches(&fp, g))?;
        let removed = if groups[rank].count > 1 {
            groups[rank].count -= 1;
            false
        } else {
            groups.remove(rank);
            if groups.is_empty() {
                self.miniruns.remove(&id);
            }
            true
        };
        if let Some(n) = self.inserted.get_mut(&key) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inserted.remove(&key);
            }
        }
        Some((rank as u32, removed))
    }

    fn was_inserted(&self, key: u64) -> bool {
        self.inserted.contains_key(&key)
    }
}

fn check_agreement(f: &AdaptiveQf, m: &Model, probe_keys: &[u64]) {
    for &k in probe_keys {
        let expect = m.query(k);
        match (f.query(k), expect) {
            (QueryResult::Negative, None) => {}
            (QueryResult::Positive(hit), Some(rank)) => {
                assert_eq!(hit.rank, rank, "rank mismatch for key {k}");
            }
            (got, want) => panic!("query({k}): filter {got:?} model {want:?}"),
        }
        // Counts agree for matched fingerprints.
        if let Some(rank) = expect {
            let fp = m.fp(k);
            let mg = &m.miniruns[&fp.minirun_id()][rank as usize];
            assert_eq!(f.count(k), mg.count, "count mismatch for key {k}");
        } else {
            assert_eq!(f.count(k), 0);
        }
    }
}

/// Drive a random op mix against filter and model, validating both the
/// structure and the semantics after every operation.
fn run_random_ops(seed: u64, qbits: u32, rbits: u32, key_space: u64, ops: usize, counting: bool) {
    let cfg = AqfConfig::new(qbits, rbits).with_seed(seed ^ 0xABCD);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let mut m = Model::new(cfg, counting);
    let mut rng = StdRng::seed_from_u64(seed);
    let probes: Vec<u64> = (0..64).map(|_| rng.random_range(0..key_space)).collect();

    for step in 0..ops {
        let key = rng.random_range(0..key_space);
        match rng.random_range(0..10u32) {
            // 50% inserts.
            0..=4 => {
                let got = if counting {
                    f.insert_counting(key)
                } else {
                    f.insert(key)
                };
                match got {
                    Ok(out) => {
                        let (id, rank, dup) = m.insert(key);
                        assert_eq!(out.minirun_id, id, "step {step}");
                        assert_eq!(out.rank, rank, "step {step}");
                        assert_eq!(out.duplicate, dup, "step {step}");
                    }
                    Err(aqf::FilterError::Full) => { /* model unchanged */ }
                    Err(e) => panic!("unexpected insert error {e:?}"),
                }
            }
            // 30% queries (+ adapt on false positives, like a real system).
            5..=7 => {
                let expect = m.query(key);
                match (f.query(key), expect) {
                    (QueryResult::Negative, None) => {}
                    (QueryResult::Positive(hit), Some(rank)) => {
                        assert_eq!(hit.rank, rank, "step {step} key {key}");
                        // Adapt only on *confirmed* false positives: the key
                        // was never actually inserted. A group's stored key
                        // can equal the probe when the probe's own group was
                        // created by a colliding key and later deleted —
                        // identical hash strings cannot be separated, so a
                        // real system resolves this at insert time instead.
                        let stored = m.repr_of(hit.minirun_id, hit.rank);
                        if !m.was_inserted(key) && stored != key {
                            match f.adapt(&hit, stored, key) {
                                Ok(_) => m.adapt(hit.minirun_id, hit.rank, key),
                                Err(aqf::FilterError::Full) => {}
                                Err(e) => panic!("adapt error {e:?}"),
                            }
                        }
                    }
                    (got, want) => {
                        panic!("step {step} query({key}): filter {got:?} model {want:?}")
                    }
                }
            }
            // 20% deletes.
            _ => {
                let got = f.delete(key).unwrap();
                let want = m.delete(key);
                match (got, want) {
                    (None, None) => {}
                    (Some(out), Some((rank, removed))) => {
                        assert_eq!(out.rank, rank, "step {step}");
                        assert_eq!(out.removed_group, removed, "step {step}");
                    }
                    (g, w) => panic!("step {step} delete({key}): {g:?} vs {w:?}"),
                }
            }
        }
        f.assert_valid();
    }
    check_agreement(&f, &m, &probes);
    // Filter and model agree on every key still considered inserted.
    // (Keys that exact-matched a *different* key's fingerprint at insert
    // time can be adapted away — the core filter cannot distinguish them;
    // the system layer prevents this by separating at insert, which the
    // YesNoFilter tests cover.)
    let inserted: Vec<u64> = m.inserted.keys().copied().collect();
    check_agreement(&f, &m, &inserted);
}

#[test]
fn model_tiny_geometry_heavy_collisions() {
    run_random_ops(1, 5, 2, 200, 1500, false);
    run_random_ops(1, 5, 2, 200, 1500, true);
}

#[test]
fn model_small_geometry() {
    run_random_ops(2, 6, 3, 1000, 2000, false);
    run_random_ops(2, 6, 3, 1000, 2000, true);
}

#[test]
fn model_medium_geometry() {
    run_random_ops(3, 8, 4, 10_000, 3000, false);
    run_random_ops(3, 8, 4, 10_000, 3000, true);
}

#[test]
fn model_wider_remainder() {
    run_random_ops(4, 7, 9, 100_000, 2500, false);
}

#[test]
fn model_many_duplicates_counting() {
    // Tiny key space so counters get exercised hard.
    run_random_ops(5, 6, 3, 24, 2500, true);
    run_random_ops(5, 6, 3, 24, 2500, false);
}

#[test]
fn model_multiple_seeds() {
    for seed in 10..18 {
        run_random_ops(seed, 6, 3, 500, 800, seed % 2 == 0);
    }
}

#[test]
fn fill_to_full_reports_full_without_corruption() {
    let cfg = AqfConfig::new(5, 3).with_seed(9);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let mut inserted = Vec::new();
    for k in 0..100_000u64 {
        match f.insert(k) {
            Ok(_) => inserted.push(k),
            Err(aqf::FilterError::Full) => break,
            Err(e) => panic!("{e:?}"),
        }
        if k % 16 == 0 {
            f.assert_valid();
        }
    }
    f.assert_valid();
    assert!(f.slots_in_use() as usize <= cfg.total_slots());
    // Everything inserted before Full is still there.
    for &k in &inserted {
        assert!(f.contains(k), "lost key {k} after Full");
    }
}

#[test]
fn adaptation_is_monotone() {
    // Fix false positives one by one; previously fixed ones stay fixed.
    let cfg = AqfConfig::new(8, 3).with_seed(42);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let mut m = Model::new(cfg, false);
    // Track only keys that created their own fingerprint group: keys that
    // exact-matched an earlier key's group at insert (the filter alone
    // cannot tell them apart) are legitimately adaptable-away.
    let mut members: Vec<u64> = Vec::new();
    for k in 0..180u64 {
        let out = f.insert(k).unwrap();
        m.insert(k);
        if !out.duplicate {
            members.push(k);
        }
    }
    let mut fixed: Vec<u64> = Vec::new();
    let mut probe = 1_000_000u64;
    while fixed.len() < 60 {
        probe += 1;
        if let QueryResult::Positive(hit) = f.query(probe) {
            let stored = m.repr_of(hit.minirun_id, hit.rank);
            f.adapt(&hit, stored, probe).unwrap();
            m.adapt(hit.minirun_id, hit.rank, probe);
            // Adapt until fully negative (multiple groups can match).
            while let QueryResult::Positive(h2) = f.query(probe) {
                let s2 = m.repr_of(h2.minirun_id, h2.rank);
                f.adapt(&h2, s2, probe).unwrap();
                m.adapt(h2.minirun_id, h2.rank, probe);
            }
            fixed.push(probe);
            f.assert_valid();
            // Monotonicity: every previously fixed false positive stays
            // fixed, and every member stays present.
            for &fp in &fixed {
                assert!(!f.contains(fp), "false positive {fp} came back");
            }
            for &k in &members {
                assert!(f.contains(k), "member {k} lost by adaptation");
            }
        }
    }
}

#[test]
fn merge_preserves_members_and_adaptations() {
    let cfg = AqfConfig::new(7, 6).with_seed(3);
    let mut a = AdaptiveQf::new(cfg).unwrap();
    let mut b = AdaptiveQf::new(cfg).unwrap();
    let mut ma = Model::new(cfg, false);
    let mut mb = Model::new(cfg, false);
    for k in 0..70u64 {
        a.insert(k).unwrap();
        ma.insert(k);
    }
    for k in 70..140u64 {
        b.insert(k).unwrap();
        mb.insert(k);
    }
    // Adapt a few false positives in each.
    let mut probe = 5_000_000u64;
    let mut adapted = 0;
    while adapted < 10 {
        probe += 1;
        if let QueryResult::Positive(hit) = a.query(probe) {
            let stored = ma.repr_of(hit.minirun_id, hit.rank);
            a.adapt(&hit, stored, probe).unwrap();
            ma.adapt(hit.minirun_id, hit.rank, probe);
            adapted += 1;
        }
    }
    let merged = a.merge(&b).unwrap();
    merged.assert_valid();
    assert_eq!(merged.len(), a.len() + b.len());
    assert_eq!(merged.config().qbits, cfg.qbits + 1);
    assert_eq!(merged.config().rbits, cfg.rbits - 1);
    for k in 0..140u64 {
        assert!(merged.contains(k), "merged filter lost key {k}");
    }
}

#[test]
fn grow_preserves_members() {
    let cfg = AqfConfig::new(6, 6).with_seed(8);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    for k in 0..50u64 {
        f.insert(k).unwrap();
    }
    let g = f.grow().unwrap();
    g.assert_valid();
    assert_eq!(g.len(), f.len());
    for k in 0..50u64 {
        assert!(g.contains(k));
    }
    // Growth halves the remainder, so FPR roughly doubles — but never
    // introduces false negatives, which is all we assert here.
}

#[test]
fn bulk_build_matches_incremental_inserts() {
    let cfg = AqfConfig::new(8, 5).with_seed(21);
    let mut rng = StdRng::seed_from_u64(77);
    let keys: Vec<u64> = (0..150).map(|_| rng.random_range(0..400u64)).collect();
    let bulk = AdaptiveQf::bulk_build(cfg, &keys).unwrap();
    bulk.assert_valid();
    let mut inc = AdaptiveQf::new(cfg).unwrap();
    for &k in &keys {
        inc.insert(k).unwrap();
    }
    assert_eq!(bulk.len(), inc.len());
    assert_eq!(bulk.distinct_fingerprints(), inc.distinct_fingerprints());
    for &k in &keys {
        assert!(bulk.contains(k));
        assert_eq!(bulk.count(k), inc.count(k), "count mismatch for {k}");
    }
}

#[test]
fn rebuild_with_seed_drops_adaptations() {
    let cfg = AqfConfig::new(8, 4).with_seed(1);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let keys: Vec<u64> = (0..200).collect();
    for &k in &keys {
        f.insert(k).unwrap();
    }
    let mut m = Model::new(cfg, false);
    for &k in &keys {
        m.insert(k);
    }
    // Adapt several false positives.
    let mut probe = 9_000_000u64;
    let mut adapted = 0;
    while adapted < 15 {
        probe += 1;
        if let QueryResult::Positive(hit) = f.query(probe) {
            let stored = m.repr_of(hit.minirun_id, hit.rank);
            f.adapt(&hit, stored, probe).unwrap();
            m.adapt(hit.minirun_id, hit.rank, probe);
            adapted += 1;
        }
    }
    assert!(f.stats().extension_slots > 0);
    let rebuilt = f.rebuild_with_seed(999, &keys).unwrap();
    rebuilt.assert_valid();
    assert_eq!(
        rebuilt.stats().extension_slots,
        0,
        "rebuild drops adaptivity"
    );
    assert_eq!(rebuilt.len(), keys.len() as u64);
    for &k in &keys {
        assert!(rebuilt.contains(k));
    }
}
