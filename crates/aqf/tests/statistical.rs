//! Statistical properties the paper proves: base false-positive rate,
//! strong adaptivity (a repeated query stays fixed), expected adaptation
//! cost (~1 + 2^-r chunks per fix), and yes/no space behaviour.

use aqf::{AdaptiveQf, AqfConfig, QueryResult};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn base_fpr_matches_two_to_minus_r() {
    // ε ≈ α · 2^-r for the quotient filter family.
    for rbits in [6u32, 9] {
        let cfg = AqfConfig::new(13, rbits).with_seed(1);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        let n = (8192.0 * 0.9) as u64;
        for k in 0..n {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(2);
        let probes = 400_000u64;
        let fps = (0..probes)
            .filter(|_| f.contains(rng.random_range(1 << 40..u64::MAX)))
            .count();
        let fpr = fps as f64 / probes as f64;
        let expect = 0.9 / (1u64 << rbits) as f64;
        assert!(
            fpr > expect * 0.5 && fpr < expect * 2.0,
            "r={rbits}: fpr {fpr:.6} vs expected {expect:.6}"
        );
    }
}

#[test]
fn adaptation_cost_is_about_one_chunk() {
    // Paper §1: adapting extends by ~2 bits in expectation; with whole
    // r-bit chunks that is 1 + 2^-r + ... chunks ≈ 1.
    let cfg = AqfConfig::new(12, 4).with_seed(3);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let n = (4096.0 * 0.8) as u64;
    let keys: Vec<u64> = (0..n).collect();
    let mut map = std::collections::HashMap::new();
    for &k in &keys {
        let out = f.insert(k).unwrap();
        map.entry(out.minirun_id)
            .or_insert_with(Vec::new)
            .insert(out.rank as usize, k);
    }
    let mut rng = StdRng::seed_from_u64(4);
    let mut total_chunks = 0u64;
    let mut fixes = 0u64;
    while fixes < 400 {
        let probe: u64 = rng.random_range(1 << 40..u64::MAX);
        if let QueryResult::Positive(hit) = f.query(probe) {
            let stored = map[&hit.minirun_id][hit.rank as usize];
            if stored == probe {
                continue;
            }
            total_chunks += f.adapt(&hit, stored, probe).unwrap() as u64;
            fixes += 1;
        }
    }
    let avg = total_chunks as f64 / fixes as f64;
    // Expected chunks per fix = 1/(1 - 2^-r) ≈ 1.07 at r=4.
    assert!(
        avg < 1.35,
        "average {avg:.3} chunks per adaptation too high"
    );
    assert!(avg >= 1.0);
}

#[test]
fn strong_adaptivity_over_query_stream() {
    // Run 100K adversizing queries; every query that was a false positive
    // and got adapted must never be a false positive again — count total
    // false positives per distinct key ≤ 1.
    let cfg = AqfConfig::new(12, 5).with_seed(5);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let n = (4096.0 * 0.85) as u64;
    let mut map = std::collections::HashMap::new();
    for k in 0..n {
        let out = f.insert(k).unwrap();
        map.entry(out.minirun_id)
            .or_insert_with(Vec::new)
            .insert(out.rank as usize, k);
    }
    let mut rng = StdRng::seed_from_u64(6);
    // Small probe universe so repeats are common.
    let universe: Vec<u64> = (0..2000)
        .map(|_| rng.random_range(1 << 40..u64::MAX))
        .collect();
    let mut fp_count: std::collections::HashMap<u64, u32> = Default::default();
    for _ in 0..100_000 {
        let probe = universe[rng.random_range(0..universe.len())];
        // Full adapt-until-negative round, like the system layer.
        while let QueryResult::Positive(hit) = f.query(probe) {
            let stored = map[&hit.minirun_id][hit.rank as usize];
            assert_ne!(stored, probe, "probe universe is disjoint from members");
            *fp_count.entry(probe).or_insert(0) += 1;
            f.adapt(&hit, stored, probe).unwrap();
        }
    }
    // Each distinct probe may be a false positive at most a handful of
    // times total (one adapt round can involve several matching groups),
    // and crucially: after its first full round, never again.
    for (&probe, &c) in &fp_count {
        assert!(c <= 4, "probe {probe} was a false positive {c} times");
    }
    // Aggregate bound: total FP rounds ≈ distinct-FP count, far below
    // what a non-adaptive filter would see (ε × 100K ≈ 2800 repeats).
    let total: u32 = fp_count.values().sum();
    assert!(
        (total as usize) < universe.len(),
        "total fp rounds {total} should be bounded by distinct probes"
    );
    f.assert_valid();
}

#[test]
fn zipfian_observed_fpr_collapses() {
    // The Fig. 7 effect as an assertion: after adapting through a skewed
    // stream, the *observed* FPR on that stream drops by >10x.
    let cfg = AqfConfig::new(12, 5).with_seed(8);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let n = (4096.0 * 0.85) as u64;
    let mut map = std::collections::HashMap::new();
    for k in 0..n {
        let out = f.insert(k).unwrap();
        map.entry(out.minirun_id)
            .or_insert_with(Vec::new)
            .insert(out.rank as usize, k);
    }
    let mut rng = StdRng::seed_from_u64(9);
    // A skewed stream: 50 hot keys queried constantly plus a cold tail.
    // The stream is sampled once and replayed, so `before` and `after`
    // measure the exact same queries and the adaptation pass covers
    // exactly the keys the measurement will replay. (Measuring on fresh
    // samples instead would put an irreducible fresh-tail FP floor under
    // `after`, making the collapse factor depend on hot-key luck.)
    let hot: Vec<u64> = (0..50)
        .map(|_| rng.random_range(1 << 40..u64::MAX))
        .collect();
    let stream: Vec<u64> = (0..20_000)
        .map(|_| {
            if rng.random::<f64>() < 0.9 {
                hot[rng.random_range(0..hot.len())]
            } else {
                rng.random_range(1 << 40..u64::MAX)
            }
        })
        .collect();
    let measure =
        |f: &AdaptiveQf| -> u64 { stream.iter().filter(|&&p| f.contains(p)).count() as u64 };
    let before = measure(&f);
    // Adapt through the same stream.
    for &probe in &stream {
        while let QueryResult::Positive(hit) = f.query(probe) {
            let stored = map[&hit.minirun_id][hit.rank as usize];
            if stored == probe {
                break;
            }
            f.adapt(&hit, stored, probe).unwrap();
        }
    }
    let after = measure(&f);
    // The stream has FPs before adapting (ε × 20K ≈ 530 expected), and
    // monotone adaptivity says a fixed query can never be a false
    // positive again — so the observed FPR on the stream collapses.
    assert!(
        before > 0,
        "a 20K-query stream at ε≈2^-5 must hit false positives"
    );
    assert!(
        after * 10 <= before.max(10),
        "observed FPR should collapse: before {before}, after {after}"
    );
}

#[test]
fn space_overhead_of_adaptation_is_negligible() {
    // Paper: ~1/1000th of a bit per item on skewed workloads. We assert
    // the adaptivity cost after fixing 1% of n false positives stays
    // under 0.2 bits/item.
    let cfg = AqfConfig::new(14, 7).with_seed(10);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let n = (16384.0 * 0.9) as u64;
    let mut map = std::collections::HashMap::new();
    for k in 0..n {
        let out = f.insert(k).unwrap();
        map.entry(out.minirun_id)
            .or_insert_with(Vec::new)
            .insert(out.rank as usize, k);
    }
    let mut rng = StdRng::seed_from_u64(11);
    let mut fixes = 0;
    while fixes < n / 100 {
        let probe: u64 = rng.random_range(1 << 40..u64::MAX);
        if let QueryResult::Positive(hit) = f.query(probe) {
            let stored = map[&hit.minirun_id][hit.rank as usize];
            if stored != probe && f.adapt(&hit, stored, probe).is_ok() {
                fixes += 1;
            }
        }
    }
    let slot_bits = (7 + 4) as f64; // remainder + metadata per extra slot
    let added_bits = f.stats().extension_slots as f64 * slot_bits;
    assert!(
        added_bits / n as f64 <= 0.2,
        "adaptivity cost {:.4} bits/item too high",
        added_bits / n as f64
    );
}
