//! Batch-vs-sequential equivalence for the AQF batch subsystem, plus a
//! multi-thread contention stress of `ShardedAqf::insert_batch`.
//!
//! The batch design (stable quotient-range partition per filter, stable
//! shard grouping for the sharded variant) promises *element-wise
//! identical* results to sequential calls; these tests pin that promise
//! exactly — outcomes, hits, and membership bits, not just aggregates.

use aqf::{AdaptiveQf, AqfConfig, BatchScratch, QueryResult, ShardedAqf};
use std::sync::Arc;

fn keys_mixed(n: u64, salt: u64) -> Vec<u64> {
    // A deliberately collision-rich stream: mostly distinct keys with
    // every 7th a repeat, so miniruns hold multiple fingerprints and
    // ranks matter.
    (0..n)
        .map(|i| {
            if i % 7 == 3 {
                ((i / 7) * 2654435761) ^ salt
            } else {
                i.wrapping_mul(0x9E3779B97F4A7C15) ^ salt
            }
        })
        .collect()
}

#[test]
fn insert_batch_outcomes_match_sequential_exactly() {
    let cfg = AqfConfig::new(12, 9).with_seed(7);
    let keys = keys_mixed(3000, 5);
    let mut seq = AdaptiveQf::new(cfg).unwrap();
    let seq_outs: Vec<_> = keys.iter().map(|&k| seq.insert(k).unwrap()).collect();

    let mut bat = AdaptiveQf::new(cfg).unwrap();
    let mut bat_outs = Vec::new();
    for chunk in keys.chunks(97) {
        bat_outs.extend(bat.insert_batch(chunk).unwrap());
    }
    assert_eq!(seq_outs, bat_outs, "insert outcomes diverge");
    assert_eq!(seq.len(), bat.len());
    assert_eq!(seq.distinct_fingerprints(), bat.distinct_fingerprints());
    assert_eq!(seq.slots_in_use(), bat.slots_in_use());
}

#[test]
fn query_batch_matches_per_key_exactly() {
    let cfg = AqfConfig::new(12, 9).with_seed(9);
    let keys = keys_mixed(3000, 1);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    f.insert_batch(&keys).unwrap();

    // Members + absent probes interleaved.
    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .chain((0..3000u64).map(|i| (1 << 41) + i * 7919))
        .collect();
    let batch = f.query_batch(&probes);
    for (j, &p) in probes.iter().enumerate() {
        assert_eq!(batch[j], f.query(p), "query {p} diverges");
    }
    let bits = f.contains_batch(&probes);
    for (j, &p) in probes.iter().enumerate() {
        assert_eq!(bits[j], f.contains(p), "contains {p} diverges");
    }
    // No false negatives through the batch path.
    for (j, r) in batch.iter().take(keys.len()).enumerate() {
        assert!(
            matches!(r, QueryResult::Positive(_)),
            "member {j} lost in batch query"
        );
    }
}

#[test]
fn batches_equivalent_across_partition_threshold() {
    // Batches below BATCH_PARTITION_MIN run in input order; at and above
    // it they go through the counting partition. Both regimes — and the
    // exact boundary, crossed in both directions — must be element-wise
    // identical to sequential calls, for inserts and lookups alike.
    let m = AdaptiveQf::BATCH_PARTITION_MIN;
    let sizes = [m - 1, m, m + 1, m / 2, 2 * m, m - 1, m + 1];
    let cfg = AqfConfig::new(12, 9).with_seed(21);
    let keys = keys_mixed(sizes.iter().sum::<usize>() as u64, 17);

    let mut seq = AdaptiveQf::new(cfg).unwrap();
    let seq_outs: Vec<_> = keys.iter().map(|&k| seq.insert(k).unwrap()).collect();

    let mut bat = AdaptiveQf::new(cfg).unwrap();
    let mut scratch = BatchScratch::new();
    let mut bat_outs = Vec::new();
    let mut off = 0usize;
    for &n in &sizes {
        let chunk = &keys[off..off + n];
        // Alternate thread-local and caller-held scratch entry points.
        if n % 2 == 0 {
            bat_outs.extend(bat.insert_batch(chunk).unwrap());
        } else {
            let mut outs = vec![
                aqf::InsertOutcome {
                    minirun_id: 0,
                    rank: 0,
                    duplicate: false,
                };
                n
            ];
            bat.insert_batch_with_in(chunk, &mut scratch, |i, o| outs[i] = o)
                .unwrap();
            bat_outs.extend(outs);
        }
        off += n;
    }
    assert_eq!(seq_outs, bat_outs, "outcomes diverge across the threshold");

    off = 0;
    for &n in &sizes {
        let chunk = &keys[off..off + n];
        let qb = bat.query_batch_in(chunk, &mut scratch);
        let cb = bat.contains_batch_in(chunk, &mut scratch);
        for (j, &k) in chunk.iter().enumerate() {
            assert_eq!(qb[j], bat.query(k), "query {k} diverges at size {n}");
            assert_eq!(cb[j], bat.contains(k), "contains {k} diverges at size {n}");
        }
        off += n;
    }
}

#[test]
fn empty_and_single_batches() {
    let cfg = AqfConfig::new(10, 9).with_seed(3);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    assert!(f.insert_batch(&[]).unwrap().is_empty());
    assert!(f.query_batch(&[]).is_empty());
    assert!(f.contains_batch(&[]).is_empty());
    let out = f.insert_batch(&[42]).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rank, 0);
    assert!(f.contains_batch(&[42, 43])[0]);
}

#[test]
fn sharded_batch_matches_per_key_exactly() {
    let cfg = AqfConfig::new(13, 9).with_seed(11);
    let keys = keys_mixed(4000, 2);

    let seq = ShardedAqf::new(cfg, 3).unwrap();
    let seq_outs: Vec<_> = keys.iter().map(|&k| seq.insert(k).unwrap()).collect();

    let bat = ShardedAqf::new(cfg, 3).unwrap();
    let mut bat_outs = Vec::new();
    for chunk in keys.chunks(113) {
        bat_outs.extend(bat.insert_batch(chunk).unwrap());
    }
    assert_eq!(seq_outs, bat_outs, "sharded insert outcomes diverge");
    assert_eq!(seq.len(), bat.len());

    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .chain((0..4000u64).map(|i| (1 << 42) + i * 104729))
        .collect();
    let batch = bat.query_batch(&probes);
    for (j, &p) in probes.iter().enumerate() {
        assert_eq!(batch[j], bat.query(p), "sharded query {p} diverges");
    }
    let bits = bat.contains_batch(&probes);
    for (j, &p) in probes.iter().enumerate() {
        assert_eq!(bits[j], bat.contains(p), "sharded contains {p} diverges");
    }
}

#[test]
fn insert_batch_with_reports_exactly_the_landed_prefix_on_error() {
    // A filter far too small for the batch: the batch must fail midway,
    // and the sink must have fired exactly once per key that actually
    // landed — the contract external shadow/reverse maps rely on.
    let mut f = AdaptiveQf::new(AqfConfig::new(6, 9).with_seed(1)).unwrap();
    let keys: Vec<u64> = (0..1000u64).collect();
    let mut landed = 0u64;
    let r = f.insert_batch_with(&keys, |_, _| landed += 1);
    assert!(r.is_err(), "1000 keys cannot fit 2^6 slots");
    assert!(landed > 0, "some prefix must have landed");
    assert_eq!(f.len(), landed, "sink calls must equal landed keys");

    let f = ShardedAqf::new(AqfConfig::new(8, 9).with_seed(1), 2).unwrap();
    let keys: Vec<u64> = (0..4000u64).collect();
    let mut landed = 0u64;
    let r = f.insert_batch_with(&keys, |i, shard, _| {
        assert_eq!(shard, f.shard_of(keys[i]), "sink shard must match route");
        landed += 1;
    });
    assert!(r.is_err(), "4000 keys cannot fit 2^8 slots");
    assert_eq!(f.len(), landed, "sharded sink calls must equal landed keys");
}

#[test]
fn sharded_insert_batch_under_contention() {
    // 4 writer threads hammer disjoint key ranges in small batches while
    // 2 reader threads run query batches over already-inserted prefixes.
    // Afterwards: exact multiset size, full membership, and per-shard
    // diagnostics that add up.
    let f = Arc::new(ShardedAqf::new(AqfConfig::new(14, 9).with_seed(13), 3).unwrap());
    const PER_THREAD: u64 = 2500;
    const WRITERS: u64 = 4;

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let f = Arc::clone(&f);
            scope.spawn(move || {
                let keys: Vec<u64> = (0..PER_THREAD).map(|i| t * 10_000_000 + i).collect();
                for chunk in keys.chunks(61) {
                    f.insert_batch(chunk).unwrap();
                }
            });
        }
        for r in 0..2u64 {
            let f = Arc::clone(&f);
            scope.spawn(move || {
                // Readers interleave with writers; answers must be
                // well-formed (no panics, no false negatives for the
                // prefix each reader re-checks after the fact).
                let probes: Vec<u64> = (0..1000u64).map(|i| r * 10_000_000 + i).collect();
                for _ in 0..50 {
                    let _ = f.contains_batch(&probes);
                }
            });
        }
    });

    assert_eq!(f.len(), WRITERS * PER_THREAD);
    for t in 0..WRITERS {
        let keys: Vec<u64> = (0..PER_THREAD).map(|i| t * 10_000_000 + i).collect();
        let bits = f.contains_batch(&keys);
        assert!(
            bits.iter().all(|&b| b),
            "thread {t} lost members under contention"
        );
    }
    let per_shard_sum: u64 = (0..f.shard_count())
        .map(|i| f.with_shard(i, |s| s.len()))
        .sum();
    assert_eq!(per_shard_sum, f.len(), "shard sums disagree with total");
}
