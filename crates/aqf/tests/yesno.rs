//! Tests for the dynamic and static yes/no-list filters (paper §4.3, §5.1).

use aqf::{AqfConfig, StaticYesNo, YesNoFilter, YesNoResponse};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn dynamic_yesno_basic_guarantees() {
    let mut f = YesNoFilter::new(10, 4).unwrap();
    let yes: Vec<u64> = (0..300).collect();
    let no: Vec<u64> = (10_000..10_300).collect();
    for &y in &yes {
        f.insert_yes(y).unwrap();
    }
    for &n in &no {
        f.insert_no(n).unwrap();
    }
    // Hard guarantees: every yes-listed key answers Yes, every no-listed
    // key answers No (never Yes), regardless of collisions.
    for &y in &yes {
        assert_eq!(f.query(y), YesNoResponse::Yes, "yes key {y}");
    }
    for &n in &no {
        assert_ne!(f.query(n), YesNoResponse::Yes, "no key {n} must not be Yes");
    }
    assert_eq!(f.yes_len(), 300);
    assert_eq!(f.no_len(), 300);
    f.filter().assert_valid();
}

#[test]
fn dynamic_yesno_moves_between_lists() {
    let mut f = YesNoFilter::new(8, 4).unwrap();
    f.insert_yes(7).unwrap();
    assert_eq!(f.query(7), YesNoResponse::Yes);
    f.insert_no(7).unwrap();
    assert_eq!(f.query(7), YesNoResponse::No);
    assert_eq!(f.yes_len(), 0);
    assert_eq!(f.no_len(), 1);
    f.insert_yes(7).unwrap();
    assert_eq!(f.query(7), YesNoResponse::Yes);
    f.filter().assert_valid();
}

#[test]
fn dynamic_yesno_remove() {
    let mut f = YesNoFilter::new(8, 4).unwrap();
    for k in 0..100u64 {
        if k % 2 == 0 {
            f.insert_yes(k).unwrap();
        } else {
            f.insert_no(k).unwrap();
        }
    }
    for k in 0..50u64 {
        assert!(f.remove(k).unwrap(), "remove {k}");
    }
    assert!(!f.remove(7).unwrap(), "double remove must fail");
    for k in 50..100u64 {
        let want = if k % 2 == 0 {
            YesNoResponse::Yes
        } else {
            YesNoResponse::No
        };
        assert_eq!(f.query(k), want, "key {k}");
    }
    f.filter().assert_valid();
}

#[test]
fn dynamic_yesno_churn_preserves_guarantees() {
    let mut f = YesNoFilter::new(11, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for i in 0..400u64 {
        if i % 2 == 0 {
            f.insert_yes(i).unwrap();
            yes.push(i);
        } else {
            f.insert_no(i).unwrap();
            no.push(i);
        }
    }
    // Churn: remove and replace random slices of both lists.
    for round in 0..5u64 {
        for _ in 0..40 {
            if !yes.is_empty() {
                let i = rng.random_range(0..yes.len());
                let k = yes.swap_remove(i);
                assert!(f.remove(k).unwrap());
            }
            if !no.is_empty() {
                let i = rng.random_range(0..no.len());
                let k = no.swap_remove(i);
                assert!(f.remove(k).unwrap());
            }
        }
        for j in 0..40u64 {
            let k = 1_000_000 * (round + 1) + j;
            if j % 2 == 0 {
                f.insert_yes(k).unwrap();
                yes.push(k);
            } else {
                f.insert_no(k).unwrap();
                no.push(k);
            }
        }
        for &y in &yes {
            assert_eq!(f.query(y), YesNoResponse::Yes, "round {round} yes {y}");
        }
        for &n in &no {
            assert_ne!(f.query(n), YesNoResponse::Yes, "round {round} no {n}");
        }
        f.filter().assert_valid();
    }
}

#[test]
fn static_yesno_no_list_never_false_positive() {
    let yes: Vec<u64> = (0..500).collect();
    let no: Vec<u64> = (1_000_000..1_002_000).collect();
    let cfg = AqfConfig::new(10, 4).with_seed(5);
    let f = StaticYesNo::build(cfg, &yes, &no).unwrap();
    for &y in &yes {
        assert!(f.query(y), "yes key {y}");
    }
    for &n in &no {
        assert!(!f.query(n), "no key {n} answered yes");
    }
    f.filter().assert_valid();
    // Adaptation must have cost something but not much (paper Thm 2:
    // A(n, m, eps) bits; here just sanity-bound it).
    assert!(f.filter().stats().extension_slots < yes.len() as u64);
}

#[test]
fn static_yesno_dynamic_no_additions() {
    let yes: Vec<u64> = (0..400).collect();
    let cfg = AqfConfig::new(10, 4).with_seed(6);
    let mut f = StaticYesNo::build(cfg, &yes, &[]).unwrap();
    // Add no-list entries after the fact (the §4.3 dynamic extension).
    let no: Vec<u64> = (2_000_000..2_001_000).collect();
    for &z in &no {
        f.add_no(z).unwrap();
    }
    for &z in &no {
        assert!(!f.query(z));
    }
    for &y in &yes {
        assert!(f.query(y));
    }
}

#[test]
fn static_yesno_rejects_contradictory_lists() {
    let cfg = AqfConfig::new(8, 4);
    let r = StaticYesNo::build(cfg, &[1, 2, 3], &[2]);
    assert!(r.is_err(), "a key in both lists must be rejected");
}
