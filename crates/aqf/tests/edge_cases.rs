//! Directed edge-case tests for the AdaptiveQf: boundary quotients, the
//! overflow region, counter digit carries, value bits, enumeration order,
//! and growth chains.

use aqf::{AdaptiveQf, AqfConfig, FilterError, QueryResult};

/// Find `n` keys whose quotient equals `q` under `cfg` (brute force).
fn keys_with_quotient(cfg: AqfConfig, q: usize, n: usize) -> Vec<u64> {
    let f = AdaptiveQf::new(cfg).unwrap();
    let mut out = Vec::new();
    let mut k = 0u64;
    while out.len() < n {
        if f.fingerprint(k).quotient() == q {
            out.push(k);
        }
        k += 1;
        assert!(k < 50_000_000, "could not find enough keys");
    }
    out
}

#[test]
fn last_quotient_spills_into_overflow_region() {
    let cfg = AqfConfig::new(6, 8).with_seed(123);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let last_q = cfg.canonical_slots() - 1;
    // Pile 20 fingerprints onto the very last canonical slot: the run must
    // spill into the overflow region without corruption.
    for k in keys_with_quotient(cfg, last_q, 20) {
        f.insert(k).unwrap();
        f.assert_valid();
    }
    assert_eq!(f.len(), 20);
    for k in keys_with_quotient(cfg, last_q, 20) {
        assert!(f.contains(k));
    }
    // And delete them all again, shrinking back through the boundary.
    for k in keys_with_quotient(cfg, last_q, 20) {
        assert!(f.delete(k).unwrap().is_some());
        f.assert_valid();
    }
    assert!(f.is_empty());
}

#[test]
fn quotient_zero_cluster_start_edge() {
    let cfg = AqfConfig::new(6, 8).with_seed(7);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    for k in keys_with_quotient(cfg, 0, 12) {
        f.insert(k).unwrap();
        f.assert_valid();
    }
    for k in keys_with_quotient(cfg, 0, 12) {
        assert!(f.contains(k));
        assert!(f.delete(k).unwrap().is_some());
        f.assert_valid();
    }
}

#[test]
fn counter_digit_carry_chain() {
    // rbits=2 → 2-bit digits → counts carry across digits quickly.
    let cfg = AqfConfig::new(6, 2).with_seed(3);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let key = 42u64;
    let copies = 300u64; // needs ceil(log_4(300)) = 5 digit slots
    for i in 0..copies {
        f.insert_counting(key).unwrap();
        if i % 16 == 0 {
            f.assert_valid();
        }
    }
    assert_eq!(f.count(key), copies);
    assert_eq!(f.distinct_fingerprints(), 1);
    // Delete all copies one at a time; counts borrow through digits.
    for i in (1..=copies).rev() {
        let out = f.delete(key).unwrap().unwrap();
        assert_eq!(out.removed_group, i == 1, "copy {i}");
        assert_eq!(f.count(key), i - 1);
        if i % 16 == 0 {
            f.assert_valid();
        }
    }
    assert!(f.is_empty());
    f.assert_valid();
}

#[test]
fn adapt_then_count_still_finds_group() {
    let cfg = AqfConfig::new(8, 3).with_seed(77);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let key = 5u64;
    for _ in 0..10 {
        f.insert_counting(key).unwrap();
    }
    // Find a false positive colliding with `key`'s group and adapt.
    let mut probe = 1_000_000u64;
    let hit = loop {
        probe += 1;
        if probe.is_multiple_of(1000) && !f.contains(probe) {
            continue;
        }
        if let QueryResult::Positive(hit) = f.query(probe) {
            if f.fingerprint(key).minirun_id() == hit.minirun_id && probe != key {
                break hit;
            }
        }
    };
    f.adapt(&hit, key, probe).unwrap();
    f.assert_valid();
    // The counter must have travelled with the extended fingerprint.
    assert_eq!(f.count(key), 10);
    assert!(!f.contains(probe));
}

#[test]
fn value_bits_roundtrip_and_survive_shifting() {
    let cfg = AqfConfig::new(6, 4).with_value_bits(2).with_seed(9);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let keys: Vec<u64> = (0..40).collect();
    for &k in &keys {
        f.insert_with_value(k, k % 4).unwrap();
        f.assert_valid();
    }
    for &k in &keys {
        let (_, v) = f.query_value(k).expect("member");
        // The matched group may be another key's (same fingerprint), but
        // with 40 keys in 2^10 fingerprint space collisions are unlikely;
        // tolerate by checking the value is *a* valid tag.
        assert!(v < 4);
    }
    // set_value rewrites in place.
    let hit = match f.query(keys[7]) {
        QueryResult::Positive(h) => h,
        _ => panic!("member must match"),
    };
    f.set_value(&hit, 3).unwrap();
    f.assert_valid();
}

#[test]
fn enumeration_is_sorted_by_minirun() {
    let cfg = AqfConfig::new(7, 5).with_seed(15);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    for k in 0..90u64 {
        f.insert(k).unwrap();
    }
    let entries = f.entries();
    assert_eq!(entries.len(), 90);
    let ids: Vec<u64> = entries
        .iter()
        .map(|e| ((e.quotient as u64) << 5) | e.remainder)
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "entries must come out in minirun order");
}

#[test]
fn grow_twice_preserves_members() {
    let cfg = AqfConfig::new(6, 8).with_seed(31);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let keys: Vec<u64> = (0..50).map(|i| i * 997).collect();
    for &k in &keys {
        f.insert(k).unwrap();
    }
    let g1 = f.grow().unwrap();
    let g2 = g1.grow().unwrap();
    g2.assert_valid();
    assert_eq!(g2.config().qbits, 8);
    assert_eq!(g2.config().rbits, 6);
    for &k in &keys {
        assert!(g2.contains(k), "lost {k} after double growth");
    }
}

#[test]
fn adapt_full_filter_is_atomic() {
    let cfg = AqfConfig {
        overflow_slots: Some(64),
        ..AqfConfig::new(5, 3).with_seed(2)
    };
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let mut keys = Vec::new();
    for k in 0..100_000u64 {
        match f.insert(k) {
            Ok(_) => keys.push(k),
            Err(FilterError::Full) => break,
            Err(e) => panic!("{e:?}"),
        }
    }
    f.assert_valid();
    let slots_before = f.slots_in_use();
    // Adapting now must either fully succeed or leave the table unchanged.
    let mut probe = 10_000_000u64;
    for _ in 0..2000 {
        probe += 1;
        if keys.contains(&probe) {
            continue;
        }
        if let QueryResult::Positive(hit) = f.query(probe) {
            if let Some(&stored) = keys
                .iter()
                .find(|&&k| f.fingerprint(k).minirun_id() == hit.minirun_id)
            {
                if stored == probe {
                    continue;
                }
                match f.adapt(&hit, stored, probe) {
                    Ok(added) => assert!(added >= 1),
                    Err(FilterError::Full) => {
                        assert_eq!(
                            f.slots_in_use(),
                            slots_before,
                            "failed adapt must not consume slots"
                        );
                    }
                    Err(FilterError::NotFound) => {} // stored key picked by id, not rank
                    Err(e) => panic!("{e:?}"),
                }
                f.assert_valid();
            }
        }
    }
}

#[test]
fn stats_track_extensions_and_counters() {
    let cfg = AqfConfig::new(8, 4).with_seed(5);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    for k in 0..100u64 {
        f.insert(k).unwrap();
    }
    for _ in 0..5 {
        f.insert_counting(0).unwrap();
    }
    assert!(f.stats().counter_slots >= 1);
    let mut probe = 7_000_000u64;
    let mut adapted = 0;
    while adapted < 5 {
        probe += 1;
        if let QueryResult::Positive(hit) = f.query(probe) {
            if let Some(stored) =
                (0..100u64).find(|&k| f.fingerprint(k).minirun_id() == hit.minirun_id)
            {
                if stored != probe && f.adapt(&hit, stored, probe).is_ok() {
                    adapted += 1;
                }
            }
        }
    }
    assert_eq!(f.stats().adaptations, 5);
    assert!(f.stats().extension_slots >= 5);
}

#[test]
fn minimal_config_one_bit_everything() {
    // Smallest legal geometry: every path squeezed through 2 slots' width.
    let cfg = AqfConfig::new(1, 1).with_seed(1);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    let mut stored = Vec::new();
    for k in 0..200u64 {
        match f.insert(k) {
            Ok(_) => stored.push(k),
            Err(FilterError::Full) => break,
            Err(e) => panic!("{e:?}"),
        }
        f.assert_valid();
    }
    assert!(!stored.is_empty());
    for &k in &stored {
        assert!(f.contains(k));
    }
}

#[test]
fn delete_shortening_reclaims_extension_slots() {
    // Build a minirun of several colliding keys, separate them all via
    // adaptation (as the yes/no filter would), then delete one with
    // shortening: siblings must shed now-unneeded extensions while staying
    // present and mutually distinguishable.
    let cfg = AqfConfig::new(6, 3).with_seed(50);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    // Keys sharing one minirun.
    let base = AdaptiveQf::new(cfg).unwrap();
    let target_id = base.fingerprint(0).minirun_id();
    let mut members = vec![0u64];
    let mut k = 1u64;
    while members.len() < 4 {
        if base.fingerprint(k).minirun_id() == target_id {
            members.push(k);
        }
        k += 1;
        assert!(k < 10_000_000);
    }
    let mut map: Vec<u64> = Vec::new(); // rank -> key for this minirun
    for &m in &members {
        let out = f.insert(m).unwrap();
        assert_eq!(out.minirun_id, target_id);
        map.insert(out.rank as usize, m);
    }
    // Separate every pair by adapting (insert-time separation, §4.3).
    for &m in &members {
        loop {
            match f.query(m) {
                QueryResult::Positive(hit) => {
                    let stored = map[hit.rank as usize];
                    if stored == m {
                        break;
                    }
                    f.adapt(&hit, stored, m).unwrap();
                }
                QueryResult::Negative => panic!("member {m} lost"),
            }
        }
        f.assert_valid();
    }
    let ext_before = f.stats().extension_slots;
    assert!(ext_before > 0, "separation must have added extensions");
    // Delete one member with shortening.
    let victim = members[1];
    let out = f.delete_shortening(victim).unwrap().expect("present");
    assert!(out.removed_group);
    map.remove(out.rank as usize);
    f.assert_valid();
    assert!(
        f.stats().extension_slots < ext_before,
        "shortening should reclaim extension slots ({} -> {})",
        ext_before,
        f.stats().extension_slots
    );
    // Survivors remain present (shortening can never cause a false
    // negative — extensions are always the member's own hash chunks).
    for &m in map.iter() {
        assert!(f.contains(m), "member {m} lost by shortening");
    }
}

#[test]
fn query_value_and_contains_agree() {
    let cfg = AqfConfig::new(9, 6).with_seed(44);
    let mut f = AdaptiveQf::new(cfg).unwrap();
    for k in (0..400u64).step_by(2) {
        f.insert(k).unwrap();
    }
    for k in 0..400u64 {
        assert_eq!(f.contains(k), f.query_value(k).is_some(), "key {k}");
        assert_eq!(f.contains(k), f.count(k) > 0, "key {k}");
    }
}
