//! Property-based tests (proptest) on AdaptiveQf invariants.

use aqf::{AdaptiveQf, AqfConfig, FilterError, QueryResult};
use proptest::prelude::*;

/// Arbitrary op streams over a small key space.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    QueryAdapt(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..key_space).prop_map(Op::Insert),
        1 => (0..key_space).prop_map(Op::Delete),
        2 => (0..key_space).prop_map(Op::QueryAdapt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold under arbitrary op sequences, and no key
    /// that created its own fingerprint group and was never deleted is
    /// ever reported negative.
    #[test]
    fn ops_never_corrupt_structure(
        ops in proptest::collection::vec(op_strategy(300), 1..400),
        seed in 0u64..1000,
    ) {
        let cfg = AqfConfig::new(6, 3).with_seed(seed);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        // A faithful reverse map: minirun id -> keys by rank, exactly as
        // the paper's auxiliary structure maintains it.
        let mut revmap: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for op in &ops {
            match *op {
                Op::Insert(k) => match f.insert(k) {
                    Ok(out) => {
                        revmap
                            .entry(out.minirun_id)
                            .or_default()
                            .insert(out.rank as usize, k);
                    }
                    Err(FilterError::Full) => {}
                    Err(e) => panic!("{e:?}"),
                },
                Op::Delete(k) => {
                    if let Some(out) = f.delete(k).unwrap() {
                        let list = revmap.get_mut(&out.minirun_id).unwrap();
                        list.remove(out.rank as usize);
                        if list.is_empty() {
                            revmap.remove(&out.minirun_id);
                        }
                    }
                }
                Op::QueryAdapt(k) => {
                    if let QueryResult::Positive(hit) = f.query(k) {
                        let stored = revmap[&hit.minirun_id][hit.rank as usize];
                        // Only adapt confirmed false positives (the stored
                        // key differs from the queried key).
                        if stored != k {
                            match f.adapt(&hit, stored, k) {
                                Ok(_) | Err(FilterError::Full) => {}
                                Err(e) => panic!("{e:?}"),
                            }
                        }
                    }
                }
            }
            f.validate().map_err(TestCaseError::fail)?;
        }
        // No false negatives: every key the reverse map still holds must be
        // reported present (its group's extensions are its own chunks).
        for (_, list) in revmap.iter() {
            for &k in list {
                prop_assert!(f.contains(k), "stored key {} reported negative", k);
            }
        }
    }

    /// Bulk build equals incremental build semantically.
    #[test]
    fn bulk_equals_incremental(
        keys in proptest::collection::vec(0u64..500, 0..200),
        seed in 0u64..100,
    ) {
        let cfg = AqfConfig::new(8, 4).with_seed(seed);
        let bulk = AdaptiveQf::bulk_build(cfg, &keys).unwrap();
        bulk.validate().map_err(TestCaseError::fail)?;
        let mut inc = AdaptiveQf::new(cfg).unwrap();
        for &k in &keys {
            inc.insert(k).unwrap();
        }
        prop_assert_eq!(bulk.len(), inc.len());
        prop_assert_eq!(bulk.distinct_fingerprints(), inc.distinct_fingerprints());
        for &k in &keys {
            prop_assert_eq!(bulk.count(k), inc.count(k));
            prop_assert!(bulk.contains(k));
        }
    }

    /// Merge keeps every member of both inputs.
    #[test]
    fn merge_is_lossless_for_members(
        ka in proptest::collection::vec(0u64..100_000, 0..80),
        kb in proptest::collection::vec(100_000u64..200_000, 0..80),
        seed in 0u64..50,
    ) {
        let cfg = AqfConfig::new(7, 8).with_seed(seed);
        let mut a = AdaptiveQf::new(cfg).unwrap();
        let mut b = AdaptiveQf::new(cfg).unwrap();
        for &k in &ka { a.insert(k).unwrap(); }
        for &k in &kb { b.insert(k).unwrap(); }
        let m = a.merge(&b).unwrap();
        m.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(m.len(), a.len() + b.len());
        for &k in ka.iter().chain(kb.iter()) {
            prop_assert!(m.contains(k), "merge lost {}", k);
        }
    }

    /// Growing preserves membership and structure.
    #[test]
    fn grow_is_lossless_for_members(
        keys in proptest::collection::vec(0u64..1_000_000, 0..100),
        seed in 0u64..50,
    ) {
        let cfg = AqfConfig::new(7, 8).with_seed(seed);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        for &k in &keys { f.insert(k).unwrap(); }
        let g = f.grow().unwrap();
        g.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(g.len(), f.len());
        for &k in &keys {
            prop_assert!(g.contains(k), "grow lost {}", k);
        }
    }

    /// Deleting everything returns the filter to empty.
    #[test]
    fn delete_all_empties_filter(
        keys in proptest::collection::vec(0u64..300, 0..150),
        seed in 0u64..50,
    ) {
        let cfg = AqfConfig::new(7, 4).with_seed(seed);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        for &k in &keys { f.insert(k).unwrap(); }
        for &k in &keys {
            prop_assert!(f.delete(k).unwrap().is_some(), "delete {} failed", k);
        }
        f.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(f.len(), 0);
        prop_assert_eq!(f.distinct_fingerprints(), 0);
        prop_assert_eq!(f.slots_in_use(), 0);
    }
}
