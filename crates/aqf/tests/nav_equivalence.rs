//! Layout-equivalence suite for the blocked, offset-indexed table (PR 5).
//!
//! The O(1) block-offset navigation (`run_range`, `new_run_pos`, cached
//! offsets) is pinned element-wise against the retained scan-based
//! reference implementation after *every* operation of random
//! insert/adapt/delete/shift histories — equivalence is proven per state,
//! not sampled per run. `AdaptiveQf::check_nav_equivalence` compares, for
//! the current table state, every occupied quotient's `run_range` against
//! `run_range_ref`, every shifted unoccupied quotient's `new_run_pos`
//! against `new_run_pos_ref`, and every cached block offset against its
//! from-scratch derivation. CI runs this suite with the workspace's
//! deterministic proptest harness (inputs are seeded from the test path),
//! so layout regressions fail fast and reproducibly.

use aqf::{AdaptiveQf, AqfConfig, FilterError, QueryResult};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    InsertCounting(u64),
    Delete(u64),
    DeleteShortening(u64),
    QueryAdapt(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space).prop_map(Op::Insert),
        1 => (0..key_space).prop_map(Op::InsertCounting),
        2 => (0..key_space).prop_map(Op::Delete),
        1 => (0..key_space).prop_map(Op::DeleteShortening),
        2 => (0..key_space).prop_map(Op::QueryAdapt),
    ]
}

/// Drive one op against the filter, maintaining a faithful reverse map so
/// adapts target genuine false positives.
fn apply(
    f: &mut AdaptiveQf,
    revmap: &mut std::collections::BTreeMap<u64, Vec<u64>>,
    op: &Op,
) -> Result<(), TestCaseError> {
    match *op {
        Op::Insert(k) | Op::InsertCounting(k) => {
            let counting = matches!(op, Op::InsertCounting(_));
            let r = if counting {
                f.insert_counting(k)
            } else {
                f.insert(k)
            };
            match r {
                Ok(out) => {
                    if !out.duplicate {
                        revmap
                            .entry(out.minirun_id)
                            .or_default()
                            .insert(out.rank as usize, k);
                    }
                }
                Err(FilterError::Full) => {}
                Err(e) => panic!("{e:?}"),
            }
        }
        Op::Delete(k) | Op::DeleteShortening(k) => {
            let shorten = matches!(op, Op::DeleteShortening(_));
            let r = if shorten {
                f.delete_shortening(k)
            } else {
                f.delete(k)
            };
            if let Some(out) = r.unwrap() {
                if out.removed_group {
                    let list = revmap.get_mut(&out.minirun_id).unwrap();
                    list.remove(out.rank as usize);
                    if list.is_empty() {
                        revmap.remove(&out.minirun_id);
                    }
                }
            }
        }
        Op::QueryAdapt(k) => {
            if let QueryResult::Positive(hit) = f.query(k) {
                let stored = revmap[&hit.minirun_id][hit.rank as usize];
                if stored != k {
                    match f.adapt(&hit, stored, k) {
                        Ok(_) | Err(FilterError::Full) => {}
                        Err(e) => panic!("{e:?}"),
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked navigation equals the scan-based reference after every
    /// mutation of a random operation history (tiny geometry: maximal
    /// collisions, long clusters, frequent counters).
    #[test]
    fn blocked_nav_equals_reference_small_geometry(
        ops in proptest::collection::vec(op_strategy(300), 1..350),
        seed in 0u64..500,
    ) {
        let cfg = AqfConfig::new(6, 3).with_seed(seed);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        let mut revmap = Default::default();
        for op in &ops {
            apply(&mut f, &mut revmap, op)?;
            f.validate().map_err(TestCaseError::fail)?;
            f.check_nav_equivalence().map_err(TestCaseError::fail)?;
        }
    }

    /// Same pinning at a multi-block geometry (clusters span block
    /// boundaries, offsets exercise the cross-block increments) with a
    /// payload-carrying slot layout.
    #[test]
    fn blocked_nav_equals_reference_multi_block(
        ops in proptest::collection::vec(op_strategy(4000), 1..300),
        seed in 0u64..200,
    ) {
        let cfg = AqfConfig::new(8, 4).with_seed(seed).with_value_bits(1);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        let mut revmap = Default::default();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut f, &mut revmap, op)?;
            // The full sweep is O(total·cluster); at this geometry check
            // every few ops plus always at the end.
            if i % 7 == 0 || i + 1 == ops.len() {
                f.validate().map_err(TestCaseError::fail)?;
                f.check_nav_equivalence().map_err(TestCaseError::fail)?;
            }
        }
    }

    /// Bulk building and merging produce tables whose rebuilt offsets are
    /// also navigation-equivalent.
    #[test]
    fn bulk_and_merge_offsets_are_equivalent(
        ka in proptest::collection::vec(0u64..100_000, 0..120),
        kb in proptest::collection::vec(100_000u64..200_000, 0..120),
        seed in 0u64..50,
    ) {
        let cfg = AqfConfig::new(7, 8).with_seed(seed);
        let bulk = AdaptiveQf::bulk_build(cfg, &ka).unwrap();
        bulk.validate().map_err(TestCaseError::fail)?;
        bulk.check_nav_equivalence().map_err(TestCaseError::fail)?;

        let mut a = AdaptiveQf::new(cfg).unwrap();
        let mut b = AdaptiveQf::new(cfg).unwrap();
        for &k in &ka { a.insert(k).unwrap(); }
        for &k in &kb { b.insert(k).unwrap(); }
        let m = a.merge(&b).unwrap();
        m.validate().map_err(TestCaseError::fail)?;
        m.check_nav_equivalence().map_err(TestCaseError::fail)?;
        let g = a.grow().unwrap();
        g.validate().map_err(TestCaseError::fail)?;
        g.check_nav_equivalence().map_err(TestCaseError::fail)?;
    }

    /// A v1 (split bit vector) snapshot frame loads into the blocked
    /// layout with identical element-wise behaviour: same queries, same
    /// hit coordinates, same stats, and structurally valid offsets.
    #[test]
    fn v1_snapshot_frame_loads_into_blocked_layout(
        keys in proptest::collection::vec(0u64..50_000, 1..400),
        probes in proptest::collection::vec(0u64..100_000, 0..200),
        seed in 0u64..100,
    ) {
        let cfg = AqfConfig::new(9, 6).with_seed(seed);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        let mut revmap: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for &k in &keys {
            match f.insert(k) {
                Ok(out) => {
                    revmap.entry(out.minirun_id).or_default().insert(out.rank as usize, k);
                }
                Err(FilterError::Full) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        // Adapt a few false positives so the frame carries extensions.
        for &p in &probes {
            if let QueryResult::Positive(hit) = f.query(p) {
                let stored = revmap[&hit.minirun_id][hit.rank as usize];
                if stored != p {
                    let _ = f.adapt(&hit, stored, p);
                }
            }
        }

        let v1 = f.to_snapshot_bytes_legacy_v1();
        // Header must really claim version 1.
        prop_assert_eq!(u16::from_le_bytes([v1[8], v1[9]]), 1);
        let g = AdaptiveQf::from_snapshot_bytes(&v1).unwrap();
        g.validate().map_err(TestCaseError::fail)?;
        g.check_nav_equivalence().map_err(TestCaseError::fail)?;
        prop_assert_eq!(g.len(), f.len());
        prop_assert_eq!(g.stats(), f.stats());
        for &k in keys.iter().chain(probes.iter()) {
            prop_assert_eq!(f.query(k), g.query(k), "key {}", k);
            prop_assert_eq!(f.count(k), g.count(k), "count {}", k);
        }

        // And the v2 frame of the loaded filter round-trips back.
        let v2 = g.to_snapshot_bytes();
        prop_assert!(u16::from_le_bytes([v2[8], v2[9]]) >= 2);
        let h = AdaptiveQf::from_snapshot_bytes(&v2).unwrap();
        for &k in keys.iter().chain(probes.iter()) {
            prop_assert_eq!(g.query(k), h.query(k));
        }
    }
}
