//! Reverse-map key encoding (paper §4.2).
//!
//! The AdaptiveQF's reverse map is keyed by `(minirun id, minirun rank)` —
//! the coordinates a query returns. Because the AQF only ever *appends* a
//! new fingerprint at the end of its minirun, a fresh insert gets a fresh
//! `(id, rank)` pair and **no existing entry ever moves**: the property
//! that makes the AQF's map traffic one write per insert (Table 2).
//!
//! We pack the pair into a `u64` key space (usable directly as a B-tree
//! key) as `id << RANK_BITS | rank`. Miniruns are tiny (expected length
//! ~1 + Poisson tail), so [`RANK_BITS`] = 8 is generous; the packing
//! demands `qbits + rbits <= 56`, which every practical configuration
//! satisfies.

/// Bits reserved for the minirun rank.
pub const RANK_BITS: u32 = 8;

/// Pack a `(minirun id, rank)` pair into a single store key.
///
/// Panics if the rank exceeds 8 bits or the id exceeds 56 bits.
#[inline]
pub fn pack_fingerprint_key(minirun_id: u64, rank: u32) -> u64 {
    assert!(
        rank < (1 << RANK_BITS),
        "minirun rank {rank} exceeds 8 bits"
    );
    assert!(
        minirun_id < (1u64 << (64 - RANK_BITS)),
        "minirun id needs qbits + rbits <= 56"
    );
    (minirun_id << RANK_BITS) | rank as u64
}

/// Unpack a packed fingerprint key.
#[inline]
pub fn unpack_fingerprint_key(packed: u64) -> (u64, u32) {
    (
        packed >> RANK_BITS,
        (packed & ((1 << RANK_BITS) - 1)) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for id in [0u64, 1, 12345, (1u64 << 56) - 1] {
            for rank in [0u32, 1, 17, 255] {
                let p = pack_fingerprint_key(id, rank);
                assert_eq!(unpack_fingerprint_key(p), (id, rank));
            }
        }
    }

    #[test]
    fn packing_is_injective_and_ordered() {
        let a = pack_fingerprint_key(5, 255);
        let b = pack_fingerprint_key(6, 0);
        assert!(a < b, "minirun order dominates rank order");
    }

    #[test]
    #[should_panic]
    fn oversized_rank_panics() {
        pack_fingerprint_key(1, 256);
    }
}
