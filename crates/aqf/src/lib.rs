//! # AdaptiveQF — a practical, strongly adaptive quotient filter
//!
//! Rust implementation of *Adaptive Quotient Filters* (Wen et al., SIGMOD
//! 2024). A filter answers approximate membership queries with a bounded
//! false-positive rate ε. A **strongly adaptive** filter additionally fixes
//! every reported false positive so the *same* query cannot fail twice, and
//! a **monotonically** adaptive filter never un-fixes one. The AdaptiveQF
//! achieves both by storing variable-length fingerprints in a counting
//! quotient filter: on a reported false positive, the colliding
//! fingerprint is extended in place by `r`-bit chunks of its key's hash
//! string until the collision disappears.
//!
//! ## Core types
//!
//! - [`AdaptiveQf`] — the filter: [`AdaptiveQf::insert`],
//!   [`AdaptiveQf::query`], [`AdaptiveQf::adapt`], [`AdaptiveQf::delete`],
//!   counting, merging, bulk build, enumeration.
//! - [`AqfConfig`] — geometry: `2^qbits` slots, `rbits`-bit remainders
//!   (ε ≈ 2^-rbits), optional payload bits for yes/no lists.
//! - [`Hit`] — coordinates of a positive query: `(minirun_id, rank)`,
//!   the reverse-map key the paper's design revolves around.
//! - [`YesNoFilter`] — the dynamic yes/no-list filter of paper §4.3.
//! - [`ShardedAqf`] — thread-parallel partitioned variant (paper §6.3,
//!   Fig. 4).
//!
//! ## Example
//!
//! ```
//! use aqf::{AdaptiveQf, AqfConfig, QueryResult};
//!
//! let mut f = AdaptiveQf::new(AqfConfig::new(8, 9)).unwrap();
//! f.insert(1).unwrap();
//! assert!(f.contains(1));
//!
//! // The application learns "key 2" was a false positive (its database
//! // lookup missed) and tells the filter, which adapts:
//! if let QueryResult::Positive(hit) = f.query(2) {
//!     f.adapt(&hit, 1, 2).unwrap();
//!     assert!(!f.contains(2)); // fixed, forever
//!     assert!(f.contains(1));  // never loses a true positive
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
pub mod config;
mod filter;
pub mod fingerprint;
mod merge;
pub mod probe;
mod rebuild;
pub mod revmap;
pub mod shadow;
mod sharded;
pub mod snapshot;
mod table;
#[doc(hidden)]
pub mod testhooks;
mod yesno;

pub use config::{AqfConfig, FilterError};
pub use filter::{
    AdaptiveQf, AqfStats, BatchScratch, DeleteOutcome, Entry, Hit, InsertOutcome, QueryResult,
};
pub use probe::{AqfReader, Torn};

pub use aqf_bits::snapshot::SnapError;
pub use shadow::ShadowMap;
pub use sharded::{ShardedAqf, OPTIMISTIC_RETRIES};
pub use yesno::{StaticYesNo, YesNoFilter, YesNoResponse};
