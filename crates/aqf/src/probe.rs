//! Optimistic, panic-free query probes over a shared table view.
//!
//! An [`AqfReader`] aliases a filter's block arena (via
//! [`aqf_bits::BlockedTable::share`]) and re-implements the query path of
//! [`AdaptiveQf::query`] under one extra constraint: it may observe a
//! **torn** state — a writer's half-finished shift or cluster rebuild —
//! so it must never panic, never index out of bounds, and never loop
//! unboundedly, no matter what combination of whole words it reads.
//!
//! The probe is *detection-best-effort*: structurally impossible states
//! (an offset past the table, a runend select that comes back empty, a
//! group walk overrunning its run) surface as [`Torn`], but a torn state
//! can also look plausible and produce a wrong answer. Callers therefore
//! MUST wrap every probe in seqlock validation
//! ([`aqf_bits::SeqLock::read_begin`] / `read_validate`) and discard the
//! result — `Ok` and `Err` alike — when validation fails. `ShardedAqf`
//! does exactly this; [`Torn`] only short-circuits the doomed attempt
//! early.

use aqf_bits::word::bitmask;

use crate::config::AqfConfig;
use crate::filter::{AdaptiveQf, Hit, QueryResult};
use crate::fingerprint::Fingerprint;
use crate::table::{GroupExtent, Table, EXT, OCC, RUN};

/// The probe observed a structurally impossible state: a writer is (or
/// was) mid-mutation. Retry after the writer's seqlock goes even, or
/// fall back to the locked path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torn;

/// An unsynchronized optimistic reader over a filter's table.
///
/// Obtained from [`AdaptiveQf::reader`]; shares the arena, copies the
/// geometry. Geometry (qbits/rbits/value bits, slot counts) is immutable
/// after construction, so only slot *contents* can tear.
#[derive(Debug)]
pub struct AqfReader {
    t: Table,
    cfg: AqfConfig,
}

impl AdaptiveQf {
    /// An optimistic reader aliasing this filter's table. Every probe
    /// through it must be validated against a version counter the
    /// filter's writers bump (see module docs) — an unvalidated answer
    /// may be silently wrong if a writer ran concurrently.
    pub fn reader(&self) -> AqfReader {
        AqfReader {
            t: self.t.share(),
            cfg: *self.config(),
        }
    }
}

impl AqfReader {
    /// True if this reader still aliases `f`'s current arena under the
    /// same geometry — false once `f` grew (or otherwise swapped its
    /// table), meaning a fresh reader must be published.
    pub(crate) fn tracks(&self, f: &AdaptiveQf) -> bool {
        self.cfg == *f.config() && self.t.b.shares_arena(&f.t.b)
    }

    /// The fingerprint this reader's filter derives for `key`.
    #[inline]
    pub fn fingerprint(&self, key: u64) -> Fingerprint {
        Fingerprint::new(key, self.cfg.seed, self.cfg.qbits, self.cfg.rbits)
    }

    /// Optimistic membership query for `key`.
    #[inline]
    pub fn query(&self, key: u64) -> Result<QueryResult, Torn> {
        self.query_fp(&self.fingerprint(key))
    }

    /// Optimistic membership query for a precomputed fingerprint.
    pub fn query_fp(&self, fp: &Fingerprint) -> Result<QueryResult, Torn> {
        match self.probe_first_match(fp)? {
            Some(hit) => Ok(QueryResult::Positive(hit)),
            None => Ok(QueryResult::Negative),
        }
    }

    /// Torn-tolerant [`Table::run_range`]: every quantity read from the
    /// arena is bounds-checked before use, and structural contradictions
    /// return [`Torn`] instead of panicking.
    fn run_range_opt(&self, q: usize) -> Result<(usize, usize), Torn> {
        let t = &self.t;
        let blk = q >> 6;
        let off = t.b.offset(blk);
        if off > t.total {
            return Err(Torn); // torn offset word
        }
        let from = (blk << 6) + off;
        let d = (t.b.lane_word(OCC, blk) & bitmask((q & 63) as u32)).count_ones() as usize;
        let (rs, re) = if d == 0 {
            let re = t.select_masked_runend_from(from, 0).ok_or(Torn)?;
            (from.max(q), re)
        } else {
            let (pe, re) = t.select_masked_runend_pair(from, d - 1).ok_or(Torn)?;
            (t.group_end(pe).max(q), re)
        };
        if rs > re || re >= t.total {
            return Err(Torn);
        }
        Ok((rs, re))
    }

    /// [`Table::group_extent`] without the remainder-slot debug
    /// assertion (a torn `start` may carry an extension bit). Both
    /// trailing-ones counts are bounded by the table length.
    fn group_extent_opt(&self, start: usize) -> GroupExtent {
        let t = &self.t;
        let ext_end = start
            + 1
            + t.b
                .ones_run_len(start + 1, |b, w| b.lane_word(EXT, w) & !b.lane_word(RUN, w));
        let end = ext_end
            + t.b
                .ones_run_len(ext_end, |b, w| b.lane_word(EXT, w) & b.lane_word(RUN, w));
        GroupExtent {
            start,
            ext_end,
            end,
        }
    }

    /// True if every stored extension chunk of the group equals the
    /// corresponding chunk of `fp`'s hash string (bounds-checked).
    fn group_matches_fp_opt(&self, ext: &GroupExtent, fp: &Fingerprint) -> bool {
        for (i, s) in (ext.start + 1..ext.ext_end.min(self.t.total)).enumerate() {
            if self.t.remainder_at(s) != fp.chunk(i as u64) {
                return false;
            }
        }
        true
    }

    /// Torn-tolerant [`AdaptiveQf::find_first_match`], returning only the
    /// hit (the extent is meaningless to a reader that cannot hold it
    /// stable).
    fn probe_first_match(&self, fp: &Fingerprint) -> Result<Option<Hit>, Torn> {
        let t = &self.t;
        let hq = fp.quotient();
        if hq >= t.total {
            return Err(Torn); // geometry mismatch; cannot happen in-process
        }
        if !t.occupied(hq) {
            return Ok(None);
        }
        let hr = fp.remainder();
        let (rs, re) = self.run_range_opt(hq)?;
        if rs == re {
            // Single-group run: one slot and one extension bit decide.
            if t.remainder_at(rs) != hr {
                return Ok(None);
            }
            if rs + 1 >= t.total || !t.is_extension(rs + 1) {
                return Ok(Some(Hit {
                    minirun_id: fp.minirun_id(),
                    rank: 0,
                    ext_chunks: 0,
                }));
            }
        } else if t.ext_count_range(rs + 1, (re + 2).min(t.total)) == 0 {
            // Extras-free run: word-parallel remainder compare.
            return Ok(t.find_remainder_eq(rs, re, hr).map(|_| Hit {
                minirun_id: fp.minirun_id(),
                rank: 0,
                ext_chunks: 0,
            }));
        }
        // Group walk. A consistent run of extent [rs, re] holds at most
        // re - rs + 1 groups; a walk still going past that bound is
        // chasing torn extension bits.
        let mut g = rs;
        let mut rank: u32 = 0;
        for _ in 0..=(re - rs) {
            if g >= t.total {
                return Err(Torn);
            }
            let ext = self.group_extent_opt(g);
            let grem = t.remainder_at(g);
            if grem == hr {
                if self.group_matches_fp_opt(&ext, fp) {
                    return Ok(Some(Hit {
                        minirun_id: fp.minirun_id(),
                        rank,
                        ext_chunks: ext.ext_len() as u32,
                    }));
                }
                rank += 1;
            } else if grem > hr {
                return Ok(None);
            }
            if g == re {
                return Ok(None);
            }
            g = ext.end;
        }
        Err(Torn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AqfConfig;

    #[test]
    fn quiescent_probe_agrees_with_query() {
        let cfg = AqfConfig::new(8, 7).with_seed(41);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        for k in 0..180u64 {
            f.insert(k * 7).unwrap();
        }
        // Some adaptation traffic so extensions exist.
        for p in 0..400u64 {
            let _ = f.query(1_000_000 + p);
        }
        let r = f.reader();
        for k in 0..3000u64 {
            assert_eq!(
                r.query(k).expect("quiescent probe can't tear"),
                f.query(k),
                "key {k}"
            );
        }
    }

    #[test]
    fn reader_sees_later_writes() {
        let cfg = AqfConfig::new(6, 6).with_seed(3);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        let r = f.reader();
        assert_eq!(r.query(99).unwrap(), QueryResult::Negative);
        f.insert(99).unwrap();
        assert!(r.query(99).unwrap().is_positive());
    }
}
