//! An in-memory exact reverse map for microbenchmarks and standalone use.
//!
//! The AdaptiveQF's adaptation protocol needs the *original key* stored at
//! `(minirun id, rank)` — in a deployed system that lookup is the backing
//! database (see `aqf-storage`). For filter-only benchmarks the paper
//! substitutes a cheap in-memory map ("we pick valid arbitrary keys that
//! will suffice in order to simulate having the reverse map present");
//! [`ShadowMap`] is that substitute.
//!
//! Inserts append to a flat log (a couple of ns, so timed insert loops
//! aren't polluted by map maintenance, matching the paper's protocol);
//! the first lookup folds the log into the hash map.

use std::collections::HashMap;

use crate::filter::{DeleteOutcome, InsertOutcome};

/// Exact reverse map: minirun id -> keys in rank order, mirroring AQF
/// insert outcomes.
#[derive(Clone, Debug, Default)]
pub struct ShadowMap {
    pub(crate) log: Vec<(u64, u32, u64)>,
    pub(crate) map: HashMap<u64, Vec<u64>>,
}

impl ShadowMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an insert outcome (cheap append).
    #[inline]
    pub fn record(&mut self, out: &InsertOutcome, key: u64) {
        self.log.push((out.minirun_id, out.rank, key));
    }

    /// Fold pending log entries into the lookup structure.
    pub fn settle(&mut self) {
        for (id, rank, key) in self.log.drain(..) {
            let list = self.map.entry(id).or_default();
            list.insert((rank as usize).min(list.len()), key);
        }
    }

    /// Key stored at (id, rank). Call [`Self::settle`] after inserts.
    pub fn get(&self, minirun_id: u64, rank: u32) -> Option<u64> {
        debug_assert!(self.log.is_empty(), "call settle() after inserts");
        self.map.get(&minirun_id)?.get(rank as usize).copied()
    }

    /// Remove the entry a successful delete vacated, keeping later ranks of
    /// the same minirun aligned with the filter (they shift down by one,
    /// exactly as the filter's ranks do when a whole group is removed).
    pub fn remove(&mut self, out: &DeleteOutcome) {
        if !out.removed_group {
            return; // only a counter decrement: the entry is still live
        }
        self.settle();
        if let Some(list) = self.map.get_mut(&out.minirun_id) {
            if (out.rank as usize) < list.len() {
                list.remove(out.rank as usize);
            }
            if list.is_empty() {
                self.map.remove(&out.minirun_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AqfConfig;
    use crate::filter::AdaptiveQf;

    #[test]
    fn mirrors_insert_and_delete_ranks() {
        let mut f = AdaptiveQf::new(AqfConfig::new(10, 9).with_seed(3)).unwrap();
        let mut m = ShadowMap::new();
        let keys: Vec<u64> = (0..800).map(|i| i * 37 + 5).collect();
        for &k in &keys {
            let out = f.insert(k).unwrap();
            m.record(&out, k);
        }
        m.settle();
        // Every key resolves through its own query coordinates.
        for &k in &keys {
            let crate::QueryResult::Positive(hit) = f.query(k) else {
                panic!("member {k} lost");
            };
            // The first match for k's fingerprint may be an earlier
            // colliding key; the map must agree with the filter either way.
            let stored = m.get(hit.minirun_id, hit.rank).expect("map entry");
            assert_eq!(f.fingerprint(stored).minirun_id(), hit.minirun_id);
        }
        // Delete half the keys and re-verify alignment.
        for &k in keys.iter().step_by(2) {
            let out = f.delete(k).unwrap().expect("member deletes");
            m.remove(&out);
        }
        for &k in keys.iter().skip(1).step_by(2) {
            let crate::QueryResult::Positive(hit) = f.query(k) else {
                panic!("surviving member {k} lost");
            };
            let stored = m.get(hit.minirun_id, hit.rank).expect("map entry");
            assert_eq!(f.fingerprint(stored).minirun_id(), hit.minirun_id);
        }
    }
}
