//! An in-memory exact reverse map for microbenchmarks and standalone use.
//!
//! The AdaptiveQF's adaptation protocol needs the *original key* stored at
//! `(minirun id, rank)` — in a deployed system that lookup is the backing
//! database (see `aqf-storage`). For filter-only benchmarks the paper
//! substitutes a cheap in-memory map ("we pick valid arbitrary keys that
//! will suffice in order to simulate having the reverse map present");
//! [`ShadowMap`] is that substitute.
//!
//! Inserts append the **key alone** to a flat log — one 8-byte store with
//! no data dependency on the insert outcome, so timed insert loops aren't
//! polluted by map maintenance (matching the paper's protocol; the earlier
//! 24-byte `(id, rank, key)` entry measurably dragged insert throughput).
//! The first lookup folds the log into the hash map, recomputing each
//! key's minirun id from its hash string. Ranks need no storage at all:
//! within a minirun, groups appear in insertion order, so folding the log
//! in order appends each key at exactly its filter-assigned rank. Both
//! reconstructions survive capacity doubling — the minirun id is the
//! numeric value of the hash prefix of length `qbits + rbits`, which grow
//! re-splits but never changes.

use std::collections::HashMap;

use crate::filter::DeleteOutcome;

/// Exact reverse map: minirun id -> keys in rank order, mirroring AQF
/// insert outcomes.
#[derive(Clone, Debug, Default)]
pub struct ShadowMap {
    pub(crate) log: Vec<u64>,
    pub(crate) map: HashMap<u64, Vec<u64>>,
}

impl ShadowMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an inserted key (one 8-byte append; the hot-path cost).
    #[inline]
    pub fn record(&mut self, key: u64) {
        self.log.push(key);
    }

    /// Fold pending log entries into the lookup structure. `id_of` maps a
    /// key to its minirun id (e.g. `|k| f.fingerprint(k).minirun_id()`);
    /// it must be the geometry the keys were inserted under — any later
    /// geometry of the same filter works, since grow preserves ids.
    pub fn settle(&mut self, mut id_of: impl FnMut(u64) -> u64) {
        for key in self.log.drain(..) {
            // In-order append = rank order: the filter assigns each new
            // group of a minirun the next rank, exactly like this push.
            self.map.entry(id_of(key)).or_default().push(key);
        }
    }

    /// True if inserts are pending; [`Self::settle`] before lookups.
    pub fn needs_settle(&self) -> bool {
        !self.log.is_empty()
    }

    /// Key stored at (id, rank). Call [`Self::settle`] after inserts.
    pub fn get(&self, minirun_id: u64, rank: u32) -> Option<u64> {
        debug_assert!(self.log.is_empty(), "call settle() after inserts");
        self.map.get(&minirun_id)?.get(rank as usize).copied()
    }

    /// Remove the entry a successful delete vacated, keeping later ranks of
    /// the same minirun aligned with the filter (they shift down by one,
    /// exactly as the filter's ranks do when a whole group is removed).
    /// The map must be settled first.
    pub fn remove(&mut self, out: &DeleteOutcome) {
        debug_assert!(self.log.is_empty(), "call settle() before deletes");
        if !out.removed_group {
            return; // only a counter decrement: the entry is still live
        }
        if let Some(list) = self.map.get_mut(&out.minirun_id) {
            if (out.rank as usize) < list.len() {
                list.remove(out.rank as usize);
            }
            if list.is_empty() {
                self.map.remove(&out.minirun_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AqfConfig;
    use crate::filter::AdaptiveQf;

    #[test]
    fn mirrors_insert_and_delete_ranks() {
        let mut f = AdaptiveQf::new(AqfConfig::new(10, 9).with_seed(3)).unwrap();
        let mut m = ShadowMap::new();
        let keys: Vec<u64> = (0..800).map(|i| i * 37 + 5).collect();
        for &k in &keys {
            f.insert(k).unwrap();
            m.record(k);
        }
        m.settle(|k| f.fingerprint(k).minirun_id());
        // Every key resolves through its own query coordinates.
        for &k in &keys {
            let crate::QueryResult::Positive(hit) = f.query(k) else {
                panic!("member {k} lost");
            };
            // The first match for k's fingerprint may be an earlier
            // colliding key; the map must agree with the filter either way.
            let stored = m.get(hit.minirun_id, hit.rank).expect("map entry");
            assert_eq!(f.fingerprint(stored).minirun_id(), hit.minirun_id);
        }
        // Delete half the keys and re-verify alignment.
        for &k in keys.iter().step_by(2) {
            let out = f.delete(k).unwrap().expect("member deletes");
            m.remove(&out);
        }
        for &k in keys.iter().skip(1).step_by(2) {
            let crate::QueryResult::Positive(hit) = f.query(k) else {
                panic!("surviving member {k} lost");
            };
            let stored = m.get(hit.minirun_id, hit.rank).expect("map entry");
            assert_eq!(f.fingerprint(stored).minirun_id(), hit.minirun_id);
        }
    }

    #[test]
    fn ranks_survive_grow() {
        // Minirun ids are the (qbits + rbits)-bit hash prefix, so a map
        // settled *after* capacity doubling must still agree with hits.
        let cfg = AqfConfig::new(8, 9).with_seed(5);
        let mut f = AdaptiveQf::new(cfg).unwrap();
        f.set_auto_grow(Some(0.9)).unwrap();
        let mut m = ShadowMap::new();
        let keys: Vec<u64> = (0..400).map(|i| i * 911 + 3).collect();
        for &k in &keys {
            f.insert(k).unwrap();
            m.record(k);
        }
        assert!(f.stats().grows > 0, "workload must trigger a grow");
        m.settle(|k| f.fingerprint(k).minirun_id());
        for &k in &keys {
            let crate::QueryResult::Positive(hit) = f.query(k) else {
                panic!("member {k} lost across grow");
            };
            let stored = m.get(hit.minirun_id, hit.rank).expect("map entry");
            assert_eq!(f.fingerprint(stored).minirun_id(), hit.minirun_id);
        }
    }
}
