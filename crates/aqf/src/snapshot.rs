//! Snapshot persistence for the AQF family (crate-level save/load).
//!
//! Adaptation state — the extension chunks accumulated against reported
//! false positives (paper §4.2) — is exactly the state a restart must not
//! lose, so every filter here serializes its *entire* table: metadata bit
//! vectors, packed slots, cached statistics, and (where bundled) the
//! in-memory reverse map. The framing is `aqf_bits::snapshot`'s versioned
//! sections + content checksum; see that module for the byte layout.
//!
//! Loading re-validates everything it can cheaply afford: the frame
//! checksum first (any flipped byte is caught before decoding), then
//! geometry/length consistency per section, then the full structural
//! invariant sweep of [`AdaptiveQf::validate`] — so a snapshot that
//! decodes but describes an impossible table is rejected with a typed
//! [`SnapError`] instead of corrupting later operations.
//!
//! [`ShardedAqf`] snapshots store one independently-framed blob per shard
//! and decode them **in parallel** across `std::thread::available_parallelism`
//! workers — load time for the big per-shard tables scales with core
//! count, which is what makes load-at-serve-time beat rebuild-from-keys
//! (see the `fig11_persist` benchmark).

use std::collections::HashMap;
use std::path::Path;

use aqf_bits::snapshot::{read_file, write_atomic, SnapError, SnapshotReader, SnapshotWriter};
use aqf_bits::BlockedTable;

use crate::config::AqfConfig;
use crate::filter::{AdaptiveQf, AqfStats};
use crate::shadow::ShadowMap;
use crate::sharded::ShardedAqf;
use crate::table::{Table, LANES};
use crate::yesno::YesNoFilter;

/// Snapshot kind string for a standalone [`AdaptiveQf`] frame.
pub const AQF_SNAPSHOT_KIND: &str = "aqf-table";
/// Snapshot kind string for a [`ShardedAqf`] frame.
pub const SHARDED_SNAPSHOT_KIND: &str = "sharded-aqf-table";
/// Snapshot kind string for a [`YesNoFilter`] frame.
pub const YESNO_SNAPSHOT_KIND: &str = "yesno-filter";

impl AdaptiveQf {
    /// Write this filter's body (config, stats, table sections) into an
    /// open snapshot. Composable: wrappers embed the body inside their own
    /// frames; use [`AdaptiveQf::to_snapshot_bytes`] for a standalone one.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        self.write_config_and_stats(w, true);
        // v3: the table section leads with a backing tag — 0 embeds the
        // blocked arena inline (offsets, metadata lanes, and packed slots
        // in one contiguous run of words), 1 references an arena file
        // living beside the snapshot (O(1) open, no decode).
        w.section(*b"QTB3");
        match &self.backing_file {
            Some(name) if self.t.b.is_file_backed() => {
                w.u8(1);
                w.blocked_external(&self.t.b, name);
            }
            _ => {
                w.u8(0);
                w.blocked(&self.t.b);
            }
        }
    }

    fn write_config_and_stats(&self, w: &mut SnapshotWriter, with_grows: bool) {
        w.section(*b"QCFG");
        w.u32(self.cfg.qbits);
        w.u32(self.cfg.rbits);
        w.u32(self.cfg.value_bits);
        w.u64(self.cfg.seed);
        w.u64(self.t.canonical as u64);
        w.u64(self.t.total as u64);
        w.section(*b"QSTA");
        w.u64(self.groups);
        w.u64(self.total_count);
        w.u64(self.slots_used);
        w.u64(self.stats.adaptations);
        w.u64(self.stats.extension_slots);
        w.u64(self.stats.counter_slots);
        if with_grows {
            // v3 appended the grow-event counter to the stats section.
            w.u64(self.stats.grows);
        }
    }

    /// Write this filter's body in the legacy v2 layout (inline blocked
    /// arena, no grow counter). For compatibility tooling and the v2-frame
    /// regression tests; pair with
    /// [`SnapshotWriter::new_versioned`]`(kind, 2)`.
    #[doc(hidden)]
    pub fn write_snapshot_legacy_v2(&self, w: &mut SnapshotWriter) {
        self.write_config_and_stats(w, false);
        w.section(*b"QTB2");
        w.blocked(&self.t.b);
    }

    /// Write this filter's body in the legacy v1 layout (split bit
    /// vectors, no offsets). For compatibility tooling and the v1-frame
    /// regression tests; pair with
    /// [`SnapshotWriter::new_versioned`]`(kind, 1)`.
    #[doc(hidden)]
    pub fn write_snapshot_legacy_v1(&self, w: &mut SnapshotWriter) {
        self.write_config_and_stats(w, false);
        w.section(*b"QTAB");
        w.bitvec(&self.t.b.lane_to_bitvec(crate::table::OCC));
        w.bitvec(&self.t.b.lane_to_bitvec(crate::table::RUN));
        w.bitvec(&self.t.b.lane_to_bitvec(crate::table::EXT));
        w.bitvec(&self.t.b.lane_to_bitvec(crate::table::USED));
        w.packed(&self.t.b.slots_to_packed());
    }

    /// Read a filter body written by [`AdaptiveQf::write_snapshot`],
    /// re-validating geometry, section lengths, and the full structural
    /// invariants of the decoded table.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"QCFG")?;
        let qbits = r.u32()?;
        let rbits = r.u32()?;
        let value_bits = r.u32()?;
        let seed = r.u64()?;
        let canonical = r.len_u64()?;
        let total = r.len_u64()?;
        if total <= canonical {
            return Err(SnapError::corrupt(format!(
                "total slots {total} must exceed canonical slots {canonical}"
            )));
        }
        let cfg = AqfConfig {
            qbits,
            rbits,
            value_bits,
            seed,
            overflow_slots: Some(total - canonical),
        };
        cfg.validate().map_err(SnapError::corrupt)?;
        if canonical != cfg.canonical_slots() {
            return Err(SnapError::corrupt(format!(
                "canonical slots {canonical} disagree with qbits {qbits}"
            )));
        }
        r.section(*b"QSTA")?;
        let groups = r.u64()?;
        let total_count = r.u64()?;
        let slots_used = r.u64()?;
        let stats = AqfStats {
            adaptations: r.u64()?,
            extension_slots: r.u64()?,
            counter_slots: r.u64()?,
            // v3 appended the grow counter; older frames predate growing.
            grows: if r.version() >= 3 { r.u64()? } else { 0 },
        };
        let mut backing_file = None;
        let t = if r.version() >= 2 {
            // Native blocked arena — inline (v2, or v3 backing tag 0) or
            // an external arena file (v3 backing tag 1). Inline offsets
            // are *not* trusted: `validate()` below re-derives every one.
            let b = if r.version() >= 3 {
                r.section(*b"QTB3")?;
                match r.u8()? {
                    0 => r.blocked()?,
                    1 => {
                        let (b, name) = r.blocked_external()?;
                        backing_file = Some(name);
                        b
                    }
                    tag => {
                        return Err(SnapError::corrupt(format!(
                            "unknown table backing tag {tag}"
                        )));
                    }
                }
            } else {
                r.section(*b"QTB2")?;
                r.blocked()?
            };
            if b.len() != total || b.lanes() != LANES || b.width() != rbits + value_bits {
                return Err(SnapError::corrupt(format!(
                    "blocked table {}x{}-bit ({} lanes) disagrees with geometry \
                     {total}x{}-bit ({LANES} lanes)",
                    b.len(),
                    b.width(),
                    b.lanes(),
                    rbits + value_bits
                )));
            }
            Table {
                b,
                total,
                canonical,
                rbits,
                value_bits,
            }
        } else {
            // v1: split bit vectors + packed slots; interleave into the
            // blocked layout and rebuild the offsets the old format never
            // stored.
            r.section(*b"QTAB")?;
            let occupieds = r.bitvec()?;
            let runends = r.bitvec()?;
            let extensions = r.bitvec()?;
            let used = r.bitvec()?;
            let slots = r.packed()?;
            for (name, bv) in [
                ("occupieds", &occupieds),
                ("runends", &runends),
                ("extensions", &extensions),
                ("used", &used),
            ] {
                if bv.len() != total {
                    return Err(SnapError::corrupt(format!(
                        "{name} bit vector holds {} bits, table has {total} slots",
                        bv.len()
                    )));
                }
            }
            if slots.len() != total || slots.width() != rbits + value_bits {
                return Err(SnapError::corrupt(format!(
                    "slot vector {}x{} bits, table wants {total}x{} bits",
                    slots.len(),
                    slots.width(),
                    rbits + value_bits
                )));
            }
            let b = BlockedTable::from_parts(
                &[&occupieds, &runends, &extensions, &used],
                &slots,
                total,
            )
            .expect("lengths checked above");
            let mut t = Table {
                b,
                total,
                canonical,
                rbits,
                value_bits,
            };
            t.rebuild_offsets();
            t
        };
        let f = Self {
            cfg,
            t,
            groups,
            total_count,
            slots_used,
            stats,
            auto_grow: None,
            backing_file,
        };
        if f.t.b.is_file_backed() {
            // File-backed open is O(1) by design: the arena words are not
            // decoded (or checksummed), so the full structural sweep would
            // defeat the point. Cross-check the one cheap summary
            // invariant — slot accounting — against a popcount of the
            // used lane; everything else is re-derived lazily or was
            // validated when the arena was written.
            let used = f.t.count_used() as u64;
            if used != slots_used {
                return Err(SnapError::corrupt(format!(
                    "arena file holds {used} used slots, snapshot recorded {slots_used}"
                )));
            }
        } else {
            // Full structural sweep: a snapshot that decodes but describes
            // an impossible table (phantom runends, stat drift,
            // out-of-order remainders, wrong block offsets) must be
            // rejected here, not corrupt operations later.
            f.validate().map_err(SnapError::corrupt)?;
        }
        Ok(f)
    }

    /// Serialize to a standalone frame in the legacy v1 format
    /// (compatibility tooling / tests).
    #[doc(hidden)]
    pub fn to_snapshot_bytes_legacy_v1(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new_versioned(AQF_SNAPSHOT_KIND, 1);
        self.write_snapshot_legacy_v1(&mut w);
        w.finish()
    }

    /// Serialize to a standalone frame in the legacy v2 format
    /// (compatibility tooling / tests).
    #[doc(hidden)]
    pub fn to_snapshot_bytes_legacy_v2(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new_versioned(AQF_SNAPSHOT_KIND, 2);
        self.write_snapshot_legacy_v2(&mut w);
        w.finish()
    }

    /// Serialize to a standalone snapshot frame.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(AQF_SNAPSHOT_KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Decode a standalone snapshot frame. Frames referencing an external
    /// arena file need [`AdaptiveQf::from_snapshot_bytes_in`] (or
    /// [`AdaptiveQf::load`]) so the reference can be resolved.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        Self::from_snapshot_bytes_in(bytes, None)
    }

    /// Decode a standalone snapshot frame, resolving external arena
    /// references against `base_dir`.
    pub fn from_snapshot_bytes_in(
        bytes: &[u8],
        base_dir: Option<&Path>,
    ) -> Result<Self, SnapError> {
        let mut r = SnapshotReader::new_in(bytes, base_dir)?;
        r.expect_kind(AQF_SNAPSHOT_KIND)?;
        Self::read_snapshot(&mut r)
    }

    /// Save atomically to `path` (write-temp-then-rename). A file-backed
    /// filter syncs its arena first and writes only a reference frame —
    /// the arena file must live in `path`'s directory (see
    /// [`AdaptiveQf::set_file_backing`]).
    pub fn save(&self, path: &Path) -> Result<(), SnapError> {
        if self.is_file_backed() {
            self.sync()?;
        }
        Ok(write_atomic(path, &self.to_snapshot_bytes())?)
    }

    /// Load a filter saved by [`AdaptiveQf::save`], resolving external
    /// arena references against `path`'s directory.
    pub fn load(path: &Path) -> Result<Self, SnapError> {
        Self::from_snapshot_bytes_in(&read_file(path)?, path.parent())
    }
}

impl ShardedAqf {
    /// Write this filter's body: sharding config, then one
    /// independently-framed blob per shard (decoded in parallel on load).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.section(*b"SCFG");
        w.u32(self.shard_bits);
        w.u64(self.seed);
        for shard in &self.shards {
            w.section(*b"SHRD");
            w.bytes(&shard.qf.lock().to_snapshot_bytes());
        }
    }

    /// Read a body written by [`ShardedAqf::write_snapshot`]; shard blobs
    /// are decoded across all available cores.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"SCFG")?;
        let shard_bits = r.u32()?;
        if shard_bits >= 32 {
            return Err(SnapError::corrupt(format!(
                "shard_bits {shard_bits} out of range"
            )));
        }
        let seed = r.u64()?;
        let n = 1usize << shard_bits;
        // Capacity is a hint only: a tiny crafted frame must not be able
        // to force a huge up-front allocation before the first missing
        // SHRD section returns its typed error.
        let mut blobs: Vec<&[u8]> = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            r.section(*b"SHRD")?;
            blobs.push(r.bytes()?);
        }
        let shards = decode_shards_parallel(&blobs)?;
        // Shards grow independently, so their qbits/rbits may legitimately
        // diverge; only the routing seed and the value width must agree.
        // The recorded base config is the least-grown shard's (largest
        // rbits), matching what construction would have produced.
        let shard_cfg = *shards
            .iter()
            .max_by_key(|s| s.config().rbits)
            .expect("shard count >= 1")
            .config();
        for (i, s) in shards.iter().enumerate() {
            let c = s.config();
            if c.seed != seed || c.value_bits != shard_cfg.value_bits {
                return Err(SnapError::corrupt(format!(
                    "shard {i} config {c:?} disagrees with routing seed {seed} / \
                     value width {}",
                    shard_cfg.value_bits
                )));
            }
        }
        Ok(Self {
            shards: shards.into_iter().map(crate::sharded::Shard::new).collect(),
            shard_bits,
            shard_cfg,
            seed,
        })
    }

    /// Serialize to a standalone snapshot frame.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SHARDED_SNAPSHOT_KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Decode a standalone snapshot frame (parallel shard decode).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapshotReader::new(bytes)?;
        r.expect_kind(SHARDED_SNAPSHOT_KIND)?;
        Self::read_snapshot(&mut r)
    }

    /// Save atomically to `path` (write-temp-then-rename).
    pub fn save(&self, path: &Path) -> Result<(), SnapError> {
        Ok(write_atomic(path, &self.to_snapshot_bytes())?)
    }

    /// Load a filter saved by [`ShardedAqf::save`].
    pub fn load(path: &Path) -> Result<Self, SnapError> {
        Self::from_snapshot_bytes(&read_file(path)?)
    }
}

/// Decode shard blobs across up to `available_parallelism` scoped threads,
/// preserving shard order. Returns the first error encountered (by shard
/// index) so failures are deterministic.
fn decode_shards_parallel(blobs: &[&[u8]]) -> Result<Vec<AdaptiveQf>, SnapError> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(blobs.len().max(1));
    if workers <= 1 || blobs.len() <= 1 {
        return blobs
            .iter()
            .map(|b| AdaptiveQf::from_snapshot_bytes(b))
            .collect();
    }
    let chunk = blobs.len().div_ceil(workers);
    let mut decoded: Vec<Vec<Result<AdaptiveQf, SnapError>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blobs
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|b| AdaptiveQf::from_snapshot_bytes(b))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            decoded.push(h.join().expect("shard decode worker panicked"));
        }
    });
    decoded.into_iter().flatten().collect()
}

impl ShadowMap {
    /// Write the map's exact state (settled entries plus the pending log)
    /// as sections of an open snapshot.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.section(*b"SMAP");
        w.u64(self.map.len() as u64);
        for (&id, keys) in &self.map {
            w.u64(id);
            w.u64_slice(keys);
        }
        w.section(*b"SLOG");
        w.u64_slice(&self.log);
    }

    /// Read a map written by [`ShadowMap::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"SMAP")?;
        let n = r.len_u64()?;
        let mut map = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = r.u64()?;
            let keys = r.u64_vec()?;
            if map.insert(id, keys).is_some() {
                return Err(SnapError::corrupt(format!(
                    "duplicate shadow-map entry for minirun {id}"
                )));
            }
        }
        r.section(*b"SLOG")?;
        let log = r.u64_vec()?;
        Ok(Self { log, map })
    }
}

impl YesNoFilter {
    /// Write the filter body plus its bundled reverse map and list sizes.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        self.f.write_snapshot(w);
        w.section(*b"YMAP");
        w.u64(self.map.len() as u64);
        for (&id, keys) in &self.map {
            w.u64(id);
            w.u64_slice(keys);
        }
        w.section(*b"YLEN");
        w.u64(self.yes_len as u64);
        w.u64(self.no_len as u64);
    }

    /// Read a body written by [`YesNoFilter::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let f = AdaptiveQf::read_snapshot(r)?;
        if f.config().value_bits != 1 {
            return Err(SnapError::corrupt("yes/no filter requires value_bits = 1"));
        }
        r.section(*b"YMAP")?;
        let n = r.len_u64()?;
        let mut map = HashMap::with_capacity(n.min(1 << 20));
        let mut mapped_keys = 0u64;
        for _ in 0..n {
            let id = r.u64()?;
            let keys = r.u64_vec()?;
            mapped_keys += keys.len() as u64;
            if map.insert(id, keys).is_some() {
                return Err(SnapError::corrupt(format!(
                    "duplicate yes/no map entry for minirun {id}"
                )));
            }
        }
        if mapped_keys != f.distinct_fingerprints() {
            return Err(SnapError::corrupt(format!(
                "reverse map holds {mapped_keys} keys, filter stores {} fingerprints",
                f.distinct_fingerprints()
            )));
        }
        r.section(*b"YLEN")?;
        let yes_len = r.len_u64()?;
        let no_len = r.len_u64()?;
        // u128: file-supplied sizes must not be able to overflow the sum.
        if (yes_len as u128) + (no_len as u128) != f.len() as u128 {
            return Err(SnapError::corrupt(format!(
                "list sizes {yes_len}+{no_len} disagree with filter count {}",
                f.len()
            )));
        }
        Ok(Self {
            f,
            map,
            yes_len,
            no_len,
        })
    }

    /// Serialize to a standalone snapshot frame.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(YESNO_SNAPSHOT_KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Decode a standalone snapshot frame.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapshotReader::new(bytes)?;
        r.expect_kind(YESNO_SNAPSHOT_KIND)?;
        Self::read_snapshot(&mut r)
    }

    /// Save atomically to `path` (write-temp-then-rename).
    pub fn save(&self, path: &Path) -> Result<(), SnapError> {
        Ok(write_atomic(path, &self.to_snapshot_bytes())?)
    }

    /// Load a filter saved by [`YesNoFilter::save`].
    pub fn load(path: &Path) -> Result<Self, SnapError> {
        Self::from_snapshot_bytes(&read_file(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::QueryResult;

    fn filled(seed: u64, n: u64) -> AdaptiveQf {
        let mut f = AdaptiveQf::new(AqfConfig::new(12, 9).with_seed(seed)).unwrap();
        for k in 0..n {
            f.insert(k * 31 + 7).unwrap();
        }
        f
    }

    #[test]
    fn aqf_roundtrips_with_adaptation_state() {
        let mut f = filled(3, 3000);
        let mut m = ShadowMap::new();
        // Rebuild the map from scratch so adaptation has stored keys.
        let mut f2 = AdaptiveQf::new(*f.config()).unwrap();
        for k in 0..3000u64 {
            f2.insert(k * 31 + 7).unwrap();
            m.record(k * 31 + 7);
        }
        m.settle(|k| f2.fingerprint(k).minirun_id());
        f = f2;
        // Adapt a few hundred false positives.
        let mut adapted = 0;
        let mut probe = 1u64 << 40;
        while adapted < 200 {
            probe += 1;
            if let QueryResult::Positive(hit) = f.query(probe) {
                if let Some(stored) = m.get(hit.minirun_id, hit.rank) {
                    if stored != probe && f.adapt(&hit, stored, probe).is_ok() {
                        adapted += 1;
                    }
                }
            }
        }
        assert!(f.stats().extension_slots > 0);

        let bytes = f.to_snapshot_bytes();
        let g = AdaptiveQf::from_snapshot_bytes(&bytes).unwrap();
        g.assert_valid();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.stats(), f.stats());
        assert_eq!(g.slots_in_use(), f.slots_in_use());
        // Element-wise identical query outcomes, members and probes alike.
        for k in 0..3000u64 {
            assert_eq!(f.query(k * 31 + 7), g.query(k * 31 + 7));
        }
        for p in 0..5000u64 {
            let probe = (1u64 << 40) + p;
            assert_eq!(f.query(probe), g.query(probe), "probe {probe}");
        }
    }

    #[test]
    fn sharded_roundtrips_across_parallel_decode() {
        let f = ShardedAqf::new(AqfConfig::new(14, 9).with_seed(5), 3).unwrap();
        for k in 0..10_000u64 {
            f.insert(k).unwrap();
        }
        let bytes = f.to_snapshot_bytes();
        let g = ShardedAqf::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.shard_count(), f.shard_count());
        assert_eq!(g.stats(), f.stats());
        for k in 0..10_000u64 {
            assert_eq!(f.query(k), g.query(k));
            assert_eq!(f.shard_of(k), g.shard_of(k));
        }
        for p in 0..10_000u64 {
            let probe = (1u64 << 41) + p * 97;
            assert_eq!(f.query(probe), g.query(probe));
        }
    }

    #[test]
    fn shadow_map_roundtrips_pending_log_exactly() {
        let mut f = filled(9, 500);
        let mut m = ShadowMap::new();
        let mut f2 = AdaptiveQf::new(*f.config()).unwrap();
        for k in 0..500u64 {
            f2.insert(k * 31 + 7).unwrap();
            m.record(k * 31 + 7);
        }
        f = f2;
        // Half settled, half still in the log.
        m.settle(|k| f.fingerprint(k).minirun_id());
        for k in 500..700u64 {
            f.insert(k * 31 + 7).unwrap();
            m.record(k * 31 + 7);
        }
        let mut w = SnapshotWriter::new("shadow-test");
        m.write_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let mut m2 = ShadowMap::read_snapshot(&mut r).unwrap();
        m.settle(|k| f.fingerprint(k).minirun_id());
        m2.settle(|k| f.fingerprint(k).minirun_id());
        for k in 0..700u64 {
            let QueryResult::Positive(hit) = f.query(k * 31 + 7) else {
                panic!("member lost");
            };
            assert_eq!(
                m.get(hit.minirun_id, hit.rank),
                m2.get(hit.minirun_id, hit.rank)
            );
        }
    }

    #[test]
    fn yesno_roundtrips_both_lists() {
        let mut f = YesNoFilter::new(12, 8).unwrap();
        for k in 0..1200u64 {
            f.insert_yes(k * 3).unwrap();
        }
        for k in 0..1200u64 {
            f.insert_no(k * 3 + 1).unwrap();
        }
        let bytes = f.to_snapshot_bytes();
        let g = YesNoFilter::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(g.yes_len(), f.yes_len());
        assert_eq!(g.no_len(), f.no_len());
        for k in 0..1200u64 {
            assert_eq!(f.query(k * 3), g.query(k * 3));
            assert_eq!(f.query(k * 3 + 1), g.query(k * 3 + 1));
            assert_eq!(f.query(k * 3 + 2), g.query(k * 3 + 2));
        }
    }

    #[test]
    fn wrong_kind_and_flips_are_typed_errors() {
        let f = filled(1, 800);
        let bytes = f.to_snapshot_bytes();
        // An AQF frame fed to the sharded loader.
        assert!(matches!(
            ShardedAqf::from_snapshot_bytes(&bytes),
            Err(SnapError::WrongKind { .. })
        ));
        // Truncations and flips never panic.
        for n in (0..bytes.len()).step_by(97) {
            assert!(AdaptiveQf::from_snapshot_bytes(&bytes[..n]).is_err());
        }
        for i in (0..bytes.len()).step_by(31) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(AdaptiveQf::from_snapshot_bytes(&bad).is_err(), "flip {i}");
        }
    }

    #[test]
    fn save_load_via_file_is_atomic() {
        let dir = std::env::temp_dir().join(format!(
            "aqf-snapshot-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.aqf");
        let f = filled(4, 2000);
        f.save(&path).unwrap();
        let g = AdaptiveQf::load(&path).unwrap();
        assert_eq!(g.len(), f.len());
        // No stale temp left behind.
        assert!(!aqf_bits::snapshot::stale_temp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
