//! Deterministic interleaving hooks for the concurrency test suites.
//!
//! A test installs a thread-local callback; writer paths fire it at the
//! points where the table is *structurally torn* — slots already
//! shifted, metadata lanes not yet, or a cluster cleared but not yet
//! rewritten. The callback can then drive an optimistic reader through
//! an [`crate::AqfReader`] against the half-mutated arena, turning a
//! nondeterministic race window into a single-threaded, perfectly
//! reproducible schedule.
//!
//! Cost when disarmed: one relaxed atomic load on the affected writer
//! paths. The hook registry is thread-local, so concurrent production
//! threads in the same test process are unaffected even while a test
//! thread has a hook armed (the global flag is only an optimization
//! gate).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;

/// Where in a writer's critical section the table is torn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornPoint {
    /// Inside [`insert_slot_at`](crate::AdaptiveQf): the packed slots of
    /// `[pos, free)` have shifted right but the `runends`/`extensions`
    /// lanes have not — remainders and metadata disagree by one slot.
    MidInsertShift,
    /// Inside a delete's cluster rebuild: the cluster's slots have been
    /// cleared but the surviving runs are not yet re-placed.
    MidClusterRebuild,
}

static ARMED: AtomicBool = AtomicBool::new(false);

/// The installed callback type.
pub type Hook = Box<dyn FnMut(TornPoint)>;

thread_local! {
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
}

/// Install `f` as this thread's torn-point callback. Replaces any
/// previous hook; pair with [`clear`].
pub fn install(f: Hook) {
    HOOK.with(|h| *h.borrow_mut() = Some(f));
    ARMED.store(true, Relaxed);
}

/// Remove this thread's hook (other threads' hooks, if any, stay).
pub fn clear() {
    HOOK.with(|h| *h.borrow_mut() = None);
}

/// A process-wide torn-point callback (must be `Send`: it fires on
/// whichever thread happens to be writing).
pub type GlobalHook = Box<dyn FnMut(TornPoint) + Send>;

/// Process-wide hook for tests whose writers run on threads the test
/// does not own (server worker threads): fires on *any* thread without
/// a thread-local hook of its own. Guarded by a mutex; `try_lock` in
/// the firing path keeps concurrent writers from blocking on each other
/// (a skipped firing is fine — these hooks gate on counters anyway).
static GLOBAL: Mutex<Option<GlobalHook>> = Mutex::new(None);

/// Install `f` as the process-wide torn-point callback (see
/// [`GlobalHook`]). Replaces any previous one; pair with
/// [`clear_global`].
pub fn install_global(f: GlobalHook) {
    *GLOBAL.lock().unwrap() = Some(f);
    ARMED.store(true, Relaxed);
}

/// Remove the process-wide hook.
pub fn clear_global() {
    *GLOBAL.lock().unwrap() = None;
}

#[inline(always)]
pub(crate) fn fire(p: TornPoint) {
    if ARMED.load(Relaxed) {
        fire_slow(p);
    }
}

#[cold]
fn fire_slow(p: TornPoint) {
    let fired_locally = HOOK.with(|h| {
        // try_borrow: a hook that itself mutates a filter would re-enter;
        // the inner firing is silently skipped rather than panicking.
        if let Ok(mut slot) = h.try_borrow_mut() {
            if let Some(f) = slot.as_mut() {
                f(p);
                return true;
            }
        }
        false
    });
    if !fired_locally {
        // try_lock doubles as the re-entrancy guard for a global hook
        // that itself mutates a filter on the same thread.
        if let Ok(mut slot) = GLOBAL.try_lock() {
            if let Some(f) = slot.as_mut() {
                f(p);
            }
        }
    }
}
