//! The physical slot table of the AdaptiveQF — blocked, offset-indexed.
//!
//! Layout (paper §3.2/§4.2 metadata on the CQF block layout, Pandey et
//! al., SIGMOD 2017): slots live in 64-slot blocks, each block one
//! contiguous region holding a cached `offset` word, four metadata words,
//! and the block's packed remainders (see [`aqf_bits::block`]):
//!
//! - `occupieds[i]` — some key's canonical slot is `i` (never shifts),
//! - `runends[i]` — on a *remainder* slot: this is the last fingerprint of
//!   its run; on an *extra* slot: this extra is a **counter** (vs extension),
//! - `extensions[i]` — this slot is an extra (extension or counter) of the
//!   preceding fingerprint,
//! - `used[i]` — the slot physically holds data.
//!
//! *Masked runends* (`runends & !extensions`) are the true run terminators;
//! a run's physical extent continues past its masked runend through the
//! trailing extras of its final fingerprint.
//!
//! **Offset semantics.** For block `b` with base slot `B = 64b`,
//! `offset[b]` is the distance from `B` to one past the *physical* end
//! (including trailing extras) of the run owned by the last occupied
//! quotient `<= B-1`, clamped at 0 when that run ends before `B`
//! (`offset[0] = 0`). Locating the run of quotient `q` is then O(1)
//! metadata arithmetic: one in-word rank of `occupieds` below `q` inside
//! `q`'s block plus one select of masked runends starting at `B +
//! offset[b]` — no scan back to the cluster start. The scan-based
//! navigation the pre-PR5 table used is retained as the `*_ref` methods
//! so equivalence is provable (checker + proptests), not assumed.

use aqf_bits::word::{bitmask, select_u64};
use aqf_bits::BlockedTable;

use crate::config::FilterError;

/// `occupieds` lane index.
pub(crate) const OCC: u32 = 0;
/// `runends` lane index.
pub(crate) const RUN: u32 = 1;
/// `extensions` lane index.
pub(crate) const EXT: u32 = 2;
/// `used` lane index.
pub(crate) const USED: u32 = 3;
/// Number of metadata lanes.
pub(crate) const LANES: u32 = 4;

/// Physical extent of one fingerprint group:
/// `[start]` remainder slot, `[start+1, ext_end)` extension slots,
/// `[ext_end, end)` counter slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct GroupExtent {
    pub start: usize,
    pub ext_end: usize,
    pub end: usize,
}

impl GroupExtent {
    /// Number of extension slots.
    #[inline]
    pub fn ext_len(&self) -> usize {
        self.ext_end - self.start - 1
    }

    /// Number of counter slots.
    #[inline]
    pub fn ctr_len(&self) -> usize {
        self.end - self.ext_end
    }

    /// Total slots in the group.
    #[inline]
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

/// The raw slotted table.
#[derive(Clone, Debug)]
pub(crate) struct Table {
    pub b: BlockedTable,
    /// Total physical slots (canonical + overflow).
    pub total: usize,
    /// Number of canonical slots (`2^qbits`).
    pub canonical: usize,
    pub rbits: u32,
    #[allow(dead_code)] // geometry record; width lives in `b`
    pub value_bits: u32,
}

impl Table {
    pub fn new(canonical: usize, total: usize, rbits: u32, value_bits: u32) -> Self {
        Self {
            b: BlockedTable::new(total, LANES, rbits + value_bits),
            total,
            canonical,
            rbits,
            value_bits,
        }
    }

    /// An aliasing read-only handle over the same arena (geometry copied,
    /// words shared) for seqlock-validated optimistic readers. `Clone`
    /// remains a deep copy.
    pub fn share(&self) -> Self {
        Self {
            b: self.b.share(),
            ..*self
        }
    }

    // ------------------------------------------------------------------
    // Bit accessors
    // ------------------------------------------------------------------

    #[inline(always)]
    pub fn occupied(&self, i: usize) -> bool {
        self.b.get(OCC, i)
    }

    #[inline(always)]
    pub fn set_occupied(&mut self, i: usize) {
        self.b.set(OCC, i)
    }

    #[inline(always)]
    pub fn clear_occupied(&mut self, i: usize) {
        self.b.clear(OCC, i)
    }

    #[inline(always)]
    pub fn is_runend(&self, i: usize) -> bool {
        self.b.get(RUN, i)
    }

    #[inline(always)]
    pub fn set_runend(&mut self, i: usize) {
        self.b.set(RUN, i)
    }

    #[inline(always)]
    pub fn clear_runend(&mut self, i: usize) {
        self.b.clear(RUN, i)
    }

    #[inline(always)]
    pub fn is_extension(&self, i: usize) -> bool {
        self.b.get(EXT, i)
    }

    #[inline(always)]
    pub fn is_used(&self, i: usize) -> bool {
        self.b.get(USED, i)
    }

    #[inline(always)]
    pub fn slot(&self, i: usize) -> u64 {
        self.b.slot(i)
    }

    #[inline(always)]
    pub fn set_slot(&mut self, i: usize, v: u64) {
        self.b.set_slot(i, v)
    }

    /// Remainder stored in slot `i` (low `rbits` of the slot).
    #[inline]
    pub fn remainder_at(&self, i: usize) -> u64 {
        self.slot(i) & bitmask(self.rbits)
    }

    /// Payload value stored in slot `i` (high `value_bits` of the slot).
    #[inline]
    pub fn value_at(&self, i: usize) -> u64 {
        self.slot(i) >> self.rbits
    }

    /// True if `i` holds a masked runend: a remainder slot terminating a run.
    #[inline]
    pub fn is_masked_runend(&self, i: usize) -> bool {
        self.b.get(RUN, i) && !self.b.get(EXT, i)
    }

    /// First free slot at or after `pos`.
    #[inline]
    pub fn next_free(&self, pos: usize) -> Option<usize> {
        self.b.next_zero(USED, pos)
    }

    /// Used slots in `[a, b)`.
    #[inline]
    pub fn used_count_range(&self, a: usize, b: usize) -> usize {
        self.b.count_range(USED, a, b)
    }

    /// First slot of the cluster containing used slot `x` (word-wise
    /// backward scan over the `used` lane; delete/rebuild path only — the
    /// query path resolves runs through block offsets instead).
    #[inline]
    pub fn cluster_start(&self, x: usize) -> usize {
        debug_assert!(self.is_used(x));
        match self.b.prev_zero(USED, x) {
            Some(z) => z + 1,
            None => 0,
        }
    }

    /// Position of the `k`-th (0-indexed) masked runend at or after `from`.
    #[inline]
    pub fn select_masked_runend_from(&self, from: usize, k: usize) -> Option<usize> {
        self.b
            .select_lane_from(RUN, from, k, |t, w, run| run & !t.lane_word(EXT, w))
    }

    /// Positions of the `k`-th and `k+1`-th masked runends at or after
    /// `from`, in a single word walk (both usually land in the same
    /// metadata word). `run_range` needs exactly this pair: the previous
    /// run's end and this run's end.
    pub(crate) fn select_masked_runend_pair(
        &self,
        from: usize,
        mut k: usize,
    ) -> Option<(usize, usize)> {
        if from >= self.total {
            return None;
        }
        let nwords = self.total.div_ceil(64);
        let mword = |w: usize| self.b.lane_word(RUN, w) & !self.b.lane_word(EXT, w);
        let mut w = from >> 6;
        let mut word = mword(w) & !bitmask((from & 63) as u32);
        let mut first: Option<usize> = None;
        loop {
            let ones = word.count_ones() as usize;
            if first.is_none() && k < ones {
                let b1 = select_u64(word, k as u32).unwrap();
                let p1 = (w << 6) + b1 as usize;
                if p1 >= self.total {
                    return None;
                }
                // The successor is just the next set bit — a shift and a
                // tzcnt, never a second full select.
                let rest = if b1 == 63 {
                    0
                } else {
                    word >> (b1 + 1) << (b1 + 1)
                };
                if rest != 0 {
                    let p2 = (w << 6) + rest.trailing_zeros() as usize;
                    return (p2 < self.total).then_some((p1, p2));
                }
                first = Some(p1);
            } else if first.is_some() && word != 0 {
                let p2 = (w << 6) + word.trailing_zeros() as usize;
                return (p2 < self.total).then_some((first.unwrap(), p2));
            }
            if first.is_none() {
                k -= ones;
            }
            w += 1;
            if w >= nwords {
                return None;
            }
            word = mword(w);
        }
    }

    /// Extent of the fingerprint group whose remainder slot is `start`.
    ///
    /// Extras carry `extensions=1`; an extra with `runends=0` is an
    /// extension chunk, with `runends=1` a counter digit. Extensions always
    /// precede counters within a group, so both sub-ranges are word-wise
    /// trailing-ones counts: `extensions & !runends` then `extensions &
    /// runends`.
    pub fn group_extent(&self, start: usize) -> GroupExtent {
        debug_assert!(
            !self.is_extension(start),
            "group must start at a remainder slot"
        );
        let ext_end = start
            + 1
            + self
                .b
                .ones_run_len(start + 1, |t, w| t.lane_word(EXT, w) & !t.lane_word(RUN, w));
        let end = ext_end
            + self
                .b
                .ones_run_len(ext_end, |t, w| t.lane_word(EXT, w) & t.lane_word(RUN, w));
        GroupExtent {
            start,
            ext_end,
            end,
        }
    }

    /// One past the last physical slot of the group starting at `start`:
    /// since extensions precede counters and both carry `extensions=1`,
    /// this is a single trailing-ones count of the `extensions` lane.
    #[inline]
    pub fn group_end(&self, start: usize) -> usize {
        start + 1 + self.b.ones_run_len(start + 1, |t, w| t.lane_word(EXT, w))
    }

    // ------------------------------------------------------------------
    // O(1) offset-based navigation (the query/insert hot path)
    // ------------------------------------------------------------------

    /// The run of occupied quotient `q`: `(first_slot, masked_runend_slot)`.
    ///
    /// The run's physical extent is `first_slot ..= group_extent(masked
    /// runend).end - 1`. One block read (offset + occupieds word), one
    /// in-word rank, and one select bounded by the run's own extent — no
    /// scan back to the cluster start.
    pub fn run_range(&self, q: usize) -> (usize, usize) {
        debug_assert!(self.occupied(q));
        // Occupied quotients in [base, q): their runends all sit at or
        // after `from`, in order, so q's is the d-th.
        let (from, d) = self.b.run_nav_start(OCC, q);
        if d == 0 {
            let re = self
                .select_masked_runend_from(from, 0)
                .expect("every occupied quotient has a masked runend");
            let rs = from.max(q);
            debug_assert!(rs <= re);
            return (rs, re);
        }
        let (pe, re) = self
            .select_masked_runend_pair(from, d - 1)
            .expect("every occupied quotient has a masked runend");
        let rs = self.group_end(pe).max(q);
        debug_assert!(rs <= re);
        (rs, re)
    }

    /// Where a *new* run for currently-unoccupied quotient `q` would begin,
    /// given `used[q]` is true (otherwise it trivially begins at `q`).
    pub fn new_run_pos(&self, q: usize) -> usize {
        debug_assert!(self.is_used(q) && !self.occupied(q));
        let (from, d) = self.b.run_nav_start(OCC, q);
        let pos = if d == 0 {
            from
        } else {
            let pe = self
                .select_masked_runend_from(from, d - 1)
                .expect("cluster has runs");
            self.group_end(pe)
        };
        debug_assert!(pos > q, "used slot {q} must be covered by a prior run");
        pos
    }

    // ------------------------------------------------------------------
    // Scan-based reference navigation (pre-PR5 behaviour, kept for the
    // checker and the equivalence proptests)
    // ------------------------------------------------------------------

    /// Reference [`Self::run_range`]: scan back to the cluster start, rank
    /// occupieds across the cluster, select from the cluster start.
    pub fn run_range_ref(&self, q: usize) -> (usize, usize) {
        debug_assert!(self.occupied(q));
        let c = self.cluster_start(q);
        let t = self.b.count_range(OCC, c, q + 1);
        debug_assert!(t >= 1, "cluster start must be occupied");
        let re = self
            .select_masked_runend_from(c, t - 1)
            .expect("every occupied quotient has a masked runend");
        let rs = if t == 1 {
            c
        } else {
            let pe = self
                .select_masked_runend_from(c, t - 2)
                .expect("preceding run must have a masked runend");
            self.group_end(pe)
        };
        debug_assert!(rs <= re);
        (rs, re)
    }

    /// Reference [`Self::new_run_pos`] via the cluster scan.
    pub fn new_run_pos_ref(&self, q: usize) -> usize {
        debug_assert!(self.is_used(q) && !self.occupied(q));
        let c = self.cluster_start(q);
        let t = self.b.count_range(OCC, c, q + 1);
        debug_assert!(t >= 1);
        let pe = self
            .select_masked_runend_from(c, t - 1)
            .expect("cluster has runs");
        let pos = self.group_end(pe);
        debug_assert!(pos > q);
        pos
    }

    /// Reference value of block `b`'s offset, derived from scratch by
    /// scan-based navigation (checker / proptests).
    pub fn offset_ref(&self, blk: usize) -> usize {
        let base = blk << 6;
        if base == 0 || !self.is_used(base - 1) {
            // No run can extend past B-1 into this block.
            return 0;
        }
        let j = base - 1;
        // Physical end of the run of the last occupied quotient <= j: walk
        // the cluster containing j like the pre-PR5 navigation did.
        let c = self.cluster_start(j);
        let t = self.b.count_range(OCC, c, j + 1);
        debug_assert!(t >= 1, "used slot implies an occupied quotient before it");
        let re = self
            .select_masked_runend_from(c, t - 1)
            .expect("cluster has runs");
        let end = self.group_end(re);
        end.saturating_sub(base)
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert one slot at `pos` on behalf of the run owned by quotient
    /// `q`, shifting `[pos, first_free)` right by one.
    ///
    /// `occupieds` never shifts (it indexes quotients, not slot contents).
    /// Block offsets are maintained by the CQF rule: the physical end of
    /// the pending run at every block base in `(q, first_free]` moves
    /// right by exactly one, so those offsets each increment by one.
    pub fn insert_slot_at(
        &mut self,
        q: usize,
        pos: usize,
        value: u64,
        ext: bool,
        runend: bool,
    ) -> Result<(), FilterError> {
        debug_assert!(q <= pos);
        let fe = self.next_free(pos).ok_or(FilterError::Full)?;
        if fe > pos {
            self.b.shift_right_insert_slot(pos, fe, value);
            // Torn window: slots have moved, metadata lanes have not.
            crate::testhooks::fire(crate::testhooks::TornPoint::MidInsertShift);
            self.b.shift_right_insert(RUN, pos, fe, runend);
            self.b.shift_right_insert(EXT, pos, fe, ext);
        } else {
            self.b.set_slot(pos, value);
            self.b.assign(RUN, pos, runend);
            self.b.assign(EXT, pos, ext);
        }
        self.b.set(USED, fe);
        if fe >> 6 > q >> 6 {
            self.b.inc_offsets((q >> 6) + 1, fe >> 6);
        }
        Ok(())
    }

    /// Write a fresh group into a free slot (no shifting, no offset
    /// changes — a write at `pos` only ever ends a run *at* `pos`, which
    /// no block base in range sees as pending).
    pub fn write_free_slot(&mut self, pos: usize, value: u64, ext: bool, runend: bool) {
        debug_assert!(!self.is_used(pos));
        self.b.set_slot(pos, value);
        self.b.assign(RUN, pos, runend);
        self.b.assign(EXT, pos, ext);
        self.b.set(USED, pos);
    }

    /// Hint the CPU to pull quotient `q`'s block into cache. Batch loops
    /// issue this a few keys ahead of the cursor so the block's metadata
    /// and slot words are resident by the time the probe reaches them.
    #[inline(always)]
    pub fn prefetch(&self, q: usize) {
        self.b.prefetch_block_of_slot(q);
    }

    /// Number of used slots (O(total/64); cached by the filter for stats).
    pub fn count_used(&self) -> usize {
        self.b.count_ones(USED)
    }

    /// Bytes of heap memory for the table proper.
    pub fn heap_size_bytes(&self) -> usize {
        self.b.heap_size_bytes()
    }

    /// Clear a slot's metadata and contents (used during cluster rebuilds;
    /// the rebuild recomputes the affected block offsets afterwards).
    pub fn clear_slot(&mut self, i: usize) {
        self.b.clear(RUN, i);
        self.b.clear(EXT, i);
        self.b.clear(USED, i);
        self.b.set_slot(i, 0);
    }

    /// Recompute the offsets of every block whose base lies in `(lo, hi]`
    /// from `runs`: the `(quotient, physical end exclusive)` pairs of every
    /// run placed in that region, in quotient order. Used after cluster
    /// rebuilds (deletes), where the region's run structure was rewritten
    /// wholesale.
    pub fn recompute_offsets_from_runs(&mut self, lo: usize, hi: usize, runs: &[(usize, usize)]) {
        let b_lo = (lo >> 6) + 1;
        let b_hi = (hi >> 6).min(self.b.blocks().saturating_sub(1));
        let mut idx = 0usize; // runs[..idx] have quotient <= base-1
        let mut last_end = 0usize;
        for blk in b_lo..=b_hi {
            let base = blk << 6;
            while idx < runs.len() && runs[idx].0 < base {
                last_end = runs[idx].1;
                idx += 1;
            }
            let off = if idx == 0 {
                // No run in the region starts at or before base-1; any
                // pending run would have to come from before `lo`, but
                // `lo` is a cluster start, so nothing spills past it.
                0
            } else {
                last_end.saturating_sub(base)
            };
            self.b.set_offset(blk, off);
        }
    }

    /// Recompute every block offset in one left-to-right sweep — used by
    /// bulk builders and legacy-snapshot decoding, where the whole table
    /// was written without incremental maintenance.
    pub fn rebuild_offsets(&mut self) {
        self.b.clear_offsets();
        // Enumerate runs (quotient, physical end exclusive) in table
        // order, filling offsets for block bases as we pass them.
        let mut blk = 1usize;
        let nblocks = self.b.blocks();
        let mut last: Option<(usize, usize)> = None;
        let mut i = 0usize;
        while i < self.total {
            let Some(c) = self.b.next_one(USED, i) else {
                break;
            };
            let ce = self.next_free(c).unwrap_or(self.total);
            let mut cursor = c;
            let mut q = c;
            while cursor < ce {
                q = self
                    .b
                    .next_one(OCC, q)
                    .expect("used slots imply a further occupied quotient");
                // Walk this run's groups to its physical end.
                loop {
                    let was_end = self.is_masked_runend(cursor);
                    cursor = self.group_end(cursor);
                    if was_end {
                        break;
                    }
                }
                while blk < nblocks && (blk << 6) <= q {
                    let base = blk << 6;
                    let off = last.map_or(0, |(_, e)| e.saturating_sub(base));
                    self.b.set_offset(blk, off);
                    blk += 1;
                }
                last = Some((q, cursor));
                q += 1;
            }
            i = ce;
        }
        while blk < nblocks {
            let base = blk << 6;
            let off = last.map_or(0, |(_, e)| e.saturating_sub(base));
            self.b.set_offset(blk, off);
            blk += 1;
        }
    }

    /// First slot in `[rs, re]` whose stored remainder equals `hr`
    /// (ignoring payload value bits) — the word-parallel compare behind
    /// the extension-free query fast path.
    #[inline]
    pub fn find_remainder_eq(&self, rs: usize, re: usize, hr: u64) -> Option<usize> {
        self.b.find_slot_eq_masked(rs, re, hr, bitmask(self.rbits))
    }

    /// Count of `extensions` bits in `[a, b)` — zero means every slot in
    /// the range is a plain remainder slot.
    #[inline]
    pub fn ext_count_range(&self, a: usize, b: usize) -> usize {
        self.b.count_range(EXT, a, b)
    }
}
