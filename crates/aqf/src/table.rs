//! The physical slot table of the AdaptiveQF.
//!
//! Layout (paper §3.2/§4.2): an array of `2^q + overflow` slots, each
//! `rbits + value_bits` wide, with per-slot metadata bits:
//!
//! - `occupieds[i]` — some key's canonical slot is `i` (never shifts),
//! - `runends[i]` — on a *remainder* slot: this is the last fingerprint of
//!   its run; on an *extra* slot: this extra is a **counter** (vs extension),
//! - `extensions[i]` — this slot is an extra (extension or counter) of the
//!   preceding fingerprint,
//! - `used[i]` — the slot physically holds data.
//!
//! The `used` bit vector is an implementation deviation from the paper's
//! per-block offsets (see DESIGN.md §5): it costs one extra bit per slot and
//! in exchange makes empty-slot search and cluster-start search direct bit
//! scans, with no offset-maintenance edge cases around extension slots that
//! trail a run's masked runend.
//!
//! *Masked runends* (`runends & !extensions`) are the true run terminators;
//! a run's physical extent continues past its masked runend through the
//! trailing extras of its final fingerprint.

use aqf_bits::word::{bitmask, select_u64};
use aqf_bits::{BitVec, PackedVec};

use crate::config::FilterError;

/// Physical extent of one fingerprint group:
/// `[start]` remainder slot, `[start+1, ext_end)` extension slots,
/// `[ext_end, end)` counter slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct GroupExtent {
    pub start: usize,
    pub ext_end: usize,
    pub end: usize,
}

impl GroupExtent {
    /// Number of extension slots.
    #[inline]
    pub fn ext_len(&self) -> usize {
        self.ext_end - self.start - 1
    }

    /// Number of counter slots.
    #[inline]
    pub fn ctr_len(&self) -> usize {
        self.end - self.ext_end
    }

    /// Total slots in the group.
    #[inline]
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

/// The raw slotted table.
#[derive(Clone, Debug)]
pub(crate) struct Table {
    pub occupieds: BitVec,
    pub runends: BitVec,
    pub extensions: BitVec,
    pub used: BitVec,
    pub slots: PackedVec,
    /// Total physical slots (canonical + overflow).
    pub total: usize,
    /// Number of canonical slots (`2^qbits`).
    pub canonical: usize,
    pub rbits: u32,
    #[allow(dead_code)] // geometry record; width lives in `slots`
    pub value_bits: u32,
}

impl Table {
    pub fn new(canonical: usize, total: usize, rbits: u32, value_bits: u32) -> Self {
        Self {
            occupieds: BitVec::new(total),
            runends: BitVec::new(total),
            extensions: BitVec::new(total),
            used: BitVec::new(total),
            slots: PackedVec::new(total, rbits + value_bits),
            total,
            canonical,
            rbits,
            value_bits,
        }
    }

    /// Remainder stored in slot `i` (low `rbits` of the slot).
    #[inline]
    pub fn remainder_at(&self, i: usize) -> u64 {
        self.slots.get(i) & bitmask(self.rbits)
    }

    /// Payload value stored in slot `i` (high `value_bits` of the slot).
    #[inline]
    pub fn value_at(&self, i: usize) -> u64 {
        self.slots.get(i) >> self.rbits
    }

    /// True if `i` holds a masked runend: a remainder slot terminating a run.
    #[inline]
    pub fn is_masked_runend(&self, i: usize) -> bool {
        self.runends.get(i) && !self.extensions.get(i)
    }

    /// First slot of the cluster containing used slot `x`.
    #[inline]
    pub fn cluster_start(&self, x: usize) -> usize {
        debug_assert!(self.used.get(x));
        match self.used.prev_zero(x) {
            Some(z) => z + 1,
            None => 0,
        }
    }

    /// Position of the `k`-th (0-indexed) masked runend at or after `from`.
    pub fn select_masked_runend_from(&self, from: usize, mut k: usize) -> Option<usize> {
        let nwords = self.total.div_ceil(64);
        let mut w = from >> 6;
        if w >= nwords {
            return None;
        }
        let mut word =
            (self.runends.word(w) & !self.extensions.word(w)) & !bitmask((from & 63) as u32);
        loop {
            let ones = word.count_ones() as usize;
            if k < ones {
                let pos = (w << 6) + select_u64(word, k as u32).unwrap() as usize;
                return (pos < self.total).then_some(pos);
            }
            k -= ones;
            w += 1;
            if w >= nwords {
                return None;
            }
            word = self.runends.word(w) & !self.extensions.word(w);
        }
    }

    /// Extent of the fingerprint group whose remainder slot is `start`.
    ///
    /// Extras carry `extensions=1`; an extra with `runends=0` is an
    /// extension chunk, with `runends=1` a counter digit. Extensions always
    /// precede counters within a group.
    pub fn group_extent(&self, start: usize) -> GroupExtent {
        debug_assert!(
            !self.extensions.get(start),
            "group must start at a remainder slot"
        );
        let mut j = start + 1;
        while j < self.total && self.extensions.get(j) && !self.runends.get(j) {
            j += 1;
        }
        let ext_end = j;
        while j < self.total && self.extensions.get(j) && self.runends.get(j) {
            j += 1;
        }
        GroupExtent {
            start,
            ext_end,
            end: j,
        }
    }

    /// The run of occupied quotient `q`: `(first_slot, masked_runend_slot)`.
    ///
    /// The run's physical extent is `first_slot ..= group_extent(masked
    /// runend).end - 1`.
    pub fn run_range(&self, q: usize) -> (usize, usize) {
        debug_assert!(self.occupieds.get(q));
        let c = self.cluster_start(q);
        let t = self.occupieds.count_range(c, q + 1);
        debug_assert!(t >= 1, "cluster start must be occupied");
        let re = self
            .select_masked_runend_from(c, t - 1)
            .expect("every occupied quotient has a masked runend");
        let rs = if t == 1 {
            c
        } else {
            let pe = self
                .select_masked_runend_from(c, t - 2)
                .expect("preceding run must have a masked runend");
            self.group_extent(pe).end
        };
        debug_assert!(rs <= re);
        (rs, re)
    }

    /// Where a *new* run for currently-unoccupied quotient `q` would begin,
    /// given `used[q]` is true (otherwise it trivially begins at `q`).
    pub fn new_run_pos(&self, q: usize) -> usize {
        debug_assert!(self.used.get(q) && !self.occupieds.get(q));
        let c = self.cluster_start(q);
        let t = self.occupieds.count_range(c, q + 1);
        debug_assert!(t >= 1);
        let pe = self
            .select_masked_runend_from(c, t - 1)
            .expect("cluster has runs");
        let pos = self.group_extent(pe).end;
        debug_assert!(pos > q);
        pos
    }

    /// Insert one slot at `pos`, shifting `[pos, first_free)` right by one.
    ///
    /// `occupieds` never shifts (it indexes quotients, not slot contents).
    pub fn insert_slot_at(
        &mut self,
        pos: usize,
        value: u64,
        ext: bool,
        runend: bool,
    ) -> Result<(), FilterError> {
        let fe = self.used.next_zero(pos).ok_or(FilterError::Full)?;
        if fe > pos {
            self.slots.shift_right_insert(pos, fe, value);
            self.runends.shift_right_insert(pos, fe, runend);
            self.extensions.shift_right_insert(pos, fe, ext);
        } else {
            self.slots.set(pos, value);
            self.runends.assign(pos, runend);
            self.extensions.assign(pos, ext);
        }
        self.used.set(fe);
        Ok(())
    }

    /// Write a fresh group into a free slot (no shifting).
    pub fn write_free_slot(&mut self, pos: usize, value: u64, ext: bool, runend: bool) {
        debug_assert!(!self.used.get(pos));
        self.slots.set(pos, value);
        self.runends.assign(pos, runend);
        self.extensions.assign(pos, ext);
        self.used.set(pos);
    }

    /// Number of used slots (O(total/64); cached by the filter for stats).
    pub fn count_used(&self) -> usize {
        self.used.count_ones()
    }

    /// Bytes of heap memory for the table proper.
    pub fn heap_size_bytes(&self) -> usize {
        self.occupieds.heap_size_bytes()
            + self.runends.heap_size_bytes()
            + self.extensions.heap_size_bytes()
            + self.used.heap_size_bytes()
            + self.slots.heap_size_bytes()
    }

    /// Clear a slot's metadata and contents (used during cluster rebuilds).
    pub fn clear_slot(&mut self, i: usize) {
        self.runends.clear(i);
        self.extensions.clear(i);
        self.used.clear(i);
        self.slots.set(i, 0);
    }
}
