//! Yes/no-list filters (paper §4.3 and §5).
//!
//! A *yes/no filter* stores a yes-list `Y` and a no-list `N`: queries for
//! `Y` answer yes, queries for `N` answer **no, guaranteed**, and all other
//! queries answer no with probability ≥ 1-ε.
//!
//! Two constructions from the paper:
//!
//! - [`YesNoFilter`] — the *dynamic* filter of §4.3: both lists live in the
//!   filter, each fingerprint tagged with a one-bit list marker
//!   (`value_bits = 1`); fingerprint collisions between lists are adapted
//!   away at insert time. Supports inserts, deletes, and moving keys
//!   between lists.
//! - [`StaticYesNo`] — the §5.1 construction used for the space bounds:
//!   only `Y` is stored; every element of `N` is queried once and any false
//!   positive adapted away. Optimal space
//!   `(1+o(1)) n log(max(1/ε, m/n)) + O(n)`.
//!
//! Both keep a small in-memory reverse map (minirun → keys) so they are
//! self-contained; the `aqf-storage` crate provides disk-backed maps.

use std::collections::HashMap;

use crate::config::{AqfConfig, FilterError};
use crate::filter::{AdaptiveQf, QueryResult};

/// Answer from a yes/no filter query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YesNoResponse {
    /// Matched a yes-list fingerprint (true members of `Y` always get this;
    /// other keys with probability ≤ ε).
    Yes,
    /// Matched a no-list fingerprint — treat as a definite no.
    No,
    /// Matched nothing — definitely in neither list.
    Absent,
}

impl YesNoResponse {
    /// Collapse to the binary yes/no answer the problem statement demands.
    #[inline]
    pub fn is_yes(&self) -> bool {
        matches!(self, YesNoResponse::Yes)
    }
}

/// Dynamic yes/no-list filter (paper §4.3).
pub struct YesNoFilter {
    pub(crate) f: AdaptiveQf,
    /// minirun id -> keys in rank order (the reverse map).
    pub(crate) map: HashMap<u64, Vec<u64>>,
    pub(crate) yes_len: usize,
    pub(crate) no_len: usize,
}

const YES: u64 = 1;
const NO: u64 = 0;

impl YesNoFilter {
    /// Create a dynamic yes/no filter with `2^qbits` slots and `rbits`-bit
    /// remainders.
    pub fn new(qbits: u32, rbits: u32) -> Result<Self, FilterError> {
        Self::with_config(AqfConfig::new(qbits, rbits))
    }

    /// Create from a config (its `value_bits` is forced to 1).
    pub fn with_config(cfg: AqfConfig) -> Result<Self, FilterError> {
        let cfg = AqfConfig {
            value_bits: 1,
            ..cfg
        };
        Ok(Self {
            f: AdaptiveQf::new(cfg)?,
            map: HashMap::new(),
            yes_len: 0,
            no_len: 0,
        })
    }

    /// Add `key` to the yes list (moving it if it was no-listed).
    pub fn insert_yes(&mut self, key: u64) -> Result<(), FilterError> {
        self.insert_tagged(key, YES)
    }

    /// Add `key` to the no list (moving it if it was yes-listed).
    pub fn insert_no(&mut self, key: u64) -> Result<(), FilterError> {
        self.insert_tagged(key, NO)
    }

    fn insert_tagged(&mut self, key: u64, tag: u64) -> Result<(), FilterError> {
        // Adapt away every fingerprint collision so that membership of each
        // list is exact with respect to the other (paper §4.3).
        #[allow(clippy::while_let_loop)] // symmetric arms read better here
        loop {
            match self.f.query(key) {
                QueryResult::Positive(hit) => {
                    let stored = self.map[&hit.minirun_id][hit.rank as usize];
                    if stored == key {
                        // Re-insert: possibly moving between lists.
                        let old = self.f.query_value(key).expect("just matched").1;
                        if old != tag {
                            self.f.set_value(&hit, tag)?;
                            if tag == YES {
                                self.yes_len += 1;
                                self.no_len -= 1;
                            } else {
                                self.no_len += 1;
                                self.yes_len -= 1;
                            }
                        }
                        return Ok(());
                    }
                    self.f.adapt(&hit, stored, key)?;
                }
                QueryResult::Negative => break,
            }
        }
        let out = self.f.insert_with_value(key, tag)?;
        debug_assert!(!out.duplicate, "collisions were adapted away above");
        let list = self.map.entry(out.minirun_id).or_default();
        list.insert(out.rank as usize, key);
        if tag == YES {
            self.yes_len += 1;
        } else {
            self.no_len += 1;
        }
        Ok(())
    }

    /// Remove `key` from whichever list holds it. Returns true if removed.
    pub fn remove(&mut self, key: u64) -> Result<bool, FilterError> {
        let QueryResult::Positive(hit) = self.f.query(key) else {
            return Ok(false);
        };
        let stored = self.map[&hit.minirun_id][hit.rank as usize];
        if stored != key {
            return Ok(false);
        }
        let tag = self.f.query_value(key).expect("just matched").1;
        let out = self
            .f
            .delete(key)?
            .expect("present fingerprint must delete");
        debug_assert!(out.removed_group);
        let list = self.map.get_mut(&hit.minirun_id).expect("map entry exists");
        list.remove(out.rank as usize);
        if list.is_empty() {
            self.map.remove(&hit.minirun_id);
        }
        if tag == YES {
            self.yes_len -= 1;
        } else {
            self.no_len -= 1;
        }
        Ok(true)
    }

    /// Query `key`.
    pub fn query(&self, key: u64) -> YesNoResponse {
        match self.f.query_value(key) {
            Some((_, v)) if v == YES => YesNoResponse::Yes,
            Some(_) => YesNoResponse::No,
            None => YesNoResponse::Absent,
        }
    }

    /// Yes-list size.
    pub fn yes_len(&self) -> usize {
        self.yes_len
    }

    /// No-list size.
    pub fn no_len(&self) -> usize {
        self.no_len
    }

    /// Bytes used by the filter table alone (the reverse map is auxiliary
    /// state, counted separately as in the paper).
    pub fn filter_size_in_bytes(&self) -> usize {
        self.f.size_in_bytes()
    }

    /// Access the underlying filter (diagnostics).
    pub fn filter(&self) -> &AdaptiveQf {
        &self.f
    }
}

/// Static yes/no filter (paper §5.1): stores only the yes list, and adapts
/// away every no-list false positive at construction time.
pub struct StaticYesNo {
    f: AdaptiveQf,
    map: HashMap<u64, Vec<u64>>,
}

impl StaticYesNo {
    /// Build from a yes list and a no list. Fails with
    /// [`FilterError::Full`] if the adaptivity space is exhausted (the
    /// failure mode analysed by paper Theorem 2 — make the filter larger).
    pub fn build(cfg: AqfConfig, yes: &[u64], no: &[u64]) -> Result<Self, FilterError> {
        let mut f = AdaptiveQf::new(cfg)?;
        let mut map: HashMap<u64, Vec<u64>> = HashMap::new();
        for &y in yes {
            let out = f.insert(y)?;
            if !out.duplicate {
                map.entry(out.minirun_id)
                    .or_default()
                    .insert(out.rank as usize, y);
            }
        }
        let mut s = Self { f, map };
        for &z in no {
            s.add_no(z)?;
        }
        Ok(s)
    }

    /// Adapt away any false positive for `z`, guaranteeing future queries
    /// for `z` answer no. (This is also how no-list items are *added*
    /// dynamically: the no list costs space only when it collides.)
    pub fn add_no(&mut self, z: u64) -> Result<(), FilterError> {
        loop {
            match self.f.query(z) {
                QueryResult::Positive(hit) => {
                    let stored = self.map[&hit.minirun_id][hit.rank as usize];
                    if stored == z {
                        return Err(FilterError::InvalidConfig(
                            "no-list key is already yes-listed",
                        ));
                    }
                    self.f.adapt(&hit, stored, z)?;
                }
                QueryResult::Negative => return Ok(()),
            }
        }
    }

    /// Query: true = "yes" (members of the yes list always; others with
    /// probability ≤ ε), false = "no" (no-list members always).
    pub fn query(&self, key: u64) -> bool {
        self.f.contains(key)
    }

    /// Bytes used by the filter table.
    pub fn size_in_bytes(&self) -> usize {
        self.f.size_in_bytes()
    }

    /// Access the underlying filter (diagnostics).
    pub fn filter(&self) -> &AdaptiveQf {
        &self.f
    }
}
