//! Filter configuration and errors.

/// Errors returned by filter operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterError {
    /// The table has no free slot left (including the overflow region).
    Full,
    /// Configuration parameters are out of range.
    InvalidConfig(&'static str),
    /// Sharding parameters leave no valid per-shard table
    /// (`ShardedAqf::new`): either `shard_bits >= qbits`, or the derived
    /// per-shard config (`qbits - shard_bits` quotient bits) fails
    /// [`AqfConfig::validate`]. Carries the offending numbers so registry
    /// misconfigurations are diagnosable from the message alone.
    InvalidShardConfig {
        /// Total quotient bits requested for the whole filter.
        qbits: u32,
        /// Requested log2 shard count.
        shard_bits: u32,
    },
    /// The referenced fingerprint no longer exists (e.g. stale hit handle).
    NotFound,
    /// `adapt` was asked to separate two keys with identical hash strings
    /// within the supported extension budget (astronomically unlikely for
    /// distinct keys; always the case for `stored_key == query_key`).
    CannotSeparate,
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::Full => write!(f, "filter is full"),
            FilterError::InvalidConfig(m) => write!(f, "invalid filter config: {m}"),
            FilterError::InvalidShardConfig { qbits, shard_bits } => write!(
                f,
                "invalid shard config: shard_bits={shard_bits} over qbits={qbits} \
                 leaves {} quotient bits per shard, which fails per-shard \
                 validation (need shard_bits < qbits and a valid per-shard config)",
                qbits.saturating_sub(*shard_bits)
            ),
            FilterError::NotFound => write!(f, "fingerprint not found"),
            FilterError::CannotSeparate => {
                write!(f, "cannot separate identical hash strings")
            }
        }
    }
}

impl std::error::Error for FilterError {}

/// Configuration for an [`crate::AdaptiveQf`].
///
/// A filter has `2^qbits` canonical slots of `rbits` remainder bits each
/// (plus `value_bits` of per-fingerprint payload, used by the yes/no-list
/// mode). The target false-positive rate on uniform queries is `2^-rbits`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AqfConfig {
    /// log2 of the number of canonical slots.
    pub qbits: u32,
    /// Remainder bits per slot; the base false-positive rate is `2^-rbits`.
    pub rbits: u32,
    /// Extra payload bits stored with each fingerprint (0 for a plain
    /// filter, 1 for yes/no-list mode).
    pub value_bits: u32,
    /// Hash seed. Rebuilding with a fresh seed discards adaptivity
    /// information (paper §4.4).
    pub seed: u64,
    /// Extra non-canonical slots appended after slot `2^qbits - 1` so runs
    /// near the end of the table can spill. `None` picks
    /// `max(64, 10 * sqrt(2^qbits))` like the CQF.
    pub overflow_slots: Option<usize>,
}

impl AqfConfig {
    /// Config with `2^qbits` slots and `rbits` remainder bits.
    pub fn new(qbits: u32, rbits: u32) -> Self {
        Self {
            qbits,
            rbits,
            value_bits: 0,
            seed: 0,
            overflow_slots: None,
        }
    }

    /// Set the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set per-fingerprint payload bits.
    pub fn with_value_bits(mut self, value_bits: u32) -> Self {
        self.value_bits = value_bits;
        self
    }

    /// Smallest config that can hold `n` items at `load` (e.g. 0.9) with
    /// false-positive rate `2^-rbits`.
    pub fn for_capacity(n: usize, load: f64, rbits: u32) -> Self {
        assert!(load > 0.0 && load <= 1.0);
        let slots = (n as f64 / load).ceil().max(64.0) as usize;
        let qbits = slots.next_power_of_two().trailing_zeros();
        Self::new(qbits, rbits)
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), FilterError> {
        if self.qbits == 0 || self.qbits > 40 {
            return Err(FilterError::InvalidConfig("qbits must be 1..=40"));
        }
        if self.rbits == 0 || self.rbits > 32 {
            return Err(FilterError::InvalidConfig("rbits must be 1..=32"));
        }
        if self.qbits + self.rbits > 64 {
            return Err(FilterError::InvalidConfig("qbits + rbits must be <= 64"));
        }
        if self.rbits + self.value_bits > 60 {
            return Err(FilterError::InvalidConfig("rbits + value_bits too large"));
        }
        Ok(())
    }

    /// Number of canonical slots.
    pub fn canonical_slots(&self) -> usize {
        1usize << self.qbits
    }

    /// Total physical slots including the overflow region.
    pub fn total_slots(&self) -> usize {
        let n = self.canonical_slots();
        let overflow = self
            .overflow_slots
            .unwrap_or_else(|| (10.0 * (n as f64).sqrt()) as usize)
            .max(64);
        n + overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_ranges() {
        assert!(AqfConfig::new(10, 9).validate().is_ok());
        assert!(AqfConfig::new(0, 9).validate().is_err());
        assert!(AqfConfig::new(10, 0).validate().is_err());
        assert!(AqfConfig::new(60, 9).validate().is_err());
        assert!(AqfConfig::new(40, 32).validate().is_err());
    }

    #[test]
    fn capacity_sizing() {
        let c = AqfConfig::for_capacity(900, 0.9, 9);
        assert_eq!(c.qbits, 10);
        assert!(c.total_slots() >= 1024 + 64);
    }
}
