//! Exhaustive structural invariant checking, used by tests after every
//! mutation and available to users behind a debug call.

use crate::filter::AdaptiveQf;

impl AdaptiveQf {
    /// Validate every structural invariant of the table. O(total slots);
    /// intended for tests and debugging, not production hot paths.
    pub fn validate(&self) -> Result<(), String> {
        let t = &self.t;
        let err = |m: String| -> Result<(), String> { Err(m) };

        // 1. Unused slots carry no metadata.
        for i in 0..t.total {
            if !t.is_used(i) {
                if t.is_runend(i) {
                    return err(format!("slot {i}: unused but runend set"));
                }
                if t.is_extension(i) {
                    return err(format!("slot {i}: unused but extension set"));
                }
            }
        }
        // 2. Occupied bits only on canonical slots, and imply a used slot.
        for i in t.canonical..t.total {
            if t.occupied(i) {
                return err(format!("slot {i}: occupied bit beyond canonical range"));
            }
        }

        // 3. Global counts: one masked runend per occupied quotient.
        let occupied_count = t.b.count_ones(crate::table::OCC);
        let masked_runends = (0..t.total).filter(|&i| t.is_masked_runend(i)).count();
        if occupied_count != masked_runends {
            return err(format!(
                "{occupied_count} occupied quotients but {masked_runends} masked runends"
            ));
        }

        // 4. Walk clusters and check run structure, collecting every run's
        //    (quotient, physical end) for the offset validation below.
        let mut decoded_groups: u64 = 0;
        let mut decoded_count: u64 = 0;
        let mut i = 0usize;
        let mut seen_occupied = 0usize;
        let mut run_ends: Vec<(usize, usize)> = Vec::new();
        while i < t.total {
            if !t.is_used(i) {
                i += 1;
                continue;
            }
            let c = i;
            let ce = t.next_free(c).unwrap_or(t.total);
            // Cluster starts must be canonical: first run's quotient == c.
            if c >= t.canonical {
                return err(format!("cluster start {c} beyond canonical slots"));
            }
            if !t.occupied(c) {
                return err(format!("cluster start {c} is not an occupied quotient"));
            }
            let mut cursor = c;
            let mut prev_q: Option<usize> = None;
            for q in c..ce {
                if !t.occupied(q) {
                    continue;
                }
                seen_occupied += 1;
                if let Some(pq) = prev_q {
                    if pq >= q {
                        return err(format!("runs out of quotient order at {q}"));
                    }
                }
                prev_q = Some(q);
                if cursor < q {
                    return err(format!(
                        "run of quotient {q} starts before its canonical slot"
                    ));
                }
                // Decode this run's groups.
                let mut prev_rem: Option<u64> = None;
                loop {
                    if cursor >= ce {
                        return err(format!("run of quotient {q} overruns its cluster"));
                    }
                    if t.is_extension(cursor) {
                        return err(format!("group start {cursor} has extension bit"));
                    }
                    let ext = t.group_extent(cursor);
                    if ext.end > ce {
                        return err(format!("group at {cursor} spills past cluster end {ce}"));
                    }
                    let rem = t.remainder_at(cursor);
                    if let Some(pr) = prev_rem {
                        if rem < pr {
                            return err(format!(
                                "remainders out of order in run {q} at slot {cursor}"
                            ));
                        }
                    }
                    prev_rem = Some(rem);
                    // Counter digits: most significant digit nonzero.
                    if ext.ctr_len() > 0 && t.slot(ext.end - 1) == 0 {
                        return err(format!("group at {cursor}: zero top counter digit"));
                    }
                    decoded_groups += 1;
                    decoded_count += self.group_count(&ext);
                    let was_end = t.is_masked_runend(cursor);
                    cursor = ext.end;
                    if was_end {
                        break;
                    }
                }
                run_ends.push((q, cursor));
            }
            if cursor != ce {
                return err(format!(
                    "cluster [{c},{ce}) not fully consumed by runs (cursor {cursor})"
                ));
            }
            i = ce;
        }
        if seen_occupied != occupied_count {
            return err(format!(
                "decoded {seen_occupied} occupied quotients, bitmap says {occupied_count}"
            ));
        }

        // 5. Cached statistics agree with the structure.
        if decoded_groups != self.groups {
            return err(format!(
                "groups stat {} != decoded {}",
                self.groups, decoded_groups
            ));
        }
        if decoded_count != self.total_count {
            return err(format!(
                "total_count stat {} != decoded {}",
                self.total_count, decoded_count
            ));
        }
        let used_count = t.count_used() as u64;
        if used_count != self.slots_used {
            return err(format!(
                "slots_used stat {} != used bits {}",
                self.slots_used, used_count
            ));
        }

        // 6. Every cached block offset equals its definition: the distance
        //    from the block base B to one past the physical end of the run
        //    of the last occupied quotient <= B-1 (clamped at 0). One
        //    pointer sweep over the runs collected in step 4.
        let mut idx = 0usize;
        let mut last_end = 0usize;
        for blk in 0..t.b.blocks() {
            let base = blk << 6;
            while idx < run_ends.len() && run_ends[idx].0 < base {
                last_end = run_ends[idx].1;
                idx += 1;
            }
            let expect = if blk == 0 || idx == 0 {
                0
            } else {
                last_end.saturating_sub(base)
            };
            if t.b.offset(blk) != expect {
                return err(format!(
                    "block {blk} (base {base}): cached offset {} != structural {expect}",
                    t.b.offset(blk)
                ));
            }
        }
        Ok(())
    }

    /// Panic (with the violation message) if any invariant is broken.
    pub fn assert_valid(&self) {
        if let Err(m) = self.validate() {
            panic!("AdaptiveQf invariant violated: {m}");
        }
    }

    /// Element-wise equivalence of the O(1) offset-based navigation
    /// against the retained scan-based reference, across every occupied
    /// quotient (`run_range`), every shifted unoccupied quotient
    /// (`new_run_pos`), and every block offset (`offset_ref`).
    ///
    /// Test/debug instrumentation for the layout-equivalence proptests;
    /// O(total × cluster length).
    #[doc(hidden)]
    pub fn check_nav_equivalence(&self) -> Result<(), String> {
        let t = &self.t;
        for blk in 0..t.b.blocks() {
            let (got, want) = (t.b.offset(blk), t.offset_ref(blk));
            if got != want {
                return Err(format!("block {blk}: offset {got} != reference {want}"));
            }
        }
        for q in 0..t.canonical {
            if t.occupied(q) {
                let (fast, slow) = (t.run_range(q), t.run_range_ref(q));
                if fast != slow {
                    return Err(format!(
                        "run_range({q}): offset-based {fast:?} != scan-based {slow:?}"
                    ));
                }
            } else if t.is_used(q) {
                let (fast, slow) = (t.new_run_pos(q), t.new_run_pos_ref(q));
                if fast != slow {
                    return Err(format!(
                        "new_run_pos({q}): offset-based {fast} != scan-based {slow}"
                    ));
                }
            }
        }
        Ok(())
    }
}
