//! Fingerprint extraction from a key's infinite hash string.
//!
//! The AdaptiveQF views `h(x)` as an unbounded bit string (see
//! [`aqf_bits::hash::HashSeq`]). The first `q` bits are the *quotient*, the
//! next `r` bits the *remainder*, and every further `r`-bit chunk is a
//! potential *extension*. Adaptation appends extension chunks until the
//! stored fingerprint stops being a prefix of the offending query's hash
//! string.

use aqf_bits::hash::HashSeq;

/// A key's fingerprint decomposition under a given filter geometry.
///
/// The fixed parts of the decomposition — quotient and remainder — are
/// extracted **once** at construction and cached: every insert and query
/// reads them several times (run location, ordering comparisons, the
/// minirun id), and re-deriving them from the hash string on each call
/// put two bit-extraction chains on the hot path per read. Extension
/// chunks stay lazy (only adaptation walks past the first hash word).
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    seq: HashSeq,
    qbits: u32,
    rbits: u32,
    quotient: usize,
    remainder: u64,
}

impl Fingerprint {
    /// Decompose `key` under `seed` for a `(qbits, rbits)` filter.
    #[inline]
    pub fn new(key: u64, seed: u64, qbits: u32, rbits: u32) -> Self {
        let seq = HashSeq::new(key, seed);
        Self {
            seq,
            qbits,
            rbits,
            quotient: seq.bits_msb(0, qbits) as usize,
            remainder: seq.bits_msb(qbits as u64, rbits),
        }
    }

    /// The canonical slot index: the hash string's *high-order* `q` bits
    /// (MSB-first positions `[0, q)`), as in the quotient filter.
    #[inline]
    pub fn quotient(&self) -> usize {
        self.quotient
    }

    /// The base remainder: MSB-first hash bits `[q, q+r)`.
    #[inline]
    pub fn remainder(&self) -> u64 {
        self.remainder
    }

    /// Extension chunk `i` (0-based): MSB-first hash bits
    /// `[q + (i+1)r, q + (i+2)r)`.
    #[inline]
    pub fn chunk(&self, i: u64) -> u64 {
        let start = self.qbits as u64 + self.rbits as u64 * (i + 1);
        self.seq.bits_msb(start, self.rbits)
    }

    /// The underlying hash bit string.
    #[inline]
    pub fn seq(&self) -> &HashSeq {
        &self.seq
    }

    /// The minirun ID: quotient and remainder packed into one `u64`
    /// (`quotient << rbits | remainder`) — the fixed part of a fingerprint
    /// that the reverse map is keyed on.
    #[inline]
    pub fn minirun_id(&self) -> u64 {
        ((self.quotient() as u64) << self.rbits) | self.remainder()
    }
}

/// Unpack a minirun ID back into (quotient, remainder).
#[inline]
pub fn split_minirun_id(id: u64, rbits: u32) -> (usize, u64) {
    ((id >> rbits) as usize, id & aqf_bits::word::bitmask(rbits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_is_prefix_consistent() {
        let fp = Fingerprint::new(12345, 7, 10, 9);
        let seq = HashSeq::new(12345, 7);
        assert_eq!(fp.quotient() as u64, seq.bits_msb(0, 10));
        assert_eq!(fp.remainder(), seq.bits_msb(10, 9));
        assert_eq!(fp.chunk(0), seq.bits_msb(19, 9));
        assert_eq!(fp.chunk(1), seq.bits_msb(28, 9));
        // Minirun ID is the numeric value of the 19-bit hash prefix.
        assert_eq!(fp.minirun_id(), seq.bits_msb(0, 19));
    }

    #[test]
    fn minirun_id_roundtrip() {
        for key in [0u64, 1, 999, u64::MAX] {
            let fp = Fingerprint::new(key, 3, 12, 9);
            let (q, r) = split_minirun_id(fp.minirun_id(), 9);
            assert_eq!(q, fp.quotient());
            assert_eq!(r, fp.remainder());
        }
    }

    #[test]
    fn chunks_are_seed_sensitive() {
        let a = Fingerprint::new(42, 1, 10, 9);
        let b = Fingerprint::new(42, 2, 10, 9);
        // With overwhelming probability at least one of these differs.
        assert!(
            a.quotient() != b.quotient()
                || a.remainder() != b.remainder()
                || a.chunk(0) != b.chunk(0)
        );
    }
}
