//! Thread-parallel AdaptiveQF (paper §6.3, Fig. 4).
//!
//! The paper's C implementation shards a single table with one spin lock
//! per 4096-slot block, acquiring two consecutive locks per insert. In
//! safe Rust we get the same scaling shape with a *partitioned* design:
//! keys are routed by independent hash bits to `2^shard_bits` sub-filters,
//! each guarded by its own [`parking_lot::Mutex`]. Contention is
//! equivalent to the block-lock scheme at equal shard counts (uniform
//! routing), and the union of shards is a valid adaptive filter. The
//! deviation is recorded in DESIGN.md.
//!
//! For heavy traffic, prefer the batch operations
//! ([`ShardedAqf::insert_batch`], [`ShardedAqf::query_batch`],
//! [`ShardedAqf::contains_batch`]): a batch is grouped by destination
//! shard and each shard's lock is taken once per batch instead of once
//! per key, with the per-shard sub-batch processed in quotient-sorted
//! order (see the batch section below and `AdaptiveQf`'s batch docs).
//!
//! **Lock-free reads.** Since PR 6, reads don't take the shard mutex at
//! all on the common path. Each shard pairs its mutex with an
//! [`aqf_bits::SeqLock`] and an [`AqfReader`] aliasing the shard's block
//! arena: [`ShardedAqf::query`] reads the version counter, probes the
//! arena optimistically, and re-checks the counter — retrying on a torn
//! read and falling back to the mutex after [`OPTIMISTIC_RETRIES`]
//! failures (a writer convoy). Writers take the mutex as before plus a
//! seqlock write section around the mutation. The memory-ordering
//! contract lives in [`aqf_bits::seqlock`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use aqf_bits::hash::mix64;
use aqf_bits::SeqLock;
use parking_lot::Mutex;

use crate::config::{AqfConfig, FilterError};
use crate::filter::{AdaptiveQf, AqfStats, Hit, InsertOutcome, QueryResult};
use crate::probe::AqfReader;

const ROUTE_SALT: u64 = 0x5bd1_e995_c6a4_a793;

/// Optimistic attempts per point read before falling back to the mutex.
pub const OPTIMISTIC_RETRIES: usize = 8;

/// Optimistic attempts per *batch group* before falling back: a whole
/// group re-probes on failure, so give up sooner than the point path.
const BATCH_OPTIMISTIC_RETRIES: usize = 2;

/// One shard: the filter under its writer mutex, plus the seqlock and
/// arena-aliasing reader that let queries skip the mutex entirely.
///
/// **Reader epochs.** A shard's table arena is replaced whenever its
/// filter grows, so the reader cannot be a single fixed handle. Instead
/// the shard holds a fixed-capacity vector of [`OnceLock`] reader slots
/// (capacity = the maximum number of grows the geometry admits, so the
/// vector never reallocates and published `&AqfReader` borrows stay valid
/// for the shard's lifetime) plus an atomic index naming the live epoch.
/// Writers publish a new epoch *inside* their mutex + seqlock write
/// section ([`Shard::refresh_reader`]); optimistic readers load the index
/// with `Acquire` after `read_begin`, so a probe that raced a grow either
/// sees the new epoch or fails seqlock validation and retries.
pub(crate) struct Shard {
    /// Even/odd version counter; writers (serialized by `qf`'s mutex)
    /// hold a write section for the duration of every mutation.
    pub(crate) seq: SeqLock,
    /// Reader epochs; slot 0 is the construction-time reader, each grow
    /// fills the next slot. Fixed capacity — never reallocates.
    readers: Vec<OnceLock<AqfReader>>,
    /// Index of the live epoch in `readers`.
    reader_idx: AtomicUsize,
    pub(crate) qf: Mutex<AdaptiveQf>,
}

impl Shard {
    pub(crate) fn new(qf: AdaptiveQf) -> Self {
        // Each grow trades one remainder bit for a quotient bit and
        // requires rbits >= 2, so a filter born with `r` remainder bits
        // can grow at most r - 1 times: r epochs suffice, forever.
        let cap = (qf.config().rbits as usize).max(1);
        let readers: Vec<OnceLock<AqfReader>> = (0..cap).map(|_| OnceLock::new()).collect();
        assert!(readers[0].set(qf.reader()).is_ok(), "fresh slot 0 is empty");
        Self {
            seq: SeqLock::new(),
            readers,
            reader_idx: AtomicUsize::new(0),
            qf: Mutex::new(qf),
        }
    }

    /// The live reader epoch. The `Acquire` load pairs with the `Release`
    /// publish in [`Shard::refresh_reader`].
    #[inline]
    fn current_reader(&self) -> &AqfReader {
        let idx = self.reader_idx.load(Ordering::Acquire);
        self.readers[idx]
            .get()
            .expect("published reader epoch is initialized")
    }

    /// Publish a fresh reader epoch if `qf`'s arena or geometry moved out
    /// from under the live one (i.e. the filter grew). Must be called
    /// with the shard mutex and a seqlock write section held.
    fn refresh_reader(&self, qf: &AdaptiveQf) {
        let idx = self.reader_idx.load(Ordering::Relaxed);
        if self.readers[idx].get().is_some_and(|r| r.tracks(qf)) {
            return;
        }
        let next = idx + 1;
        assert!(
            next < self.readers.len(),
            "more grows than the initial geometry admits"
        );
        assert!(
            self.readers[next].set(qf.reader()).is_ok(),
            "epochs advance only under the shard mutex"
        );
        self.reader_idx.store(next, Ordering::Release);
    }
}

/// A partitioned, thread-safe AdaptiveQF.
pub struct ShardedAqf {
    pub(crate) shards: Vec<Shard>,
    pub(crate) shard_bits: u32,
    pub(crate) shard_cfg: AqfConfig,
    pub(crate) seed: u64,
}

impl ShardedAqf {
    /// Create a filter with `2^cfg.qbits` total slots split across
    /// `2^shard_bits` shards.
    pub fn new(cfg: AqfConfig, shard_bits: u32) -> Result<Self, FilterError> {
        // Surface the sharding arithmetic in the error: a registry-level
        // FilterSpec with tiny qbits and default shard_bits fails *here*,
        // far from the numbers that caused it.
        let invalid = FilterError::InvalidShardConfig {
            qbits: cfg.qbits,
            shard_bits,
        };
        if shard_bits >= cfg.qbits {
            return Err(invalid);
        }
        let shard_cfg = AqfConfig {
            qbits: cfg.qbits - shard_bits,
            ..cfg
        };
        shard_cfg.validate().map_err(|e| match e {
            FilterError::InvalidConfig(_) => invalid,
            other => other,
        })?;
        let n = 1usize << shard_bits;
        let shards = (0..n)
            .map(|_| AdaptiveQf::new(shard_cfg).map(Shard::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            shard_bits,
            shard_cfg,
            seed: cfg.seed,
        })
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// log2 of the shard count.
    #[inline]
    pub fn shard_bits(&self) -> u32 {
        self.shard_bits
    }

    /// The *base* per-shard configuration (at construction each shard has
    /// `qbits - shard_bits` quotient bits; seed and value width stay
    /// shared forever, but a shard that auto-grew has more quotient bits
    /// and fewer remainder bits than this base).
    #[inline]
    pub fn shard_config(&self) -> &AqfConfig {
        &self.shard_cfg
    }

    /// The shard `key` routes to. A [`Hit`] returned by [`Self::query`]
    /// is local to this shard; pair them to address an external reverse
    /// map unambiguously.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        self.route(key)
    }

    #[inline]
    fn route(&self, key: u64) -> usize {
        (mix64(key, self.seed ^ ROUTE_SALT) >> (64 - self.shard_bits)) as usize
    }

    /// Run a mutation against shard `i` with both the writer mutex and a
    /// seqlock write section held — the one entry point every write path
    /// funnels through, so no mutation can escape the version counter.
    #[inline]
    fn with_write<T>(&self, i: usize, f: impl FnOnce(&mut AdaptiveQf) -> T) -> T {
        let sh = &self.shards[i];
        let mut qf = sh.qf.lock();
        let _section = sh.seq.write_guard();
        let out = f(&mut qf);
        // If the mutation grew the shard (new arena / new geometry),
        // publish a fresh reader epoch before the write section closes —
        // only this shard pauses; every other shard keeps serving
        // lock-free reads throughout.
        sh.refresh_reader(&qf);
        out
    }

    /// Insert `key` (see [`AdaptiveQf::insert`]).
    pub fn insert(&self, key: u64) -> Result<InsertOutcome, FilterError> {
        self.with_write(self.route(key), |f| f.insert(key))
    }

    /// Query `key` (see [`AdaptiveQf::query`]). Lock-free on the common
    /// path: probes the shard's arena under seqlock validation and only
    /// takes the shard mutex after [`OPTIMISTIC_RETRIES`] torn reads.
    pub fn query(&self, key: u64) -> QueryResult {
        let shard = self.route(key);
        match self.query_optimistic_in(shard, key) {
            Some(r) => r,
            None => self.shards[shard].qf.lock().query(key),
        }
    }

    /// The optimistic half of [`Self::query`]: `None` means every retry
    /// saw a writer mid-mutation and the caller must fall back to the
    /// locked path. Public (hidden) so tests and benches can observe the
    /// fallback boundary directly.
    #[doc(hidden)]
    pub fn query_optimistic_only(&self, key: u64) -> Option<QueryResult> {
        self.query_optimistic_in(self.route(key), key)
    }

    fn query_optimistic_in(&self, shard: usize, key: u64) -> Option<QueryResult> {
        let sh = &self.shards[shard];
        for _ in 0..OPTIMISTIC_RETRIES {
            let Some(stamp) = sh.seq.read_begin() else {
                std::hint::spin_loop();
                continue;
            };
            // Load the reader epoch *after* read_begin, and re-derive the
            // fingerprint from it each attempt: a concurrent grow changes
            // the geometry, and the old epoch's fingerprint would probe
            // the new arena wrongly (validation catches the race either
            // way; re-loading just makes the retry use the right epoch).
            let probe = sh.current_reader().query(key);
            if sh.seq.read_validate(stamp) {
                match probe {
                    Ok(r) => return Some(r),
                    // A validated probe saw one consistent state; `Torn`
                    // here would be a probe bug. Fall back defensively in
                    // release, fail loudly under test.
                    Err(torn) => {
                        debug_assert!(false, "validated probe reported {torn:?}");
                        return None;
                    }
                }
            }
        }
        None
    }

    /// The pre-PR6 read path: route, lock the shard, query. Kept public
    /// for contention benchmarking (lock-free vs locked reads) and as a
    /// correctness oracle in the concurrency suites.
    pub fn query_locked(&self, key: u64) -> QueryResult {
        self.shards[self.route(key)].qf.lock().query(key)
    }

    /// True if `key` possibly present.
    pub fn contains(&self, key: u64) -> bool {
        self.query(key).is_positive()
    }

    /// Adapt the fingerprint that falsely matched `query_key`
    /// (see [`AdaptiveQf::adapt`]). `hit` must come from a query for
    /// `query_key` on this filter.
    pub fn adapt(&self, hit: &Hit, stored_key: u64, query_key: u64) -> Result<u32, FilterError> {
        self.with_write(self.route(query_key), |f| {
            f.adapt(hit, stored_key, query_key)
        })
    }

    /// Delete one copy of `key` (see [`AdaptiveQf::delete`]).
    pub fn delete(&self, key: u64) -> Result<Option<crate::DeleteOutcome>, FilterError> {
        self.with_write(self.route(key), |f| f.delete(key))
    }

    /// Force shard `i`'s version counter odd (as if a writer were parked
    /// mid-mutation forever), so every optimistic read exhausts its
    /// retries and exercises the locked fallback. Test-only by contract.
    #[doc(hidden)]
    pub fn debug_poison_shard(&self, i: usize) {
        self.shards[i].seq.test_poison();
    }

    /// Undo [`Self::debug_poison_shard`].
    #[doc(hidden)]
    pub fn debug_unpoison_shard(&self, i: usize) {
        self.shards[i].seq.test_unpoison();
    }

    // ------------------------------------------------------------------
    // Batch operations
    //
    // Design: a batch is grouped by destination shard first (a stable
    // counting sort, preserving input order within each group), then each
    // shard's lock is taken *once per batch* and the shard processes its
    // whole group through [`AdaptiveQf::insert_batch`] /
    // [`AdaptiveQf::query_batch`] (which walk the shard table in
    // quotient-range order). Per-key locking pays one lock round-trip
    // plus route hash per key and serializes contending threads at key
    // granularity; batching amortizes both, which is where the ≥4-thread
    // throughput win in `fig10_batch` comes from.
    // ------------------------------------------------------------------

    /// Group `keys`' indices by destination shard with a counting sort
    /// (stable, so input order is preserved within each shard and
    /// per-shard batches match sequential order). Returns `(starts,
    /// idxs)`: shard `s` owns `idxs[starts[s]..starts[s + 1]]`.
    fn group_by_shard(&self, keys: &[u64]) -> (Vec<u32>, Vec<u32>) {
        debug_assert!(keys.len() <= u32::MAX as usize);
        let nsh = self.shards.len();
        let routes: Vec<u32> = keys.iter().map(|&k| self.route(k) as u32).collect();
        let mut starts = vec![0u32; nsh + 1];
        for &r in &routes {
            starts[r as usize + 1] += 1;
        }
        for s in 0..nsh {
            starts[s + 1] += starts[s];
        }
        let mut cursor = starts.clone();
        let mut idxs = vec![0u32; keys.len()];
        for (i, &r) in routes.iter().enumerate() {
            idxs[cursor[r as usize] as usize] = i as u32;
            cursor[r as usize] += 1;
        }
        (starts, idxs)
    }

    /// Shared *writer* batch dispatch: group the batch by shard, and run
    /// `f` once per non-empty shard with that shard's mutex and a seqlock
    /// write section held, the shard's keys (input order), and their
    /// whole-batch indices.
    fn for_each_shard_group(
        &self,
        keys: &[u64],
        mut f: impl FnMut(usize, &mut AdaptiveQf, &[u64], &[u32]) -> Result<(), FilterError>,
    ) -> Result<(), FilterError> {
        let (starts, idxs) = self.group_by_shard(keys);
        let mut shard_keys = Vec::new();
        for shard in 0..self.shards.len() {
            let group = &idxs[starts[shard] as usize..starts[shard + 1] as usize];
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&i| keys[i as usize]));
            self.with_write(shard, |qf| f(shard, qf, &shard_keys, group))?;
        }
        Ok(())
    }

    /// Shared *reader* batch dispatch: like [`Self::for_each_shard_group`]
    /// but each group first tries `BATCH_OPTIMISTIC_RETRIES` seqlock-
    /// validated passes over the shard's arena via `probe` (writing
    /// scratch results that are only committed if validation succeeds),
    /// and locks the shard for `locked` only when every pass tore.
    fn for_each_shard_group_read<T>(
        &self,
        keys: &[u64],
        out: &mut [T],
        mut probe: impl FnMut(&AqfReader, &[u64], &[u32], &mut [T]) -> Result<(), crate::probe::Torn>,
        mut locked: impl FnMut(&AdaptiveQf, &[u64], &[u32], &mut [T]),
    ) {
        let (starts, idxs) = self.group_by_shard(keys);
        let mut shard_keys = Vec::new();
        'shards: for shard in 0..self.shards.len() {
            let group = &idxs[starts[shard] as usize..starts[shard + 1] as usize];
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&i| keys[i as usize]));
            let sh = &self.shards[shard];
            for _ in 0..BATCH_OPTIMISTIC_RETRIES {
                let Some(stamp) = sh.seq.read_begin() else {
                    std::hint::spin_loop();
                    continue;
                };
                // Epoch loaded after read_begin — see query_optimistic_in.
                let r = probe(sh.current_reader(), &shard_keys, group, out);
                if sh.seq.read_validate(stamp) {
                    match r {
                        Ok(()) => continue 'shards,
                        Err(torn) => {
                            debug_assert!(false, "validated batch probe reported {torn:?}");
                            break;
                        }
                    }
                }
            }
            locked(&sh.qf.lock(), &shard_keys, group, out);
        }
    }

    /// Insert every key of `keys`, locking each destination shard once
    /// and invoking `sink(input_index, shard, outcome)` for each key **as
    /// it lands** — including keys processed before a mid-batch error —
    /// so external per-key state (shadow maps, reverse maps) stays
    /// exactly consistent with the filter even on partial failure. The
    /// shard index is the same value [`Self::shard_of`] would compute,
    /// handed over for free so callers need not re-hash the route.
    pub fn insert_batch_with(
        &self,
        keys: &[u64],
        mut sink: impl FnMut(usize, usize, InsertOutcome),
    ) -> Result<(), FilterError> {
        self.for_each_shard_group(keys, |shard, f, shard_keys, group| {
            f.insert_batch_with(shard_keys, |j, out| sink(group[j] as usize, shard, out))
        })
    }

    /// Insert every key of `keys`, locking each destination shard once.
    /// Outcomes are element-wise identical to per-key [`Self::insert`]
    /// calls in input order (absent interleaving writers). On error a
    /// subset of the batch has been inserted; the filter remains valid
    /// (use [`Self::insert_batch_with`] if partial-failure accounting
    /// matters).
    pub fn insert_batch(&self, keys: &[u64]) -> Result<Vec<InsertOutcome>, FilterError> {
        let mut out = vec![
            InsertOutcome {
                minirun_id: 0,
                rank: 0,
                duplicate: false,
            };
            keys.len()
        ];
        self.insert_batch_with(keys, |i, _shard, o| out[i] = o)?;
        Ok(out)
    }

    /// Query every key of `keys` in input order; each [`Hit`] is local
    /// to the shard [`Self::shard_of`] maps its key to, exactly as with
    /// [`Self::query`]. Lock-free on the common path: each shard group
    /// probes under one seqlock read section, and only a shard whose
    /// probes keep tearing is read under its mutex.
    pub fn query_batch(&self, keys: &[u64]) -> Vec<QueryResult> {
        let mut out = vec![QueryResult::Negative; keys.len()];
        self.for_each_shard_group_read(
            keys,
            &mut out,
            |reader, shard_keys, group, out| {
                for (j, &k) in shard_keys.iter().enumerate() {
                    out[group[j] as usize] = reader.query(k)?;
                }
                Ok(())
            },
            |qf, shard_keys, group, out| qf.query_batch_scatter(shard_keys, group, out),
        );
        out
    }

    /// Batched [`Self::contains`]: membership bits in input order.
    /// Lock-free on the common path, like [`Self::query_batch`].
    pub fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        let mut out = vec![false; keys.len()];
        self.for_each_shard_group_read(
            keys,
            &mut out,
            |reader, shard_keys, group, out| {
                for (j, &k) in shard_keys.iter().enumerate() {
                    out[group[j] as usize] = reader.query(k)?.is_positive();
                }
                Ok(())
            },
            |qf, shard_keys, group, out| qf.contains_batch_scatter(shard_keys, group, out),
        );
        out
    }

    /// Total multiset size across shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.qf.lock().len()).sum()
    }

    /// True if no shard holds anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap bytes across shards.
    pub fn size_in_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.qf.lock().size_in_bytes())
            .sum()
    }

    /// Enable per-shard auto-grow at `threshold` (or disable with
    /// `None`): each shard doubles independently when its own load factor
    /// crosses the threshold, rebuilding under its mutex + seqlock write
    /// section while every other shard keeps serving lock-free reads.
    pub fn set_auto_grow(&self, threshold: Option<f64>) -> Result<(), FilterError> {
        for i in 0..self.shards.len() {
            self.with_write(i, |f| f.set_auto_grow(threshold))?;
        }
        Ok(())
    }

    /// True while every shard can still double (see
    /// [`AdaptiveQf::supports_grow`]); shards grow independently, so this
    /// reflects the least-grown shard.
    pub fn supports_grow(&self) -> bool {
        self.shards.iter().all(|s| s.qf.lock().supports_grow())
    }

    /// Canonical slot capacity summed across shards (grows over time once
    /// auto-grow is enabled).
    pub fn capacity(&self) -> u64 {
        self.shards.iter().map(|s| s.qf.lock().capacity()).sum()
    }

    /// Aggregated operation statistics across shards
    /// (see [`AdaptiveQf::stats`]).
    pub fn stats(&self) -> AqfStats {
        let mut total = AqfStats::default();
        for s in &self.shards {
            let st = s.qf.lock().stats();
            total.adaptations += st.adaptations;
            total.extension_slots += st.extension_slots;
            total.counter_slots += st.counter_slots;
            total.grows += st.grows;
        }
        total
    }

    /// Number of distinct fingerprint groups stored across shards.
    pub fn distinct_fingerprints(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.qf.lock().distinct_fingerprints())
            .sum()
    }

    /// Physical slots in use across shards.
    pub fn slots_in_use(&self) -> u64 {
        self.shards.iter().map(|s| s.qf.lock().slots_in_use()).sum()
    }

    /// Used slots over canonical slots — the paper's load factor, computed
    /// over the whole partitioned table. Sums each shard's *current*
    /// canonical slot count (shards grow independently, so the uniform
    /// `shards × base-capacity` shortcut would overstate load after any
    /// grow).
    pub fn load_factor(&self) -> f64 {
        let mut used = 0u64;
        let mut canonical = 0u64;
        for s in &self.shards {
            let f = s.qf.lock();
            used += f.slots_in_use();
            canonical += f.capacity();
        }
        used as f64 / canonical as f64
    }

    /// Bits of table space per stored fingerprint group
    /// (see [`AdaptiveQf::bits_per_item`]).
    pub fn bits_per_item(&self) -> f64 {
        let groups = self.distinct_fingerprints();
        if groups == 0 {
            return 0.0;
        }
        (self.size_in_bytes() * 8) as f64 / groups as f64
    }

    /// Run a closure against a specific shard (test/diagnostic hook).
    pub fn with_shard<T>(&self, i: usize, f: impl FnOnce(&AdaptiveQf) -> T) -> T {
        f(&self.shards[i].qf.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn parallel_inserts_then_queries() {
        let f = Arc::new(ShardedAqf::new(AqfConfig::new(14, 9), 3).unwrap());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        f.insert(t * 1_000_000 + i).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(f.len(), 8000);
        for t in 0..4u64 {
            for i in (0..2000u64).step_by(97) {
                assert!(f.contains(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn shard_bits_must_fit_and_error_carries_the_numbers() {
        let err = ShardedAqf::new(AqfConfig::new(4, 9), 4).err().unwrap();
        assert_eq!(
            err,
            FilterError::InvalidShardConfig {
                qbits: 4,
                shard_bits: 4
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("shard_bits=4") && msg.contains("qbits=4"),
            "undiagnosable message: {msg}"
        );
        // A per-shard config failing validate() (qbits + rbits > 64 only
        // after subtraction is fine; rbits too wide fails regardless) is
        // reported with the sharding numbers too.
        let err = ShardedAqf::new(AqfConfig::new(44, 9), 2).err().unwrap();
        assert_eq!(
            err,
            FilterError::InvalidShardConfig {
                qbits: 44,
                shard_bits: 2
            }
        );
    }

    #[test]
    fn diagnostics_match_unsharded_semantics() {
        let cfg = AqfConfig::new(12, 9).with_seed(5);
        let sharded = ShardedAqf::new(cfg, 2).unwrap();
        let mut flat = AdaptiveQf::new(cfg).unwrap();
        for k in 0..3000u64 {
            sharded.insert(k).unwrap();
            flat.insert(k).unwrap();
        }
        assert_eq!(sharded.len(), flat.len());
        // Distinct fingerprints and slot usage agree with per-shard sums
        // and land in the same ballpark as the flat filter (hash routing
        // differs, so only the totals' structure is comparable).
        assert_eq!(
            sharded.distinct_fingerprints(),
            (0..sharded.shard_count())
                .map(|i| sharded.with_shard(i, |f| f.distinct_fingerprints()))
                .sum::<u64>()
        );
        assert!(sharded.slots_in_use() >= sharded.distinct_fingerprints());
        let lf = sharded.load_factor();
        assert!(lf > 0.5 && lf < 1.0, "load factor {lf} out of range");
        assert!(sharded.bits_per_item() > 9.0);
        // Routing is stable and in range.
        for k in (0..3000u64).step_by(111) {
            assert!(sharded.shard_of(k) < sharded.shard_count());
            assert_eq!(sharded.shard_of(k), sharded.shard_of(k));
        }
        assert_eq!(sharded.stats().adaptations, 0);
    }
}
