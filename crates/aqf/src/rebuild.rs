//! Cluster decoding and rebuilding: deletes, enumeration, and the
//! delete-time fingerprint shortening of paper §4.3.
//!
//! Deletes in a quotient filter must re-compact the cluster so that later
//! runs slide back toward their canonical slots. Rather than an in-place
//! shift with many edge cases (runend relocation, extras, counters), we
//! decode the whole cluster into its logical runs, edit them, and re-place
//! them with the Robin Hood rule (`start = max(quotient, cursor)`).
//! Clusters are short (expected O(1/(1-α)²) slots), so this is cheap.

use crate::config::FilterError;
use crate::filter::{AdaptiveQf, DeleteOutcome, Entry};
use crate::fingerprint::Fingerprint;

/// A decoded fingerprint group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct GroupData {
    /// Raw remainder-slot contents (remainder | value << rbits).
    pub rem_slot: u64,
    /// Extension chunk values, in order.
    pub exts: Vec<u64>,
    /// Multiset count (>= 1).
    pub count: u64,
}

/// A decoded run: one occupied quotient and its groups in table order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct RunData {
    pub quotient: usize,
    pub groups: Vec<GroupData>,
}

impl AdaptiveQf {
    /// Decode the cluster starting at `c` (a cluster start). Returns the
    /// runs and the cluster's end slot (exclusive).
    pub(crate) fn decode_cluster(&self, c: usize) -> (Vec<RunData>, usize) {
        debug_assert!(self.t.is_used(c));
        debug_assert!(c == 0 || !self.t.is_used(c - 1));
        let ce = self.t.next_free(c).unwrap_or(self.t.total);
        let width = self.cfg.rbits + self.cfg.value_bits;
        let mut runs = Vec::new();
        let mut cursor = c;
        for q in c..ce {
            if !self.t.occupied(q) {
                continue;
            }
            let mut groups = Vec::new();
            loop {
                let ext = self.t.group_extent(cursor);
                let rem_slot = self.t.slot(cursor);
                let exts: Vec<u64> = (ext.start + 1..ext.ext_end)
                    .map(|s| self.t.slot(s))
                    .collect();
                let mut count: u64 = 1;
                for (k, s) in (ext.ext_end..ext.end).enumerate() {
                    let d = self.t.slot(s);
                    let shift = (width as usize * k).min(63) as u32;
                    count = count.saturating_add(
                        d.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX)),
                    );
                }
                let was_runend = self.t.is_masked_runend(ext.start);
                groups.push(GroupData {
                    rem_slot,
                    exts,
                    count,
                });
                cursor = ext.end;
                if was_runend {
                    break;
                }
            }
            runs.push(RunData {
                quotient: q,
                groups,
            });
            if cursor >= ce {
                break;
            }
        }
        debug_assert_eq!(cursor, ce, "cluster decode must consume every slot");
        (runs, ce)
    }

    /// Clear `[c, ce)` and re-place `runs` with the Robin Hood rule.
    /// Runs with no groups left have their occupied bit cleared.
    pub(crate) fn place_runs(&mut self, c: usize, ce: usize, runs: &[RunData]) {
        let width = self.cfg.rbits + self.cfg.value_bits;
        let digit_mask = aqf_bits::word::bitmask(width);
        for i in c..ce {
            self.t.clear_slot(i);
        }
        // Torn window: the cluster is cleared, survivors not yet placed.
        crate::testhooks::fire(crate::testhooks::TornPoint::MidClusterRebuild);
        let mut cursor = c;
        let mut placed: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
        for run in runs {
            if run.groups.is_empty() {
                self.t.clear_occupied(run.quotient);
                continue;
            }
            let start = run.quotient.max(cursor);
            let mut p = start;
            let last = run.groups.len() - 1;
            for (gi, g) in run.groups.iter().enumerate() {
                self.t.write_free_slot(p, g.rem_slot, false, gi == last);
                p += 1;
                for &e in &g.exts {
                    self.t.write_free_slot(p, e, true, false);
                    p += 1;
                }
                let mut v = g.count - 1;
                while v > 0 {
                    self.t.write_free_slot(p, v & digit_mask, true, true);
                    p += 1;
                    v >>= width.min(63);
                    if width >= 64 {
                        v = 0;
                    }
                }
            }
            self.t.set_occupied(run.quotient);
            placed.push((run.quotient, p));
            cursor = p;
        }
        debug_assert!(cursor <= ce, "rebuild must not grow the cluster");
        // The region's run structure was rewritten wholesale; refresh the
        // cached offset of every block whose base lies inside it.
        self.t.recompute_offsets_from_runs(c, ce, &placed);
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Delete one copy of `key`.
    ///
    /// Finds the first fingerprint whose stored prefix matches `key`'s hash
    /// string, decrements its counter, and removes the group entirely when
    /// the count reaches zero. Returns `Ok(None)` when no fingerprint
    /// matches (the key was never inserted).
    pub fn delete(&mut self, key: u64) -> Result<Option<DeleteOutcome>, FilterError> {
        let fp = self.fingerprint(key);
        self.delete_fp(&fp, false)
    }

    /// Delete one copy of `key` and *shorten* the remaining fingerprints
    /// of its minirun (paper §4.3): with `f` gone, siblings extended to
    /// stay distinguishable from `f` can drop those extensions.
    ///
    /// Each surviving sibling keeps just enough extension chunks to stay
    /// distinguishable from every other survivor (`max pairwise lcp + 1`).
    /// This reclaims slots but may also drop extensions that were fixing
    /// *query* false positives — the same space-vs-adaptivity trade as the
    /// §4.4 rebuild, so it is opt-in.
    pub fn delete_shortening(&mut self, key: u64) -> Result<Option<DeleteOutcome>, FilterError> {
        let fp = self.fingerprint(key);
        self.delete_fp(&fp, true)
    }

    pub(crate) fn delete_fp(
        &mut self,
        fp: &Fingerprint,
        shorten: bool,
    ) -> Result<Option<DeleteOutcome>, FilterError> {
        let Some((ext, hit)) = self.find_first_match(fp) else {
            return Ok(None);
        };
        let count = self.group_count(&ext);
        let hq = fp.quotient();
        let c = self.t.cluster_start(hq);
        let (mut runs, ce) = self.decode_cluster(c);

        // Locate the run and group index for (hq, rank).
        let run_idx = runs
            .iter()
            .position(|r| r.quotient == hq)
            .expect("decoded cluster must contain the quotient's run");
        let hr = fp.remainder();
        let rbits = self.cfg.rbits;
        let mask = aqf_bits::word::bitmask(rbits);
        let mut seen = 0u32;
        let mut group_idx = None;
        for (gi, g) in runs[run_idx].groups.iter().enumerate() {
            if g.rem_slot & mask == hr {
                if seen == hit.rank {
                    group_idx = Some(gi);
                    break;
                }
                seen += 1;
            }
        }
        let gi = group_idx.expect("rank must resolve inside the decoded run");

        let removed_group = if count > 1 {
            runs[run_idx].groups[gi].count -= 1;
            false
        } else {
            let removed = runs[run_idx].groups.remove(gi);
            self.groups -= 1;
            self.slots_used -= 1 + removed.exts.len() as u64;
            self.stats.extension_slots -= removed.exts.len() as u64;
            true
        };

        // Recompute slot accounting for counter-digit changes by comparing
        // encoded lengths before/after (cheap: only the touched group).
        let before_digits = digits_len(count, self.cfg.rbits + self.cfg.value_bits);
        let after_digits = if removed_group {
            0
        } else {
            digits_len(count - 1, self.cfg.rbits + self.cfg.value_bits)
        };
        if !removed_group {
            self.slots_used -= (before_digits - after_digits) as u64;
            self.stats.counter_slots -= (before_digits - after_digits) as u64;
        } else {
            self.slots_used -= before_digits as u64;
            self.stats.counter_slots -= before_digits as u64;
        }

        if shorten && removed_group {
            self.shorten_minirun(&mut runs[run_idx], hr, mask);
        }
        self.place_runs(c, ce, &runs);
        self.total_count -= 1;
        Ok(Some(DeleteOutcome {
            minirun_id: hit.minirun_id,
            rank: hit.rank,
            removed_group,
        }))
    }

    /// Truncate each group in the minirun `hr` of `run` to the minimal
    /// extension length that keeps all members pairwise distinguishable.
    fn shorten_minirun(&mut self, run: &mut RunData, hr: u64, mask: u64) {
        let idxs: Vec<usize> = run
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.rem_slot & mask == hr)
            .map(|(i, _)| i)
            .collect();
        let lcp = |a: &[u64], b: &[u64]| -> usize {
            a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
        };
        let mut new_lens: Vec<usize> = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let gi = &run.groups[i];
            let mut need = 0usize;
            for &j in &idxs {
                if i == j {
                    continue;
                }
                let gj = &run.groups[j];
                // Keep one chunk past the common prefix (when available) so
                // i stays distinguishable from j.
                need = need.max((lcp(&gi.exts, &gj.exts) + 1).min(gi.exts.len()));
            }
            new_lens.push(need);
        }
        for (&i, &len) in idxs.iter().zip(new_lens.iter()) {
            let g = &mut run.groups[i];
            let dropped = g.exts.len() - len;
            g.exts.truncate(len);
            self.slots_used -= dropped as u64;
            self.stats.extension_slots -= dropped as u64;
        }
    }

    // ------------------------------------------------------------------
    // Enumeration
    // ------------------------------------------------------------------

    /// Visit every stored fingerprint in table order
    /// (sorted by quotient, then remainder, then insertion order).
    pub fn for_each_entry<F: FnMut(Entry)>(&self, mut f: F) {
        let rbits = self.cfg.rbits;
        let mask = aqf_bits::word::bitmask(rbits);
        let mut i = 0usize;
        while i < self.t.total {
            if !self.t.is_used(i) {
                // Jump to the next used slot (a cluster start).
                let mut j = i;
                while j < self.t.total && !self.t.is_used(j) {
                    j += 1;
                }
                if j >= self.t.total {
                    break;
                }
                i = j;
            }
            let (runs, ce) = self.decode_cluster(i);
            for run in &runs {
                for g in &run.groups {
                    f(Entry {
                        quotient: run.quotient,
                        remainder: g.rem_slot & mask,
                        extensions: g.exts.clone(),
                        count: g.count,
                        value: g.rem_slot >> rbits,
                    });
                }
            }
            i = ce;
        }
    }

    /// Collect every stored fingerprint (test/merge helper).
    pub fn entries(&self) -> Vec<Entry> {
        let mut v = Vec::with_capacity(self.groups as usize);
        self.for_each_entry(|e| v.push(e));
        v
    }
}

/// Number of base-`2^width` digits used to encode `count` (count-1, with no
/// most-significant zero digit).
pub(crate) fn digits_len(count: u64, width: u32) -> usize {
    let mut v = count - 1;
    let mut n = 0;
    while v > 0 {
        n += 1;
        if width >= 64 {
            break;
        }
        v >>= width;
    }
    n
}
