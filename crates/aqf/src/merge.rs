//! Bulk building, merging, and growth (paper §6.7, Table 5).
//!
//! Because the AdaptiveQF adapts by *appending* hash-string bits, a stored
//! fingerprint is just a prefix of its key's hash string. Merging or
//! growing therefore never needs the original keys: the same prefix bits
//! are re-split under the new geometry `(qbits+1, rbits-1)`, keeping the
//! total fingerprint length and the table order (prefixes are compared
//! MSB-first, so numeric minirun order is preserved). Extension bits are
//! re-chunked to the new chunk width; up to `rbits-2` trailing adaptivity
//! bits per fingerprint are dropped (the filter stays correct — it can
//! only get *less* adapted, never lose a true positive).

use aqf_bits::word::bitmask;

use crate::config::{AqfConfig, FilterError};
use crate::filter::AdaptiveQf;

/// Streaming left-to-right table writer used by bulk build and merge.
/// Entries must be pushed in `(quotient, remainder)` order.
struct SequentialBuilder<'a> {
    f: &'a mut AdaptiveQf,
    cursor: usize,
    cur_q: Option<usize>,
    last_rem_slot: usize,
}

impl<'a> SequentialBuilder<'a> {
    fn new(f: &'a mut AdaptiveQf) -> Self {
        Self {
            f,
            cursor: 0,
            cur_q: None,
            last_rem_slot: 0,
        }
    }

    fn push(
        &mut self,
        q: usize,
        rem: u64,
        exts: &[u64],
        count: u64,
        value: u64,
    ) -> Result<(), FilterError> {
        debug_assert!(count >= 1);
        let rbits = self.f.cfg.rbits;
        let width = rbits + self.f.cfg.value_bits;
        let digit_mask = bitmask(width);
        if self.cur_q != Some(q) {
            debug_assert!(self.cur_q.is_none_or(|p| p < q), "quotients must be sorted");
            self.close_run();
            self.cur_q = Some(q);
            self.cursor = self.cursor.max(q);
            self.f.t.set_occupied(q);
        }
        let digits = crate::rebuild::digits_len(count, width);
        let needed = 1 + exts.len() + digits;
        if self.cursor + needed > self.f.t.total {
            return Err(FilterError::Full);
        }
        let mut p = self.cursor;
        self.f
            .t
            .write_free_slot(p, (value << rbits) | rem, false, false);
        self.last_rem_slot = p;
        p += 1;
        for &e in exts {
            self.f.t.write_free_slot(p, e, true, false);
            p += 1;
        }
        let mut v = count - 1;
        while v > 0 {
            self.f.t.write_free_slot(p, v & digit_mask, true, true);
            p += 1;
            if width >= 64 {
                v = 0;
            } else {
                v >>= width;
            }
        }
        self.cursor = p;
        self.f.groups += 1;
        self.f.total_count += count;
        self.f.slots_used += needed as u64;
        self.f.stats.extension_slots += exts.len() as u64;
        self.f.stats.counter_slots += digits as u64;
        Ok(())
    }

    fn close_run(&mut self) {
        if self.cur_q.is_some() {
            self.f.t.set_runend(self.last_rem_slot);
        }
    }

    fn finish(mut self) {
        self.close_run();
        // Sequential building writes the whole table without incremental
        // offset maintenance; derive every block offset in one sweep.
        self.f.t.rebuild_offsets();
    }
}

/// Re-chunk an extension bit string from `old_r`-bit chunks to
/// `new_r`-bit chunks (MSB-first), dropping any trailing partial chunk.
/// Writes into `out`, returning the number of chunks produced.
fn rechunk_into(
    chunk_at: impl Fn(usize) -> u64,
    n_old: usize,
    old_r: u32,
    new_r: u32,
    out: &mut Vec<u64>,
) -> usize {
    out.clear();
    let total_bits = n_old as u64 * old_r as u64;
    let n_new = (total_bits / new_r as u64) as usize;
    let bit_at = |i: u64| -> u64 {
        let chunk = chunk_at((i / old_r as u64) as usize);
        chunk >> (old_r as u64 - 1 - (i % old_r as u64)) & 1
    };
    for j in 0..n_new {
        let mut v = 0u64;
        for b in 0..new_r as u64 {
            v = (v << 1) | bit_at(j as u64 * new_r as u64 + b);
        }
        out.push(v);
    }
    n_new
}

#[cfg(test)]
fn rechunk(exts: &[u64], old_r: u32, new_r: u32) -> Vec<u64> {
    let mut out = Vec::new();
    rechunk_into(|i| exts[i], exts.len(), old_r, new_r, &mut out);
    out
}

/// A group yielded by [`GroupCursor`]: coordinates into the source table,
/// no heap allocation.
#[derive(Clone, Copy, Debug)]
struct GroupInfo {
    quotient: usize,
    /// Raw remainder-slot contents (remainder | value << rbits).
    rem_raw: u64,
    /// First extension slot.
    ext_start: usize,
    ext_len: usize,
    count: u64,
}

/// Streaming cursor over a filter's groups in table order — the
/// allocation-free enumeration that merge and grow are built on.
struct GroupCursor<'a> {
    f: &'a AdaptiveQf,
    slot: usize,
    cluster_end: usize,
    qscan: usize,
    quotient: usize,
    in_run: bool,
}

impl<'a> GroupCursor<'a> {
    fn new(f: &'a AdaptiveQf) -> Self {
        Self {
            f,
            slot: 0,
            cluster_end: 0,
            qscan: 0,
            quotient: 0,
            in_run: false,
        }
    }

    fn next(&mut self) -> Option<GroupInfo> {
        let t = &self.f.t;
        if !self.in_run {
            if self.slot >= self.cluster_end {
                // Advance to the next cluster.
                let c = t.b.next_one(crate::table::USED, self.slot)?;
                self.slot = c;
                self.cluster_end = t.next_free(c).unwrap_or(t.total);
                self.qscan = c;
            }
            // Next occupied quotient owning the run at `slot`.
            let q =
                t.b.next_one(crate::table::OCC, self.qscan)
                    .expect("used slots imply a further occupied quotient");
            debug_assert!(q < self.cluster_end);
            self.quotient = q;
            self.qscan = q + 1;
            self.in_run = true;
        }
        let start = self.slot;
        let ext = t.group_extent(start);
        let width = self.f.cfg.rbits + self.f.cfg.value_bits;
        let mut count: u64 = 1;
        for (k, s) in (ext.ext_end..ext.end).enumerate() {
            let d = t.slot(s);
            let shift = ((width as usize * k).min(63)) as u32;
            count =
                count.saturating_add(d.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX)));
        }
        let info = GroupInfo {
            quotient: self.quotient,
            rem_raw: t.slot(start),
            ext_start: start + 1,
            ext_len: ext.ext_len(),
            count,
        };
        self.in_run = !t.is_masked_runend(start);
        self.slot = ext.end;
        Some(info)
    }

    /// Old-geometry minirun id of a yielded group.
    fn old_id(&self, g: &GroupInfo) -> u64 {
        ((g.quotient as u64) << self.f.cfg.rbits) | (g.rem_raw & bitmask(self.f.cfg.rbits))
    }
}

/// Re-split one group under `(q+1, r-1)` geometry and push it.
fn push_regeometry(
    builder: &mut SequentialBuilder<'_>,
    src: &AdaptiveQf,
    g: &GroupInfo,
    old_id: u64,
    ext_buf: &mut Vec<u64>,
) -> Result<(), FilterError> {
    let rbits = src.cfg.rbits;
    let new_rbits = rbits - 1;
    let new_q = (old_id >> new_rbits) as usize;
    let new_rem = old_id & bitmask(new_rbits);
    let value = g.rem_raw >> rbits;
    rechunk_into(
        |i| src.t.remainder_at(g.ext_start + i),
        g.ext_len,
        rbits,
        new_rbits,
        ext_buf,
    );
    builder.push(new_q, new_rem, ext_buf, g.count, value)
}

impl AdaptiveQf {
    /// Build a filter from a batch of keys in one left-to-right pass
    /// (paper §6.7: "sort in hash order, then bulk insert").
    ///
    /// Semantics match a loop of [`AdaptiveQf::insert`]: one fingerprint
    /// group per key occurrence (within a minirun, groups land in hash-sort
    /// order). Roughly an order of magnitude faster than one-at-a-time
    /// inserts because nothing ever shifts.
    pub fn bulk_build(cfg: AqfConfig, keys: &[u64]) -> Result<Self, FilterError> {
        let mut f = Self::new(cfg)?;
        let mut ids: Vec<u64> = keys
            .iter()
            .map(|&k| f.fingerprint(k).minirun_id())
            .collect();
        ids.sort_unstable();
        let rbits = cfg.rbits;
        let mut b = SequentialBuilder::new(&mut f);
        for &id in &ids {
            let q = (id >> rbits) as usize;
            let rem = id & bitmask(rbits);
            b.push(q, rem, &[], 1, 0)?;
        }
        b.finish();
        Ok(f)
    }

    /// Like [`AdaptiveQf::bulk_build`] but with the multiset semantics of
    /// [`AdaptiveQf::insert_counting`]: keys whose baseline fingerprints
    /// collide are stored as a single group with a counter.
    pub fn bulk_build_counting(cfg: AqfConfig, keys: &[u64]) -> Result<Self, FilterError> {
        let mut f = Self::new(cfg)?;
        let mut ids: Vec<u64> = keys
            .iter()
            .map(|&k| f.fingerprint(k).minirun_id())
            .collect();
        ids.sort_unstable();
        let rbits = cfg.rbits;
        let mut b = SequentialBuilder::new(&mut f);
        let mut i = 0;
        while i < ids.len() {
            let id = ids[i];
            let mut c = 1usize;
            while i + c < ids.len() && ids[i + c] == id {
                c += 1;
            }
            let q = (id >> rbits) as usize;
            let rem = id & bitmask(rbits);
            b.push(q, rem, &[], c as u64, 0)?;
            i += c;
        }
        b.finish();
        Ok(f)
    }

    /// Merge two filters with identical configs into one of twice the
    /// capacity (`qbits+1`, `rbits-1`; same seed). Adaptivity bits are
    /// preserved up to re-chunking. Fingerprints that collide across the
    /// two inputs stay separate groups, `self`'s first — matching how
    /// reverse-map minirun lists are concatenated.
    pub fn merge(&self, other: &AdaptiveQf) -> Result<AdaptiveQf, FilterError> {
        let (a, b) = (self, other);
        if a.cfg.qbits != b.cfg.qbits
            || a.cfg.rbits != b.cfg.rbits
            || a.cfg.value_bits != b.cfg.value_bits
            || a.cfg.seed != b.cfg.seed
        {
            return Err(FilterError::InvalidConfig(
                "merge requires identical configs",
            ));
        }
        if a.cfg.rbits < 2 {
            return Err(FilterError::InvalidConfig("merge needs rbits >= 2"));
        }
        let cfg = AqfConfig {
            qbits: a.cfg.qbits + 1,
            rbits: a.cfg.rbits - 1,
            value_bits: a.cfg.value_bits,
            seed: a.cfg.seed,
            overflow_slots: None,
        };
        cfg.validate()?;
        let mut out = AdaptiveQf::new(cfg)?;
        let mut ca = GroupCursor::new(a);
        let mut cb = GroupCursor::new(b);
        let mut ga = ca.next();
        let mut gb = cb.next();
        let mut builder = SequentialBuilder::new(&mut out);
        let mut ext_buf = Vec::with_capacity(8);
        loop {
            // Ties take `a` first (reverse-map lists concatenate a-then-b).
            let (src, take_a) = match (&ga, &gb) {
                (Some(x), Some(y)) => {
                    if ca.old_id(x) <= cb.old_id(y) {
                        (*x, true)
                    } else {
                        (*y, false)
                    }
                }
                (Some(x), None) => (*x, true),
                (None, Some(y)) => (*y, false),
                (None, None) => break,
            };
            let (f_src, id) = if take_a {
                (a, ca.old_id(&src))
            } else {
                (b, cb.old_id(&src))
            };
            push_regeometry(&mut builder, f_src, &src, id, &mut ext_buf)?;
            if take_a {
                ga = ca.next();
            } else {
                gb = cb.next();
            }
        }
        builder.finish();
        Ok(out)
    }

    /// Grow into a filter of twice the capacity (`qbits+1`, `rbits-1`),
    /// keeping all fingerprints (re-split, extensions re-chunked).
    pub fn grow(&self) -> Result<AdaptiveQf, FilterError> {
        if self.cfg.rbits < 2 {
            return Err(FilterError::InvalidConfig("grow needs rbits >= 2"));
        }
        let cfg = AqfConfig {
            qbits: self.cfg.qbits + 1,
            rbits: self.cfg.rbits - 1,
            value_bits: self.cfg.value_bits,
            seed: self.cfg.seed,
            overflow_slots: None,
        };
        cfg.validate()?;
        let mut out = AdaptiveQf::new(cfg)?;
        let mut cursor = GroupCursor::new(self);
        let mut builder = SequentialBuilder::new(&mut out);
        let mut ext_buf = Vec::with_capacity(8);
        while let Some(g) = cursor.next() {
            let id =
                ((g.quotient as u64) << self.cfg.rbits) | (g.rem_raw & bitmask(self.cfg.rbits));
            push_regeometry(&mut builder, self, &g, id, &mut ext_buf)?;
        }
        builder.finish();
        Ok(out)
    }

    /// Rebuild from scratch with a fresh hash seed, discarding all
    /// adaptivity information (the space-recovery rebuild of paper §4.4).
    /// The caller supplies the original keys — in a deployed system these
    /// come from the reverse map.
    pub fn rebuild_with_seed(&self, seed: u64, keys: &[u64]) -> Result<AdaptiveQf, FilterError> {
        let cfg = AqfConfig { seed, ..self.cfg };
        AdaptiveQf::bulk_build(cfg, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rechunk_preserves_bit_stream() {
        // 2 chunks of 4 bits: 0b1011, 0b0110 -> stream 10110110
        // re-chunk to 3 bits: 101 101 10(drop) -> [0b101, 0b101]
        assert_eq!(rechunk(&[0b1011, 0b0110], 4, 3), vec![0b101, 0b101]);
        assert_eq!(rechunk(&[], 4, 3), Vec::<u64>::new());
        assert_eq!(rechunk(&[0b111], 3, 2), vec![0b11]);
    }
}
