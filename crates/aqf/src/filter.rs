//! The AdaptiveQF itself: insert / query / adapt / delete / count.
//!
//! See the crate docs for the big picture. Encoding invariants:
//!
//! - runs are stored in quotient order; within a run, fingerprint groups are
//!   sorted by remainder (miniruns are contiguous); within a minirun,
//!   groups appear in insertion order (which the reverse map mirrors),
//! - a group = remainder slot, then extension slots, then counter slots,
//! - the masked runend bit sits on the *remainder slot* of the run's last
//!   group; that group's extras physically trail the runend mark,
//! - `count = 1 + Σ digit_k · B^k` over counter slots (little-endian,
//!   `B = 2^(rbits + value_bits)`); the most significant digit is nonzero.

use aqf_bits::word::bitmask;

use crate::config::{AqfConfig, FilterError};
use crate::fingerprint::{split_minirun_id, Fingerprint};
use crate::table::{GroupExtent, Table};

/// Maximum extension chunks a single adapt call may add before concluding
/// the two keys have identical hash strings.
const MAX_ADAPT_CHUNKS: usize = 64;

/// A positive query: which minirun matched, and the rank within it.
///
/// The pair `(minirun_id, rank)` is exactly what the paper's reverse map is
/// keyed on: look up the minirun's key list and take the `rank`-th entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Quotient and remainder packed as `quotient << rbits | remainder`.
    pub minirun_id: u64,
    /// 0-based position of the matched fingerprint within its minirun.
    pub rank: u32,
    /// Number of extension chunks the matched fingerprint currently has.
    pub ext_chunks: u32,
}

/// Result of a membership query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryResult {
    /// Definitely not in the set.
    Negative,
    /// Possibly in the set; see [`Hit`] for the reverse-map coordinates.
    Positive(Hit),
}

impl QueryResult {
    /// True for [`QueryResult::Positive`].
    #[inline]
    pub fn is_positive(&self) -> bool {
        matches!(self, QueryResult::Positive(_))
    }
}

/// Result of an insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Minirun the fingerprint landed in.
    pub minirun_id: u64,
    /// Rank of the fingerprint within its minirun.
    pub rank: u32,
    /// True if an existing identical fingerprint's counter was bumped
    /// instead of storing a new group.
    pub duplicate: bool,
}

/// Result of a successful delete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// Minirun the deleted fingerprint was in.
    pub minirun_id: u64,
    /// Rank the fingerprint had within its minirun.
    pub rank: u32,
    /// True if the whole group was removed (count reached zero); false if
    /// only the counter was decremented.
    pub removed_group: bool,
}

/// One logical fingerprint entry, as yielded by enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Canonical slot.
    pub quotient: usize,
    /// Base remainder.
    pub remainder: u64,
    /// Extension chunks, in order.
    pub extensions: Vec<u64>,
    /// Multiset count (>= 1).
    pub count: u64,
    /// Payload value (0 unless `value_bits > 0`).
    pub value: u64,
}

/// Operation counters, useful for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AqfStats {
    /// Number of `adapt` calls that extended a fingerprint.
    pub adaptations: u64,
    /// Total extension slots currently in the table.
    pub extension_slots: u64,
    /// Total counter slots currently in the table.
    pub counter_slots: u64,
    /// Capacity-doubling grow events since construction.
    pub grows: u64,
}

/// Reusable scratch buffers for the batch pipeline (fingerprints, the
/// counting-partition work arrays, and the resulting index order).
///
/// Batch entry points ([`AdaptiveQf::query_batch`] etc.) draw one of
/// these from a thread-local pool automatically; the `*_in` variants
/// ([`AdaptiveQf::query_batch_in`] etc.) take a caller-held scratch so
/// hot loops issuing many batches reuse the same allocations
/// deterministically.
#[derive(Debug, Default)]
pub struct BatchScratch {
    fps: Vec<Fingerprint>,
    bucket_of: Vec<u32>,
    order: Vec<u32>,
    cursor: Vec<u32>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

std::thread_local! {
    static BATCH_SCRATCH: std::cell::Cell<BatchScratch> =
        std::cell::Cell::new(BatchScratch::default());
}

/// Run `f` with the thread-local [`BatchScratch`]. The scratch is *taken*
/// from the slot and restored afterwards, so a re-entrant batch call
/// (e.g. from an `insert_batch_with` sink) sees a fresh default scratch
/// instead of aliasing buffers already in use.
fn with_scratch<R>(f: impl FnOnce(&mut BatchScratch) -> R) -> R {
    BATCH_SCRATCH.with(|slot| {
        let mut s = slot.take();
        let r = f(&mut s);
        slot.set(s);
        r
    })
}

/// The AdaptiveQF (paper §3–4): a counting quotient filter that corrects
/// reported false positives by extending fingerprints in place.
#[derive(Clone, Debug)]
pub struct AdaptiveQf {
    pub(crate) cfg: AqfConfig,
    pub(crate) t: Table,
    /// Distinct fingerprint groups stored.
    pub(crate) groups: u64,
    /// Total multiset count.
    pub(crate) total_count: u64,
    /// Physical slots in use.
    pub(crate) slots_used: u64,
    pub(crate) stats: AqfStats,
    /// Auto-grow load-factor threshold; `None` disables auto-grow.
    pub(crate) auto_grow: Option<f64>,
    /// File name of the arena backing file (plain name, lives beside the
    /// snapshot); `None` for heap-backed tables.
    pub(crate) backing_file: Option<String>,
}

impl AdaptiveQf {
    /// Create an empty filter.
    pub fn new(cfg: AqfConfig) -> Result<Self, FilterError> {
        cfg.validate()?;
        let canonical = cfg.canonical_slots();
        let total = cfg.total_slots();
        Ok(Self {
            cfg,
            t: Table::new(canonical, total, cfg.rbits, cfg.value_bits),
            groups: 0,
            total_count: 0,
            slots_used: 0,
            stats: AqfStats::default(),
            auto_grow: None,
            backing_file: None,
        })
    }

    /// The filter's configuration.
    #[inline]
    pub fn config(&self) -> &AqfConfig {
        &self.cfg
    }

    /// Fingerprint decomposition of `key` under this filter's geometry.
    #[inline]
    pub fn fingerprint(&self, key: u64) -> Fingerprint {
        Fingerprint::new(key, self.cfg.seed, self.cfg.qbits, self.cfg.rbits)
    }

    /// Total multiset size (inserts minus deletes).
    #[inline]
    pub fn len(&self) -> u64 {
        self.total_count
    }

    /// True if nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_count == 0
    }

    /// Number of distinct fingerprint groups stored.
    #[inline]
    pub fn distinct_fingerprints(&self) -> u64 {
        self.groups
    }

    /// Physical slots in use (remainders + extensions + counters).
    #[inline]
    pub fn slots_in_use(&self) -> u64 {
        self.slots_used
    }

    /// Used slots over canonical slots — the paper's load factor.
    #[inline]
    pub fn load_factor(&self) -> f64 {
        self.slots_used as f64 / self.t.canonical as f64
    }

    /// Operation statistics.
    #[inline]
    pub fn stats(&self) -> AqfStats {
        self.stats
    }

    /// Canonical slot capacity (`2^qbits`).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.t.canonical as u64
    }

    // ------------------------------------------------------------------
    // Dynamic capacity (ROADMAP item 1): grow-on-threshold / grow-on-full
    // ------------------------------------------------------------------

    /// True while the geometry can still double (`qbits+1`, `rbits-1`
    /// needs at least two remainder bits to give one up).
    #[inline]
    pub fn supports_grow(&self) -> bool {
        self.cfg.rbits >= 2
    }

    /// Enable automatic capacity doubling on insert once
    /// [`Self::load_factor`] reaches `threshold` (also retried on a
    /// [`FilterError::Full`] insert), or disable it with `None`.
    /// Thresholds outside `(0, 1]` are invalid.
    pub fn set_auto_grow(&mut self, threshold: Option<f64>) -> Result<(), FilterError> {
        if let Some(t) = threshold {
            if !(t > 0.0 && t <= 1.0) {
                return Err(FilterError::InvalidConfig(
                    "auto-grow threshold must be in (0, 1]",
                ));
            }
        }
        self.auto_grow = threshold;
        Ok(())
    }

    /// The configured auto-grow threshold, if any.
    #[inline]
    pub fn auto_grow(&self) -> Option<f64> {
        self.auto_grow
    }

    /// Grow if auto-grow is enabled and the load factor has reached the
    /// threshold (the cqfrs `check_and_resize` hook, run before every
    /// insert). Returns whether a grow happened.
    pub fn check_and_resize(&mut self) -> Result<bool, FilterError> {
        let Some(threshold) = self.auto_grow else {
            return Ok(false);
        };
        if self.load_factor() < threshold || !self.supports_grow() {
            return Ok(false);
        }
        self.grow_in_place()?;
        Ok(true)
    }

    /// Replace this filter with its doubled-capacity rebuild
    /// ([`Self::grow`]), carrying over the cumulative stats and the
    /// auto-grow setting. Minirun ids and within-minirun ranks are
    /// invariant under grow (the fingerprint bit string is merely re-split
    /// at `qbits+1`), so reverse-map state keyed on them stays valid.
    /// A file-backed table grows into the heap; re-attach with
    /// [`Self::set_file_backing`] (the next snapshot does this for
    /// file-backed systems).
    pub fn grow_in_place(&mut self) -> Result<(), FilterError> {
        let mut grown = self.grow()?;
        grown.stats.adaptations = self.stats.adaptations;
        grown.stats.grows = self.stats.grows + 1;
        grown.auto_grow = self.auto_grow;
        *self = grown;
        Ok(())
    }

    /// True if grow-on-full retry is armed.
    #[inline]
    fn can_auto_grow(&self) -> bool {
        self.auto_grow.is_some() && self.supports_grow()
    }

    // ------------------------------------------------------------------
    // File backing
    // ------------------------------------------------------------------

    /// Move the table arena into a file at `path` (mmap-backed on Linux):
    /// subsequent mutations write straight into the mapping and
    /// [`Self::sync`] flushes them. Snapshots of a file-backed filter
    /// reference the arena by file name, so `path` must be a plain file
    /// name in the directory the snapshot will live in. Growing falls
    /// back to a heap arena; call this again to re-attach.
    pub fn set_file_backing(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "backing path needs a UTF-8 file name",
                )
            })?
            .to_string();
        self.t.b.migrate_to_file(path)?;
        self.backing_file = Some(name);
        Ok(())
    }

    /// True if the table arena lives in a file.
    #[inline]
    pub fn is_file_backed(&self) -> bool {
        self.t.b.is_file_backed()
    }

    /// Flush a file-backed arena to disk (no-op for heap tables).
    pub fn sync(&self) -> std::io::Result<()> {
        self.t.b.sync()
    }

    /// Total bytes of heap memory held by the filter table.
    pub fn size_in_bytes(&self) -> usize {
        self.t.heap_size_bytes()
    }

    /// Bits of table space per stored fingerprint group.
    pub fn bits_per_item(&self) -> f64 {
        if self.groups == 0 {
            return 0.0;
        }
        (self.size_in_bytes() * 8) as f64 / self.groups as f64
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert `key`, always storing a new fingerprint group at the end of
    /// its minirun (paper Fig. 2c) — even if an identical fingerprint
    /// already exists, because only the reverse map can tell whether the
    /// keys are actually equal. The returned rank is where the reverse map
    /// must record `key`.
    pub fn insert(&mut self, key: u64) -> Result<InsertOutcome, FilterError> {
        self.insert_impl(key, 0, false)
    }

    /// [`Self::insert`] with a payload value tag
    /// (requires `value < 2^value_bits`; used by the yes/no-list mode).
    pub fn insert_with_value(
        &mut self,
        key: u64,
        value: u64,
    ) -> Result<InsertOutcome, FilterError> {
        self.insert_impl(key, value, false)
    }

    /// Insert with CQF multiset semantics: if an existing fingerprint
    /// exactly matches `key`'s hash prefix, bump its variable-length
    /// counter instead of storing a new group (`duplicate = true` in the
    /// outcome). Note this conflates distinct keys whose hash prefixes
    /// collide — fine for pure counting workloads, wrong for systems that
    /// need per-key reverse-map entries.
    pub fn insert_counting(&mut self, key: u64) -> Result<InsertOutcome, FilterError> {
        self.insert_impl(key, 0, true)
    }

    fn insert_impl(
        &mut self,
        key: u64,
        value: u64,
        counting: bool,
    ) -> Result<InsertOutcome, FilterError> {
        self.check_and_resize()?;
        loop {
            let fp = self.fingerprint(key);
            match self.insert_fp(&fp, value, counting) {
                Err(FilterError::Full) if self.can_auto_grow() => self.grow_in_place()?,
                r => return r,
            }
        }
    }

    fn insert_fp(
        &mut self,
        fp: &Fingerprint,
        value: u64,
        counting: bool,
    ) -> Result<InsertOutcome, FilterError> {
        debug_assert!(value <= bitmask(self.cfg.value_bits));
        let hq = fp.quotient();
        let hr = fp.remainder();
        let slot_val = (value << self.cfg.rbits) | hr;
        let id = fp.minirun_id();

        // Fast path: the canonical slot is free.
        if !self.t.is_used(hq) {
            self.t.write_free_slot(hq, slot_val, false, true);
            self.t.set_occupied(hq);
            self.note_new_group(1);
            return Ok(InsertOutcome {
                minirun_id: id,
                rank: 0,
                duplicate: false,
            });
        }

        // New run for a previously-unoccupied quotient.
        if !self.t.occupied(hq) {
            let pos = self.t.new_run_pos(hq);
            self.t.insert_slot_at(hq, pos, slot_val, false, true)?;
            self.t.set_occupied(hq);
            self.note_new_group(1);
            return Ok(InsertOutcome {
                minirun_id: id,
                rank: 0,
                duplicate: false,
            });
        }

        // Existing run: walk its groups (sorted by remainder).
        let (rs, re) = self.t.run_range(hq);

        // Fast path: a run with no extension or counter slots anywhere
        // (including trailing extras of its last group) is a plain sorted
        // remainder array, so the insert is a QF-style scalar walk — no
        // per-group extent decoding. Counting inserts stay on the general
        // path because they must compare full fingerprints for duplicates.
        if !counting && self.t.ext_count_range(rs + 1, (re + 2).min(self.t.total)) == 0 {
            let mut pos = rs;
            let mut rank: u32 = 0;
            while pos <= re {
                let grem = self.t.remainder_at(pos);
                if grem > hr {
                    break;
                }
                if grem == hr {
                    rank += 1;
                }
                pos += 1;
            }
            if pos <= re {
                self.t.insert_slot_at(hq, pos, slot_val, false, false)?;
            } else {
                self.t.insert_slot_at(hq, re + 1, slot_val, false, true)?;
                self.t.clear_runend(re);
            }
            self.note_new_group(1);
            return Ok(InsertOutcome {
                minirun_id: id,
                rank,
                duplicate: false,
            });
        }

        let mut g = rs;
        let mut rank: u32 = 0;
        loop {
            let ext = self.t.group_extent(g);
            let grem = self.t.remainder_at(g);
            if grem == hr {
                if counting && self.group_matches_fp(&ext, fp) {
                    self.bump_counter(hq, ext)?;
                    self.total_count += 1;
                    return Ok(InsertOutcome {
                        minirun_id: id,
                        rank,
                        duplicate: true,
                    });
                }
                rank += 1;
            } else if grem > hr {
                // Insert directly before g (covers both "new smallest
                // minirun" and "append after my minirun" because equal
                // remainders are contiguous).
                self.t.insert_slot_at(hq, g, slot_val, false, false)?;
                self.note_new_group(1);
                return Ok(InsertOutcome {
                    minirun_id: id,
                    rank,
                    duplicate: false,
                });
            }
            if g == re {
                // Append after the run's last group; the new fingerprint
                // becomes the run's new masked runend.
                let pos = ext.end;
                self.t.insert_slot_at(hq, pos, slot_val, false, true)?;
                self.t.clear_runend(re);
                self.note_new_group(1);
                return Ok(InsertOutcome {
                    minirun_id: id,
                    rank,
                    duplicate: false,
                });
            }
            g = ext.end;
        }
    }

    #[inline]
    fn note_new_group(&mut self, slots: u64) {
        self.groups += 1;
        self.total_count += 1;
        self.slots_used += slots;
    }

    /// True if every stored extension chunk of the group equals the
    /// corresponding chunk of `fp`'s hash string.
    fn group_matches_fp(&self, ext: &GroupExtent, fp: &Fingerprint) -> bool {
        for (i, s) in (ext.start + 1..ext.ext_end).enumerate() {
            if self.t.remainder_at(s) != fp.chunk(i as u64) {
                return false;
            }
        }
        true
    }

    /// Increment the group's counter by one, carrying across digit slots.
    fn bump_counter(&mut self, hq: usize, ext: GroupExtent) -> Result<(), FilterError> {
        let digit_max = bitmask(self.cfg.rbits + self.cfg.value_bits);
        let mut i = ext.ext_end;
        while i < ext.end && self.t.slot(i) == digit_max {
            i += 1;
        }
        if i == ext.end {
            // All existing digits saturated (or none): append a new most
            // significant digit of 1, then zero the lower digits.
            self.t.insert_slot_at(hq, ext.end, 1, true, true)?;
            self.slots_used += 1;
            self.stats.counter_slots += 1;
            for j in ext.ext_end..ext.end {
                self.t.set_slot(j, 0);
            }
        } else {
            let d = self.t.slot(i);
            self.t.set_slot(i, d + 1);
            for j in ext.ext_end..i {
                self.t.set_slot(j, 0);
            }
        }
        Ok(())
    }

    /// Decode a group's multiset count.
    pub(crate) fn group_count(&self, ext: &GroupExtent) -> u64 {
        let width = self.cfg.rbits + self.cfg.value_bits;
        let mut count: u64 = 1;
        for (k, s) in (ext.ext_end..ext.end).enumerate() {
            let d = self.t.slot(s);
            count = count.saturating_add(
                d.saturating_mul(1u64.checked_shl(width * k as u32).unwrap_or(u64::MAX)),
            );
        }
        count
    }

    // ------------------------------------------------------------------
    // Query
    // ------------------------------------------------------------------

    /// Membership query. Returns the *first* matching fingerprint's
    /// coordinates; after an adaptation the next match (if any) surfaces.
    pub fn query(&self, key: u64) -> QueryResult {
        let fp = self.fingerprint(key);
        match self.find_first_match(&fp) {
            Some((_, hit)) => QueryResult::Positive(hit),
            None => QueryResult::Negative,
        }
    }

    /// Convenience wrapper: is `key` possibly present?
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.query(key).is_positive()
    }

    /// Query returning the matched fingerprint's payload value
    /// (yes/no-list mode).
    pub fn query_value(&self, key: u64) -> Option<(Hit, u64)> {
        let fp = self.fingerprint(key);
        self.find_first_match(&fp)
            .map(|(ext, hit)| (hit, self.t.value_at(ext.start)))
    }

    /// Multiset count of the first fingerprint matching `key` (0 if none).
    pub fn count(&self, key: u64) -> u64 {
        let fp = self.fingerprint(key);
        match self.find_first_match(&fp) {
            Some((ext, _)) => self.group_count(&ext),
            None => 0,
        }
    }

    /// Walk `fp`'s run and return the first group whose stored fingerprint
    /// is a prefix of `fp`'s hash string.
    pub(crate) fn find_first_match(&self, fp: &Fingerprint) -> Option<(GroupExtent, Hit)> {
        let hq = fp.quotient();
        if !self.t.occupied(hq) {
            return None;
        }
        let hr = fp.remainder();
        let (rs, re) = self.t.run_range(hq);
        // Single-group run (the common case even at 0.95 load): one slot
        // and one extension bit decide the query.
        if rs == re {
            if self.t.remainder_at(rs) != hr {
                return None;
            }
            if rs + 1 >= self.t.total || !self.t.is_extension(rs + 1) {
                return Some((
                    GroupExtent {
                        start: rs,
                        ext_end: rs + 1,
                        end: rs + 1,
                    },
                    Hit {
                        minirun_id: fp.minirun_id(),
                        rank: 0,
                        ext_chunks: 0,
                    },
                ));
            }
        }
        // Fast path: a run with no extras anywhere (including trailing
        // extras of its last group, at re+1..) is a plain sorted remainder
        // array — compare word-parallel, up to 64/rbits slots per step.
        // Every group trivially "matches" its own remainder, so the first
        // equal slot is the first match, at rank 0 within its minirun.
        else if self.t.ext_count_range(rs + 1, (re + 2).min(self.t.total)) == 0 {
            return self.t.find_remainder_eq(rs, re, hr).map(|pos| {
                (
                    GroupExtent {
                        start: pos,
                        ext_end: pos + 1,
                        end: pos + 1,
                    },
                    Hit {
                        minirun_id: fp.minirun_id(),
                        rank: 0,
                        ext_chunks: 0,
                    },
                )
            });
        }
        let mut g = rs;
        let mut rank: u32 = 0;
        loop {
            let ext = self.t.group_extent(g);
            let grem = self.t.remainder_at(g);
            if grem == hr {
                if self.group_matches_fp(&ext, fp) {
                    let hit = Hit {
                        minirun_id: fp.minirun_id(),
                        rank,
                        ext_chunks: ext.ext_len() as u32,
                    };
                    return Some((ext, hit));
                }
                rank += 1;
            } else if grem > hr {
                return None;
            }
            if g == re {
                return None;
            }
            g = ext.end;
        }
    }

    /// Locate the `rank`-th group of a minirun by its ID.
    pub(crate) fn locate_group(&self, minirun_id: u64, rank: u32) -> Option<GroupExtent> {
        let (hq, hr) = split_minirun_id(minirun_id, self.cfg.rbits);
        if hq >= self.t.canonical || !self.t.occupied(hq) {
            return None;
        }
        let (rs, re) = self.t.run_range(hq);
        let mut g = rs;
        let mut seen: u32 = 0;
        loop {
            let ext = self.t.group_extent(g);
            let grem = self.t.remainder_at(g);
            if grem == hr {
                if seen == rank {
                    return Some(ext);
                }
                seen += 1;
            } else if grem > hr {
                return None;
            }
            if g == re {
                return None;
            }
            g = ext.end;
        }
    }

    // ------------------------------------------------------------------
    // Batch operations
    //
    // Design: keys are processed grouped by *quotient range* — a stable
    // O(n) counting partition on the quotient's top bits — so cluster
    // scans walk the table region by region (cache-coherent) instead of
    // hopping randomly, while same-quotient keys keep their relative
    // order. A key's insert outcome (minirun id, rank) depends only on
    // the prior contents of its own minirun (same quotient by
    // definition), so the stable partition makes batch results
    // element-wise identical to the equivalent sequential calls. A full
    // comparison sort would buy nothing more than the partition does and
    // costs O(n log n) with a ~30 ns/key constant at real batch sizes.
    // ------------------------------------------------------------------

    /// Table regions the batch partition distinguishes (`2^BUCKET_BITS`);
    /// at paper scale (2^26 slots) a region is 2^18 slots ≈ 0.4 MB of
    /// table — small enough that a region's cluster walks stay cache
    /// resident while the batch works through it.
    const BATCH_BUCKET_BITS: u32 = 8;

    /// Batches smaller than this skip the counting partition and run in
    /// input order. Below ~64 keys the partition's two extra passes and
    /// the 256-entry cursor reset cost more than the locality they buy —
    /// a tiny batch touches so few table regions that its walks are
    /// effectively random either way.
    pub const BATCH_PARTITION_MIN: usize = 64;

    /// How many keys ahead of the batch cursor target blocks are
    /// software-prefetched. Eight probes of ~100 ns DRAM latency each is
    /// comfortably more work than one prefetch needs to land, without
    /// running far enough ahead to thrash the L1.
    pub const BATCH_PREFETCH_DIST: usize = 8;

    /// Fill `s` with `keys`' fingerprints and a stable index order
    /// grouped by quotient range (identity order below
    /// [`Self::BATCH_PARTITION_MIN`]). Quotients come from the
    /// [`Fingerprint`] cache, so the partition never re-derives the hash
    /// string. All buffers are reused across calls.
    fn batch_order_into(&self, keys: &[u64], s: &mut BatchScratch) {
        debug_assert!(keys.len() <= u32::MAX as usize);
        s.fps.clear();
        s.fps.extend(keys.iter().map(|&k| self.fingerprint(k)));
        s.order.clear();
        if keys.len() < Self::BATCH_PARTITION_MIN {
            s.order.extend(0..keys.len() as u32);
            return;
        }
        let bb = Self::BATCH_BUCKET_BITS.min(self.cfg.qbits);
        let shift = self.cfg.qbits - bb;
        let nb = 1usize << bb;
        s.bucket_of.clear();
        s.cursor.clear();
        s.cursor.resize(nb + 1, 0);
        for fp in &s.fps {
            let b = (fp.quotient() >> shift) as u32;
            s.cursor[b as usize + 1] += 1;
            s.bucket_of.push(b);
        }
        for b in 0..nb {
            s.cursor[b + 1] += s.cursor[b];
        }
        s.order.resize(keys.len(), 0);
        for (i, &b) in s.bucket_of.iter().enumerate() {
            s.order[s.cursor[b as usize] as usize] = i as u32;
            s.cursor[b as usize] += 1;
        }
    }

    /// Prefetch the block of the key `BATCH_PREFETCH_DIST` positions
    /// ahead of cursor `k` in the batch order, if any.
    #[inline(always)]
    fn prefetch_ahead(&self, s: &BatchScratch, k: usize) {
        if let Some(&j) = s.order.get(k + Self::BATCH_PREFETCH_DIST) {
            self.t.prefetch(s.fps[j as usize].quotient());
        }
    }

    /// Insert every key of `keys`, invoking `sink(input_index, outcome)`
    /// for each key **as it lands** — including the keys processed before
    /// a mid-batch error — so callers that mirror outcomes into external
    /// per-key state (shadow maps, reverse maps) stay exactly consistent
    /// with the filter even on partial failure.
    ///
    /// Keys are processed in quotient-range order (see the batch section
    /// comment); outcomes are element-wise identical to sequential
    /// [`Self::insert`] calls in input order.
    pub fn insert_batch_with(
        &mut self,
        keys: &[u64],
        sink: impl FnMut(usize, InsertOutcome),
    ) -> Result<(), FilterError> {
        with_scratch(|s| self.insert_batch_with_in(keys, s, sink))
    }

    /// [`Self::insert_batch_with`] with caller-held scratch buffers —
    /// repeated batches reuse `scratch`'s allocations instead of going
    /// through the thread-local pool.
    pub fn insert_batch_with_in(
        &mut self,
        keys: &[u64],
        scratch: &mut BatchScratch,
        mut sink: impl FnMut(usize, InsertOutcome),
    ) -> Result<(), FilterError> {
        self.check_and_resize()?;
        self.batch_order_into(keys, scratch);
        let mut k = 0usize;
        while k < scratch.order.len() {
            self.prefetch_ahead(scratch, k);
            let i = scratch.order[k] as usize;
            match self.insert_fp(&scratch.fps[i], 0, false) {
                Ok(out) => {
                    sink(i, out);
                    k += 1;
                }
                Err(FilterError::Full) if self.can_auto_grow() => {
                    self.grow_in_place()?;
                    // The geometry changed, so re-derive every fingerprint.
                    // `order` stays valid: the batch bucket is the hash
                    // string's top bits, which re-splitting at `qbits+1`
                    // preserves, and same-quotient keys (same bucket before
                    // and after) keep their stable relative order — so
                    // outcomes still match sequential insert calls.
                    for (j, f) in scratch.fps.iter_mut().enumerate() {
                        *f = self.fingerprint(keys[j]);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Insert every key of `keys`, returning per-key outcomes in input
    /// order. Equivalent to calling [`Self::insert`] on each key in order
    /// — element-wise identical outcomes — but walks the table in
    /// quotient order (see the batch section comment).
    ///
    /// On error (e.g. [`FilterError::Full`]) a prefix of the *sorted*
    /// batch has been inserted; the filter remains valid but the caller
    /// cannot tell which keys landed. Use [`Self::insert_batch_with`] if
    /// partial-failure accounting matters.
    pub fn insert_batch(&mut self, keys: &[u64]) -> Result<Vec<InsertOutcome>, FilterError> {
        let mut out = vec![
            InsertOutcome {
                minirun_id: 0,
                rank: 0,
                duplicate: false,
            };
            keys.len()
        ];
        self.insert_batch_with(keys, |i, o| out[i] = o)?;
        Ok(out)
    }

    /// Query every key of `keys`, returning per-key results in input
    /// order; element-wise identical to per-key [`Self::query`] calls.
    pub fn query_batch(&self, keys: &[u64]) -> Vec<QueryResult> {
        with_scratch(|s| self.query_batch_in(keys, s))
    }

    /// [`Self::query_batch`] with caller-held scratch buffers.
    pub fn query_batch_in(&self, keys: &[u64], scratch: &mut BatchScratch) -> Vec<QueryResult> {
        self.batch_order_into(keys, scratch);
        let mut out = vec![QueryResult::Negative; keys.len()];
        for k in 0..scratch.order.len() {
            self.prefetch_ahead(scratch, k);
            let i = scratch.order[k] as usize;
            if let Some((_, hit)) = self.find_first_match(&scratch.fps[i]) {
                out[i] = QueryResult::Positive(hit);
            }
        }
        out
    }

    /// Batched [`Self::contains`]: per-key membership bits in input order.
    pub fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        with_scratch(|s| self.contains_batch_in(keys, s))
    }

    /// [`Self::contains_batch`] with caller-held scratch buffers.
    pub fn contains_batch_in(&self, keys: &[u64], scratch: &mut BatchScratch) -> Vec<bool> {
        self.batch_order_into(keys, scratch);
        let mut out = vec![false; keys.len()];
        for k in 0..scratch.order.len() {
            self.prefetch_ahead(scratch, k);
            let i = scratch.order[k] as usize;
            out[i] = self.find_first_match(&scratch.fps[i]).is_some();
        }
        out
    }

    /// Batch-query core for [`crate::ShardedAqf`]; see
    /// [`Self::insert_batch_scatter`].
    pub(crate) fn query_batch_scatter(
        &self,
        keys: &[u64],
        out_idx: &[u32],
        out: &mut [QueryResult],
    ) {
        debug_assert_eq!(keys.len(), out_idx.len());
        with_scratch(|s| {
            self.batch_order_into(keys, s);
            for k in 0..s.order.len() {
                self.prefetch_ahead(s, k);
                let i = s.order[k] as usize;
                if let Some((_, hit)) = self.find_first_match(&s.fps[i]) {
                    out[out_idx[i] as usize] = QueryResult::Positive(hit);
                }
            }
        })
    }

    /// Batch-membership core for [`crate::ShardedAqf`]; see
    /// [`Self::insert_batch_scatter`].
    pub(crate) fn contains_batch_scatter(&self, keys: &[u64], out_idx: &[u32], out: &mut [bool]) {
        debug_assert_eq!(keys.len(), out_idx.len());
        with_scratch(|s| {
            self.batch_order_into(keys, s);
            for k in 0..s.order.len() {
                self.prefetch_ahead(s, k);
                let i = s.order[k] as usize;
                out[out_idx[i] as usize] = self.find_first_match(&s.fps[i]).is_some();
            }
        })
    }

    // ------------------------------------------------------------------
    // Adapt
    // ------------------------------------------------------------------

    /// Correct a reported false positive (paper §4.2).
    ///
    /// `hit` is the result of the offending query, `stored_key` is the
    /// original key the reverse map holds at `(hit.minirun_id, hit.rank)`,
    /// and `query_key` is the key that falsely matched. The stored
    /// fingerprint is extended by whole `r`-bit chunks of `stored_key`'s
    /// hash string until it stops being a prefix of `query_key`'s.
    ///
    /// Returns the number of extension chunks added.
    pub fn adapt(
        &mut self,
        hit: &Hit,
        stored_key: u64,
        query_key: u64,
    ) -> Result<u32, FilterError> {
        let ext = self
            .locate_group(hit.minirun_id, hit.rank)
            .ok_or(FilterError::NotFound)?;
        let (hq, _) = split_minirun_id(hit.minirun_id, self.cfg.rbits);
        let sfp = self.fingerprint(stored_key);
        debug_assert_eq!(sfp.minirun_id(), hit.minirun_id, "stored key mismatch");
        debug_assert!(
            self.group_matches_fp(&ext, &sfp),
            "stored key does not match the fingerprint being adapted"
        );
        let qfp = self.fingerprint(query_key);
        let len = ext.ext_len() as u64;
        let start = ext.start;

        // Decide how many chunks are needed *before* touching the table so
        // the operation is atomic: either the fingerprint is fully
        // separated from `query_key`, or nothing changes.
        let mut needed: usize = 0;
        loop {
            if needed >= MAX_ADAPT_CHUNKS {
                return Err(FilterError::CannotSeparate);
            }
            let i = len + needed as u64;
            needed += 1;
            if sfp.chunk(i) != qfp.chunk(i) {
                break;
            }
        }
        let free_after = (self.t.total - start) - self.t.used_count_range(start, self.t.total);
        if free_after < needed {
            return Err(FilterError::Full);
        }
        for k in 0..needed {
            let i = len + k as u64;
            self.t
                .insert_slot_at(hq, start + 1 + i as usize, sfp.chunk(i), true, false)
                .expect("capacity was checked above");
        }
        self.slots_used += needed as u64;
        self.stats.extension_slots += needed as u64;
        self.stats.adaptations += 1;
        Ok(needed as u32)
    }

    /// Overwrite the payload value of the fingerprint at `hit`
    /// (yes/no-list mode: move a key between lists without reinserting).
    pub fn set_value(&mut self, hit: &Hit, value: u64) -> Result<(), FilterError> {
        debug_assert!(value <= bitmask(self.cfg.value_bits));
        let ext = self
            .locate_group(hit.minirun_id, hit.rank)
            .ok_or(FilterError::NotFound)?;
        let rem = self.t.remainder_at(ext.start);
        self.t.set_slot(ext.start, (value << self.cfg.rbits) | rem);
        Ok(())
    }

    /// Extend the fingerprint at `hit` so it no longer matches `query_key`,
    /// resolving the stored key through the provided lookup (convenience
    /// for reverse-map integrations).
    pub fn adapt_with<F>(
        &mut self,
        hit: &Hit,
        query_key: u64,
        lookup: F,
    ) -> Result<u32, FilterError>
    where
        F: FnOnce(u64, u32) -> Option<u64>,
    {
        let stored = lookup(hit.minirun_id, hit.rank).ok_or(FilterError::NotFound)?;
        self.adapt(hit, stored, query_key)
    }
}
