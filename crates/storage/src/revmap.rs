//! Reverse-map key encoding — re-exported from [`aqf::revmap`], where the
//! packing lives so the filter trait layer (`aqf-filters`) can issue the
//! same store keys [`crate::system::FilteredDb`] reads back.

pub use aqf::revmap::{pack_fingerprint_key, unpack_fingerprint_key, RANK_BITS};
