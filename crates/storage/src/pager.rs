//! Page-granular file I/O with statistics and optional latency injection.
//!
//! The benchmarks measure how filters change a database's *disk traffic*;
//! absolute disk speed is hardware-dependent and the OS page cache can
//! mask it entirely. The pager therefore (a) counts every page read and
//! write, and (b) can inject a deterministic per-I/O delay so experiments
//! reproduce the paper's "a false positive costs a disk access" regime on
//! any machine. DESIGN.md §4 records this substitution.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Duration;

/// Fixed page size (bytes).
pub const PAGE_SIZE: usize = 4096;

/// A page-sized buffer.
pub type Page = Box<[u8; PAGE_SIZE]>;

/// Cumulative I/O statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the file.
    pub reads: u64,
    /// Pages written to the file.
    pub writes: u64,
}

/// Latency injected per physical I/O (simulating a slow device).
#[derive(Clone, Copy, Debug, Default)]
pub struct IoPolicy {
    /// Sleep per page read.
    pub read_delay: Option<Duration>,
    /// Sleep per page write.
    pub write_delay: Option<Duration>,
    /// Model I/O as *blocking*: park the OS thread (`thread::sleep`)
    /// instead of busy-spinning for the delay. A spinning "I/O" burns
    /// the core, so on few-core machines nothing else can run during
    /// the stall — the opposite of what a real device wait does.
    /// Concurrency benchmarks set this; throughput benchmarks that
    /// calibrated against the precise spin delay keep the default.
    pub yield_io: bool,
}

impl IoPolicy {
    /// Perform the configured per-read device wait (no-op if none).
    pub fn stall_read(&self) {
        if let Some(d) = self.read_delay {
            self.stall(d);
        }
    }

    /// Perform the configured per-write device wait (no-op if none).
    pub fn stall_write(&self) {
        if let Some(d) = self.write_delay {
            self.stall(d);
        }
    }

    fn stall(&self, d: Duration) {
        if self.yield_io {
            std::thread::sleep(d);
        } else {
            spin_sleep(d);
        }
    }
}

/// A file of fixed-size pages.
pub struct Pager {
    file: File,
    pages: u32,
    policy: IoPolicy,
    stats: IoStats,
}

impl Pager {
    /// Open (creating if needed) a page file.
    pub fn open(path: &Path, policy: IoPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            pages: (len / PAGE_SIZE as u64) as u32,
            policy,
            stats: IoStats::default(),
        })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Allocate a fresh zeroed page, returning its id.
    pub fn allocate(&mut self) -> std::io::Result<u32> {
        let id = self.pages;
        self.pages += 1;
        let zero = [0u8; PAGE_SIZE];
        self.write_page(id, &zero)?;
        Ok(id)
    }

    /// Read page `id` into a fresh buffer (device wait + transfer).
    pub fn read_page(&mut self, id: u32) -> std::io::Result<Page> {
        self.policy.stall_read();
        self.read_page_raw(id)
    }

    /// Read page `id` without the injected device wait. For callers
    /// (the page cache) that perform [`IoPolicy::stall_read`] outside
    /// their locks so concurrent device waits can overlap.
    pub fn read_page_raw(&mut self, id: u32) -> std::io::Result<Page> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf[..])?;
        self.stats.reads += 1;
        Ok(buf)
    }

    /// Write a page (device wait + transfer).
    pub fn write_page(&mut self, id: u32, data: &[u8; PAGE_SIZE]) -> std::io::Result<()> {
        self.policy.stall_write();
        self.write_page_raw(id, data)
    }

    /// Write a page without the injected device wait (see
    /// [`Self::read_page_raw`]).
    pub fn write_page_raw(&mut self, id: u32, data: &[u8; PAGE_SIZE]) -> std::io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(data)?;
        self.stats.writes += 1;
        Ok(())
    }

    /// Flush to the OS.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }

    /// I/O counters so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The latency-injection policy this pager was opened with.
    pub fn policy(&self) -> IoPolicy {
        self.policy
    }
}

/// Sleep that stays accurate for microsecond delays (std sleep can
/// overshoot by a scheduler quantum).
fn spin_sleep(d: Duration) {
    let start = std::time::Instant::now();
    if d > Duration::from_micros(200) {
        std::thread::sleep(d - Duration::from_micros(100));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pages() {
        let dir = std::env::temp_dir().join(format!("aqf-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        let _ = std::fs::remove_file(&path);
        let mut p = Pager::open(&path, IoPolicy::default()).unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        let mut pa = [0u8; PAGE_SIZE];
        pa[0] = 42;
        pa[PAGE_SIZE - 1] = 7;
        p.write_page(a, &pa).unwrap();
        let got = p.read_page(a).unwrap();
        assert_eq!(got[0], 42);
        assert_eq!(got[PAGE_SIZE - 1], 7);
        let st = p.stats();
        assert!(st.reads >= 1 && st.writes >= 3);
        std::fs::remove_file(&path).unwrap();
    }
}
