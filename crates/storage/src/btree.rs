//! An on-disk B+tree keyed by `u64`, built on the page cache.
//!
//! This is the database substrate standing in for the paper's SplinterDB
//! B-tree (DESIGN.md §4): fixed 4 KiB pages, internal nodes of separator
//! keys and child pointers, leaves of `(key, value)` entries with values
//! up to [`MAX_VALUE_LEN`] bytes. Deletes are lazy (no rebalancing) —
//! sufficient for every experiment in the paper, all of which are
//! insert/query dominated.
//!
//! Concurrency: every operation takes `&self`. A tree-level `RwLock`
//! (which also holds the root page id) is held across whole operations —
//! shared for [`BTreeStore::get`], exclusive for [`BTreeStore::put`] /
//! [`BTreeStore::delete`] — so a reader can never descend through a
//! half-propagated split. Page frames themselves are synchronized by the
//! [`PageCache`]; the tree lock provides the multi-page structural
//! consistency the cache deliberately does not.

use crate::cache::{CacheStats, PageCache};
use crate::pager::{IoPolicy, IoStats, Pager, PAGE_SIZE};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{PoisonError, RwLock};

/// Maximum value size storable in a leaf.
pub const MAX_VALUE_LEN: usize = 1024;

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;
const HDR: usize = 8;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Node {
    Leaf { entries: Vec<(u64, Vec<u8>)> },
    Internal { keys: Vec<u64>, children: Vec<u32> },
}

impl Node {
    fn parse(page: &[u8; PAGE_SIZE]) -> Node {
        let n = u16::from_le_bytes([page[2], page[3]]) as usize;
        match page[0] {
            LEAF => {
                let mut entries = Vec::with_capacity(n);
                let mut off = HDR;
                for _ in 0..n {
                    let key = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                    let vlen =
                        u16::from_le_bytes(page[off + 8..off + 10].try_into().unwrap()) as usize;
                    let value = page[off + 10..off + 10 + vlen].to_vec();
                    entries.push((key, value));
                    off += 10 + vlen;
                }
                Node::Leaf { entries }
            }
            INTERNAL => {
                let mut keys = Vec::with_capacity(n);
                let mut off = HDR;
                for _ in 0..n {
                    keys.push(u64::from_le_bytes(page[off..off + 8].try_into().unwrap()));
                    off += 8;
                }
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    children.push(u32::from_le_bytes(page[off..off + 4].try_into().unwrap()));
                    off += 4;
                }
                Node::Internal { keys, children }
            }
            t => panic!("corrupt node type {t}"),
        }
    }

    fn serialize(&self, page: &mut [u8; PAGE_SIZE]) {
        page.fill(0);
        match self {
            Node::Leaf { entries } => {
                page[0] = LEAF;
                page[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                let mut off = HDR;
                for (k, v) in entries {
                    page[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    page[off + 8..off + 10].copy_from_slice(&(v.len() as u16).to_le_bytes());
                    page[off + 10..off + 10 + v.len()].copy_from_slice(v);
                    off += 10 + v.len();
                }
            }
            Node::Internal { keys, children } => {
                page[0] = INTERNAL;
                page[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                let mut off = HDR;
                for k in keys {
                    page[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    off += 8;
                }
                for c in children {
                    page[off..off + 4].copy_from_slice(&c.to_le_bytes());
                    off += 4;
                }
            }
        }
    }

    fn size(&self) -> usize {
        match self {
            Node::Leaf { entries } => {
                HDR + entries.iter().map(|(_, v)| 10 + v.len()).sum::<usize>()
            }
            Node::Internal { keys, children } => HDR + keys.len() * 8 + children.len() * 4,
        }
    }
}

/// An on-disk B+tree store with shared (`&self`) reads and internally
/// serialized writes.
pub struct BTreeStore {
    cache: PageCache,
    /// Tree structure lock; the protected value is the root page id, so
    /// holding the guard *is* holding a consistent view of the tree.
    root: RwLock<u32>,
    len: AtomicU64,
}

impl BTreeStore {
    /// Create a fresh store at `path` (truncating any existing file) with
    /// a cache of `cache_pages` pages and the given I/O policy.
    pub fn create(path: &Path, policy: IoPolicy, cache_pages: usize) -> std::io::Result<Self> {
        let _ = std::fs::remove_file(path);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let pager = Pager::open(path, policy)?;
        let mut cache = PageCache::new(pager, cache_pages);
        let root = cache.allocate()?;
        let root_page = cache.page_mut(root)?;
        Node::Leaf {
            entries: Vec::new(),
        }
        .serialize(root_page);
        Ok(Self {
            cache,
            root: RwLock::new(root),
            len: AtomicU64::new(0),
        })
    }

    /// Number of key-value pairs.
    pub fn len(&self) -> u64 {
        self.len.load(Relaxed)
    }

    /// True if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Disk I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.cache.io_stats()
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn load(&self, id: u32) -> std::io::Result<Node> {
        self.cache.with_page(id, Node::parse)
    }

    fn store_node(&self, id: u32, node: &Node) -> std::io::Result<()> {
        self.cache.with_page_mut(id, |p| node.serialize(p))
    }

    /// Look up `key`. Concurrent with other lookups; excluded against
    /// writers by the tree lock.
    pub fn get(&self, key: u64) -> std::io::Result<Option<Vec<u8>>> {
        let root = self.root.read().unwrap_or_else(PoisonError::into_inner);
        let mut id = *root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
                Node::Leaf { entries } => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, v)| v.clone()));
                }
            }
        }
    }

    /// Insert or replace `key -> value`.
    pub fn put(&self, key: u64, value: &[u8]) -> std::io::Result<()> {
        assert!(value.len() <= MAX_VALUE_LEN, "value too large");
        let mut root = self.root.write().unwrap_or_else(PoisonError::into_inner);
        // Descend, remembering the path.
        let mut path: Vec<u32> = Vec::new();
        let mut id = *root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    path.push(id);
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
                Node::Leaf { mut entries } => {
                    match entries.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => entries[i].1 = value.to_vec(),
                        Err(i) => {
                            entries.insert(i, (key, value.to_vec()));
                            self.len.fetch_add(1, Relaxed);
                        }
                    }
                    let node = Node::Leaf { entries };
                    if node.size() <= PAGE_SIZE {
                        return self.store_node(id, &node);
                    }
                    // Split the leaf and propagate.
                    let Node::Leaf { entries } = node else {
                        unreachable!()
                    };
                    let mid = entries.len() / 2;
                    let right_entries = entries[mid..].to_vec();
                    let left_entries = entries[..mid].to_vec();
                    let sep = right_entries[0].0;
                    let right_id = self.cache.allocate()?;
                    self.store_node(
                        id,
                        &Node::Leaf {
                            entries: left_entries,
                        },
                    )?;
                    self.store_node(
                        right_id,
                        &Node::Leaf {
                            entries: right_entries,
                        },
                    )?;
                    return self.insert_separator(&mut root, path, id, sep, right_id);
                }
            }
        }
    }

    /// Insert `sep`/`right_id` into the parent chain after `left_id` split.
    fn insert_separator(
        &self,
        root: &mut u32,
        mut path: Vec<u32>,
        mut left_id: u32,
        mut sep: u64,
        mut right_id: u32,
    ) -> std::io::Result<()> {
        loop {
            let Some(parent_id) = path.pop() else {
                // Split reached the root: grow the tree.
                let new_root = self.cache.allocate()?;
                let node = Node::Internal {
                    keys: vec![sep],
                    children: vec![left_id, right_id],
                };
                self.store_node(new_root, &node)?;
                *root = new_root;
                return Ok(());
            };
            let Node::Internal {
                mut keys,
                mut children,
            } = self.load(parent_id)?
            else {
                panic!("parent must be internal");
            };
            let idx = children
                .iter()
                .position(|&c| c == left_id)
                .expect("child must be under parent");
            keys.insert(idx, sep);
            children.insert(idx + 1, right_id);
            let node = Node::Internal { keys, children };
            if node.size() <= PAGE_SIZE {
                return self.store_node(parent_id, &node);
            }
            // Split the internal node.
            let Node::Internal { keys, children } = node else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let promote = keys[mid];
            let right_keys = keys[mid + 1..].to_vec();
            let right_children = children[mid + 1..].to_vec();
            let left_keys = keys[..mid].to_vec();
            let left_children = children[..=mid].to_vec();
            let new_right = self.cache.allocate()?;
            self.store_node(
                parent_id,
                &Node::Internal {
                    keys: left_keys,
                    children: left_children,
                },
            )?;
            self.store_node(
                new_right,
                &Node::Internal {
                    keys: right_keys,
                    children: right_children,
                },
            )?;
            left_id = parent_id;
            sep = promote;
            right_id = new_right;
        }
    }

    /// Remove `key`. Returns true if it existed. Lazy: leaves may become
    /// underfull (no rebalancing).
    pub fn delete(&self, key: u64) -> std::io::Result<bool> {
        let root = self.root.write().unwrap_or_else(PoisonError::into_inner);
        let mut id = *root;
        loop {
            match self.load(id)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
                Node::Leaf { mut entries } => {
                    match entries.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => {
                            entries.remove(i);
                            self.len.fetch_sub(1, Relaxed);
                            self.store_node(id, &Node::Leaf { entries })?;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// Flush all dirty pages.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.cache.flush()
    }

    /// Root page id (for snapshot manifests).
    pub fn root(&self) -> u32 {
        *self.root.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flush, then stream the tree's complete on-disk image — root page
    /// id, entry count, and a length-prefixed page-image byte string —
    /// into the open snapshot writer, page by page (no store-sized
    /// intermediate buffer). Together with [`BTreeStore::restore`] this
    /// is the B-tree half of the `FilteredDb` snapshot protocol.
    pub fn snapshot_into(
        &mut self,
        w: &mut aqf_bits::snapshot::SnapshotWriter,
    ) -> std::io::Result<()> {
        self.flush()?;
        let n = self.cache.page_count();
        w.u32(self.root());
        w.u64(self.len());
        w.u64(n as u64 * PAGE_SIZE as u64);
        for id in 0..n {
            w.raw(&self.cache.page(id)?[..]);
        }
        Ok(())
    }

    /// Recreate a store at `path` from a page image produced by
    /// [`BTreeStore::snapshot_into`], replacing any existing file.
    pub fn restore(
        path: &Path,
        policy: IoPolicy,
        cache_pages: usize,
        root: u32,
        len: u64,
        pages: &[u8],
    ) -> std::io::Result<Self> {
        if pages.is_empty() || !pages.len().is_multiple_of(PAGE_SIZE) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("page image of {} bytes is not page-aligned", pages.len()),
            ));
        }
        let n = (pages.len() / PAGE_SIZE) as u32;
        if root >= n {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("root page {root} outside {n}-page image"),
            ));
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, pages)?;
        let pager = Pager::open(path, policy)?;
        let cache = PageCache::new(pager, cache_pages);
        Ok(Self {
            cache,
            root: RwLock::new(root),
            len: AtomicU64::new(len),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeMap;

    fn temp_store(cache_pages: usize) -> (BTreeStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "aqf-btree-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        (
            BTreeStore::create(&path, IoPolicy::default(), cache_pages).unwrap(),
            path,
        )
    }

    #[test]
    fn model_test_against_btreemap() {
        let (t, path) = temp_store(64);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..20_000u64 {
            let key = rng.random_range(0..5000u64);
            match rng.random_range(0..10u32) {
                0..=6 => {
                    let val = vec![(key & 0xFF) as u8; rng.random_range(0..80usize)];
                    t.put(key, &val).unwrap();
                    model.insert(key, val);
                }
                7..=8 => {
                    assert_eq!(
                        t.get(key).unwrap(),
                        model.get(&key).cloned(),
                        "step {step} get({key})"
                    );
                }
                _ => {
                    assert_eq!(
                        t.delete(key).unwrap(),
                        model.remove(&key).is_some(),
                        "step {step} delete({key})"
                    );
                }
            }
        }
        assert_eq!(t.len(), model.len() as u64);
        for (&k, v) in &model {
            assert_eq!(
                t.get(k).unwrap().as_deref(),
                Some(v.as_slice()),
                "final {k}"
            );
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn splits_under_sequential_load() {
        let (t, path) = temp_store(256);
        for k in 0..50_000u64 {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        for k in (0..50_000u64).step_by(997) {
            assert_eq!(t.get(k).unwrap().unwrap(), k.to_le_bytes());
        }
        assert!(t.get(50_001).unwrap().is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn small_cache_thrashes_but_stays_correct() {
        let (t, path) = temp_store(8);
        for k in 0..5000u64 {
            t.put(k * 3, &[1, 2, 3]).unwrap();
        }
        for k in 0..5000u64 {
            assert!(t.get(k * 3).unwrap().is_some(), "{k}");
        }
        assert!(t.io_stats().reads > 0, "tiny cache must hit disk");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn large_values_split_correctly() {
        let (t, path) = temp_store(64);
        let big = vec![0xAB; 1000];
        for k in 0..200u64 {
            t.put(k, &big).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(k).unwrap().unwrap().len(), 1000);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_readers_race_one_writer() {
        let (t, path) = temp_store(64);
        for k in 0..2_000u64 {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        std::thread::scope(|s| {
            let t = &t;
            // Writer keeps splitting leaves past the prefilled range.
            s.spawn(move || {
                for k in 2_000..6_000u64 {
                    t.put(k, &k.to_le_bytes()).unwrap();
                }
            });
            for r in 0..3 {
                s.spawn(move || {
                    for i in 0..4_000u64 {
                        let k = (i * 37 + r) % 2_000;
                        assert_eq!(
                            t.get(k).unwrap().as_deref(),
                            Some(&k.to_le_bytes()[..]),
                            "reader saw torn tree at {k}"
                        );
                    }
                });
            }
        });
        for k in 0..6_000u64 {
            assert_eq!(t.get(k).unwrap().unwrap(), k.to_le_bytes());
        }
        std::fs::remove_file(path).unwrap();
    }
}
