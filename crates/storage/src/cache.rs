//! LRU page cache over the [`crate::pager::Pager`].
//!
//! Bounded number of in-memory frames; dirty pages are written back on
//! eviction and on `flush`. Hit/miss counters feed the Fig. 6 experiment
//! (query throughput vs cache size under adversarial queries).

use std::collections::HashMap;

use crate::pager::{IoStats, Page, Pager, PAGE_SIZE};

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty pages written back on eviction.
    pub evictions: u64,
}

struct Frame {
    page_id: u32,
    data: Page,
    dirty: bool,
    last_used: u64,
}

/// A fixed-capacity LRU page cache.
pub struct PageCache {
    pager: Pager,
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    capacity: usize,
    clock: u64,
    stats: CacheStats,
}

impl PageCache {
    /// Wrap `pager` with an LRU cache of `capacity` pages (>= 8).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        Self {
            pager,
            frames: Vec::new(),
            map: HashMap::new(),
            capacity: capacity.max(8),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Pager (disk) counters.
    pub fn io_stats(&self) -> IoStats {
        self.pager.stats()
    }

    /// Allocate a fresh page.
    pub fn allocate(&mut self) -> std::io::Result<u32> {
        self.pager.allocate()
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    fn touch(&mut self, frame: usize) {
        self.clock += 1;
        self.frames[frame].last_used = self.clock;
    }

    fn frame_for(&mut self, page_id: u32) -> std::io::Result<usize> {
        if let Some(&f) = self.map.get(&page_id) {
            self.stats.hits += 1;
            self.touch(f);
            return Ok(f);
        }
        self.stats.misses += 1;
        let data = self.pager.read_page(page_id)?;
        let f = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id,
                data,
                dirty: false,
                last_used: 0,
            });
            self.frames.len() - 1
        } else {
            // Evict the least-recently-used frame.
            let victim = (0..self.frames.len())
                .min_by_key(|&i| self.frames[i].last_used)
                .expect("cache not empty");
            let old = &mut self.frames[victim];
            if old.dirty {
                self.pager.write_page(old.page_id, &old.data)?;
                self.stats.evictions += 1;
            }
            self.map.remove(&old.page_id);
            old.page_id = page_id;
            old.data = data;
            old.dirty = false;
            victim
        };
        self.map.insert(page_id, f);
        self.touch(f);
        Ok(f)
    }

    /// Read access to a page.
    pub fn page(&mut self, page_id: u32) -> std::io::Result<&[u8; PAGE_SIZE]> {
        let f = self.frame_for(page_id)?;
        Ok(&self.frames[f].data)
    }

    /// Write access to a page (marks it dirty).
    pub fn page_mut(&mut self, page_id: u32) -> std::io::Result<&mut [u8; PAGE_SIZE]> {
        let f = self.frame_for(page_id)?;
        self.frames[f].dirty = true;
        Ok(&mut self.frames[f].data)
    }

    /// Write back every dirty page.
    pub fn flush(&mut self) -> std::io::Result<()> {
        for f in &mut self.frames {
            if f.dirty {
                self.pager.write_page(f.page_id, &f.data)?;
                f.dirty = false;
            }
        }
        self.pager.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::IoPolicy;

    fn temp_cache(cap: usize) -> (PageCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "aqf-cache-{}-{cap}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        let _ = std::fs::remove_file(&path);
        let pager = Pager::open(&path, IoPolicy::default()).unwrap();
        (PageCache::new(pager, cap), path)
    }

    #[test]
    fn cached_reads_do_not_hit_disk() {
        let (mut c, path) = temp_cache(16);
        let p = c.allocate().unwrap();
        c.page_mut(p).unwrap()[0] = 9;
        let before = c.io_stats().reads;
        for _ in 0..100 {
            assert_eq!(c.page(p).unwrap()[0], 9);
        }
        assert_eq!(c.io_stats().reads, before, "reads must be cached");
        assert!(c.stats().hits >= 100);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (mut c, path) = temp_cache(8);
        let ids: Vec<u32> = (0..32).map(|_| c.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            c.page_mut(id).unwrap()[0] = i as u8;
        }
        // Re-read everything; evictions must have preserved the data.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(c.page(id).unwrap()[0], i as u8, "page {id}");
        }
        assert!(c.stats().evictions > 0);
        c.flush().unwrap();
        std::fs::remove_file(path).unwrap();
    }
}
