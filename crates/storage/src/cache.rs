//! LRU page cache over the [`crate::pager::Pager`].
//!
//! Bounded number of in-memory frames; dirty pages are written back on
//! eviction and on `flush`. Hit/miss counters feed the Fig. 6 experiment
//! (query throughput vs cache size under adversarial queries).
//!
//! Concurrency: the cache is internally synchronized so callers holding
//! only `&PageCache` can read concurrently. Cache hits run under a
//! shared (`RwLock` read) guard — the hot path for filter-negative-free
//! query traffic — with the LRU stamp bumped through a per-frame atomic.
//! Misses are *single-flight*: one thread claims the page (a pending
//! set + condvar), performs the device wait ([`IoPolicy::stall_read`])
//! and the pager transfer **outside the frame-table lock**, then takes
//! the exclusive guard only to install the frame — so concurrent misses
//! on different pages overlap their device waits instead of convoying
//! behind one lock, and concurrent requests for the same page wait for
//! the in-flight load rather than issuing duplicate reads. Evicting a
//! dirty victim likewise defers the write-back until the locks drop;
//! the victim id stays in the pending set so a racing reload waits for
//! the fresh bytes to reach disk instead of reading the stale copy.
//! Lock order is frame table → pending set → pager; the pending set is
//! never held across the frame-table lock. Callers that need
//! reader/writer exclusion *across multiple pages* (a B-tree descent
//! racing a split) must layer their own structure lock on top — see
//! [`crate::btree::BTreeStore`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use crate::pager::{IoPolicy, IoStats, Page, Pager, PAGE_SIZE};

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty pages written back on eviction.
    pub evictions: u64,
}

struct Frame {
    page_id: u32,
    data: Page,
    dirty: bool,
    /// LRU stamp; atomic so concurrent shared-guard hits can touch it.
    last_used: AtomicU64,
}

/// The frame table: everything that needs exclusive access to move.
struct CacheInner {
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
}

/// Lock-free cache metadata: counters live outside the lock so hits
/// under the shared guard never contend on them.
struct CacheMeta {
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A fixed-capacity LRU page cache, shareable across reader threads.
pub struct PageCache {
    inner: RwLock<CacheInner>,
    pager: Mutex<Pager>,
    /// Pages with an in-flight load or eviction write-back.
    pending: Mutex<HashSet<u32>>,
    pending_cv: Condvar,
    policy: IoPolicy,
    meta: CacheMeta,
}

impl PageCache {
    /// Wrap `pager` with an LRU cache of `capacity` pages (>= 8).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let policy = pager.policy();
        Self {
            inner: RwLock::new(CacheInner {
                frames: Vec::new(),
                map: HashMap::new(),
            }),
            pager: Mutex::new(pager),
            pending: Mutex::new(HashSet::new()),
            pending_cv: Condvar::new(),
            policy,
            meta: CacheMeta {
                capacity: capacity.max(8),
                clock: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            },
        }
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.meta.capacity
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.meta.hits.load(Relaxed),
            misses: self.meta.misses.load(Relaxed),
            evictions: self.meta.evictions.load(Relaxed),
        }
    }

    /// Pager (disk) counters.
    pub fn io_stats(&self) -> IoStats {
        self.lock_pager().stats()
    }

    /// Allocate a fresh page.
    pub fn allocate(&self) -> std::io::Result<u32> {
        self.lock_pager().allocate()
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        self.lock_pager().page_count()
    }

    fn read_inner(&self) -> std::sync::RwLockReadGuard<'_, CacheInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_inner(&self) -> std::sync::RwLockWriteGuard<'_, CacheInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_pager(&self) -> MutexGuard<'_, Pager> {
        self.pager.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_pending(&self) -> MutexGuard<'_, HashSet<u32>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn touch(meta: &CacheMeta, frame: &Frame) {
        let t = meta.clock.fetch_add(1, Relaxed) + 1;
        frame.last_used.store(t, Relaxed);
    }

    /// Locate (or load) `page_id` in the frame table. Requires the
    /// exclusive borrow: may read from disk, evict, or grow the table.
    fn frame_for(
        meta: &CacheMeta,
        inner: &mut CacheInner,
        pager: &mut Pager,
        page_id: u32,
    ) -> std::io::Result<usize> {
        if let Some(&f) = inner.map.get(&page_id) {
            meta.hits.fetch_add(1, Relaxed);
            Self::touch(meta, &inner.frames[f]);
            return Ok(f);
        }
        meta.misses.fetch_add(1, Relaxed);
        let data = pager.read_page(page_id)?;
        let (f, write_back) = Self::install(meta, inner, page_id, data);
        if let Some((old_id, old_data)) = write_back {
            pager.write_page(old_id, &old_data)?;
        }
        Ok(f)
    }

    /// Put `data` into a frame (growing or evicting LRU), updating the
    /// map. Returns the frame index plus the evicted dirty page's
    /// `(id, data)` if any — the caller must persist that (with the
    /// exclusive guard held or the victim claimed pending, so a racing
    /// reload can't see the stale on-disk copy first).
    fn install(
        meta: &CacheMeta,
        inner: &mut CacheInner,
        page_id: u32,
        data: Page,
    ) -> (usize, Option<(u32, Page)>) {
        let (f, write_back) = if inner.frames.len() < meta.capacity {
            inner.frames.push(Frame {
                page_id,
                data,
                dirty: false,
                last_used: AtomicU64::new(0),
            });
            (inner.frames.len() - 1, None)
        } else {
            // Evict the least-recently-used frame.
            let victim = (0..inner.frames.len())
                .min_by_key(|&i| inner.frames[i].last_used.load(Relaxed))
                .expect("cache not empty");
            let old = &mut inner.frames[victim];
            let old_id = old.page_id;
            let old_dirty = old.dirty;
            let old_data = std::mem::replace(&mut old.data, data);
            old.page_id = page_id;
            old.dirty = false;
            inner.map.remove(&old_id);
            let wb = if old_dirty {
                meta.evictions.fetch_add(1, Relaxed);
                Some((old_id, old_data))
            } else {
                None
            };
            (victim, wb)
        };
        inner.map.insert(page_id, f);
        Self::touch(meta, &inner.frames[f]);
        (f, write_back)
    }

    /// Single-flight load of `page_id` for the shared (`&self`) paths.
    /// Claims the page in the pending set (waiting out any in-flight
    /// load or write-back of it), performs the device wait and the
    /// pager read with **no cache lock held**, then takes the exclusive
    /// guard only to install the frame. Returns with the page loaded —
    /// though a concurrent eviction may already have removed it again,
    /// so callers re-check the map in a loop.
    fn load_page(&self, page_id: u32) -> std::io::Result<()> {
        {
            let mut pend = self.lock_pending();
            while pend.contains(&page_id) {
                pend = self
                    .pending_cv
                    .wait(pend)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            pend.insert(page_id);
        }
        let res = self.load_claimed(page_id);
        self.lock_pending().remove(&page_id);
        self.pending_cv.notify_all();
        res
    }

    /// The body of [`Self::load_page`], run while owning the claim.
    fn load_claimed(&self, page_id: u32) -> std::io::Result<()> {
        // The load we waited out may have installed the page already.
        if self.read_inner().map.contains_key(&page_id) {
            return Ok(());
        }
        self.meta.misses.fetch_add(1, Relaxed);
        self.policy.stall_read(); // device wait: no lock held
        let data = self.lock_pager().read_page_raw(page_id)?;
        // Install under the exclusive guard; a dirty victim's write-back
        // is deferred until the guard drops, claimed in the pending set
        // (lock order inner → pending) so a racing reload of the victim
        // waits for the fresh bytes instead of reading the stale copy.
        let write_back = {
            let mut inner = self.write_inner();
            let (_, wb) = Self::install(&self.meta, &mut inner, page_id, data);
            if let Some((old_id, _)) = &wb {
                self.lock_pending().insert(*old_id);
            }
            wb
        };
        if let Some((old_id, old_data)) = write_back {
            self.policy.stall_write(); // device wait: no lock held
            let res = self.lock_pager().write_page_raw(old_id, &old_data);
            self.lock_pending().remove(&old_id);
            self.pending_cv.notify_all();
            res?;
        }
        Ok(())
    }

    /// Run `f` over a shared view of a page. Cache hits stay under the
    /// shared guard (concurrent with other readers); misses load the
    /// page single-flight with the I/O outside the cache locks.
    pub fn with_page<T>(
        &self,
        page_id: u32,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> T,
    ) -> std::io::Result<T> {
        let mut f = Some(f);
        loop {
            {
                let inner = self.read_inner();
                if let Some(&i) = inner.map.get(&page_id) {
                    self.meta.hits.fetch_add(1, Relaxed);
                    let frame = &inner.frames[i];
                    Self::touch(&self.meta, frame);
                    return Ok((f.take().expect("looped with f consumed"))(&frame.data));
                }
            }
            self.load_page(page_id)?;
        }
    }

    /// Run `f` over an exclusive view of a page, marking it dirty.
    /// Misses load the page through the same single-flight path as
    /// reads, so the I/O happens before the exclusive guard is taken.
    pub fn with_page_mut<T>(
        &self,
        page_id: u32,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> T,
    ) -> std::io::Result<T> {
        let mut f = Some(f);
        loop {
            {
                let mut inner = self.write_inner();
                if let Some(&i) = inner.map.get(&page_id) {
                    self.meta.hits.fetch_add(1, Relaxed);
                    Self::touch(&self.meta, &inner.frames[i]);
                    let frame = &mut inner.frames[i];
                    frame.dirty = true;
                    return Ok((f.take().expect("looped with f consumed"))(&mut frame.data));
                }
            }
            self.load_page(page_id)?;
        }
    }

    /// Read access to a page (exclusive-borrow fast path: no locking).
    pub fn page(&mut self, page_id: u32) -> std::io::Result<&[u8; PAGE_SIZE]> {
        let inner = self.inner.get_mut().unwrap_or_else(PoisonError::into_inner);
        let pager = self.pager.get_mut().unwrap_or_else(PoisonError::into_inner);
        let f = Self::frame_for(&self.meta, inner, pager, page_id)?;
        let inner = self.inner.get_mut().unwrap_or_else(PoisonError::into_inner);
        Ok(&inner.frames[f].data)
    }

    /// Write access to a page (marks it dirty; exclusive borrow).
    pub fn page_mut(&mut self, page_id: u32) -> std::io::Result<&mut [u8; PAGE_SIZE]> {
        let inner = self.inner.get_mut().unwrap_or_else(PoisonError::into_inner);
        let pager = self.pager.get_mut().unwrap_or_else(PoisonError::into_inner);
        let f = Self::frame_for(&self.meta, inner, pager, page_id)?;
        let inner = self.inner.get_mut().unwrap_or_else(PoisonError::into_inner);
        inner.frames[f].dirty = true;
        Ok(&mut inner.frames[f].data)
    }

    /// Write back every dirty page.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let inner = self.inner.get_mut().unwrap_or_else(PoisonError::into_inner);
        let pager = self.pager.get_mut().unwrap_or_else(PoisonError::into_inner);
        for f in inner.frames.iter_mut() {
            if f.dirty {
                pager.write_page(f.page_id, &f.data)?;
                f.dirty = false;
            }
        }
        pager.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::IoPolicy;

    fn temp_cache(cap: usize) -> (PageCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "aqf-cache-{}-{cap}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        let _ = std::fs::remove_file(&path);
        let pager = Pager::open(&path, IoPolicy::default()).unwrap();
        (PageCache::new(pager, cap), path)
    }

    #[test]
    fn cached_reads_do_not_hit_disk() {
        let (mut c, path) = temp_cache(16);
        let p = c.allocate().unwrap();
        c.page_mut(p).unwrap()[0] = 9;
        let before = c.io_stats().reads;
        for _ in 0..100 {
            assert_eq!(c.page(p).unwrap()[0], 9);
        }
        assert_eq!(c.io_stats().reads, before, "reads must be cached");
        assert!(c.stats().hits >= 100);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (mut c, path) = temp_cache(8);
        let ids: Vec<u32> = (0..32).map(|_| c.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            c.page_mut(id).unwrap()[0] = i as u8;
        }
        // Re-read everything; evictions must have preserved the data.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(c.page(id).unwrap()[0], i as u8, "page {id}");
        }
        assert!(c.stats().evictions > 0);
        c.flush().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn shared_reads_agree_with_exclusive_reads() {
        let (mut c, path) = temp_cache(8);
        let ids: Vec<u32> = (0..32).map(|_| c.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            c.with_page_mut(id, |p| p[7] = i as u8).unwrap();
        }
        // Shared-path reads (hits and miss-upgrades) see the same bytes.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(c.with_page(id, |p| p[7]).unwrap(), i as u8, "page {id}");
        }
        // Concurrent shared readers over a hot working set.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                let ids = &ids;
                s.spawn(move || {
                    for _ in 0..200 {
                        for (i, &id) in ids.iter().enumerate().take(4) {
                            assert_eq!(c.with_page(id, |p| p[7]).unwrap(), i as u8);
                        }
                    }
                });
            }
        });
        c.flush().unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        // A slow (yielding) device wait widens the miss window so every
        // thread piles onto the same cold page; single-flight must issue
        // exactly one disk read for all of them.
        let dir = std::env::temp_dir().join(format!("aqf-cache-sf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        let _ = std::fs::remove_file(&path);
        let policy = IoPolicy {
            read_delay: Some(std::time::Duration::from_millis(5)),
            write_delay: None,
            yield_io: true,
        };
        let mut c = PageCache::new(Pager::open(&path, policy).unwrap(), 8);
        let cold = c.allocate().unwrap();
        c.page_mut(cold).unwrap()[3] = 77;
        c.flush().unwrap();
        // Refill the cache with other pages so `cold` is evicted.
        for _ in 0..8 {
            let id = c.allocate().unwrap();
            c.page_mut(id).unwrap();
        }
        assert!(
            !c.read_inner().map.contains_key(&cold),
            "cold page must start evicted"
        );
        let reads_before = c.io_stats().reads;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    assert_eq!(c.with_page(cold, |p| p[3]).unwrap(), 77);
                });
            }
        });
        assert_eq!(
            c.io_stats().reads - reads_before,
            1,
            "eight concurrent misses on one page must read it once"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_miss_churn_preserves_dirty_evictions() {
        // Readers churn a 64-page working set through an 8-frame cache
        // (every access a miss + dirty write-back eviction in some
        // interleaving) while a writer keeps re-dirtying pages; the
        // deferred out-of-lock write-backs must never lose bytes or
        // serve a stale on-disk copy.
        let dir = std::env::temp_dir().join(format!("aqf-cache-churn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        let _ = std::fs::remove_file(&path);
        let mut c = PageCache::new(Pager::open(&path, IoPolicy::default()).unwrap(), 8);
        let ids: Vec<u32> = (0..64).map(|_| c.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            c.page_mut(id).unwrap()[0] = i as u8;
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                let ids = &ids;
                s.spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                    for _ in 0..2000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let i = (x >> 33) as usize % ids.len();
                        assert_eq!(c.with_page(ids[i], |p| p[0]).unwrap(), i as u8, "page {i}");
                    }
                });
            }
            let c = &c;
            let ids = &ids;
            s.spawn(move || {
                for round in 0..200u32 {
                    for (i, &id) in ids.iter().enumerate() {
                        c.with_page_mut(id, |p| {
                            assert_eq!(p[0], i as u8, "dirty bytes lost on page {i}");
                            p[1] = round as u8; // re-dirty
                        })
                        .unwrap();
                    }
                }
            });
        });
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(c.page(id).unwrap()[0], i as u8);
            assert_eq!(c.page(id).unwrap()[1], 199);
        }
        std::fs::remove_file(path).unwrap();
    }
}
