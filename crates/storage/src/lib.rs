//! Storage substrate for the AdaptiveQF evaluation: an on-disk B+tree
//! key-value store with a bounded page cache, reverse-map key encoding,
//! and the composed filter-fronted-database system of paper §6.4.
//!
//! ```no_run
//! use aqf::AqfConfig;
//! use aqf_storage::system::FilteredDb;
//! use aqf_storage::pager::IoPolicy;
//!
//! let mut db = FilteredDb::with_aqf(
//!     AqfConfig::new(16, 9),
//!     std::path::Path::new("/tmp/aqf-demo"),
//!     1024,                 // page-cache pages
//!     IoPolicy::default(),  // optionally inject per-I/O latency
//! ).unwrap();
//! db.insert(42, b"answer").unwrap().unwrap();
//! assert_eq!(db.query(42).unwrap().as_deref(), Some(&b"answer"[..]));
//! assert_eq!(db.query(43).unwrap(), None); // false positives self-correct
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod cache;
pub mod pager;
pub mod revmap;
pub mod system;

pub use btree::BTreeStore;
pub use cache::PageCache;
pub use pager::{IoPolicy, IoStats, Pager, PAGE_SIZE};
pub use system::{FilteredDb, QueryOutcome, RevMapMode, SharedRead, SystemStats};
