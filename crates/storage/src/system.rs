//! The composed system the paper benchmarks (§6.4): an in-memory filter in
//! front of an on-disk B-tree database.
//!
//! - **Non-adaptive filters (QF, CF)**: the database maps original keys to
//!   values. A positive filter query triggers one database lookup; a miss
//!   there is a false positive that *cannot be fixed*.
//! - **AdaptiveQF**: the database doubles as the reverse map (*merged*
//!   setup, §4.2): it maps `(minirun id, rank)` to `(original key, value)`.
//!   Because the AQF adapts by appending — never moving fingerprints or
//!   re-deriving them — no map entry is ever touched after its insert.
//!   The *split* setup keeps a separate key→value database (preserving
//!   range queries) at the cost of a second write per insert (Table 3).
//! - **ACF / TQF**: their reverse maps are location-keyed; kicks and Robin
//!   Hood shifts physically relocate map entries. The filters record those
//!   operations as [`MapEvent`]s, which the system replays against the
//!   B-tree — reproducing the insert-time collapse of paper Fig. 5.

use aqf::{AdaptiveQf, AqfConfig, FilterError, QueryResult};
use aqf_filters::{
    AdaptiveCuckooFilter, CuckooFilter, Filter, MapEvent, QuotientFilter, TelescopingFilter,
};
use std::path::Path;

use crate::btree::BTreeStore;
use crate::pager::{IoPolicy, IoStats};
use crate::revmap::pack_fingerprint_key;

/// Which filter fronts the database.
pub enum SystemFilter {
    /// AdaptiveQF (strongly adaptive).
    Aqf(Box<AdaptiveQf>),
    /// Plain quotient filter.
    Qf(Box<QuotientFilter>),
    /// Cuckoo filter.
    Cf(Box<CuckooFilter>),
    /// Adaptive cuckoo filter.
    Acf(Box<AdaptiveCuckooFilter>),
    /// Telescoping quotient filter.
    Tqf(Box<TelescopingFilter>),
}

impl SystemFilter {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemFilter::Aqf(_) => "AQF",
            SystemFilter::Qf(_) => "QF",
            SystemFilter::Cf(_) => "CF",
            SystemFilter::Acf(_) => "ACF",
            SystemFilter::Tqf(_) => "TQF",
        }
    }

    /// Filter table bytes.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            SystemFilter::Aqf(f) => f.size_in_bytes(),
            SystemFilter::Qf(f) => f.size_in_bytes(),
            SystemFilter::Cf(f) => f.size_in_bytes(),
            SystemFilter::Acf(f) => f.size_in_bytes(),
            SystemFilter::Tqf(f) => f.size_in_bytes(),
        }
    }
}

/// Reverse-map layout for the AdaptiveQF system (paper §4.2, Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevMapMode {
    /// One store: fingerprint -> (key, value). No range queries.
    Merged,
    /// Two stores: fingerprint -> key, plus key -> value (range-queryable).
    Split,
}

/// End-to-end operation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Keys inserted.
    pub inserts: u64,
    /// Queries answered.
    pub queries: u64,
    /// Queries the filter rejected (no disk access).
    pub filter_negatives: u64,
    /// Queries verified present in the database.
    pub true_positives: u64,
    /// Filter positives the database refuted.
    pub false_positives: u64,
    /// Adaptations performed.
    pub adapts: u64,
}

/// A filter-fronted on-disk key-value store.
pub struct FilteredDb {
    filter: SystemFilter,
    /// Merged reverse map (adaptive) or key->value database (non-adaptive).
    primary: BTreeStore,
    /// Key->value database in the split setup.
    split_db: Option<BTreeStore>,
    stats: SystemStats,
}

impl FilteredDb {
    /// Build a system around the given filter. `dir` holds the database
    /// files; `cache_pages` bounds the B-tree page cache; `policy` injects
    /// artificial disk latency if desired.
    pub fn new(
        filter: SystemFilter,
        dir: &Path,
        cache_pages: usize,
        policy: IoPolicy,
        revmap_mode: RevMapMode,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let primary = BTreeStore::create(&dir.join("primary.db"), policy, cache_pages)?;
        let split_db = match (&filter, revmap_mode) {
            (SystemFilter::Aqf(_), RevMapMode::Split) => Some(BTreeStore::create(
                &dir.join("values.db"),
                policy,
                cache_pages,
            )?),
            _ => None,
        };
        let mut filter = filter;
        match &mut filter {
            SystemFilter::Acf(f) => f.set_event_recording(true),
            SystemFilter::Tqf(f) => f.set_event_recording(true),
            _ => {}
        }
        Ok(Self {
            filter,
            primary,
            split_db,
            stats: SystemStats::default(),
        })
    }

    /// Convenience: an AdaptiveQF system in the merged setup.
    pub fn with_aqf(
        cfg: AqfConfig,
        dir: &Path,
        cache_pages: usize,
        policy: IoPolicy,
    ) -> std::io::Result<Self> {
        let f = AdaptiveQf::new(cfg).expect("valid config");
        Self::new(
            SystemFilter::Aqf(Box::new(f)),
            dir,
            cache_pages,
            policy,
            RevMapMode::Merged,
        )
    }

    /// Operation counters.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Total disk I/O across stores.
    pub fn io_stats(&self) -> IoStats {
        let mut s = self.primary.io_stats();
        if let Some(db) = &self.split_db {
            let t = db.io_stats();
            s.reads += t.reads;
            s.writes += t.writes;
        }
        s
    }

    /// The filter.
    pub fn filter(&self) -> &SystemFilter {
        &self.filter
    }

    fn value_record(key: u64, value: &[u8]) -> Vec<u8> {
        let mut rec = Vec::with_capacity(8 + value.len());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(value);
        rec
    }

    /// Replay location-keyed reverse-map traffic against the B-tree,
    /// carrying displaced records through kick chains.
    fn replay_events(
        store: &mut BTreeStore,
        events: &[MapEvent],
        mut carry: Vec<u8>,
    ) -> std::io::Result<()> {
        let mut next_carry: Option<Vec<u8>> = None;
        for e in events {
            match *e {
                MapEvent::Get { loc } => {
                    next_carry = store.get(loc as u64)?;
                }
                MapEvent::Put { loc, key: _ } => {
                    store.put(loc as u64, &carry)?;
                    if let Some(c) = next_carry.take() {
                        carry = c;
                    }
                }
                MapEvent::ShiftRange { start, end } => {
                    for i in (start..end).rev() {
                        if let Some(v) = store.get(i as u64)? {
                            store.put(i as u64 + 1, &v)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert `key -> value`.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> std::io::Result<Result<(), FilterError>> {
        self.stats.inserts += 1;
        match &mut self.filter {
            SystemFilter::Aqf(f) => {
                let out = match f.insert(key) {
                    Ok(o) => o,
                    Err(e) => return Ok(Err(e)),
                };
                let fp_key = pack_fingerprint_key(out.minirun_id, out.rank);
                match &mut self.split_db {
                    None => {
                        self.primary.put(fp_key, &Self::value_record(key, value))?;
                    }
                    Some(db) => {
                        self.primary.put(fp_key, &key.to_le_bytes())?;
                        db.put(key, value)?;
                    }
                }
            }
            SystemFilter::Qf(f) => {
                if let Err(e) = f.insert(key) {
                    return Ok(Err(e));
                }
                self.primary.put(key, value)?;
            }
            SystemFilter::Cf(f) => {
                if let Err(e) = f.insert(key) {
                    return Ok(Err(e));
                }
                self.primary.put(key, value)?;
            }
            SystemFilter::Acf(f) => {
                let r = f.insert(key);
                let events = f.take_events();
                if let Err(e) = r {
                    return Ok(Err(e));
                }
                Self::replay_events(&mut self.primary, &events, Self::value_record(key, value))?;
            }
            SystemFilter::Tqf(f) => {
                let r = f.insert(key);
                let events = f.take_events();
                if let Err(e) = r {
                    return Ok(Err(e));
                }
                Self::replay_events(&mut self.primary, &events, Self::value_record(key, value))?;
            }
        }
        Ok(Ok(()))
    }

    /// Query `key`, returning its value if (verified) present. False
    /// positives cost a database read and, for adaptive filters, trigger
    /// adaptation so the same query never pays again.
    pub fn query(&mut self, key: u64) -> std::io::Result<Option<Vec<u8>>> {
        self.stats.queries += 1;
        match &mut self.filter {
            SystemFilter::Aqf(f) => {
                // When miniruns hold several keys, the first matching
                // fingerprint may belong to a *different* key; adapt it and
                // re-query until the answer is verified either way. Each
                // round costs one database read (a true false positive),
                // and adaptation guarantees progress.
                let mut first = true;
                loop {
                    match f.query(key) {
                        QueryResult::Negative => {
                            // Only a *first* negative means the query never
                            // touched the store; post-adapt negatives ended
                            // a false-positive round that already paid.
                            if first {
                                self.stats.filter_negatives += 1;
                            }
                            return Ok(None);
                        }
                        QueryResult::Positive(hit) => {
                            let fp_key = pack_fingerprint_key(hit.minirun_id, hit.rank);
                            let Some(rec) = self.primary.get(fp_key)? else {
                                // Filter/DB divergence (should not happen).
                                self.stats.false_positives += 1;
                                return Ok(None);
                            };
                            let stored = u64::from_le_bytes(rec[..8].try_into().unwrap());
                            if stored == key {
                                self.stats.true_positives += 1;
                                return match &mut self.split_db {
                                    None => Ok(Some(rec[8..].to_vec())),
                                    Some(db) => Ok(db.get(key)?),
                                };
                            }
                            self.stats.false_positives += 1;
                            match f.adapt(&hit, stored, key) {
                                Ok(_) => self.stats.adapts += 1,
                                // Full table or inseparable hashes: stop
                                // trying; the query stays a false positive.
                                Err(_) => return Ok(None),
                            }
                            first = false;
                        }
                    }
                }
            }
            SystemFilter::Qf(f) => {
                if !f.contains(key) {
                    self.stats.filter_negatives += 1;
                    return Ok(None);
                }
                let got = self.primary.get(key)?;
                if got.is_some() {
                    self.stats.true_positives += 1;
                } else {
                    self.stats.false_positives += 1;
                }
                Ok(got)
            }
            SystemFilter::Cf(f) => {
                if !f.contains(key) {
                    self.stats.filter_negatives += 1;
                    return Ok(None);
                }
                let got = self.primary.get(key)?;
                if got.is_some() {
                    self.stats.true_positives += 1;
                } else {
                    self.stats.false_positives += 1;
                }
                Ok(got)
            }
            SystemFilter::Acf(f) => {
                // Same adapt-and-retry loop, but bounded: the ACF's 2-bit
                // selectors cycle, so separation is not guaranteed.
                for round in 0..16 {
                    let Some(hit) = f.query_slot(key) else {
                        if round == 0 {
                            self.stats.filter_negatives += 1;
                        }
                        return Ok(None);
                    };
                    let loc = hit.bucket * aqf_filters::acf::BUCKET_SLOTS + hit.slot;
                    let Some(rec) = self.primary.get(loc as u64)? else {
                        self.stats.false_positives += 1;
                        return Ok(None);
                    };
                    let stored = u64::from_le_bytes(rec[..8].try_into().unwrap());
                    if stored == key {
                        self.stats.true_positives += 1;
                        return Ok(Some(rec[8..].to_vec()));
                    }
                    self.stats.false_positives += 1;
                    f.adapt(&hit);
                    let _ = f.take_events();
                    self.stats.adapts += 1;
                }
                Ok(None)
            }
            SystemFilter::Tqf(f) => {
                for round in 0..16 {
                    let Some(hit) = f.query_slot(key) else {
                        if round == 0 {
                            self.stats.filter_negatives += 1;
                        }
                        return Ok(None);
                    };
                    let Some(rec) = self.primary.get(hit.slot as u64)? else {
                        self.stats.false_positives += 1;
                        return Ok(None);
                    };
                    let stored = u64::from_le_bytes(rec[..8].try_into().unwrap());
                    if stored == key {
                        self.stats.true_positives += 1;
                        return Ok(Some(rec[8..].to_vec()));
                    }
                    self.stats.false_positives += 1;
                    f.adapt(&hit);
                    let _ = f.take_events();
                    self.stats.adapts += 1;
                }
                Ok(None)
            }
        }
    }
}
