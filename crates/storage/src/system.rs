//! The composed system the paper benchmarks (§6.4): an in-memory filter in
//! front of an on-disk B-tree database.
//!
//! [`FilteredDb`] consumes any [`DynFilter`] (built directly or via
//! `aqf_filters::registry`) and drives it through the trait's system-mode
//! protocol, with no per-filter dispatch:
//!
//! - **Key-keyed filters** (QF, CF, Bloom, yes/no): the database maps
//!   original keys to values. A positive filter query triggers one
//!   database lookup; a miss there is a false positive that — for
//!   non-adaptive filters — *cannot be fixed*.
//! - **AdaptiveQF (and its sharded variant)**: inserts return an
//!   [`InsertPlan::AtLoc`] fingerprint key, and the database doubles as
//!   the reverse map (*merged* setup, §4.2). Because the AQF adapts by
//!   appending — never moving fingerprints or re-deriving them — no map
//!   entry is ever touched after its insert. The *split* setup keeps a
//!   separate key→value database (preserving range queries) at the cost
//!   of a second write per insert (Table 3).
//! - **ACF / TQF**: their reverse maps are location-keyed; kicks and
//!   Robin Hood shifts physically relocate map entries. Inserts return an
//!   [`InsertPlan::Events`] trace, which the system replays against the
//!   B-tree — reproducing the insert-time collapse of paper Fig. 5.
//!
//! On a refuted positive, adaptive filters get the stored/query key pair
//! back through [`DynFilter::adapt_loc`]; strongly adaptive filters loop
//! until the query is verified either way (adaptation guarantees
//! progress), weakly adaptive ones for a bounded number of rounds (their
//! selectors cycle, so separation is not guaranteed).
//!
//! Bulk traffic should use [`FilteredDb::insert_batch`] and
//! [`FilteredDb::query_batch`]: the filter absorbs the whole batch first
//! (quotient-sorted walks, one lock per shard per batch for the AQF
//! family), then database I/O runs over the filter's answers — filter
//! probes are pipelined ahead of backing-store reads instead of
//! interleaved with them.

use aqf::{AdaptiveQf, AqfConfig, FilterError};
use aqf_bits::snapshot::{
    read_file, stale_temp_path, write_atomic, SnapError, SnapshotReader, SnapshotWriter,
};
use aqf_filters::{
    registry, Adaptivity, AqfDyn, DeletePlan, DynFilter, InsertPlan, Keying, MapEvent,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::btree::BTreeStore;
use crate::pager::{IoPolicy, IoStats};

/// Bounded adapt-and-retry rounds for weakly adaptive filters (their
/// selectors cycle, so a query may never fully separate).
const WEAK_ADAPT_ROUNDS: usize = 16;

/// Reverse-map layout for the AdaptiveQF system (paper §4.2, Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevMapMode {
    /// One store: fingerprint -> (key, value). No range queries.
    Merged,
    /// Two stores: fingerprint -> key, plus key -> value (range-queryable).
    Split,
}

/// End-to-end operation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Keys inserted.
    pub inserts: u64,
    /// Queries answered.
    pub queries: u64,
    /// Queries the filter rejected (no disk access).
    pub filter_negatives: u64,
    /// Queries verified present in the database.
    pub true_positives: u64,
    /// Filter positives the database refuted.
    pub false_positives: u64,
    /// Adaptations performed.
    pub adapts: u64,
    /// Delete requests processed (whether or not a record was removed).
    pub deletes: u64,
}

/// Internal atomic mirror of [`SystemStats`], so counting never needs
/// `&mut self` — the server's STATS op reads these without touching the
/// write side at all.
#[derive(Default)]
struct SysCounters {
    inserts: AtomicU64,
    queries: AtomicU64,
    filter_negatives: AtomicU64,
    true_positives: AtomicU64,
    false_positives: AtomicU64,
    adapts: AtomicU64,
    deletes: AtomicU64,
}

impl SysCounters {
    fn restore(s: SystemStats) -> Self {
        Self {
            inserts: AtomicU64::new(s.inserts),
            queries: AtomicU64::new(s.queries),
            filter_negatives: AtomicU64::new(s.filter_negatives),
            true_positives: AtomicU64::new(s.true_positives),
            false_positives: AtomicU64::new(s.false_positives),
            adapts: AtomicU64::new(s.adapts),
            deletes: AtomicU64::new(s.deletes),
        }
    }

    fn snapshot(&self) -> SystemStats {
        SystemStats {
            inserts: self.inserts.load(Relaxed),
            queries: self.queries.load(Relaxed),
            filter_negatives: self.filter_negatives.load(Relaxed),
            true_positives: self.true_positives.load(Relaxed),
            false_positives: self.false_positives.load(Relaxed),
            adapts: self.adapts.load(Relaxed),
            deletes: self.deletes.load(Relaxed),
        }
    }

    fn apply(&self, d: &StatsDelta) {
        self.queries.fetch_add(d.queries, Relaxed);
        self.filter_negatives.fetch_add(d.filter_negatives, Relaxed);
        self.true_positives.fetch_add(d.true_positives, Relaxed);
        self.false_positives.fetch_add(d.false_positives, Relaxed);
        self.adapts.fetch_add(d.adapts, Relaxed);
    }
}

/// Query-side counter deltas, accumulated locally during a shared read
/// and applied atomically only when the read completes on the shared
/// path — a [`SharedRead::NeedsWrite`] escape discards them, so the
/// write-side retry never double-counts.
#[derive(Clone, Copy, Default)]
struct StatsDelta {
    queries: u64,
    filter_negatives: u64,
    true_positives: u64,
    false_positives: u64,
    adapts: u64,
}

/// Outcome of a shared (`&self`) read: either it completed, or it needs
/// the exclusive write path (the filter requires adaptation but cannot
/// adapt through a shared reference).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SharedRead<T> {
    /// The read completed on the shared path.
    Done(T),
    /// Retry under exclusive access ([`FilteredDb::query`] /
    /// [`FilteredDb::query_batch`]); no counters were consumed.
    NeedsWrite,
}

/// What a single shared query observed, so callers (the wire protocol's
/// `FLAG_STORE_ACCESSED`) don't have to infer it racily from global
/// counter diffs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The verified value, if present.
    pub value: Option<Vec<u8>>,
    /// True if the query read the backing store (filter positive).
    pub store_accessed: bool,
    /// True if the query adapted the filter (false-positive feedback).
    pub adapted: bool,
}

/// Name of the snapshot manifest inside a [`FilteredDb`]'s directory.
pub const SNAPSHOT_FILE: &str = "snapshot.aqfdb";

/// Name of the file-backed filter arena inside a [`FilteredDb`]'s
/// directory (present only after [`FilteredDb::enable_file_backing`]).
pub const FILTER_ARENA_FILE: &str = "filter.arena";

/// Snapshot kind string of a [`FilteredDb`] manifest frame.
const DB_SNAPSHOT_KIND: &str = "filtered-db";

/// A filter-fronted on-disk key-value store.
pub struct FilteredDb {
    filter: Box<dyn DynFilter>,
    /// Merged reverse map (location-keyed filters) or key->value database
    /// (key-keyed filters).
    primary: BTreeStore,
    /// Key->value database in the split setup.
    split_db: Option<BTreeStore>,
    stats: SysCounters,
    /// Directory holding the database files and snapshot manifest.
    dir: PathBuf,
    /// File-backed filter mode was requested: re-established before each
    /// snapshot if a grow in between moved the table back to the heap.
    file_backed: bool,
}

impl FilteredDb {
    /// Build a system around the given filter. `dir` holds the database
    /// files; `cache_pages` bounds the B-tree page cache; `policy` injects
    /// artificial disk latency if desired. `revmap_mode` selects the
    /// paper's merged vs split reverse-map setup; split is honored only
    /// for filters that support it ([`DynFilter::supports_split_map`])
    /// and silently degrades to merged otherwise.
    pub fn new(
        mut filter: Box<dyn DynFilter>,
        dir: &Path,
        cache_pages: usize,
        policy: IoPolicy,
        revmap_mode: RevMapMode,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let primary = BTreeStore::create(&dir.join("primary.db"), policy, cache_pages)?;
        let split_db = if revmap_mode == RevMapMode::Split && filter.supports_split_map() {
            Some(BTreeStore::create(
                &dir.join("values.db"),
                policy,
                cache_pages,
            )?)
        } else {
            None
        };
        filter.set_system_mode(true);
        Ok(Self {
            filter,
            primary,
            split_db,
            stats: SysCounters::default(),
            dir: dir.to_path_buf(),
            file_backed: false,
        })
    }

    /// Convenience: an AdaptiveQF system in the merged setup.
    pub fn with_aqf(
        cfg: AqfConfig,
        dir: &Path,
        cache_pages: usize,
        policy: IoPolicy,
    ) -> std::io::Result<Self> {
        let f = AdaptiveQf::new(cfg).expect("valid config");
        Self::new(
            Box::new(AqfDyn::new(f)),
            dir,
            cache_pages,
            policy,
            RevMapMode::Merged,
        )
    }

    /// Operation counters (an atomic snapshot; safe to call from any
    /// thread, including concurrently with shared reads and writes).
    pub fn stats(&self) -> SystemStats {
        self.stats.snapshot()
    }

    /// True if this system's filter supports fully concurrent operation:
    /// shared (`&self`) queries *and* shared inserts/deletes/adaptations,
    /// internally synchronized (the sharded AQF's per-shard seqlocks).
    /// When false, callers must serialize writes against reads
    /// externally; the shared query path is then still safe among
    /// readers only.
    pub fn supports_concurrent_ops(&self) -> bool {
        self.filter.supports_concurrent_reads()
    }

    /// Total disk I/O across stores.
    pub fn io_stats(&self) -> IoStats {
        let mut s = self.primary.io_stats();
        if let Some(db) = &self.split_db {
            let t = db.io_stats();
            s.reads += t.reads;
            s.writes += t.writes;
        }
        s
    }

    /// The filter.
    pub fn filter(&self) -> &dyn DynFilter {
        self.filter.as_ref()
    }

    /// The directory holding the database files and snapshot manifest.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Enable (`Some(threshold)`) or disable (`None`) automatic filter
    /// growth: once the filter's load factor reaches `threshold`, the
    /// next insert doubles its table in place instead of returning
    /// [`FilterError::Full`]. Errors for filter kinds that cannot grow.
    pub fn set_auto_grow(&mut self, threshold: Option<f64>) -> Result<(), FilterError> {
        self.filter.set_auto_grow(threshold)
    }

    /// Migrate the filter table onto a file-backed arena
    /// ([`FILTER_ARENA_FILE`] in the database directory), so subsequent
    /// snapshots reference the arena by name and [`FilteredDb::open`]
    /// maps it instead of decoding the table. Errors for filter kinds
    /// without file-backed support.
    ///
    /// A grow event moves the table back to the heap (the arena geometry
    /// is fixed); the mode is sticky, so the next
    /// [`FilteredDb::snapshot`] migrates the grown table onto a fresh
    /// arena before writing the manifest.
    pub fn enable_file_backing(&mut self) -> std::io::Result<()> {
        self.filter
            .set_file_backing(&self.dir.join(FILTER_ARENA_FILE))?;
        self.file_backed = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    /// Persist the whole system — filter (table + adaptation state),
    /// B-tree page images, and operation counters — as one atomically
    /// committed snapshot manifest in the database directory.
    ///
    /// The manifest is staged at `snapshot.aqfdb.tmp`, fsynced, then
    /// renamed over `snapshot.aqfdb`: a crash at any point (including
    /// between the temp write and the rename) leaves the previous
    /// committed snapshot intact, and [`FilteredDb::open`] recovers from
    /// it, discarding the stale temp.
    pub fn snapshot(&mut self) -> Result<(), SnapError> {
        if self.file_backed {
            if !self.filter.is_file_backed() {
                // A grow since the last snapshot rebuilt the table on the
                // heap; move it back onto a (fresh-geometry) arena so the
                // manifest can keep referencing it by name.
                self.filter
                    .set_file_backing(&self.dir.join(FILTER_ARENA_FILE))?;
            }
            // The manifest records only a name for the table; the arena
            // bytes must be durable before the manifest commits.
            self.filter.sync()?;
        }
        let filter_bytes = self.filter.snapshot_bytes()?;
        let mut w = SnapshotWriter::new(DB_SNAPSHOT_KIND);
        w.section(*b"FLTR");
        w.bytes(&filter_bytes);
        drop(filter_bytes);
        w.section(*b"STAT");
        let stats = self.stats.snapshot();
        w.u64(stats.inserts);
        w.u64(stats.queries);
        w.u64(stats.filter_negatives);
        w.u64(stats.true_positives);
        w.u64(stats.false_positives);
        w.u64(stats.adapts);
        w.u64(stats.deletes);
        w.u8(self.split_db.is_some() as u8);
        // B-tree pages stream straight into the manifest buffer — no
        // store-sized intermediate copy (the store dwarfs the filter).
        w.section(*b"PRIM");
        self.primary.snapshot_into(&mut w)?;
        if let Some(db) = &mut self.split_db {
            w.section(*b"SPLT");
            db.snapshot_into(&mut w)?;
        }
        Ok(write_atomic(&self.dir.join(SNAPSHOT_FILE), &w.finish())?)
    }

    /// Reopen a system from the last committed snapshot in `dir`.
    ///
    /// Recovery semantics: operations performed after the last
    /// [`FilteredDb::snapshot`] are discarded (the database files are
    /// rebuilt from the snapshot's page images), a stale
    /// `snapshot.aqfdb.tmp` left by a crash mid-snapshot is removed —
    /// but only once the committed manifest has opened successfully, so
    /// a never-committed-but-complete temp is preserved for manual
    /// recovery if the committed copy itself turns out damaged — and
    /// every decode failure — truncation, flipped bytes, a manifest of
    /// the wrong kind — is a typed [`SnapError`], never a panic or a
    /// silently inconsistent system.
    pub fn open(dir: &Path, cache_pages: usize, policy: IoPolicy) -> Result<Self, SnapError> {
        let manifest = dir.join(SNAPSHOT_FILE);
        let bytes = read_file(&manifest)?;
        let mut r = SnapshotReader::new(&bytes)?;
        r.expect_kind(DB_SNAPSHOT_KIND)?;
        r.section(*b"FLTR")?;
        // External table references (file-backed arenas) resolve against
        // the database directory itself.
        let mut filter = registry::load_snapshot_in(r.bytes()?, Some(dir))?;
        filter.set_system_mode(true);
        r.section(*b"STAT")?;
        let stats = SystemStats {
            inserts: r.u64()?,
            queries: r.u64()?,
            filter_negatives: r.u64()?,
            true_positives: r.u64()?,
            false_positives: r.u64()?,
            adapts: r.u64()?,
            deletes: r.u64()?,
        };
        let has_split = r.u8()? != 0;
        r.section(*b"PRIM")?;
        let proot = r.u32()?;
        let plen = r.u64()?;
        let primary = BTreeStore::restore(
            &dir.join("primary.db"),
            policy,
            cache_pages,
            proot,
            plen,
            r.bytes()?,
        )?;
        let split_db = if has_split {
            r.section(*b"SPLT")?;
            let sroot = r.u32()?;
            let slen = r.u64()?;
            Some(BTreeStore::restore(
                &dir.join("values.db"),
                policy,
                cache_pages,
                sroot,
                slen,
                r.bytes()?,
            )?)
        } else {
            None
        };
        // Crash recovery: a leftover temp means a snapshot died between
        // its temp write and the rename. The committed file — which just
        // opened successfully — is the consistent state, so the temp is
        // discarded now (and only now: if the committed manifest had
        // failed to open, the temp would survive as recovery evidence).
        // Best-effort: an undeletable temp must not fail a good open.
        let _ = std::fs::remove_file(stale_temp_path(&manifest));
        let file_backed = filter.is_file_backed();
        Ok(Self {
            filter,
            primary,
            split_db,
            stats: SysCounters::restore(stats),
            dir: dir.to_path_buf(),
            file_backed,
        })
    }

    fn value_record(key: u64, value: &[u8]) -> Vec<u8> {
        let mut rec = Vec::with_capacity(8 + value.len());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(value);
        rec
    }

    /// Replay location-keyed reverse-map traffic against the B-tree,
    /// carrying displaced records through kick chains.
    fn replay_events(
        store: &BTreeStore,
        events: &[MapEvent],
        mut carry: Vec<u8>,
    ) -> std::io::Result<()> {
        let mut next_carry: Option<Vec<u8>> = None;
        for e in events {
            match *e {
                MapEvent::Get { loc } => {
                    next_carry = store.get(loc as u64)?;
                }
                MapEvent::Put { loc, key: _ } => {
                    store.put(loc as u64, &carry)?;
                    if let Some(c) = next_carry.take() {
                        carry = c;
                    }
                }
                MapEvent::ShiftRange { start, end } => {
                    for i in (start..end).rev() {
                        if let Some(v) = store.get(i as u64)? {
                            store.put(i as u64 + 1, &v)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply one insert's database writes (shared reference: the B-tree
    /// stores are internally synchronized).
    fn apply_insert_plan(&self, key: u64, value: &[u8], plan: &InsertPlan) -> std::io::Result<()> {
        match plan {
            InsertPlan::AtKey => self.primary.put(key, value),
            InsertPlan::AtLoc(fp_key) => match &self.split_db {
                None => self.primary.put(*fp_key, &Self::value_record(key, value)),
                Some(db) => {
                    self.primary.put(*fp_key, &key.to_le_bytes())?;
                    db.put(key, value)
                }
            },
            InsertPlan::Events(events) => {
                Self::replay_events(&self.primary, events, Self::value_record(key, value))
            }
        }
    }

    /// Insert `key -> value`.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> std::io::Result<Result<(), FilterError>> {
        self.stats.inserts.fetch_add(1, Relaxed);
        let plan = match self.filter.insert_tracked(key) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        self.apply_insert_plan(key, value, &plan)?;
        Ok(Ok(()))
    }

    /// [`FilteredDb::insert`] through a shared reference. Requires
    /// [`FilteredDb::supports_concurrent_ops`]; the filter serializes
    /// internally (per-shard mutexes), the B-tree writes serialize on
    /// the store's tree lock. Callers wanting a single global write
    /// order (the server) additionally hold their own write gate.
    pub fn insert_shared(
        &self,
        key: u64,
        value: &[u8],
    ) -> std::io::Result<Result<(), FilterError>> {
        self.stats.inserts.fetch_add(1, Relaxed);
        let plan = match self.filter.insert_tracked_shared(key) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        self.apply_insert_plan(key, value, &plan)?;
        Ok(Ok(()))
    }

    /// Query `key`, returning its value if (verified) present. False
    /// positives cost a database read and, for adaptive filters, trigger
    /// adaptation so the same query never pays again (strong adaptivity)
    /// or pays bounded retries (weak adaptivity).
    pub fn query(&mut self, key: u64) -> std::io::Result<Option<Vec<u8>>> {
        self.stats.queries.fetch_add(1, Relaxed);
        match self.filter.keying() {
            Keying::Key => {
                let positive = self.filter.contains(key);
                self.verify_key_keyed(key, positive)
            }
            Keying::Location => {
                let loc = self.filter.query_loc(key);
                self.verify_at_loc(key, loc)
            }
        }
    }

    /// Delete `key` end to end: remove its fingerprint from the filter
    /// and its record(s) from the database. `Ok(Ok(true))` means the key
    /// was present in the filter (a record was removed or a duplicate
    /// count decremented); `Ok(Ok(false))` means the filter never held it.
    /// Filters without deletion support return their typed
    /// [`FilterError`] and touch nothing.
    ///
    /// Location-keyed filters (the AQF family) key records by
    /// `(minirun id, rank)`; removing a fingerprint group shifts the
    /// ranks of later groups in its minirun down by one, so the database
    /// replays the same shift — records of later ranks move down one
    /// store key, mirroring exactly what `aqf::ShadowMap::remove` does to
    /// the in-memory map (see [`DeletePlan::ShiftFrom`]).
    ///
    /// Caveat shared with every approximate-membership delete: the filter
    /// removes *a* fingerprint matching `key`'s, so deleting a key whose
    /// fingerprint collides with another stored key's can remove the
    /// colliding entry instead. Callers that cannot tolerate this should
    /// only delete keys they previously inserted (the collision
    /// probability is then the filter's ε).
    pub fn delete(&mut self, key: u64) -> std::io::Result<Result<bool, FilterError>> {
        self.stats.deletes.fetch_add(1, Relaxed);
        let plan = match self.filter.delete_tracked(key) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        self.apply_delete_plan(key, plan)
    }

    /// [`FilteredDb::delete`] through a shared reference. Requires
    /// [`FilteredDb::supports_concurrent_ops`]; same synchronization
    /// contract as [`FilteredDb::insert_shared`].
    pub fn delete_shared(&self, key: u64) -> std::io::Result<Result<bool, FilterError>> {
        self.stats.deletes.fetch_add(1, Relaxed);
        let plan = match self.filter.delete_tracked_shared(key) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        self.apply_delete_plan(key, plan)
    }

    /// Apply one delete's database writes (shared reference).
    fn apply_delete_plan(
        &self,
        key: u64,
        plan: DeletePlan,
    ) -> std::io::Result<Result<bool, FilterError>> {
        match plan {
            DeletePlan::Missing => return Ok(Ok(false)),
            DeletePlan::Decremented => return Ok(Ok(true)),
            DeletePlan::AtKey => {
                self.primary.delete(key)?;
            }
            DeletePlan::ShiftFrom(loc) => {
                // The vacated rank's record goes away and later ranks of
                // the same minirun slide down one store key. The packed
                // key layout (`minirun << RANK_BITS | rank`) makes them
                // adjacent; the minirun guard stops the walk at the first
                // gap or minirun boundary, so a full rank-255 minirun can
                // never pull the next minirun's rank-0 record in.
                let mut l = loc;
                loop {
                    let next = l + 1;
                    let same_minirun =
                        (next >> aqf::revmap::RANK_BITS) == (l >> aqf::revmap::RANK_BITS);
                    let moved = if same_minirun {
                        self.primary.get(next)?
                    } else {
                        None
                    };
                    match moved {
                        Some(v) => {
                            self.primary.put(l, &v)?;
                            l = next;
                        }
                        None => {
                            self.primary.delete(l)?;
                            break;
                        }
                    }
                }
                if let Some(db) = &self.split_db {
                    db.delete(key)?;
                }
            }
        }
        Ok(Ok(true))
    }

    /// Key-keyed verification: the filter answered `positive`; a positive
    /// costs one database read under the original key.
    fn verify_key_keyed(&self, key: u64, positive: bool) -> std::io::Result<Option<Vec<u8>>> {
        if !positive {
            self.stats.filter_negatives.fetch_add(1, Relaxed);
            return Ok(None);
        }
        let got = self.primary.get(key)?;
        if got.is_some() {
            self.stats.true_positives.fetch_add(1, Relaxed);
        } else {
            self.stats.false_positives.fetch_add(1, Relaxed);
        }
        Ok(got)
    }

    /// Location-keyed verification, seeded with a pre-computed first
    /// probe (`loc`) so batch queries can pipeline all filter probes
    /// ahead of the database reads.
    ///
    /// Adapt-and-retry: when miniruns hold several keys, the first
    /// matching fingerprint may belong to a *different* key; adapt it and
    /// re-query until the answer is verified either way. Each round costs
    /// one database read (a true false positive). Strong adaptivity
    /// guarantees progress; weak adaptivity gets a bounded number of
    /// rounds.
    fn verify_at_loc(
        &mut self,
        key: u64,
        mut loc: Option<u64>,
    ) -> std::io::Result<Option<Vec<u8>>> {
        let max_rounds = match self.filter.adaptivity() {
            Adaptivity::Strong => usize::MAX,
            Adaptivity::Weak => WEAK_ADAPT_ROUNDS,
            Adaptivity::None => 1,
        };
        let mut round = 0usize;
        loop {
            let Some(l) = loc else {
                // Only a *first* negative means the query never
                // touched the store; post-adapt negatives ended a
                // false-positive round that already paid.
                if round == 0 {
                    self.stats.filter_negatives.fetch_add(1, Relaxed);
                }
                return Ok(None);
            };
            let Some(rec) = self.primary.get(l)? else {
                // Filter/DB divergence (should not happen).
                self.stats.false_positives.fetch_add(1, Relaxed);
                return Ok(None);
            };
            let stored = u64::from_le_bytes(rec[..8].try_into().unwrap());
            if stored == key {
                self.stats.true_positives.fetch_add(1, Relaxed);
                return match &self.split_db {
                    None => Ok(Some(rec[8..].to_vec())),
                    Some(db) => Ok(db.get(key)?),
                };
            }
            self.stats.false_positives.fetch_add(1, Relaxed);
            round += 1;
            if round >= max_rounds {
                return Ok(None);
            }
            match self.filter.adapt_loc(l, stored, key) {
                Ok(()) => {
                    self.stats.adapts.fetch_add(1, Relaxed);
                }
                // Full table or inseparable hashes: stop trying;
                // the query stays a false positive.
                Err(_) => return Ok(None),
            }
            loc = self.filter.query_loc(key);
        }
    }

    /// Shared-path location-keyed verification: like
    /// [`Self::verify_at_loc`], but counter deltas accumulate in `d`
    /// (applied by the caller only on [`SharedRead::Done`]) and
    /// adaptation goes through [`DynFilter::adapt_loc_shared`]. Filters
    /// without shared adaptation escape with [`SharedRead::NeedsWrite`]
    /// at the first refuted positive instead of adapting.
    fn verify_at_loc_shared(
        &self,
        key: u64,
        mut loc: Option<u64>,
        d: &mut StatsDelta,
    ) -> std::io::Result<SharedRead<QueryOutcome>> {
        let max_rounds = match self.filter.adaptivity() {
            Adaptivity::Strong => usize::MAX,
            Adaptivity::Weak => WEAK_ADAPT_ROUNDS,
            Adaptivity::None => 1,
        };
        let concurrent = self.filter.supports_concurrent_reads();
        let mut round = 0usize;
        let mut adapted = false;
        let done = |value, store_accessed, adapted| {
            Ok(SharedRead::Done(QueryOutcome {
                value,
                store_accessed,
                adapted,
            }))
        };
        loop {
            let Some(l) = loc else {
                if round == 0 {
                    d.filter_negatives += 1;
                    return done(None, false, adapted);
                }
                return done(None, true, adapted);
            };
            let Some(rec) = self.primary.get(l)? else {
                d.false_positives += 1;
                return done(None, true, adapted);
            };
            let stored = u64::from_le_bytes(rec[..8].try_into().unwrap());
            if stored == key {
                d.true_positives += 1;
                let value = match &self.split_db {
                    None => Some(rec[8..].to_vec()),
                    Some(db) => db.get(key)?,
                };
                return done(value, true, adapted);
            }
            d.false_positives += 1;
            round += 1;
            if round >= max_rounds {
                return done(None, true, adapted);
            }
            if !concurrent {
                // Adaptation needs `&mut`; hand the whole query to the
                // exclusive path (the accumulated deltas are discarded).
                return Ok(SharedRead::NeedsWrite);
            }
            match self.filter.adapt_loc_shared(l, stored, key) {
                Ok(()) => {
                    d.adapts += 1;
                    adapted = true;
                }
                Err(_) => return done(None, true, adapted),
            }
            loc = self.filter.query_loc(key);
        }
    }

    /// Query `key` through a shared reference.
    ///
    /// Safe concurrently with other shared queries for every filter
    /// kind; additionally safe concurrently with `*_shared` writes when
    /// [`FilteredDb::supports_concurrent_ops`] (the AQF read probes go
    /// through the per-shard seqlock optimistic path, B-tree reads
    /// through the store's tree lock, and a mid-grow shard parks readers
    /// on its seqlock until the rebuilt table is published). Counters
    /// are applied only when the query completes here — a
    /// [`SharedRead::NeedsWrite`] escape consumes nothing, so the
    /// exclusive retry counts the query exactly once.
    pub fn query_shared(&self, key: u64) -> std::io::Result<SharedRead<QueryOutcome>> {
        let mut d = StatsDelta {
            queries: 1,
            ..StatsDelta::default()
        };
        let result = match self.filter.keying() {
            Keying::Key => {
                let positive = self.filter.contains(key);
                let got = if positive {
                    let got = self.primary.get(key)?;
                    if got.is_some() {
                        d.true_positives += 1;
                    } else {
                        d.false_positives += 1;
                    }
                    got
                } else {
                    d.filter_negatives += 1;
                    None
                };
                SharedRead::Done(QueryOutcome {
                    store_accessed: positive,
                    value: got,
                    adapted: false,
                })
            }
            Keying::Location => {
                let loc = self.filter.query_loc(key);
                self.verify_at_loc_shared(key, loc, &mut d)?
            }
        };
        if matches!(result, SharedRead::Done(_)) {
            self.stats.apply(&d);
        }
        Ok(result)
    }

    /// Query a batch of keys through a shared reference (see
    /// [`FilteredDb::query_shared`] for the concurrency contract). All
    /// filter probes are pipelined ahead of the database reads, exactly
    /// like [`FilteredDb::query_batch`]. If *any* key needs exclusive
    /// adaptation the whole batch escapes with [`SharedRead::NeedsWrite`]
    /// (counters untouched) and the caller retries it exclusively.
    pub fn query_batch_shared(
        &self,
        keys: &[u64],
    ) -> std::io::Result<SharedRead<Vec<Option<Vec<u8>>>>> {
        let mut d = StatsDelta {
            queries: keys.len() as u64,
            ..StatsDelta::default()
        };
        let mut out = Vec::with_capacity(keys.len());
        match self.filter.keying() {
            Keying::Key => {
                let positives = self.filter.contains_batch(keys);
                for (&key, positive) in keys.iter().zip(positives) {
                    if positive {
                        let got = self.primary.get(key)?;
                        if got.is_some() {
                            d.true_positives += 1;
                        } else {
                            d.false_positives += 1;
                        }
                        out.push(got);
                    } else {
                        d.filter_negatives += 1;
                        out.push(None);
                    }
                }
            }
            Keying::Location => {
                let locs = self.filter.query_loc_batch(keys);
                for (&key, loc) in keys.iter().zip(locs) {
                    match self.verify_at_loc_shared(key, loc, &mut d)? {
                        SharedRead::Done(o) => out.push(o.value),
                        SharedRead::NeedsWrite => return Ok(SharedRead::NeedsWrite),
                    }
                }
            }
        }
        self.stats.apply(&d);
        Ok(SharedRead::Done(out))
    }

    // ------------------------------------------------------------------
    // Batch operations
    // ------------------------------------------------------------------

    /// Insert a batch of `key -> value` records.
    ///
    /// The filter absorbs the whole batch first through
    /// [`DynFilter::insert_tracked_batch`] (sorted-by-quotient walks, one
    /// lock per shard per batch for the AQF family), then the resulting
    /// plans are applied to the database in input order. On a filter
    /// error the batch stops with no database writes; a prefix of the
    /// batch may occupy filter slots, so callers should treat the whole
    /// batch as failed and not retry it blindly.
    pub fn insert_batch(
        &mut self,
        items: &[(u64, &[u8])],
    ) -> std::io::Result<Result<(), FilterError>> {
        self.stats.inserts.fetch_add(items.len() as u64, Relaxed);
        let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        let plans = match self.filter.insert_tracked_batch(&keys) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        for (&(key, value), plan) in items.iter().zip(plans) {
            self.apply_insert_plan(key, value, &plan)?;
        }
        Ok(Ok(()))
    }

    /// [`FilteredDb::insert_batch`] through a shared reference. Requires
    /// [`FilteredDb::supports_concurrent_ops`]; same synchronization
    /// contract as [`FilteredDb::insert_shared`].
    pub fn insert_batch_shared(
        &self,
        items: &[(u64, &[u8])],
    ) -> std::io::Result<Result<(), FilterError>> {
        self.stats.inserts.fetch_add(items.len() as u64, Relaxed);
        let keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        let plans = match self.filter.insert_tracked_batch_shared(&keys) {
            Ok(p) => p,
            Err(e) => return Ok(Err(e)),
        };
        for (&(key, value), plan) in items.iter().zip(plans) {
            self.apply_insert_plan(key, value, &plan)?;
        }
        Ok(Ok(()))
    }

    /// Query a batch of keys, returning per-key values in input order.
    ///
    /// All filter probes run first ([`DynFilter::contains_batch`] /
    /// [`DynFilter::query_loc_batch`]: cache-coherent table walks, one
    /// lock per shard per batch), then only the filter-positive keys pay
    /// database reads. Verification and adaptation per key are identical
    /// to [`Self::query`]; in the rare case where adapting an earlier key
    /// of the batch also separates a later key's fingerprint, the later
    /// key still verifies correctly (its pre-computed probe is refuted by
    /// the database like any false positive).
    pub fn query_batch(&mut self, keys: &[u64]) -> std::io::Result<Vec<Option<Vec<u8>>>> {
        self.stats.queries.fetch_add(keys.len() as u64, Relaxed);
        let mut out = Vec::with_capacity(keys.len());
        match self.filter.keying() {
            Keying::Key => {
                let positives = self.filter.contains_batch(keys);
                for (&key, positive) in keys.iter().zip(positives) {
                    out.push(self.verify_key_keyed(key, positive)?);
                }
            }
            Keying::Location => {
                let locs = self.filter.query_loc_batch(keys);
                for (&key, loc) in keys.iter().zip(locs) {
                    out.push(self.verify_at_loc(key, loc)?);
                }
            }
        }
        Ok(out)
    }
}
