//! End-to-end tests of the filter-fronted database (paper §6.4).

use aqf::AqfConfig;
use aqf_filters::{AdaptiveCuckooFilter, CuckooFilter, QuotientFilter, TelescopingFilter};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SystemFilter};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("aqf-sys-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exercise(mut db: FilteredDb, n: u64, adaptive: bool) {
    // Insert n keys with derived values.
    for k in 0..n {
        db.insert(k * 3 + 1, &(k * 7).to_le_bytes())
            .unwrap()
            .unwrap();
    }
    // Every inserted key must be retrievable with its exact value.
    for k in 0..n {
        let v = db.query(k * 3 + 1).unwrap();
        assert_eq!(
            v.as_deref(),
            Some(&(k * 7).to_le_bytes()[..]),
            "key {} lost or wrong value",
            k * 3 + 1
        );
    }
    // Absent keys: the system must answer None; adaptive systems must stop
    // repeating any false positive.
    let mut rng = StdRng::seed_from_u64(11);
    let mut fp_keys = Vec::new();
    for _ in 0..5000 {
        let k: u64 = rng.random_range(1_000_000_000..u64::MAX);
        let before = db.stats().false_positives;
        assert_eq!(db.query(k).unwrap(), None, "absent key {k}");
        if db.stats().false_positives > before {
            fp_keys.push(k);
        }
    }
    if adaptive {
        // Re-query every observed false positive: none may repeat.
        let before = db.stats().false_positives;
        for &k in &fp_keys {
            assert_eq!(db.query(k).unwrap(), None);
        }
        let after = db.stats().false_positives;
        assert_eq!(before, after, "adaptive filter repeated a false positive");
    }
    // Members still intact after adaptation.
    for k in (0..n).step_by(13) {
        assert!(
            db.query(k * 3 + 1).unwrap().is_some(),
            "member lost post-adapt"
        );
    }
}

#[test]
fn aqf_system_end_to_end() {
    let dir = temp_dir("aqf");
    let db = FilteredDb::with_aqf(
        AqfConfig::new(12, 7).with_seed(1),
        &dir,
        256,
        IoPolicy::default(),
    )
    .unwrap();
    exercise(db, 3000, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aqf_split_system_end_to_end() {
    let dir = temp_dir("aqf-split");
    let f = aqf::AdaptiveQf::new(AqfConfig::new(12, 7).with_seed(2)).unwrap();
    let db = FilteredDb::new(
        SystemFilter::Aqf(Box::new(f)),
        &dir,
        256,
        IoPolicy::default(),
        RevMapMode::Split,
    )
    .unwrap();
    exercise(db, 3000, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn qf_system_end_to_end() {
    let dir = temp_dir("qf");
    let f = QuotientFilter::new(12, 7, 3).unwrap();
    let db = FilteredDb::new(
        SystemFilter::Qf(Box::new(f)),
        &dir,
        256,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cf_system_end_to_end() {
    let dir = temp_dir("cf");
    let f = CuckooFilter::new(10, 10, 4).unwrap();
    let db = FilteredDb::new(
        SystemFilter::Cf(Box::new(f)),
        &dir,
        256,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn acf_system_end_to_end() {
    let dir = temp_dir("acf");
    let f = AdaptiveCuckooFilter::new(10, 10, 5).unwrap();
    let db = FilteredDb::new(
        SystemFilter::Acf(Box::new(f)),
        &dir,
        256,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();
    // ACF is only weakly adaptive — a fixed FP can resurface when other
    // slots adapt — so run the shared harness without the no-repeat check.
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tqf_system_end_to_end() {
    let dir = temp_dir("tqf");
    let f = TelescopingFilter::new(12, 7, 6).unwrap();
    let db = FilteredDb::new(
        SystemFilter::Tqf(Box::new(f)),
        &dir,
        256,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn negative_queries_do_no_io() {
    let dir = temp_dir("negio");
    let mut db = FilteredDb::with_aqf(
        AqfConfig::new(10, 9).with_seed(9),
        &dir,
        64,
        IoPolicy::default(),
    )
    .unwrap();
    for k in 0..500u64 {
        db.insert(k, b"v").unwrap().unwrap();
    }
    db.query(1).unwrap(); // warm the path
    let before = db.io_stats();
    let mut negatives = 0;
    let mut k = 1_000_000u64;
    while negatives < 1000 {
        k += 1;
        let b = db.stats().filter_negatives;
        db.query(k).unwrap();
        if db.stats().filter_negatives > b {
            negatives += 1;
        }
    }
    // Filter-negative queries never touch the B-tree; the only reads
    // allowed here are from the rare false positives we skipped counting.
    let after = db.io_stats();
    assert_eq!(
        before.writes, after.writes,
        "negative queries must not write"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
