//! End-to-end tests of the filter-fronted database (paper §6.4), driven
//! through the filter registry so every kind exercises the same
//! trait-dispatch path the benchmarks use.

use aqf::AqfConfig;
use aqf_filters::registry::FilterSpec;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    aqf_workloads::unique_temp_dir(&format!("aqf-sys-{tag}"))
}

fn registry_db(spec: &FilterSpec, dir: &std::path::Path, mode: RevMapMode) -> FilteredDb {
    FilteredDb::new(
        spec.build().expect("registry kind builds"),
        dir,
        256,
        IoPolicy::default(),
        mode,
    )
    .unwrap()
}

fn exercise(mut db: FilteredDb, n: u64, adaptive: bool) {
    // Insert n keys with derived values.
    for k in 0..n {
        db.insert(k * 3 + 1, &(k * 7).to_le_bytes())
            .unwrap()
            .unwrap();
    }
    // Every inserted key must be retrievable with its exact value.
    for k in 0..n {
        let v = db.query(k * 3 + 1).unwrap();
        assert_eq!(
            v.as_deref(),
            Some(&(k * 7).to_le_bytes()[..]),
            "key {} lost or wrong value",
            k * 3 + 1
        );
    }
    // Absent keys: the system must answer None; adaptive systems must stop
    // repeating any false positive.
    let mut rng = StdRng::seed_from_u64(11);
    let mut fp_keys = Vec::new();
    for _ in 0..5000 {
        let k: u64 = rng.random_range(1_000_000_000..u64::MAX);
        let before = db.stats().false_positives;
        assert_eq!(db.query(k).unwrap(), None, "absent key {k}");
        if db.stats().false_positives > before {
            fp_keys.push(k);
        }
    }
    if adaptive {
        // Re-query every observed false positive: none may repeat.
        let before = db.stats().false_positives;
        for &k in &fp_keys {
            assert_eq!(db.query(k).unwrap(), None);
        }
        let after = db.stats().false_positives;
        assert_eq!(before, after, "adaptive filter repeated a false positive");
    }
    // Members still intact after adaptation.
    for k in (0..n).step_by(13) {
        assert!(
            db.query(k * 3 + 1).unwrap().is_some(),
            "member lost post-adapt"
        );
    }
}

#[test]
fn aqf_system_end_to_end() {
    let dir = temp_dir("aqf");
    let db = FilteredDb::with_aqf(
        AqfConfig::new(12, 7).with_seed(1),
        &dir,
        256,
        IoPolicy::default(),
    )
    .unwrap();
    exercise(db, 3000, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aqf_split_system_end_to_end() {
    let dir = temp_dir("aqf-split");
    let spec = FilterSpec::new("aqf", 12).with_rbits(7).with_seed(2);
    let db = registry_db(&spec, &dir, RevMapMode::Split);
    exercise(db, 3000, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_aqf_system_end_to_end() {
    let dir = temp_dir("sharded");
    let spec = FilterSpec::new("sharded-aqf", 12)
        .with_rbits(7)
        .with_seed(7)
        .with_shard_bits(2);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    // The sharded AQF is a drop-in strongly adaptive filter: same
    // no-repeat guarantee as the flat AQF.
    exercise(db, 3000, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn qf_system_end_to_end() {
    let dir = temp_dir("qf");
    let spec = FilterSpec::new("qf", 12).with_rbits(7).with_seed(3);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cf_system_end_to_end() {
    let dir = temp_dir("cf");
    let spec = FilterSpec::new("cf", 12).with_tag_bits(10).with_seed(4);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn acf_system_end_to_end() {
    let dir = temp_dir("acf");
    let spec = FilterSpec::new("acf", 12).with_tag_bits(10).with_seed(5);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    // ACF is only weakly adaptive — a fixed FP can resurface when other
    // slots adapt — so run the shared harness without the no-repeat check.
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tqf_system_end_to_end() {
    let dir = temp_dir("tqf");
    let spec = FilterSpec::new("tqf", 12).with_rbits(7).with_seed(6);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn yesno_system_end_to_end() {
    let dir = temp_dir("yesno");
    let spec = FilterSpec::new("yesno", 12).with_rbits(7).with_seed(8);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    // Key-keyed, internally adaptive at insert time; no query-side
    // no-repeat guarantee to assert.
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bloom_system_end_to_end() {
    let dir = temp_dir("bloom");
    let spec = FilterSpec::new("bloom", 12).with_rbits(9).with_seed(9);
    let db = registry_db(&spec, &dir, RevMapMode::Merged);
    exercise(db, 3000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn split_mode_degrades_to_merged_for_key_keyed_filters() {
    let dir = temp_dir("split-degrade");
    let spec = FilterSpec::new("qf", 12).with_rbits(7).with_seed(10);
    // Split is only meaningful for location-keyed maps; a QF system must
    // still work (merged behavior) when asked for it.
    let db = registry_db(&spec, &dir, RevMapMode::Split);
    exercise(db, 2000, false);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn negative_queries_do_no_io() {
    let dir = temp_dir("negio");
    let mut db = FilteredDb::with_aqf(
        AqfConfig::new(10, 9).with_seed(9),
        &dir,
        64,
        IoPolicy::default(),
    )
    .unwrap();
    for k in 0..500u64 {
        db.insert(k, b"v").unwrap().unwrap();
    }
    db.query(1).unwrap(); // warm the path
    let before = db.io_stats();
    let mut negatives = 0;
    let mut k = 1_000_000u64;
    while negatives < 1000 {
        k += 1;
        let b = db.stats().filter_negatives;
        db.query(k).unwrap();
        if db.stats().filter_negatives > b {
            negatives += 1;
        }
    }
    // Filter-negative queries never touch the B-tree; the only reads
    // allowed here are from the rare false positives we skipped counting.
    let after = db.io_stats();
    assert_eq!(
        before.writes, after.writes,
        "negative queries must not write"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_insert_and_query_match_per_key_system() {
    // Two identical systems over the same filter kind: one driven per
    // key, one through the batch entry points. Values and (verified)
    // answers must agree element-wise; batch stats must track totals.
    for kind in ["aqf", "sharded-aqf", "qf"] {
        let dir_a = temp_dir(&format!("batch-seq-{kind}"));
        let dir_b = temp_dir(&format!("batch-bat-{kind}"));
        let spec = FilterSpec::new(kind, 12).with_seed(5);
        let mut seq = registry_db(&spec, &dir_a, RevMapMode::Merged);
        let mut bat = registry_db(&spec, &dir_b, RevMapMode::Merged);

        let keys: Vec<u64> = (0..1500u64).map(|k| k * 3 + 1).collect();
        let values: Vec<[u8; 8]> = keys.iter().map(|&k| (k * 7).to_le_bytes()).collect();
        for (&k, v) in keys.iter().zip(&values) {
            seq.insert(k, v).unwrap().unwrap();
        }
        let items: Vec<(u64, &[u8])> = keys
            .iter()
            .zip(&values)
            .map(|(&k, v)| (k, &v[..]))
            .collect();
        for chunk in items.chunks(97) {
            bat.insert_batch(chunk).unwrap().unwrap();
        }
        assert_eq!(bat.stats().inserts, keys.len() as u64, "{kind}: inserts");

        // Mixed member/absent probe stream through both paths.
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain((0..1500u64).map(|i| (1 << 41) + i * 7919))
            .collect();
        let got = bat.query_batch(&probes).unwrap();
        for (j, &p) in probes.iter().enumerate() {
            assert_eq!(got[j], seq.query(p).unwrap(), "{kind}: probe {p} diverges");
        }
        // Every member came back with its exact value.
        for (j, v) in values.iter().enumerate() {
            assert_eq!(got[j].as_deref(), Some(&v[..]), "{kind}: member {j}");
        }
        assert_eq!(
            bat.stats().queries,
            probes.len() as u64,
            "{kind}: query count"
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}

#[test]
fn delete_removes_keys_and_preserves_survivors() {
    // Every deletion-capable kind: insert many keys, delete every third,
    // then verify element-wise that deleted keys are gone and survivors
    // still resolve to their exact values. For the AQF family this
    // exercises the rank-shift replay in the merged reverse map (deleting
    // a fingerprint group slides later ranks of its minirun down one
    // store key, and the B-tree must follow).
    for kind in ["aqf", "sharded-aqf", "cf", "yesno"] {
        let dir = temp_dir(&format!("delete-{kind}"));
        let spec = FilterSpec::new(kind, 12).with_seed(5);
        let mut db = registry_db(&spec, &dir, RevMapMode::Merged);

        let n = 2000u64;
        let keys: Vec<u64> = (0..n).map(|k| k * 3 + 1).collect();
        for &k in &keys {
            db.insert(k, &(k * 7).to_le_bytes()).unwrap().unwrap();
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(
                    db.delete(k).unwrap(),
                    Ok(true),
                    "{kind}: delete of member {k} must report presence"
                );
            }
        }
        assert_eq!(db.stats().deletes, (n as usize).div_ceil(3) as u64);
        let mut ghost_hits = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            let got = db.query(k).unwrap();
            if i % 3 == 0 {
                // Deleted. A residual fingerprint collision may still
                // return a *wrong-key* record only for non-exact kinds;
                // exact-map kinds must answer None.
                ghost_hits += got.is_some() as usize;
            } else {
                assert_eq!(
                    got.as_deref(),
                    Some(&(k * 7).to_le_bytes()[..]),
                    "{kind}: survivor {k} lost its value"
                );
            }
        }
        assert!(
            ghost_hits <= n as usize / 100,
            "{kind}: {ghost_hits} deleted keys still resolve"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn delete_unsupported_kinds_report_typed_error() {
    // Location-keyed non-AQF kinds (ACF, TQF) and the plain QF-family
    // wrappers that lack deletion must surface FilterError, not panic,
    // and must leave the database untouched.
    for kind in ["acf", "tqf", "qf", "bloom", "cbf"] {
        let dir = temp_dir(&format!("delete-unsup-{kind}"));
        let spec = FilterSpec::new(kind, 12).with_seed(5);
        let mut db = registry_db(&spec, &dir, RevMapMode::Merged);
        db.insert(77, b"payload").unwrap().unwrap();
        assert!(
            db.delete(77).unwrap().is_err(),
            "{kind}: delete must be a typed error"
        );
        assert_eq!(db.query(77).unwrap().as_deref(), Some(&b"payload"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn auto_grow_file_backed_db_snapshots_and_reopens() {
    // The full dynamic-capacity lifecycle at the system layer: auto-grow
    // absorbs 8x the initial filter capacity without ever reporting
    // Full, the table lives on a file-backed arena, and both survive a
    // snapshot/open cycle — including the sticky re-attach after a grow
    // has bounced the table back onto the heap.
    let dir = temp_dir("grow-fb");
    let spec = FilterSpec::new("aqf", 8).with_rbits(9).with_seed(9);
    let mut db = registry_db(&spec, &dir, RevMapMode::Merged);
    db.set_auto_grow(Some(0.9)).unwrap();
    db.enable_file_backing().unwrap();
    assert!(db.filter().is_file_backed());

    let n = 8 * 256u64; // 8x the 2^8 initial slot budget
    for k in 0..n {
        db.insert(k * 3 + 1, &(k * 7).to_le_bytes())
            .unwrap()
            .expect("auto-grow must absorb 8x capacity without Full");
    }
    assert!(db.filter().grows() >= 3, "expected >=3 doublings");
    assert!(db.filter().capacity() >= n);
    // Growing rebuilds on the heap; the mode is sticky, so the snapshot
    // below must migrate the grown table back onto the arena.
    db.snapshot().unwrap();
    assert!(
        db.filter().is_file_backed(),
        "snapshot must re-attach arena"
    );
    let grows_before = db.filter().grows();
    drop(db);

    let mut r = FilteredDb::open(&dir, 256, IoPolicy::default()).unwrap();
    assert!(r.filter().is_file_backed(), "reopen lost the arena backing");
    assert_eq!(r.filter().grows(), grows_before);
    for k in 0..n {
        assert_eq!(
            r.query(k * 3 + 1).unwrap().as_deref(),
            Some(&(k * 7).to_le_bytes()[..]),
            "key {} lost across grow + reopen",
            k * 3 + 1
        );
    }
    // Auto-grow is a runtime policy, not snapshot state (a reopened db
    // loads with it off); re-arm it and push past the next threshold —
    // inserts must still never report Full.
    r.set_auto_grow(Some(0.9)).unwrap();
    for k in n..(2 * n) {
        r.insert(k * 3 + 1, &(k * 7).to_le_bytes())
            .unwrap()
            .expect("reopened db must keep auto-growing");
    }
    assert!(r.filter().grows() > grows_before);
    std::fs::remove_dir_all(&dir).unwrap();
}
