//! B-tree stress and property tests beyond the unit-level model test.

use aqf_storage::btree::BTreeStore;
use aqf_storage::pager::{IoPolicy, IoStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

fn temp_store(tag: &str, cache_pages: usize) -> (BTreeStore, std::path::PathBuf) {
    let dir = aqf_workloads::unique_temp_dir(&format!("aqf-btstress-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.db");
    (
        BTreeStore::create(&path, IoPolicy::default(), cache_pages).unwrap(),
        path,
    )
}

#[test]
fn delete_heavy_churn_stays_consistent() {
    let (t, path) = temp_store("churn", 32);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(3);
    for round in 0..6 {
        // Insert a wave.
        for _ in 0..4000 {
            let k = rng.random_range(0..20_000u64);
            let v = vec![(k % 251) as u8; (k % 60) as usize];
            t.put(k, &v).unwrap();
            model.insert(k, v);
        }
        // Delete half of what exists.
        let keys: Vec<u64> = model.keys().copied().collect();
        for k in keys.iter().step_by(2) {
            assert!(t.delete(*k).unwrap(), "round {round} delete {k}");
            model.remove(k);
        }
        // Verify a sample.
        for k in (0..20_000u64).step_by(37) {
            assert_eq!(
                t.get(k).unwrap(),
                model.get(&k).cloned(),
                "round {round} key {k}"
            );
        }
        assert_eq!(t.len(), model.len() as u64, "round {round}");
    }
    std::fs::remove_file(path).unwrap();
}

#[test]
fn max_value_boundary() {
    let (t, path) = temp_store("maxval", 64);
    let big = vec![7u8; aqf_storage::btree::MAX_VALUE_LEN];
    for k in 0..20u64 {
        t.put(k, &big).unwrap();
    }
    for k in 0..20u64 {
        assert_eq!(t.get(k).unwrap().unwrap(), big);
    }
    // Overwrite with a small value shrinks the entry in place.
    t.put(5, b"tiny").unwrap();
    let got = t.get(5).unwrap().unwrap();
    assert_eq!(got, b"tiny");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn io_counters_monotone_and_flush_persists() {
    let (mut t, path) = temp_store("io", 16);
    for k in 0..5000u64 {
        t.put(k, &k.to_le_bytes()).unwrap();
    }
    let IoStats { reads, writes } = t.io_stats();
    t.flush().unwrap();
    let after = t.io_stats();
    assert!(after.writes >= writes, "flush only adds writes");
    assert_eq!(after.reads, reads, "flush must not read");
    std::fs::remove_file(path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn btree_random_ops_match_model(
        ops in proptest::collection::vec((0u64..500, 0u8..3, 0usize..40), 1..300),
        cache in 8usize..64,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "aqf-btprop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let t = BTreeStore::create(&path, IoPolicy::default(), cache).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (key, op, vlen) in ops {
            match op {
                0 | 1 => {
                    let v = vec![(key % 256) as u8; vlen];
                    t.put(key, &v).unwrap();
                    model.insert(key, v);
                }
                _ => {
                    let got = t.delete(key).unwrap();
                    prop_assert_eq!(got, model.remove(&key).is_some());
                }
            }
        }
        for (k, v) in &model {
            let got = t.get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        prop_assert_eq!(t.len(), model.len() as u64);
        let _ = std::fs::remove_file(&path);
    }
}
