//! End-to-end snapshot persistence and crash recovery for `FilteredDb`:
//! round-trips across registry kinds, the restart workload (snapshot,
//! keep writing, kill, recover, replay), and crash consistency of the
//! write-temp-then-rename commit protocol.

use std::path::PathBuf;

use aqf_bits::snapshot::{stale_temp_path, SnapError};
use aqf_filters::registry::FilterSpec;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SNAPSHOT_FILE};
use aqf_workloads::{unique_temp_dir, RestartSchedule};

fn temp_dir(tag: &str) -> PathBuf {
    unique_temp_dir(&format!("aqf-persist-{tag}"))
}

fn db_with(kind: &str, dir: &std::path::Path, mode: RevMapMode) -> FilteredDb {
    FilteredDb::new(
        FilterSpec::new(kind, 12).with_seed(5).build().unwrap(),
        dir,
        128,
        IoPolicy::default(),
        mode,
    )
    .unwrap()
}

fn value_of(k: u64) -> [u8; 8] {
    (k.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_le_bytes()
}

/// Snapshot + reopen round-trips data, stats, and adaptation state for a
/// representative filter of every keying/adaptivity class.
#[test]
fn snapshot_reopen_roundtrips_every_filter_class() {
    for kind in ["aqf", "sharded-aqf", "qf", "acf", "tqf", "yesno", "bloom"] {
        let dir = temp_dir(&format!("rt-{kind}"));
        let mut db = db_with(kind, &dir, RevMapMode::Merged);
        for k in 0..2000u64 {
            db.insert(k * 3 + 1, &value_of(k)).unwrap().unwrap();
        }
        // Adaptation traffic before the snapshot; record which absent
        // keys cost a false positive so we can verify fixes persist.
        let mut fp_keys = Vec::new();
        for p in 0..4000u64 {
            let probe = (1 << 42) + p * 104_729;
            let before = db.stats().false_positives;
            assert_eq!(db.query(probe).unwrap(), None, "{kind}: absent {probe}");
            if db.stats().false_positives > before {
                fp_keys.push(probe);
            }
        }
        let stats_before = db.stats();
        db.snapshot()
            .unwrap_or_else(|e| panic!("{kind}: snapshot failed: {e}"));
        drop(db);

        let mut db = FilteredDb::open(&dir, 128, IoPolicy::default())
            .unwrap_or_else(|e| panic!("{kind}: open failed: {e}"));
        assert_eq!(db.filter().kind(), kind, "{kind}: filter kind survived");
        let s = db.stats();
        assert_eq!(s.inserts, stats_before.inserts, "{kind}: insert counter");
        assert_eq!(
            s.false_positives, stats_before.false_positives,
            "{kind}: fp counter"
        );
        for k in 0..2000u64 {
            assert_eq!(
                db.query(k * 3 + 1).unwrap().as_deref(),
                Some(&value_of(k)[..]),
                "{kind}: key {k} lost or wrong value after reopen"
            );
        }
        // Strongly adaptive kinds: fixes persist — refuted probes must
        // not cost a second false positive after the restart.
        if kind == "aqf" || kind == "sharded-aqf" {
            let before = db.stats().false_positives;
            for &probe in &fp_keys {
                assert_eq!(db.query(probe).unwrap(), None);
            }
            assert_eq!(
                db.stats().false_positives,
                before,
                "{kind}: adaptation state lost across restart"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The split reverse-map setup persists both stores.
#[test]
fn split_mode_snapshot_roundtrips_both_stores() {
    let dir = temp_dir("split");
    let mut db = db_with("aqf", &dir, RevMapMode::Split);
    for k in 0..1500u64 {
        db.insert(k * 7 + 3, &value_of(k)).unwrap().unwrap();
    }
    db.snapshot().unwrap();
    drop(db);
    let mut db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    for k in 0..1500u64 {
        assert_eq!(
            db.query(k * 7 + 3).unwrap().as_deref(),
            Some(&value_of(k)[..]),
            "split key {k}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The restart workload end to end: snapshot mid-stream, keep inserting,
/// kill (drop without snapshotting), recover, assert the committed prefix
/// survived and the doomed tail vanished, then replay it and finish.
#[test]
fn restart_workload_recovers_committed_prefix_and_replays() {
    let sched = RestartSchedule::generate(4000, 0.25, 0.15, 11);
    let dir = temp_dir("restart");
    let mut db = db_with("aqf", &dir, RevMapMode::Merged);
    for &k in &sched.committed {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    for &p in &sched.probes[..1000] {
        assert_eq!(db.query(p).unwrap(), None);
    }
    db.snapshot().unwrap();
    // Post-snapshot inserts: doomed by the kill.
    for &k in &sched.lost {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    for &k in &sched.lost {
        assert!(db.query(k).unwrap().is_some(), "pre-kill sanity");
    }
    drop(db); // the kill: nothing since the snapshot survives

    let mut db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    for &k in &sched.committed {
        assert_eq!(
            db.query(k).unwrap().as_deref(),
            Some(&value_of(k)[..]),
            "committed key {k} lost in the crash"
        );
    }
    for &k in &sched.lost {
        assert_eq!(
            db.query(k).unwrap(),
            None,
            "doomed key {k} survived the crash"
        );
    }
    // Replay the lost tail and continue the stream.
    for &k in sched.lost.iter().chain(&sched.post) {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    for &k in sched.committed.iter().chain(&sched.lost).chain(&sched.post) {
        assert!(db.query(k).unwrap().is_some(), "key {k} after replay");
    }
    for &p in &sched.probes[1000..2000] {
        assert_eq!(db.query(p).unwrap(), None);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between the temp write and the rename: the stale temp (whether
/// garbage or a complete newer snapshot that never committed) must be
/// ignored and removed; the previous committed snapshot opens cleanly.
#[test]
fn kill_between_temp_write_and_rename_recovers_previous_snapshot() {
    let dir = temp_dir("crash");
    let mut db = db_with("aqf", &dir, RevMapMode::Merged);
    for k in 0..1000u64 {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    db.snapshot().unwrap();
    // More inserts the next snapshot would have captured.
    for k in 1000..1500u64 {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    drop(db);

    let manifest = dir.join(SNAPSHOT_FILE);
    let committed = std::fs::read(&manifest).unwrap();
    let tmp = stale_temp_path(&manifest);

    // Case 1: the kill left a torn, partially written temp.
    std::fs::write(&tmp, &committed[..committed.len() / 3]).unwrap();
    let mut db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    assert!(!tmp.exists(), "stale temp must be cleaned up");
    for k in 0..1000u64 {
        assert!(db.query(k).unwrap().is_some(), "committed key {k}");
    }
    for k in 1000..1500u64 {
        assert_eq!(
            db.query(k).unwrap(),
            None,
            "uncommitted key {k} resurrected"
        );
    }
    drop(db);

    // Case 2: the kill hit after a *complete* temp write but before the
    // rename — the temp is a valid snapshot, yet it never committed, so
    // it must still be discarded in favor of the previous one.
    std::fs::write(&tmp, &committed).unwrap();
    let mut db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    assert!(!tmp.exists());
    for k in 0..1000u64 {
        assert!(db.query(k).unwrap().is_some());
    }
    // The manifest itself is untouched.
    assert_eq!(std::fs::read(&manifest).unwrap(), committed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Opening damaged or absent state is a typed error, never a panic and
/// never a silently empty database.
#[test]
fn open_failures_are_typed() {
    // No snapshot ever taken.
    let dir = temp_dir("missing");
    std::fs::create_dir_all(&dir).unwrap();
    match FilteredDb::open(&dir, 64, IoPolicy::default()) {
        Err(SnapError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        Err(e) => panic!("unexpected error {e}"),
        Ok(_) => panic!("opened a directory with no snapshot"),
    }
    // A corrupted manifest.
    let dir = temp_dir("corrupt");
    let mut db = db_with("qf", &dir, RevMapMode::Merged);
    for k in 0..500u64 {
        db.insert(k, b"v").unwrap().unwrap();
    }
    db.snapshot().unwrap();
    drop(db);
    let manifest = dir.join(SNAPSHOT_FILE);
    let good = std::fs::read(&manifest).unwrap();
    let mut bytes = good.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&manifest, &bytes).unwrap();
    // A complete temp from a killed snapshot sits next to the damaged
    // manifest: the failed open must NOT destroy it (it is the only
    // recoverable copy left on disk).
    let tmp = stale_temp_path(&manifest);
    std::fs::write(&tmp, &good).unwrap();
    match FilteredDb::open(&dir, 64, IoPolicy::default()) {
        Err(SnapError::ChecksumMismatch { .. }) => {}
        Err(e) => panic!("unexpected error {e}"),
        Ok(_) => panic!("opened a corrupted snapshot"),
    }
    assert!(
        tmp.exists(),
        "failed open must preserve the stale temp as recovery evidence"
    );
    // A snapshot of something that is not a FilteredDb.
    let dir = temp_dir("wrongkind");
    std::fs::create_dir_all(&dir).unwrap();
    let mut f = FilterSpec::new("qf", 10).build().unwrap();
    for k in 0..100u64 {
        f.insert(k).unwrap();
    }
    aqf_bits::snapshot::write_atomic(&dir.join(SNAPSHOT_FILE), &f.snapshot_bytes().unwrap())
        .unwrap();
    match FilteredDb::open(&dir, 64, IoPolicy::default()) {
        Err(SnapError::WrongKind { found, .. }) => assert_eq!(found, "qf"),
        Err(e) => panic!("unexpected error {e}"),
        Ok(_) => panic!("opened a bare filter snapshot as a database"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshots are re-takeable: snapshot, keep writing, snapshot again;
/// the newest commit wins and holds the full state.
#[test]
fn successive_snapshots_commit_the_latest_state() {
    let dir = temp_dir("succ");
    let mut db = db_with("sharded-aqf", &dir, RevMapMode::Merged);
    for k in 0..800u64 {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    db.snapshot().unwrap();
    for k in 800..1600u64 {
        db.insert(k, &value_of(k)).unwrap().unwrap();
    }
    db.snapshot().unwrap();
    drop(db);
    let mut db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    for k in 0..1600u64 {
        assert!(
            db.query(k).unwrap().is_some(),
            "key {k} after second snapshot"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
