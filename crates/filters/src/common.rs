//! Shared traits and instrumentation for the baseline filters.

pub use aqf::FilterError;

/// Minimal interface common to all filters in the evaluation.
pub trait Filter {
    /// Insert a key.
    fn insert(&mut self, key: u64) -> Result<(), FilterError>;
    /// Approximate membership query.
    fn contains(&self, key: u64) -> bool;
    /// Heap bytes used by the filter table (excluding any reverse-map /
    /// shadow-key storage, which the paper accounts separately).
    fn size_in_bytes(&self) -> usize;
    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;
}

/// A reverse-map operation a location-keyed adaptive filter (ACF, TQF)
/// would perform against its backing store. Filters record these when
/// event recording is enabled so the system layer can replay them as real
/// database I/O (paper §6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapEvent {
    /// Read the entry at a location (kick victims, adaptation lookups).
    Get {
        /// Slot/location read.
        loc: usize,
    },
    /// Write `key`'s entry at a location (fresh inserts, relocations).
    Put {
        /// Slot/location written.
        loc: usize,
        /// Key now stored there.
        key: u64,
    },
    /// Slots `[start, end)` shifted right by one (TQF Robin Hood shift);
    /// the map must move every entry in the range.
    ShiftRange {
        /// First shifted slot.
        start: usize,
        /// One past the last shifted slot.
        end: usize,
    },
}

/// Counters for the reverse-map traffic a filter induces (paper Table 2).
///
/// - `inserts`: new entries written to the map (one per filter insert),
/// - `updates`: existing entries rewritten because the filter moved or
///   re-encoded fingerprints (kicks, shifts, selector changes),
/// - `queries`: map reads needed to re-derive a fingerprint from its key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapStats {
    /// New reverse-map entries.
    pub inserts: u64,
    /// Rewrites of existing entries.
    pub updates: u64,
    /// Reads of existing entries.
    pub queries: u64,
}
