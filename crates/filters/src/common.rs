//! The filter trait hierarchy every filter in this workspace implements,
//! plus shared reverse-map instrumentation.
//!
//! The paper's evaluation (§6) treats filters as interchangeable black
//! boxes; this module is where that interchangeability lives in code:
//!
//! - [`AmqFilter`] — the base approximate-membership interface (insert,
//!   contains, size, optional delete) implemented by **every** filter:
//!   the six baselines, [`aqf::AdaptiveQf`], [`aqf::ShardedAqf`], and
//!   [`aqf::YesNoFilter`].
//! - [`AdaptiveFilter`] — the extra surface adaptive filters expose: a
//!   positive query yields reverse-map coordinates (the associated
//!   [`AdaptiveFilter::Hit`] type, unifying the former `AcfHit`, `TqfHit`,
//!   and `aqf::Hit` shapes) that can be fed back into
//!   [`AdaptiveFilter::adapt`] once the backing store refutes the match.
//! - [`MapEventSource`] — recording of reverse-map traffic for filters
//!   whose map is *location-keyed* (ACF, TQF), so the system layer can
//!   replay kicks and shifts as real database I/O.
//!
//! The object-safe [`crate::DynFilter`] layer and the string-keyed
//! [`crate::registry`] are built on top of these traits.

pub use aqf::FilterError;

/// How strongly a filter adapts to reported false positives (paper §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adaptivity {
    /// Never changes in response to false positives (QF, CF, Bloom).
    None,
    /// Fixing one false positive can re-expose a previously fixed one
    /// (ACF and, once its fixed-width selectors wrap, TQF).
    Weak,
    /// Every reported false positive is fixed and stays fixed
    /// (AdaptiveQF and its sharded variant).
    Strong,
}

/// Minimal interface common to all approximate-membership filters in the
/// evaluation.
///
/// `size_in_bytes` counts the filter table only — shadow-key arrays and
/// other reverse-map stand-ins are accounted separately, as in the paper.
///
/// ```
/// use aqf_filters::{AmqFilter, QuotientFilter};
///
/// let mut f = QuotientFilter::new(10, 9, 1).unwrap();
/// f.insert(42).unwrap();
/// assert!(f.contains(42)); // no false negatives, ever
/// assert_eq!(f.len(), 1);
/// assert!(f.size_in_bytes() > 0);
/// ```
pub trait AmqFilter {
    /// Insert a key.
    fn insert(&mut self, key: u64) -> Result<(), FilterError>;

    /// Approximate membership query: `false` is definitive, `true` may be
    /// a false positive with probability ≈ ε.
    fn contains(&self, key: u64) -> bool;

    /// Number of stored items (multiset count where applicable).
    fn len(&self) -> u64;

    /// True if nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes used by the filter table (excluding any reverse-map /
    /// shadow-key storage, which the paper accounts separately).
    fn size_in_bytes(&self) -> usize;

    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Slot capacity of the filter table — the denominator of
    /// [`AmqFilter::load_factor`]. For slotted filters this is the
    /// canonical slot budget; for bit-array filters, the number of bits.
    /// 0 when the structure has no fixed capacity (e.g. a cascading Bloom
    /// filter, whose levels are rebuilt per snapshot).
    fn capacity(&self) -> u64 {
        0
    }

    /// Fraction of [`AmqFilter::capacity`] occupied by live table state.
    /// The numerator is filter-specific occupancy — used slots for
    /// slotted filters (including adaptation overhead such as the AQF's
    /// extension slots), set bits for bit-array filters — so the value
    /// is a real fill fraction, not just `len / capacity`. 0 when
    /// capacity is 0.
    fn load_factor(&self) -> f64 {
        match self.capacity() {
            0 => 0.0,
            c => self.len() as f64 / c as f64,
        }
    }

    /// The filter's adaptivity class.
    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::None
    }

    /// True if [`AmqFilter::delete`] is supported.
    fn supports_delete(&self) -> bool {
        false
    }

    /// Delete one copy of `key`, if deletion is supported. Returns
    /// `Ok(true)` when an entry was removed, `Ok(false)` when no matching
    /// entry existed.
    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        let _ = key;
        Err(FilterError::InvalidConfig(
            "this filter does not support deletion",
        ))
    }

    /// Insert every key of `keys` in order.
    ///
    /// The default is the per-key loop, so every implementor is batch-
    /// correct for free; filters with a cheaper bulk path (the AQF family
    /// sorts by quotient; the sharded AQF locks each shard once per
    /// batch) override it. On error a prefix of the batch (in an
    /// implementation-chosen order) has been inserted.
    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        for &k in keys {
            self.insert(k)?;
        }
        Ok(())
    }

    /// Batched [`AmqFilter::contains`]: membership bits in input order,
    /// element-wise identical to per-key calls. Default is the per-key
    /// loop.
    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        keys.iter().map(|&k| self.contains(k)).collect()
    }
}

/// An adaptive filter: positive queries come with reverse-map coordinates
/// that the application can feed back after a confirmed false positive.
///
/// The associated [`AdaptiveFilter::Hit`] type unifies the per-filter hit
/// shapes (the AQF's `(minirun id, rank)`, the ACF's `(bucket, slot)`,
/// the TQF's slot index). Every hit maps to a stable `u64` *store key* —
/// the key under which a reverse map (in-memory shadow or on-disk
/// database) keeps the original key for that fingerprint — via
/// [`AdaptiveFilter::store_key`] / [`AdaptiveFilter::hit_at`].
///
/// Filters whose reverse map is internal (ACF, TQF carry shadow key
/// arrays) resolve [`AdaptiveFilter::stored_key`] themselves; filters
/// with an external map (AdaptiveQF) return `None` and expect the caller
/// to resolve the store key against its own map.
///
/// ```
/// use aqf_filters::{AdaptiveFilter, AmqFilter, TelescopingFilter};
///
/// let mut f = TelescopingFilter::new(10, 7, 3).unwrap();
/// for k in 0..900u64 {
///     f.insert(k).unwrap();
/// }
/// // Probe until some absent key collides, then adapt it away.
/// let mut probe = 1_000_000u64;
/// let hit = loop {
///     if let Some(h) = f.query_hit(probe) {
///         break h;
///     }
///     probe += 1;
/// };
/// // Fully-qualified: the TQF also has inherent `stored_key`/`adapt`.
/// let stored = AdaptiveFilter::stored_key(&f, &hit).expect("TQF's map is internal");
/// assert_ne!(stored, probe, "a collision, not a member");
/// AdaptiveFilter::adapt(&mut f, &hit, stored, probe).unwrap();
/// ```
pub trait AdaptiveFilter: AmqFilter {
    /// Coordinates of a positive query, sufficient to adapt it later.
    type Hit: Clone + std::fmt::Debug;

    /// Membership query returning the matched fingerprint's coordinates
    /// (`None` = definitely absent).
    fn query_hit(&self, key: u64) -> Option<Self::Hit>;

    /// The `u64` reverse-map key identifying `hit`'s fingerprint.
    fn store_key(&self, hit: &Self::Hit) -> u64;

    /// Reconstruct a hit from a store key previously produced by
    /// [`AdaptiveFilter::store_key`]. The hit may be stale if the filter
    /// changed in between; [`AdaptiveFilter::adapt`] reports that as
    /// [`FilterError::NotFound`].
    fn hit_at(&self, store_key: u64) -> Self::Hit;

    /// The original key the filter's *internal* reverse map holds for
    /// `hit`, or `None` if the map is external to the filter.
    fn stored_key(&self, hit: &Self::Hit) -> Option<u64>;

    /// Correct a reported false positive: `hit` matched `query_key`, but
    /// the reverse map showed the fingerprint really belongs to
    /// `stored_key`. Returns a filter-specific count of the work done
    /// (extension chunks added, selectors advanced).
    fn adapt(
        &mut self,
        hit: &Self::Hit,
        stored_key: u64,
        query_key: u64,
    ) -> Result<u32, FilterError>;

    /// Batched [`AdaptiveFilter::query_hit`]: per-key hits in input
    /// order, element-wise identical to per-key calls. Default is the
    /// per-key loop; the AQF family overrides it with quotient-sorted /
    /// shard-grouped table walks.
    fn query_hit_batch(&self, keys: &[u64]) -> Vec<Option<Self::Hit>> {
        keys.iter().map(|&k| self.query_hit(k)).collect()
    }
}

/// Recording of the reverse-map operations a *location-keyed* adaptive
/// filter (ACF, TQF) performs, for replay against a real database
/// (paper §6.4) and for the Table 2 traffic counters.
pub trait MapEventSource {
    /// Enable recording of reverse-map operations for system-level replay.
    fn set_event_recording(&mut self, on: bool);

    /// Drain recorded reverse-map operations (in execution order).
    fn take_events(&mut self) -> Vec<MapEvent>;

    /// Reverse-map traffic counters (paper Table 2).
    fn map_stats(&self) -> MapStats;
}

/// A reverse-map operation a location-keyed adaptive filter (ACF, TQF)
/// would perform against its backing store. Filters record these when
/// event recording is enabled so the system layer can replay them as real
/// database I/O (paper §6.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapEvent {
    /// Read the entry at a location (kick victims, adaptation lookups).
    Get {
        /// Slot/location read.
        loc: usize,
    },
    /// Write `key`'s entry at a location (fresh inserts, relocations).
    Put {
        /// Slot/location written.
        loc: usize,
        /// Key now stored there.
        key: u64,
    },
    /// Slots `[start, end)` shifted right by one (TQF Robin Hood shift);
    /// the map must move every entry in the range.
    ShiftRange {
        /// First shifted slot.
        start: usize,
        /// One past the last shifted slot.
        end: usize,
    },
}

/// Counters for the reverse-map traffic a filter induces (paper Table 2).
///
/// - `inserts`: new entries written to the map (one per filter insert),
/// - `updates`: existing entries rewritten because the filter moved or
///   re-encoded fingerprints (kicks, shifts, selector changes),
/// - `queries`: map reads needed to re-derive a fingerprint from its key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapStats {
    /// New reverse-map entries.
    pub inserts: u64,
    /// Rewrites of existing entries.
    pub updates: u64,
    /// Reads of existing entries.
    pub queries: u64,
}
