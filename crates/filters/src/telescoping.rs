//! Telescoping quotient filter (paper's "TQF", Lee et al. 2021),
//! fixed-width-selector variant.
//!
//! A quotient filter in which each fingerprint stores a small *hash
//! selector* alongside its remainder: selector `s` means the remainder is
//! the `s`-th `r`-bit window of the key's hash. Adapting a false positive
//! advances the selector and swaps in the next window — which requires the
//! original key, i.e. a reverse-map query.
//!
//! The TQF's reverse map is **location-keyed** (keys stored alongside
//! their fingerprints). Robin Hood shifting during inserts therefore moves
//! map entries too: every shifted slot is a map read + write. A shadow key
//! array models the map and [`MapStats`] counts that traffic — the source
//! of the TQF's insert slowdown in paper Fig. 5 / Table 2.
//!
//! Simplification vs the original: Lee et al. compress selectors with
//! arithmetic coding to ~0.6 bits/slot amortized; we store a fixed 2-bit
//! selector per slot (paper Table 1 shows the TQF paying a similar space
//! premium over the QF). Runs keep insertion order rather than remainder
//! order, since remainders change under adaptation.

use aqf::FilterError;
use aqf_bits::hash::HashSeq;
use aqf_bits::word::{bitmask, select_u64};
use aqf_bits::{BitVec, PackedVec};

use crate::common::{AdaptiveFilter, Adaptivity, AmqFilter, MapEvent, MapEventSource, MapStats};
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

const SELECTOR_BITS: u32 = 2;

/// Coordinates of a positive TQF query (for adaptation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TqfHit {
    /// Physical slot of the matched fingerprint.
    pub slot: usize,
}

/// A telescoping quotient filter.
#[derive(Clone, Debug)]
pub struct TelescopingFilter {
    occupieds: BitVec,
    runends: BitVec,
    used: BitVec,
    /// `(selector << rbits) | remainder` per slot.
    slots: PackedVec,
    /// Shadow location-keyed reverse map.
    keys: Vec<u64>,
    qbits: u32,
    rbits: u32,
    seed: u64,
    canonical: usize,
    total: usize,
    items: u64,
    stats: MapStats,
    adaptations: u64,
    record_events: bool,
    events: Vec<MapEvent>,
}

impl TelescopingFilter {
    /// `2^qbits` slots with `rbits`-bit remainders.
    pub fn new(qbits: u32, rbits: u32, seed: u64) -> Result<Self, FilterError> {
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 60 {
            return Err(FilterError::InvalidConfig("bad TQF geometry"));
        }
        let canonical = 1usize << qbits;
        let overflow = ((10.0 * (canonical as f64).sqrt()) as usize).max(64);
        let total = canonical + overflow;
        Ok(Self {
            occupieds: BitVec::new(total),
            runends: BitVec::new(total),
            used: BitVec::new(total),
            slots: PackedVec::new(total, rbits + SELECTOR_BITS),
            keys: vec![0; total],
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items: 0,
            stats: MapStats::default(),
            adaptations: 0,
            record_events: false,
            events: Vec::new(),
        })
    }

    /// Enable recording of reverse-map operations for system-level replay.
    pub fn set_event_recording(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Drain recorded reverse-map operations (in execution order).
    pub fn take_events(&mut self) -> Vec<MapEvent> {
        std::mem::take(&mut self.events)
    }

    #[inline]
    fn record(&mut self, e: MapEvent) {
        if self.record_events {
            self.events.push(e);
        }
    }

    /// Stored fingerprints.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Load factor.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / self.canonical as f64
    }

    /// Reverse-map traffic counters (paper Table 2).
    pub fn map_stats(&self) -> MapStats {
        self.stats
    }

    /// Number of adapt calls.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    #[inline]
    fn quotient(&self, key: u64) -> usize {
        HashSeq::new(key, self.seed).bits_msb(0, self.qbits) as usize
    }

    /// The `s`-th remainder window of `key`'s hash string.
    #[inline]
    fn window(&self, key: u64, s: u64) -> u64 {
        HashSeq::new(key, self.seed).bits_msb(self.qbits as u64 + s * self.rbits as u64, self.rbits)
    }

    #[inline]
    fn cluster_start(&self, x: usize) -> usize {
        match self.used.prev_zero(x) {
            Some(z) => z + 1,
            None => 0,
        }
    }

    fn select_runend_from(&self, from: usize, mut k: usize) -> Option<usize> {
        let nwords = self.total.div_ceil(64);
        let mut w = from >> 6;
        if w >= nwords {
            return None;
        }
        let mut word = self.runends.word(w) & !bitmask((from & 63) as u32);
        loop {
            let ones = word.count_ones() as usize;
            if k < ones {
                let pos = (w << 6) + select_u64(word, k as u32).unwrap() as usize;
                return (pos < self.total).then_some(pos);
            }
            k -= ones;
            w += 1;
            if w >= nwords {
                return None;
            }
            word = self.runends.word(w);
        }
    }

    fn run_range(&self, q: usize) -> (usize, usize) {
        let c = self.cluster_start(q);
        let t = self.occupieds.count_range(c, q + 1);
        let re = self.select_runend_from(c, t - 1).expect("occupied run");
        let rs = if t == 1 {
            c
        } else {
            self.select_runend_from(c, t - 2).expect("previous run") + 1
        };
        (rs, re)
    }

    /// Insert a slot, shifting; every shifted slot is a location-keyed map
    /// entry that must move with it (read + write).
    fn insert_slot_at(
        &mut self,
        pos: usize,
        value: u64,
        key: u64,
        runend: bool,
    ) -> Result<(), FilterError> {
        let fe = self.used.next_zero(pos).ok_or(FilterError::Full)?;
        if fe > pos {
            self.slots.shift_right_insert(pos, fe, value);
            self.runends.shift_right_insert(pos, fe, runend);
            // Shift the shadow map and charge the traffic.
            let shifted = (fe - pos) as u64;
            self.keys.copy_within(pos..fe, pos + 1);
            self.stats.queries += shifted;
            self.stats.updates += shifted;
            self.record(MapEvent::ShiftRange {
                start: pos,
                end: fe,
            });
        } else {
            self.slots.set(pos, value);
            self.runends.assign(pos, runend);
        }
        self.keys[pos] = key;
        self.record(MapEvent::Put { loc: pos, key });
        self.used.set(fe);
        Ok(())
    }

    /// Query returning the matched slot for adaptation.
    pub fn query_slot(&self, key: u64) -> Option<TqfHit> {
        let hq = self.quotient(key);
        if !self.occupieds.get(hq) {
            return None;
        }
        let (rs, re) = self.run_range(hq);
        for i in rs..=re {
            let v = self.slots.get(i);
            let sel = v >> self.rbits;
            let rem = v & bitmask(self.rbits);
            if self.window(key, sel) == rem {
                return Some(TqfHit { slot: i });
            }
        }
        None
    }

    /// The key the shadow map stores for a slot.
    pub fn stored_key(&self, hit: &TqfHit) -> u64 {
        self.keys[hit.slot]
    }

    /// Adapt after a confirmed false positive: advance the slot's selector
    /// and swap in the stored key's next hash window (a map query).
    /// Strongly adaptive while selectors last; the 2-bit selector wraps
    /// (the original telescopes further with arithmetic coding).
    pub fn adapt(&mut self, hit: &TqfHit) {
        let key = self.keys[hit.slot];
        self.stats.queries += 1;
        self.record(MapEvent::Get { loc: hit.slot });
        let v = self.slots.get(hit.slot);
        let sel = v >> self.rbits;
        let new_sel = (sel + 1) & bitmask(SELECTOR_BITS);
        let new_rem = self.window(key, new_sel);
        self.slots.set(hit.slot, (new_sel << self.rbits) | new_rem);
        self.adaptations += 1;
    }
}

impl SnapshotBody for TelescopingFilter {
    /// Serializes the table (selectors included) **and** the shadow key
    /// array its location-keyed reverse map lives in, so adaptation state
    /// survives the round trip. Pending event traces are not persisted.
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"TQCF");
        w.u32(self.qbits);
        w.u32(self.rbits);
        w.u64(self.seed);
        w.u64(self.canonical as u64);
        w.u64(self.total as u64);
        w.u64(self.items);
        w.u64(self.adaptations);
        w.u64(self.stats.inserts);
        w.u64(self.stats.updates);
        w.u64(self.stats.queries);
        w.section(*b"TQTB");
        w.bitvec(&self.occupieds);
        w.bitvec(&self.runends);
        w.bitvec(&self.used);
        w.packed(&self.slots);
        w.u64_slice(&self.keys);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"TQCF")?;
        let qbits = r.u32()?;
        let rbits = r.u32()?;
        let seed = r.u64()?;
        let canonical = r.len_u64()?;
        let total = r.len_u64()?;
        let items = r.u64()?;
        let adaptations = r.u64()?;
        let stats = MapStats {
            inserts: r.u64()?,
            updates: r.u64()?,
            queries: r.u64()?,
        };
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 60 {
            return Err(SnapError::corrupt("bad TQF geometry"));
        }
        if canonical != 1usize << qbits || total <= canonical {
            return Err(SnapError::corrupt(format!(
                "slot counts {canonical}/{total} disagree with qbits {qbits}"
            )));
        }
        r.section(*b"TQTB")?;
        let occupieds = r.bitvec()?;
        let runends = r.bitvec()?;
        let used = r.bitvec()?;
        let slots = r.packed()?;
        let keys = r.u64_vec()?;
        if occupieds.len() != total || runends.len() != total || used.len() != total {
            return Err(SnapError::corrupt(
                "metadata bit vectors disagree with slot count",
            ));
        }
        if slots.len() != total || slots.width() != rbits + SELECTOR_BITS {
            return Err(SnapError::corrupt("slot vector disagrees with geometry"));
        }
        if keys.len() != total {
            return Err(SnapError::corrupt(format!(
                "shadow key array holds {} slots, table has {total}",
                keys.len()
            )));
        }
        if used.count_ones() as u64 != items {
            return Err(SnapError::corrupt(format!(
                "item count {items} disagrees with {} used slots",
                used.count_ones()
            )));
        }
        Ok(Self {
            occupieds,
            runends,
            used,
            slots,
            keys,
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items,
            stats,
            adaptations,
            record_events: false,
            events: Vec::new(),
        })
    }
}

impl AmqFilter for TelescopingFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        let hq = self.quotient(key);
        let rem = self.window(key, 0);
        self.stats.inserts += 1;
        if !self.used.get(hq) {
            self.slots.set(hq, rem);
            self.runends.set(hq);
            self.used.set(hq);
            self.occupieds.set(hq);
            self.keys[hq] = key;
            self.record(MapEvent::Put { loc: hq, key });
            self.items += 1;
            return Ok(());
        }
        if !self.occupieds.get(hq) {
            let c = self.cluster_start(hq);
            let t = self.occupieds.count_range(c, hq + 1);
            let pe = self.select_runend_from(c, t - 1).expect("cluster has runs");
            self.insert_slot_at(pe + 1, rem, key, true)?;
            self.occupieds.set(hq);
            self.items += 1;
            return Ok(());
        }
        // Append at the end of the run (insertion order).
        let (_, re) = self.run_range(hq);
        self.insert_slot_at(re + 1, rem, key, true)?;
        self.runends.clear(re);
        self.items += 1;
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        self.query_slot(key).is_some()
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.occupieds.heap_size_bytes()
            + self.runends.heap_size_bytes()
            + self.used.heap_size_bytes()
            + self.slots.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "TQF"
    }

    fn capacity(&self) -> u64 {
        self.canonical as u64
    }

    fn load_factor(&self) -> f64 {
        TelescopingFilter::load_factor(self)
    }

    fn adaptivity(&self) -> Adaptivity {
        // Strongly adaptive while selectors last, but the fixed 2-bit
        // selector wraps, so fixes are not permanent in general.
        Adaptivity::Weak
    }
}

impl AdaptiveFilter for TelescopingFilter {
    type Hit = TqfHit;

    fn query_hit(&self, key: u64) -> Option<TqfHit> {
        self.query_slot(key)
    }

    fn store_key(&self, hit: &TqfHit) -> u64 {
        hit.slot as u64
    }

    fn hit_at(&self, store_key: u64) -> TqfHit {
        TqfHit {
            slot: store_key as usize,
        }
    }

    fn stored_key(&self, hit: &TqfHit) -> Option<u64> {
        Some(self.keys[hit.slot])
    }

    fn adapt(
        &mut self,
        hit: &TqfHit,
        _stored_key: u64,
        _query_key: u64,
    ) -> Result<u32, FilterError> {
        // The TQF swaps in the stored key's next hash window from its
        // internal shadow map; the caller-resolved keys are not needed.
        TelescopingFilter::adapt(self, hit);
        Ok(1)
    }
}

impl MapEventSource for TelescopingFilter {
    fn set_event_recording(&mut self, on: bool) {
        TelescopingFilter::set_event_recording(self, on);
    }

    fn take_events(&mut self) -> Vec<MapEvent> {
        TelescopingFilter::take_events(self)
    }

    fn map_stats(&self) -> MapStats {
        TelescopingFilter::map_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn no_false_negatives() {
        let mut f = TelescopingFilter::new(10, 9, 3).unwrap();
        let keys: Vec<u64> = (0..900).map(|i| i * 101 + 7).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn adapt_changes_remainder_and_fixes_fp() {
        let mut f = TelescopingFilter::new(11, 7, 5).unwrap();
        for k in 0..1800u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut fixed = 0;
        let mut tries = 0;
        while fixed < 40 && tries < 2_000_000 {
            tries += 1;
            let probe: u64 = rng.random_range(1_000_000..u64::MAX);
            if let Some(hit) = f.query_slot(probe) {
                if f.stored_key(&hit) == probe {
                    continue;
                }
                let mut guard = 0;
                while let Some(h) = f.query_slot(probe) {
                    f.adapt(&h);
                    guard += 1;
                    if guard > 8 {
                        break;
                    }
                }
                if f.query_slot(probe).is_none() {
                    fixed += 1;
                }
            }
        }
        assert!(fixed >= 40);
        // Members survive adaptation.
        for k in (0..1800u64).step_by(23) {
            assert!(f.contains(k), "member {k} lost");
        }
    }

    #[test]
    fn shifting_charges_map_updates() {
        let mut f = TelescopingFilter::new(8, 9, 1).unwrap();
        for k in 0..230u64 {
            f.insert(k).unwrap();
        }
        let st = f.map_stats();
        assert_eq!(st.inserts, 230);
        assert!(st.updates > 0, "90% load must shift and charge updates");
    }
}
