//! Cuckoo filter baseline (paper's "CF", Fan et al. 2014).
//!
//! Partial-key cuckoo hashing: 4-slot buckets, `tag_bits`-bit tags, the
//! alternate bucket computed as `b ^ hash(tag)` so relocation never needs
//! the original key. Tag 0 is reserved as "empty" (tags are offset by 1 on
//! a collision with 0, the standard trick).

use aqf::FilterError;
use aqf_bits::hash::mix64;
use aqf_bits::PackedVec;

use crate::common::AmqFilter;
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// Slots per bucket (the paper's configuration).
pub const BUCKET_SLOTS: usize = 4;
const MAX_KICKS: usize = 500;

/// A cuckoo filter.
#[derive(Clone, Debug)]
pub struct CuckooFilter {
    table: PackedVec,
    /// Number of buckets (kept for diagnostics / load-factor math).
    buckets: usize,
    bucket_bits: u32,
    tag_bits: u32,
    seed: u64,
    items: u64,
}

impl CuckooFilter {
    /// `2^bucket_bits` buckets of 4 slots, `tag_bits`-bit tags — the paper
    /// uses 12-bit tags for an ε of 2^-9 (≈ 8·2^-12).
    pub fn new(bucket_bits: u32, tag_bits: u32, seed: u64) -> Result<Self, FilterError> {
        if bucket_bits == 0 || bucket_bits > 32 || !(4..=32).contains(&tag_bits) {
            return Err(FilterError::InvalidConfig("bad cuckoo filter geometry"));
        }
        let buckets = 1usize << bucket_bits;
        Ok(Self {
            table: PackedVec::new(buckets * BUCKET_SLOTS, tag_bits),
            buckets,
            bucket_bits,
            tag_bits,
            seed,
            items: 0,
        })
    }

    /// Convenience: capacity for `n` items at 90% load with ~2^-9 ε
    /// (12-bit tags).
    pub fn for_capacity(n: usize, seed: u64) -> Result<Self, FilterError> {
        let buckets = (n as f64 / 0.9 / BUCKET_SLOTS as f64).ceil().max(1.0) as usize;
        let bucket_bits = buckets.next_power_of_two().trailing_zeros().max(1);
        Self::new(bucket_bits, 12, seed)
    }

    /// Number of stored tags.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Load factor over all slots.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / (self.buckets * BUCKET_SLOTS) as f64
    }

    #[inline]
    fn tag(&self, key: u64) -> u64 {
        let t = mix64(key, self.seed ^ 0x0074_6167) & aqf_bits::word::bitmask(self.tag_bits);
        if t == 0 {
            1
        } else {
            t
        }
    }

    #[inline]
    fn bucket1(&self, key: u64) -> usize {
        (mix64(key, self.seed) >> (64 - self.bucket_bits)) as usize
    }

    #[inline]
    fn alt_bucket(&self, b: usize, tag: u64) -> usize {
        (b ^ (mix64(tag, self.seed ^ 0x0061_6c74) as usize)) & (self.buckets - 1)
    }

    fn bucket_slot(&self, b: usize, s: usize) -> u64 {
        self.table.get(b * BUCKET_SLOTS + s)
    }

    fn set_bucket_slot(&mut self, b: usize, s: usize, tag: u64) {
        self.table.set(b * BUCKET_SLOTS + s, tag);
    }

    fn try_place(&mut self, b: usize, tag: u64) -> bool {
        for s in 0..BUCKET_SLOTS {
            if self.bucket_slot(b, s) == 0 {
                self.set_bucket_slot(b, s, tag);
                return true;
            }
        }
        false
    }

    /// Insert a raw tag with kicks; exposed for the ACF which shares the
    /// relocation machinery.
    pub(crate) fn insert_tag(
        &mut self,
        b1: usize,
        tag: u64,
        mut on_kick: impl FnMut(usize, usize),
    ) -> Result<(), FilterError> {
        let b2 = self.alt_bucket(b1, tag);
        if self.try_place(b1, tag) || self.try_place(b2, tag) {
            self.items += 1;
            return Ok(());
        }
        // Kick loop.
        let mut b = if (mix64(tag, 0xdead) & 1) == 0 {
            b1
        } else {
            b2
        };
        let mut cur = tag;
        for kick in 0..MAX_KICKS {
            let victim_slot =
                (mix64(cur.wrapping_add(kick as u64), 0xbeef) as usize) % BUCKET_SLOTS;
            let victim = self.bucket_slot(b, victim_slot);
            self.set_bucket_slot(b, victim_slot, cur);
            on_kick(b, victim_slot);
            cur = victim;
            b = self.alt_bucket(b, cur);
            if self.try_place(b, cur) {
                self.items += 1;
                return Ok(());
            }
        }
        Err(FilterError::Full)
    }

    /// Delete one copy of `key`'s tag. Returns true if found.
    pub fn delete(&mut self, key: u64) -> bool {
        let tag = self.tag(key);
        let b1 = self.bucket1(key);
        let b2 = self.alt_bucket(b1, tag);
        for &b in &[b1, b2] {
            for s in 0..BUCKET_SLOTS {
                if self.bucket_slot(b, s) == tag {
                    self.set_bucket_slot(b, s, 0);
                    self.items -= 1;
                    return true;
                }
            }
        }
        false
    }
}

impl SnapshotBody for CuckooFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"CFCF");
        w.u32(self.bucket_bits);
        w.u32(self.tag_bits);
        w.u64(self.seed);
        w.u64(self.items);
        w.section(*b"CFTB");
        w.packed(&self.table);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"CFCF")?;
        let bucket_bits = r.u32()?;
        let tag_bits = r.u32()?;
        let seed = r.u64()?;
        let items = r.u64()?;
        if bucket_bits == 0 || bucket_bits > 32 || !(4..=32).contains(&tag_bits) {
            return Err(SnapError::corrupt("bad cuckoo filter geometry"));
        }
        let buckets = 1usize << bucket_bits;
        r.section(*b"CFTB")?;
        let table = r.packed()?;
        if table.len() != buckets * BUCKET_SLOTS || table.width() != tag_bits {
            return Err(SnapError::corrupt("cuckoo table disagrees with geometry"));
        }
        let occupied = (0..table.len()).filter(|&i| table.get(i) != 0).count() as u64;
        if occupied != items {
            return Err(SnapError::corrupt(format!(
                "item count {items} disagrees with {occupied} occupied slots"
            )));
        }
        Ok(Self {
            table,
            buckets,
            bucket_bits,
            tag_bits,
            seed,
            items,
        })
    }
}

impl AmqFilter for CuckooFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        let tag = self.tag(key);
        let b1 = self.bucket1(key);
        self.insert_tag(b1, tag, |_, _| {})
    }

    fn contains(&self, key: u64) -> bool {
        let tag = self.tag(key);
        let b1 = self.bucket1(key);
        let b2 = self.alt_bucket(b1, tag);
        for &b in &[b1, b2] {
            for s in 0..BUCKET_SLOTS {
                if self.bucket_slot(b, s) == tag {
                    return true;
                }
            }
        }
        false
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.table.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "CF"
    }

    fn capacity(&self) -> u64 {
        (self.buckets * BUCKET_SLOTS) as u64
    }

    fn load_factor(&self) -> f64 {
        CuckooFilter::load_factor(self)
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        Ok(CuckooFilter::delete(self, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn no_false_negatives() {
        let mut f = CuckooFilter::new(10, 12, 5).unwrap();
        let keys: Vec<u64> = (0..3600).map(|i| i * 31 + 1).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn delete_removes_membership_mostly() {
        let mut f = CuckooFilter::new(10, 12, 5).unwrap();
        for k in 0..1000u64 {
            f.insert(k).unwrap();
        }
        for k in 0..1000u64 {
            assert!(f.delete(k), "delete {k}");
        }
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn fpr_roughly_matches_theory() {
        let mut f = CuckooFilter::new(12, 12, 9).unwrap();
        for k in 0..14_000u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(4);
        let probes = 200_000;
        let fps = (0..probes)
            .filter(|_| f.contains(rng.random_range(1_000_000..u64::MAX)))
            .count();
        let fpr = fps as f64 / probes as f64;
        // Theory: ~ 2·4·α / 2^12 ≈ 0.0017 at α≈0.85.
        assert!(fpr < 0.006, "fpr {fpr}");
    }

    #[test]
    fn fills_to_high_load_before_full() {
        let mut f = CuckooFilter::new(8, 12, 1).unwrap();
        let mut n = 0u64;
        for k in 0..10_000u64 {
            if f.insert(k).is_err() {
                break;
            }
            n += 1;
        }
        assert!(
            n as f64 / 1024.0 > 0.9,
            "cuckoo should reach >90% load, got {n}"
        );
    }
}
