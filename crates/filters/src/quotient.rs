//! Non-adaptive quotient filter baseline (paper's "QF", Pandey et al.).
//!
//! Same Robin Hood layout as the AdaptiveQF minus adaptivity: one slot per
//! fingerprint, metadata bits `occupieds`/`runends`/`used`, remainders
//! sorted within runs. No extensions, no counters — the baseline the paper
//! measures adaptivity overhead against.

use aqf::FilterError;
use aqf_bits::hash::HashSeq;
use aqf_bits::word::{bitmask, select_u64};
use aqf_bits::{BitVec, PackedVec};

use crate::common::AmqFilter;
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// A plain (non-adaptive) quotient filter.
#[derive(Clone, Debug)]
pub struct QuotientFilter {
    occupieds: BitVec,
    runends: BitVec,
    used: BitVec,
    slots: PackedVec,
    qbits: u32,
    rbits: u32,
    seed: u64,
    canonical: usize,
    total: usize,
    items: u64,
}

impl QuotientFilter {
    /// `2^qbits` slots, `rbits`-bit remainders (ε ≈ 2^-rbits).
    pub fn new(qbits: u32, rbits: u32, seed: u64) -> Result<Self, FilterError> {
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 64 {
            return Err(FilterError::InvalidConfig("bad quotient filter geometry"));
        }
        let canonical = 1usize << qbits;
        let overflow = ((10.0 * (canonical as f64).sqrt()) as usize).max(64);
        let total = canonical + overflow;
        Ok(Self {
            occupieds: BitVec::new(total),
            runends: BitVec::new(total),
            used: BitVec::new(total),
            slots: PackedVec::new(total, rbits),
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items: 0,
        })
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Load factor: used slots / canonical slots.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / self.canonical as f64
    }

    #[inline]
    fn split(&self, key: u64) -> (usize, u64) {
        let h = HashSeq::new(key, self.seed);
        let q = h.bits_msb(0, self.qbits) as usize;
        let r = h.bits_msb(self.qbits as u64, self.rbits);
        (q, r)
    }

    #[inline]
    fn cluster_start(&self, x: usize) -> usize {
        match self.used.prev_zero(x) {
            Some(z) => z + 1,
            None => 0,
        }
    }

    fn select_runend_from(&self, from: usize, mut k: usize) -> Option<usize> {
        let nwords = self.total.div_ceil(64);
        let mut w = from >> 6;
        if w >= nwords {
            return None;
        }
        let mut word = self.runends.word(w) & !bitmask((from & 63) as u32);
        loop {
            let ones = word.count_ones() as usize;
            if k < ones {
                let pos = (w << 6) + select_u64(word, k as u32).unwrap() as usize;
                return (pos < self.total).then_some(pos);
            }
            k -= ones;
            w += 1;
            if w >= nwords {
                return None;
            }
            word = self.runends.word(w);
        }
    }

    /// Run of occupied quotient `q` as `(start, end)` inclusive.
    fn run_range(&self, q: usize) -> (usize, usize) {
        let c = self.cluster_start(q);
        let t = self.occupieds.count_range(c, q + 1);
        let re = self
            .select_runend_from(c, t - 1)
            .expect("occupied run exists");
        let rs = if t == 1 {
            c
        } else {
            self.select_runend_from(c, t - 2)
                .expect("previous run exists")
                + 1
        };
        (rs, re)
    }

    fn insert_slot_at(&mut self, pos: usize, rem: u64, runend: bool) -> Result<(), FilterError> {
        let fe = self.used.next_zero(pos).ok_or(FilterError::Full)?;
        if fe > pos {
            self.slots.shift_right_insert(pos, fe, rem);
            self.runends.shift_right_insert(pos, fe, runend);
        } else {
            self.slots.set(pos, rem);
            self.runends.assign(pos, runend);
        }
        self.used.set(fe);
        Ok(())
    }
}

impl SnapshotBody for QuotientFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"QFCF");
        w.u32(self.qbits);
        w.u32(self.rbits);
        w.u64(self.seed);
        w.u64(self.canonical as u64);
        w.u64(self.total as u64);
        w.u64(self.items);
        w.section(*b"QFTB");
        w.bitvec(&self.occupieds);
        w.bitvec(&self.runends);
        w.bitvec(&self.used);
        w.packed(&self.slots);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"QFCF")?;
        let qbits = r.u32()?;
        let rbits = r.u32()?;
        let seed = r.u64()?;
        let canonical = r.len_u64()?;
        let total = r.len_u64()?;
        let items = r.u64()?;
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 64 {
            return Err(SnapError::corrupt("bad quotient filter geometry"));
        }
        if canonical != 1usize << qbits || total <= canonical {
            return Err(SnapError::corrupt(format!(
                "slot counts {canonical}/{total} disagree with qbits {qbits}"
            )));
        }
        r.section(*b"QFTB")?;
        let occupieds = r.bitvec()?;
        let runends = r.bitvec()?;
        let used = r.bitvec()?;
        let slots = r.packed()?;
        if occupieds.len() != total || runends.len() != total || used.len() != total {
            return Err(SnapError::corrupt(
                "metadata bit vectors disagree with slot count",
            ));
        }
        if slots.len() != total || slots.width() != rbits {
            return Err(SnapError::corrupt("slot vector disagrees with geometry"));
        }
        if used.count_ones() as u64 != items {
            return Err(SnapError::corrupt(format!(
                "item count {items} disagrees with {} used slots",
                used.count_ones()
            )));
        }
        if occupieds.count_ones() != runends.count_ones() {
            return Err(SnapError::corrupt(
                "occupied quotients and runends disagree",
            ));
        }
        Ok(Self {
            occupieds,
            runends,
            used,
            slots,
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items,
        })
    }
}

impl AmqFilter for QuotientFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        let (hq, hr) = self.split(key);
        if !self.used.get(hq) {
            self.slots.set(hq, hr);
            self.runends.set(hq);
            self.used.set(hq);
            self.occupieds.set(hq);
            self.items += 1;
            return Ok(());
        }
        if !self.occupieds.get(hq) {
            // New run after the previous quotient's runend.
            let c = self.cluster_start(hq);
            let t = self.occupieds.count_range(c, hq + 1);
            let pe = self.select_runend_from(c, t - 1).expect("cluster has runs");
            self.insert_slot_at(pe + 1, hr, true)?;
            self.occupieds.set(hq);
            self.items += 1;
            return Ok(());
        }
        let (rs, re) = self.run_range(hq);
        // Keep remainders sorted within the run.
        let mut pos = rs;
        while pos <= re && self.slots.get(pos) < hr {
            pos += 1;
        }
        if pos > re {
            // New largest: append, moving the runend bit.
            self.insert_slot_at(re + 1, hr, true)?;
            self.runends.clear(re);
        } else {
            self.insert_slot_at(pos, hr, false)?;
        }
        self.items += 1;
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        let (hq, hr) = self.split(key);
        if !self.occupieds.get(hq) {
            return false;
        }
        let (rs, re) = self.run_range(hq);
        for i in rs..=re {
            let r = self.slots.get(i);
            if r == hr {
                return true;
            }
            if r > hr {
                return false;
            }
        }
        false
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.occupieds.heap_size_bytes()
            + self.runends.heap_size_bytes()
            + self.used.heap_size_bytes()
            + self.slots.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "QF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn insert_and_query_no_false_negatives() {
        let mut f = QuotientFilter::new(10, 9, 7).unwrap();
        let keys: Vec<u64> = (0..900).map(|i| i * 7919).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn fpr_close_to_two_to_minus_r() {
        let mut f = QuotientFilter::new(12, 9, 3).unwrap();
        for k in 0..3700u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut fps = 0usize;
        let probes = 200_000;
        for _ in 0..probes {
            let k: u64 = rng.random_range(1_000_000..u64::MAX);
            if f.contains(k) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / probes as f64;
        let expect = 3700.0 / 4096.0 / 512.0; // α · 2^-r
        assert!(
            fpr < expect * 3.0 + 1e-4,
            "fpr {fpr:.6} vs expected ~{expect:.6}"
        );
    }

    #[test]
    fn heavy_collisions_small_geometry() {
        let mut f = QuotientFilter::new(5, 3, 11).unwrap();
        let mut stored = Vec::new();
        for k in 0..1000u64 {
            match f.insert(k) {
                Ok(()) => stored.push(k),
                Err(FilterError::Full) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(
            stored.len() >= 30,
            "should fit at least the canonical slots"
        );
        for &k in &stored {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn fill_reports_full() {
        let mut f = QuotientFilter::new(5, 4, 2).unwrap();
        let mut full_seen = false;
        for k in 0..10_000u64 {
            if f.insert(k).is_err() {
                full_seen = true;
                break;
            }
        }
        assert!(full_seen);
    }
}
