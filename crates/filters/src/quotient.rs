//! Non-adaptive quotient filter baseline (paper's "QF", Pandey et al.).
//!
//! Same Robin Hood semantics as the AdaptiveQF minus adaptivity: one slot
//! per fingerprint, metadata bits `occupieds`/`runends`/`used`, remainders
//! sorted within runs. No extensions, no counters — the baseline the paper
//! measures adaptivity overhead against.
//!
//! Storage uses the same blocked, offset-indexed layout as the AQF
//! (`aqf_bits::BlockedTable`, PR 5) so figure-level comparisons stay
//! apples-to-apples: run location is O(1) block-offset arithmetic here
//! too, and lookups use the word-parallel remainder compare. Snapshots
//! keep the original v1 section format (split bit vectors); offsets are
//! rebuilt on load.

use aqf::FilterError;
use aqf_bits::hash::HashSeq;
use aqf_bits::word::bitmask;
use aqf_bits::BlockedTable;

use crate::common::AmqFilter;
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

const OCC: u32 = 0;
const RUN: u32 = 1;
const USED: u32 = 2;
const LANES: u32 = 3;

/// A plain (non-adaptive) quotient filter.
#[derive(Clone, Debug)]
pub struct QuotientFilter {
    t: BlockedTable,
    qbits: u32,
    rbits: u32,
    seed: u64,
    canonical: usize,
    total: usize,
    items: u64,
}

impl QuotientFilter {
    /// `2^qbits` slots, `rbits`-bit remainders (ε ≈ 2^-rbits).
    pub fn new(qbits: u32, rbits: u32, seed: u64) -> Result<Self, FilterError> {
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 64 {
            return Err(FilterError::InvalidConfig("bad quotient filter geometry"));
        }
        let canonical = 1usize << qbits;
        let overflow = ((10.0 * (canonical as f64).sqrt()) as usize).max(64);
        let total = canonical + overflow;
        Ok(Self {
            t: BlockedTable::new(total, LANES, rbits),
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items: 0,
        })
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Load factor: used slots / canonical slots.
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / self.canonical as f64
    }

    #[inline]
    fn split(&self, key: u64) -> (usize, u64) {
        let h = HashSeq::new(key, self.seed);
        let q = h.bits_msb(0, self.qbits) as usize;
        let r = h.bits_msb(self.qbits as u64, self.rbits);
        (q, r)
    }

    #[inline]
    fn select_runend_from(&self, from: usize, k: usize) -> Option<usize> {
        self.t.select_lane_from(RUN, from, k, |_, _, w| w)
    }

    /// Run of occupied quotient `q` as `(start, end)` inclusive — O(1)
    /// through the block offset, exactly like `aqf`'s `Table::run_range`
    /// (runends need no extension masking here).
    fn run_range(&self, q: usize) -> (usize, usize) {
        let (from, d) = self.t.run_nav_start(OCC, q);
        let re = self
            .select_runend_from(from, d)
            .expect("occupied run exists");
        let rs = if d == 0 {
            from.max(q)
        } else {
            let pe = self
                .select_runend_from(from, d - 1)
                .expect("previous run exists");
            (pe + 1).max(q)
        };
        (rs, re)
    }

    fn insert_slot_at(
        &mut self,
        q: usize,
        pos: usize,
        rem: u64,
        runend: bool,
    ) -> Result<(), FilterError> {
        let fe = self.t.next_zero(USED, pos).ok_or(FilterError::Full)?;
        if fe > pos {
            self.t.shift_right_insert_slot(pos, fe, rem);
            self.t.shift_right_insert(RUN, pos, fe, runend);
        } else {
            self.t.set_slot(pos, rem);
            self.t.assign(RUN, pos, runend);
        }
        self.t.set(USED, fe);
        if fe >> 6 > q >> 6 {
            self.t.inc_offsets((q >> 6) + 1, fe >> 6);
        }
        Ok(())
    }

    /// Rebuild every block offset in one sweep (snapshot decode).
    fn rebuild_offsets(&mut self) {
        self.t.clear_offsets();
        let mut blk = 1usize;
        let nblocks = self.t.blocks();
        let mut last: Option<(usize, usize)> = None;
        let mut i = 0usize;
        while i < self.total {
            let Some(c) = self.t.next_one(USED, i) else {
                break;
            };
            let ce = self.t.next_zero(USED, c).unwrap_or(self.total);
            let mut q = c;
            let mut cursor = c;
            while cursor < ce {
                q = self
                    .t
                    .next_one(OCC, q)
                    .expect("used slots imply a further occupied quotient");
                cursor = self
                    .t
                    .select_lane_from(RUN, cursor, 0, |_, _, w| w)
                    .expect("every run has a runend")
                    + 1;
                while blk < nblocks && (blk << 6) <= q {
                    let base = blk << 6;
                    self.t
                        .set_offset(blk, last.map_or(0, |(_, e)| e.saturating_sub(base)));
                    blk += 1;
                }
                last = Some((q, cursor));
                q += 1;
            }
            i = ce;
        }
        while blk < nblocks {
            let base = blk << 6;
            self.t
                .set_offset(blk, last.map_or(0, |(_, e)| e.saturating_sub(base)));
            blk += 1;
        }
    }
}

impl SnapshotBody for QuotientFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"QFCF");
        w.u32(self.qbits);
        w.u32(self.rbits);
        w.u64(self.seed);
        w.u64(self.canonical as u64);
        w.u64(self.total as u64);
        w.u64(self.items);
        // The v1 split-bit-vector section layout, independent of the
        // in-memory block interleaving, so old QF frames keep loading.
        w.section(*b"QFTB");
        w.bitvec(&self.t.lane_to_bitvec(OCC));
        w.bitvec(&self.t.lane_to_bitvec(RUN));
        w.bitvec(&self.t.lane_to_bitvec(USED));
        w.packed(&self.t.slots_to_packed());
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"QFCF")?;
        let qbits = r.u32()?;
        let rbits = r.u32()?;
        let seed = r.u64()?;
        let canonical = r.len_u64()?;
        let total = r.len_u64()?;
        let items = r.u64()?;
        if qbits == 0 || qbits > 40 || rbits == 0 || qbits + rbits > 64 {
            return Err(SnapError::corrupt("bad quotient filter geometry"));
        }
        if canonical != 1usize << qbits || total <= canonical {
            return Err(SnapError::corrupt(format!(
                "slot counts {canonical}/{total} disagree with qbits {qbits}"
            )));
        }
        r.section(*b"QFTB")?;
        let occupieds = r.bitvec()?;
        let runends = r.bitvec()?;
        let used = r.bitvec()?;
        let slots = r.packed()?;
        if occupieds.len() != total || runends.len() != total || used.len() != total {
            return Err(SnapError::corrupt(
                "metadata bit vectors disagree with slot count",
            ));
        }
        if slots.len() != total || slots.width() != rbits {
            return Err(SnapError::corrupt("slot vector disagrees with geometry"));
        }
        if used.count_ones() as u64 != items {
            return Err(SnapError::corrupt(format!(
                "item count {items} disagrees with {} used slots",
                used.count_ones()
            )));
        }
        if occupieds.count_ones() != runends.count_ones() {
            return Err(SnapError::corrupt(
                "occupied quotients and runends disagree",
            ));
        }
        let t = BlockedTable::from_parts(&[&occupieds, &runends, &used], &slots, total)
            .expect("lengths checked above");
        let mut f = Self {
            t,
            qbits,
            rbits,
            seed,
            canonical,
            total,
            items,
        };
        f.rebuild_offsets();
        Ok(f)
    }
}

impl AmqFilter for QuotientFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        let (hq, hr) = self.split(key);
        if !self.t.get(USED, hq) {
            self.t.set_slot(hq, hr);
            self.t.set(RUN, hq);
            self.t.set(USED, hq);
            self.t.set(OCC, hq);
            self.items += 1;
            return Ok(());
        }
        if !self.t.get(OCC, hq) {
            // New run one past the pending run's end (O(1) via offsets).
            let (from, d) = self.t.run_nav_start(OCC, hq);
            let pos = if d == 0 {
                from
            } else {
                self.select_runend_from(from, d - 1)
                    .expect("cluster has runs")
                    + 1
            };
            debug_assert!(pos > hq);
            self.insert_slot_at(hq, pos, hr, true)?;
            self.t.set(OCC, hq);
            self.items += 1;
            return Ok(());
        }
        let (rs, re) = self.run_range(hq);
        // Keep remainders sorted within the run.
        let mut pos = rs;
        while pos <= re && self.t.slot(pos) < hr {
            pos += 1;
        }
        if pos > re {
            // New largest: append, moving the runend bit.
            self.insert_slot_at(hq, re + 1, hr, true)?;
            self.t.clear(RUN, re);
        } else {
            self.insert_slot_at(hq, pos, hr, false)?;
        }
        self.items += 1;
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        let (hq, hr) = self.split(key);
        if !self.t.get(OCC, hq) {
            return false;
        }
        let (rs, re) = self.run_range(hq);
        // Word-parallel compare: every slot of a QF run is a remainder.
        self.t
            .find_slot_eq_masked(rs, re, hr, bitmask(self.rbits))
            .is_some()
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.t.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "QF"
    }

    fn capacity(&self) -> u64 {
        self.canonical as u64
    }

    fn load_factor(&self) -> f64 {
        QuotientFilter::load_factor(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn insert_and_query_no_false_negatives() {
        let mut f = QuotientFilter::new(10, 9, 7).unwrap();
        let keys: Vec<u64> = (0..900).map(|i| i * 7919).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn fpr_close_to_two_to_minus_r() {
        let mut f = QuotientFilter::new(12, 9, 3).unwrap();
        for k in 0..3700u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut fps = 0usize;
        let probes = 200_000;
        for _ in 0..probes {
            let k: u64 = rng.random_range(1_000_000..u64::MAX);
            if f.contains(k) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / probes as f64;
        let expect = 3700.0 / 4096.0 / 512.0; // α · 2^-r
        assert!(
            fpr < expect * 3.0 + 1e-4,
            "fpr {fpr:.6} vs expected ~{expect:.6}"
        );
    }

    #[test]
    fn heavy_collisions_small_geometry() {
        let mut f = QuotientFilter::new(5, 3, 11).unwrap();
        let mut stored = Vec::new();
        for k in 0..1000u64 {
            match f.insert(k) {
                Ok(()) => stored.push(k),
                Err(FilterError::Full) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(
            stored.len() >= 30,
            "should fit at least the canonical slots"
        );
        for &k in &stored {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn fill_reports_full() {
        let mut f = QuotientFilter::new(5, 4, 2).unwrap();
        let mut full_seen = false;
        for k in 0..10_000u64 {
            if f.insert(k).is_err() {
                full_seen = true;
                break;
            }
        }
        assert!(full_seen);
    }

    /// Offsets must equal their structural definition after arbitrary
    /// insert histories (mirrors the AQF checker's offset sweep).
    #[test]
    fn offsets_match_structural_definition() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut f = QuotientFilter::new(8, 5, 4).unwrap();
        for step in 0..230u64 {
            let k: u64 = rng.random_range(0..u64::MAX);
            if f.insert(k).is_err() {
                break;
            }
            if step % 16 != 0 {
                continue;
            }
            // Structural offsets via a scan, like the pre-PR5 navigation.
            for blk in 0..f.t.blocks() {
                let base = blk << 6;
                let expect = if base == 0 || !f.t.get(USED, base - 1) {
                    0
                } else {
                    let c = match f.t.prev_zero(USED, base - 1) {
                        Some(z) => z + 1,
                        None => 0,
                    };
                    let t = f.t.count_range(OCC, c, base);
                    let re = f
                        .select_runend_from(c, t - 1)
                        .expect("cluster has a runend");
                    (re + 1).saturating_sub(base)
                };
                assert_eq!(f.t.offset(blk), expect, "step {step} block {blk}");
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_rebuilds_offsets() {
        let mut f = QuotientFilter::new(9, 7, 5).unwrap();
        for k in 0..400u64 {
            f.insert(k * 2654435761).unwrap();
        }
        let mut w = SnapshotWriter::new("qf-test");
        f.write_snapshot_body(&mut w).unwrap();
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let g = QuotientFilter::read_snapshot_body(&mut r).unwrap();
        assert_eq!(g.len(), f.len());
        for blk in 0..f.t.blocks() {
            assert_eq!(g.t.offset(blk), f.t.offset(blk), "block {blk}");
        }
        for k in 0..400u64 {
            assert!(g.contains(k * 2654435761));
        }
        for k in 0..4000u64 {
            assert_eq!(
                f.contains(k * 7919 + 13),
                g.contains(k * 7919 + 13),
                "probe {k}"
            );
        }
    }
}
