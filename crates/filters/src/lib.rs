//! Baseline filters for the AdaptiveQF evaluation (paper §6):
//!
//! | Type | Paper role | Adaptive? |
//! |------|-----------|-----------|
//! | [`QuotientFilter`] | QF baseline (Pandey et al.) | no |
//! | [`CuckooFilter`] | CF baseline (Fan et al.) | no |
//! | [`AdaptiveCuckooFilter`] | ACF (Mitzenmacher et al.) | weakly |
//! | [`TelescopingFilter`] | TQF (Lee et al.) | strongly |
//! | [`BloomFilter`] | classic baseline | no |
//! | [`CascadingBloomFilter`] | CRLite-style yes/no lists | static |
//!
//! The adaptive baselines (ACF, TQF) carry an internal *shadow key store*
//! standing in for the reverse map, exactly like the paper's
//! microbenchmarks ("we pick valid arbitrary keys that will suffice in
//! order to simulate having the reverse map present"), plus
//! [`MapStats`] counters recording how often a real on-disk reverse map
//! would have been inserted into / updated / queried — the quantities
//! Table 2 reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod bloom;
pub mod cascading;
pub mod common;
pub mod cuckoo;
pub mod quotient;
pub mod telescoping;

pub use acf::AdaptiveCuckooFilter;
pub use bloom::BloomFilter;
pub use cascading::CascadingBloomFilter;
pub use common::{Filter, MapEvent, MapStats};
pub use cuckoo::CuckooFilter;
pub use quotient::QuotientFilter;
pub use telescoping::TelescopingFilter;
