//! Filters for the AdaptiveQF evaluation (paper §6), unified behind one
//! trait hierarchy:
//!
//! - [`AmqFilter`] — base approximate-membership interface, implemented
//!   by **every** filter here and by the `aqf` crate's
//!   [`AdaptiveQf`](aqf::AdaptiveQf), [`ShardedAqf`](aqf::ShardedAqf),
//!   and [`YesNoFilter`](aqf::YesNoFilter) (see [`mod@aqf_impls`]).
//! - [`AdaptiveFilter`] — query-side adaptation: positive queries yield a
//!   typed hit that can be fed back after the store refutes the match.
//! - [`DynFilter`] — the object-safe layer over both, with a system-mode
//!   protocol `aqf-storage`'s `FilteredDb` drives.
//! - [`registry`] — string-keyed construction
//!   ([`FilterSpec`] → `Box<dyn DynFilter>`) behind every benchmark
//!   binary's `--filter=<kind>` flag.
//!
//! | Type | Paper role | Adaptive? |
//! |------|-----------|-----------|
//! | [`QuotientFilter`] | QF baseline (Pandey et al.) | no |
//! | [`CuckooFilter`] | CF baseline (Fan et al.) | no |
//! | [`AdaptiveCuckooFilter`] | ACF (Mitzenmacher et al.) | weakly |
//! | [`TelescopingFilter`] | TQF (Lee et al.) | weakly |
//! | [`BloomFilter`] | classic baseline | no |
//! | [`CascadingBloomFilter`] | CRLite-style yes/no lists | static |
//!
//! The adaptive baselines (ACF, TQF) carry an internal *shadow key store*
//! standing in for the reverse map, exactly like the paper's
//! microbenchmarks ("we pick valid arbitrary keys that will suffice in
//! order to simulate having the reverse map present"), plus
//! [`MapStats`] counters recording how often a real on-disk reverse map
//! would have been inserted into / updated / queried — the quantities
//! Table 2 reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod aqf_impls;
pub mod bloom;
pub mod cascading;
pub mod common;
pub mod cuckoo;
pub mod dynfilter;
pub mod quotient;
pub mod registry;
pub mod snapshot;
pub mod telescoping;

pub use acf::AdaptiveCuckooFilter;
pub use aqf_impls::ShardedHit;
pub use bloom::BloomFilter;
pub use cascading::CascadingBloomFilter;
pub use common::{
    AdaptiveFilter, Adaptivity, AmqFilter, FilterError, MapEvent, MapEventSource, MapStats,
};
pub use cuckoo::CuckooFilter;
pub use dynfilter::{
    AqfDyn, DeletePlan, DynFilter, InsertPlan, Keying, LocDyn, PlainDyn, ShardedAqfDyn,
};
pub use quotient::QuotientFilter;
pub use registry::FilterSpec;
pub use snapshot::{SnapError, SnapshotBody};
pub use telescoping::TelescopingFilter;
