//! Object-safe filter layer: one `Box<dyn DynFilter>` type that any
//! filter — adaptive or not, internal or external reverse map — hides
//! behind, so benchmarks and the storage system dispatch dynamically
//! instead of matching on closed enums.
//!
//! [`DynFilter`] folds the two trait levels ([`AmqFilter`],
//! [`AdaptiveFilter`]) into one dynamic interface with two usage modes:
//!
//! - **Standalone** (benchmarks): [`DynFilter::query_adapting`] resolves
//!   reported false positives through the filter's own shadow state (an
//!   internal key array for ACF/TQF, a bundled [`aqf::ShadowMap`] for the
//!   AQF wrappers) — the paper's §6.3 microbenchmark protocol.
//! - **System** (`aqf-storage`'s `FilteredDb`): after
//!   [`DynFilter::set_system_mode`], inserts return an [`InsertPlan`]
//!   describing the database/reverse-map writes the filter requires, and
//!   positive queries expose a store key ([`DynFilter::query_loc`]) the
//!   system reads and, on a refuted match, feeds back via
//!   [`DynFilter::adapt_loc`].
//!
//! Four wrappers cover every filter in the workspace: [`PlainDyn`] (any
//! [`AmqFilter`]), [`LocDyn`] (internal-map adaptive filters: ACF, TQF),
//! [`AqfDyn`], and [`ShardedAqfDyn`] (external-map AQF variants). Adding
//! a new filter means implementing the traits and picking — or writing —
//! a wrapper; no enum to extend.
//!
//! Both modes come in batched form ([`DynFilter::insert_batch`],
//! [`DynFilter::contains_batch`], [`DynFilter::insert_tracked_batch`],
//! [`DynFilter::query_loc_batch`]) with correct per-key defaults, so
//! every registry kind is batch-callable; the AQF wrappers override them
//! with quotient-sorted, lock-once-per-shard bulk paths.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use aqf::{AdaptiveQf, AqfConfig, FilterError, Hit, QueryResult, ShadowMap, ShardedAqf};

use crate::aqf_impls::ShardedHit;
use crate::common::{AdaptiveFilter, Adaptivity, AmqFilter, MapEvent, MapEventSource, MapStats};
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// How a filter keys the database records backing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keying {
    /// Records live under the original key; positives are verified with
    /// `get(key)` (non-adaptive baselines, yes/no filter).
    Key,
    /// Records live under a filter-issued store key (fingerprint
    /// coordinates or physical location); positives are verified by
    /// reading [`DynFilter::query_loc`]'s key and comparing the stored
    /// original key.
    Location,
}

/// The database / reverse-map writes a successful insert requires
/// (system mode).
#[derive(Clone, Debug)]
pub enum InsertPlan {
    /// Write the record under the original key.
    AtKey,
    /// Write the record under this store key. The AQF only ever appends,
    /// so the key is fresh and no existing record moves (paper §4.2).
    AtLoc(u64),
    /// Replay these location-keyed operations in order, carrying the new
    /// record through kick chains and shifts (ACF, TQF — paper §6.4).
    Events(Vec<MapEvent>),
}

/// The database / reverse-map writes a delete requires (system mode) —
/// the removal-side counterpart of [`InsertPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeletePlan {
    /// The key was not present in the filter; nothing to remove.
    Missing,
    /// Remove the record stored under the original key.
    AtKey,
    /// A duplicate's count was decremented; the fingerprint group — and
    /// its record — stay live.
    Decremented,
    /// The fingerprint group at this store key vanished: remove its
    /// record, then shift the records of every later rank in the same
    /// minirun down one store key (their filter-side ranks shifted the
    /// same way, exactly as [`aqf::ShadowMap::remove`] mirrors).
    ShiftFrom(u64),
}

/// Object-safe filter interface; see the module docs.
///
/// `Send + Sync` is a supertrait so a `Box<dyn DynFilter>` can be shared
/// across threads (e.g. behind an `RwLock`, or handed to scoped reader
/// threads): every filter in the workspace is plain owned data, and the
/// sharded AQF's interior mutability is `Mutex`/seqlock-synchronized.
pub trait DynFilter: Send + Sync {
    /// Registry kind string this filter was built as (e.g. `"aqf"`).
    fn kind(&self) -> &'static str;

    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;

    /// The filter's adaptivity class.
    fn adaptivity(&self) -> Adaptivity;

    /// Insert a key (standalone mode: shadow state is maintained).
    fn insert(&mut self, key: u64) -> Result<(), FilterError>;

    /// Approximate membership query without adaptation.
    fn contains(&self, key: u64) -> bool;

    /// Number of stored items.
    fn len(&self) -> u64;

    /// True if nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes used by the filter table (shadow state excluded).
    fn size_in_bytes(&self) -> usize;

    /// True if [`DynFilter::delete`] is supported.
    fn supports_delete(&self) -> bool {
        false
    }

    /// Delete one copy of `key` if supported; `Ok(true)` on removal.
    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        let _ = key;
        Err(FilterError::InvalidConfig(
            "this filter does not support deletion",
        ))
    }

    /// Query with adaptation on false positives, resolving stored keys
    /// through the filter's internal shadow state (the paper's §6.3
    /// microbenchmark setting). Returns true if the filter answered
    /// positive. Non-adaptive filters just answer.
    fn query_adapting(&mut self, key: u64) -> bool {
        self.contains(key)
    }

    // ------------------------------------------------------------------
    // Capacity, online growth, and file backing
    // ------------------------------------------------------------------

    /// Slot capacity of the filter table (bits for bit-array filters;
    /// 0 when the structure has no fixed capacity). See
    /// [`crate::AmqFilter::capacity`].
    fn capacity(&self) -> u64 {
        0
    }

    /// Fraction of [`DynFilter::capacity`] occupied by live table state
    /// (0 when capacity is 0). See [`crate::AmqFilter::load_factor`].
    fn load_factor(&self) -> f64 {
        0.0
    }

    /// True if this filter can grow its table online (the AQF family
    /// doubles slots by re-splitting fingerprints, paper §4 remainders
    /// permitting).
    fn supports_grow(&self) -> bool {
        false
    }

    /// Number of grow events the filter has performed.
    fn grows(&self) -> u64 {
        0
    }

    /// Enable (`Some(threshold)`) or disable (`None`) automatic growth:
    /// once [`DynFilter::load_factor`] reaches `threshold`, the next
    /// insert doubles the table before landing. Kinds that cannot grow
    /// accept only `None` and report
    /// [`FilterError::InvalidConfig`] otherwise.
    fn set_auto_grow(&mut self, threshold: Option<f64>) -> Result<(), FilterError> {
        if threshold.is_none() {
            Ok(())
        } else {
            Err(FilterError::InvalidConfig(
                "this filter kind cannot grow online",
            ))
        }
    }

    /// Migrate the filter table onto a file-backed arena at `path`, so
    /// reopening a snapshot maps the table instead of decoding it.
    /// Default: unsupported.
    fn set_file_backing(&mut self, path: &Path) -> io::Result<()> {
        let _ = path;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "this filter kind does not support file-backed tables",
        ))
    }

    /// True if the filter table currently lives in a file-backed arena.
    fn is_file_backed(&self) -> bool {
        false
    }

    /// Flush file-backed table state to disk (no-op for heap tables).
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }

    // ------------------------------------------------------------------
    // Batch operations
    //
    // Every method has a correct per-key default, so all registry kinds
    // are batch-callable; the AQF wrappers override with real bulk paths
    // (quotient-sorted table walks, one lock per shard per batch).
    // ------------------------------------------------------------------

    /// Insert every key of `keys` in order (standalone mode: shadow
    /// state is maintained). Default is the per-key loop. On error a
    /// prefix of the batch (in an implementation-chosen order) has been
    /// inserted; implementations must keep any shadow state consistent
    /// with exactly that prefix, as the per-key path does.
    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        for &k in keys {
            self.insert(k)?;
        }
        Ok(())
    }

    /// Batched [`DynFilter::contains`]: membership bits in input order,
    /// element-wise identical to per-key calls. Default is the per-key
    /// loop.
    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        keys.iter().map(|&k| self.contains(k)).collect()
    }

    // ------------------------------------------------------------------
    // System integration (FilteredDb)
    // ------------------------------------------------------------------

    /// How this filter keys its database records.
    fn keying(&self) -> Keying {
        Keying::Key
    }

    /// Switch between standalone and system mode: in system mode the
    /// backing database is the reverse map, so internal shadow upkeep is
    /// disabled and (for location-keyed filters) event recording enabled.
    fn set_system_mode(&mut self, on: bool) {
        let _ = on;
    }

    /// Insert returning the database writes required (system mode).
    fn insert_tracked(&mut self, key: u64) -> Result<InsertPlan, FilterError> {
        self.insert(key).map(|()| InsertPlan::AtKey)
    }

    /// Delete returning the database writes required (system mode).
    /// Unsupported kinds error like [`DynFilter::delete`]. The default
    /// maps the plain delete onto key-keyed records; location-keyed
    /// filters override it to report the vacated store key.
    fn delete_tracked(&mut self, key: u64) -> Result<DeletePlan, FilterError> {
        self.delete(key).map(|removed| {
            if removed {
                DeletePlan::AtKey
            } else {
                DeletePlan::Missing
            }
        })
    }

    /// Batched [`DynFilter::insert_tracked`] (system mode): one
    /// [`InsertPlan`] per key, in input order. Default is the per-key
    /// loop; on error a prefix of the batch has been inserted and its
    /// plans are lost, so callers should treat the batch as failed.
    fn insert_tracked_batch(&mut self, keys: &[u64]) -> Result<Vec<InsertPlan>, FilterError> {
        keys.iter().map(|&k| self.insert_tracked(k)).collect()
    }

    /// Store key of the record verifying a positive query (`None` =
    /// filter negative). Only meaningful for [`Keying::Location`] filters.
    fn query_loc(&self, key: u64) -> Option<u64> {
        let _ = key;
        None
    }

    /// Batched [`DynFilter::query_loc`]: per-key store keys in input
    /// order, letting the system layer pipeline all filter probes ahead
    /// of its backing-store reads. Default is the per-key loop.
    fn query_loc_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|&k| self.query_loc(k)).collect()
    }

    /// Adapt after the database refuted the match at `loc`:
    /// the record there belongs to `stored_key`, not `query_key`.
    fn adapt_loc(&mut self, loc: u64, stored_key: u64, query_key: u64) -> Result<(), FilterError> {
        let _ = (loc, stored_key, query_key);
        Err(FilterError::NotFound)
    }

    // ------------------------------------------------------------------
    // Concurrent (shared-reference) operation
    //
    // The server's multi-core read path: when a filter reports
    // `supports_concurrent_reads`, the system layer may call `contains`,
    // `query_loc`, and `query_loc_batch` from many threads *while
    // another thread mutates the filter through the `_shared` entry
    // points below*. The sharded AQF satisfies this with per-shard
    // seqlocks (optimistic reads validated against the shard version;
    // writers serialize on the shard mutex). Filters that mutate through
    // plain `&mut self` keep the `false` default and the erroring
    // `_shared` defaults — the system then serializes them externally.
    // ------------------------------------------------------------------

    /// True if `&self` reads stay linearizable while another thread
    /// mutates the filter through the `_shared` write entry points
    /// (which the implementation must then also provide).
    fn supports_concurrent_reads(&self) -> bool {
        false
    }

    /// [`DynFilter::insert_tracked`] through a shared reference
    /// (internally synchronized filters only).
    fn insert_tracked_shared(&self, key: u64) -> Result<InsertPlan, FilterError> {
        let _ = key;
        Err(FilterError::InvalidConfig(
            "this filter kind does not support shared-reference writes",
        ))
    }

    /// [`DynFilter::insert_tracked_batch`] through a shared reference
    /// (internally synchronized filters only).
    fn insert_tracked_batch_shared(&self, keys: &[u64]) -> Result<Vec<InsertPlan>, FilterError> {
        let _ = keys;
        Err(FilterError::InvalidConfig(
            "this filter kind does not support shared-reference writes",
        ))
    }

    /// [`DynFilter::delete_tracked`] through a shared reference
    /// (internally synchronized filters only).
    fn delete_tracked_shared(&self, key: u64) -> Result<DeletePlan, FilterError> {
        let _ = key;
        Err(FilterError::InvalidConfig(
            "this filter kind does not support shared-reference writes",
        ))
    }

    /// [`DynFilter::adapt_loc`] through a shared reference (internally
    /// synchronized filters only).
    fn adapt_loc_shared(
        &self,
        loc: u64,
        stored_key: u64,
        query_key: u64,
    ) -> Result<(), FilterError> {
        let _ = (loc, stored_key, query_key);
        Err(FilterError::InvalidConfig(
            "this filter kind does not support shared-reference writes",
        ))
    }

    /// True if the filter supports the paper's *split* reverse-map setup
    /// (fingerprint→key map separate from the key→value database).
    fn supports_split_map(&self) -> bool {
        false
    }

    /// Reverse-map traffic counters, if the filter tracks them
    /// (paper Table 2).
    fn map_stats(&self) -> Option<MapStats> {
        None
    }

    /// Bits consumed by adaptation so far (extension slots for the AQF;
    /// 0 for selector-based filters whose space is pre-allocated) —
    /// the paper's Fig. 7 "added space" metric.
    fn adapt_bits(&self) -> f64 {
        0.0
    }

    /// Bits of filter table per stored item (0 when empty).
    fn bits_per_item(&self) -> f64 {
        if self.len() == 0 {
            return 0.0;
        }
        (self.size_in_bytes() * 8) as f64 / self.len() as f64
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    /// Serialize the filter — table, adaptation state, and any bundled
    /// shadow reverse map — into a registry-kind-keyed snapshot frame
    /// that [`crate::registry::load_snapshot`] turns back into a
    /// `Box<dyn DynFilter>`. Every registry kind supports this; the
    /// default is an [`SnapError::Unsupported`] escape hatch for
    /// third-party filters.
    fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        Err(SnapError::Unsupported(format!(
            "filter kind {:?}",
            self.kind()
        )))
    }
}

// ----------------------------------------------------------------------
// PlainDyn: any AmqFilter, no adaptation surface
// ----------------------------------------------------------------------

/// Wraps any [`AmqFilter`] as a [`DynFilter`] with no query-side
/// adaptation (QF, CF, Bloom, cascading Bloom, yes/no filter).
pub struct PlainDyn<F: AmqFilter> {
    f: F,
    kind: &'static str,
}

impl<F: AmqFilter> PlainDyn<F> {
    /// Wrap `f` under the registry kind string `kind`.
    pub fn new(kind: &'static str, f: F) -> Self {
        Self { f, kind }
    }

    /// The wrapped filter.
    pub fn inner(&self) -> &F {
        &self.f
    }
}

impl<F: AmqFilter + SnapshotBody> PlainDyn<F> {
    /// Rebuild a wrapper from the body sections of an open snapshot frame
    /// whose header named `kind`.
    pub fn read_snapshot(
        kind: &'static str,
        r: &mut SnapshotReader<'_>,
    ) -> Result<Self, SnapError> {
        Ok(Self::new(kind, F::read_snapshot_body(r)?))
    }
}

impl<F: AmqFilter + SnapshotBody + Send + Sync> DynFilter for PlainDyn<F> {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn name(&self) -> &'static str {
        self.f.name()
    }

    fn adaptivity(&self) -> Adaptivity {
        self.f.adaptivity()
    }

    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        self.f.insert(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.f.contains(key)
    }

    fn len(&self) -> u64 {
        self.f.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.f.size_in_bytes()
    }

    fn capacity(&self) -> u64 {
        self.f.capacity()
    }

    fn load_factor(&self) -> f64 {
        self.f.load_factor()
    }

    fn supports_delete(&self) -> bool {
        self.f.supports_delete()
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        self.f.delete(key)
    }

    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        self.f.insert_batch(keys)
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        self.f.contains_batch(keys)
    }

    fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapshotWriter::new(self.kind);
        self.f.write_snapshot_body(&mut w)?;
        Ok(w.finish())
    }
}

// ----------------------------------------------------------------------
// LocDyn: adaptive filters with an internal (shadow) reverse map
// ----------------------------------------------------------------------
// (LocDyn keeps the per-key batch defaults: ACF/TQF inserts emit ordered
// reverse-map event traces, which a bulk path would have to interleave
// per key anyway.)

/// Wraps an adaptive filter whose reverse map is internal and
/// location-keyed (ACF, TQF): stored keys resolve through the filter's
/// own shadow array, and system mode records/replays [`MapEvent`]s.
pub struct LocDyn<F: AdaptiveFilter + MapEventSource> {
    f: F,
    kind: &'static str,
}

impl<F: AdaptiveFilter + MapEventSource> LocDyn<F> {
    /// Wrap `f` under the registry kind string `kind`.
    pub fn new(kind: &'static str, f: F) -> Self {
        Self { f, kind }
    }

    /// The wrapped filter.
    pub fn inner(&self) -> &F {
        &self.f
    }
}

impl<F: AdaptiveFilter + MapEventSource + SnapshotBody> LocDyn<F> {
    /// Rebuild a wrapper from the body sections of an open snapshot frame
    /// whose header named `kind`.
    pub fn read_snapshot(
        kind: &'static str,
        r: &mut SnapshotReader<'_>,
    ) -> Result<Self, SnapError> {
        Ok(Self::new(kind, F::read_snapshot_body(r)?))
    }
}

impl<F: AdaptiveFilter + MapEventSource + SnapshotBody + Send + Sync> DynFilter for LocDyn<F> {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn name(&self) -> &'static str {
        self.f.name()
    }

    fn adaptivity(&self) -> Adaptivity {
        self.f.adaptivity()
    }

    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        self.f.insert(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.f.contains(key)
    }

    fn len(&self) -> u64 {
        self.f.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.f.size_in_bytes()
    }

    fn capacity(&self) -> u64 {
        self.f.capacity()
    }

    fn load_factor(&self) -> f64 {
        self.f.load_factor()
    }

    fn query_adapting(&mut self, key: u64) -> bool {
        let Some(hit) = self.f.query_hit(key) else {
            return false;
        };
        let stored = self
            .f
            .stored_key(&hit)
            .expect("ACF/TQF-style filters resolve stored keys internally");
        if stored != key {
            let _ = self.f.adapt(&hit, stored, key);
        }
        true
    }

    fn keying(&self) -> Keying {
        Keying::Location
    }

    fn set_system_mode(&mut self, on: bool) {
        self.f.set_event_recording(on);
    }

    fn insert_tracked(&mut self, key: u64) -> Result<InsertPlan, FilterError> {
        let r = self.f.insert(key);
        // Drain even on failure so a failed insert's partial kick chain
        // never leaks into the next operation's plan.
        let events = self.f.take_events();
        r.map(|()| InsertPlan::Events(events))
    }

    fn query_loc(&self, key: u64) -> Option<u64> {
        self.f.query_hit(key).map(|h| self.f.store_key(&h))
    }

    fn adapt_loc(&mut self, loc: u64, stored_key: u64, query_key: u64) -> Result<(), FilterError> {
        let hit = self.f.hit_at(loc);
        self.f.adapt(&hit, stored_key, query_key)?;
        // Adaptation records a map Get; the system just performed that
        // read itself, so drop the event rather than replaying it.
        let _ = self.f.take_events();
        Ok(())
    }

    fn map_stats(&self) -> Option<MapStats> {
        Some(self.f.map_stats())
    }

    fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapshotWriter::new(self.kind);
        self.f.write_snapshot_body(&mut w)?;
        Ok(w.finish())
    }
}

// ----------------------------------------------------------------------
// AqfDyn: the AdaptiveQF with a bundled shadow reverse map
// ----------------------------------------------------------------------

/// The [`AdaptiveQf`] behind [`DynFilter`]: standalone mode bundles a
/// [`ShadowMap`] (the paper's simulated reverse map); system mode leaves
/// map duty to the database and only reports fingerprint store keys.
pub struct AqfDyn {
    f: AdaptiveQf,
    map: ShadowMap,
    system_mode: bool,
    map_inserts: u64,
}

impl AqfDyn {
    /// Wrap an AdaptiveQF.
    pub fn new(f: AdaptiveQf) -> Self {
        Self {
            f,
            map: ShadowMap::new(),
            system_mode: false,
            map_inserts: 0,
        }
    }

    /// Build from a config.
    pub fn from_config(cfg: AqfConfig) -> Result<Self, FilterError> {
        Ok(Self::new(AdaptiveQf::new(cfg)?))
    }

    /// The wrapped filter.
    pub fn inner(&self) -> &AdaptiveQf {
        &self.f
    }

    /// Rebuild a wrapper (filter + shadow map + map counters) from the
    /// body sections of an open snapshot frame.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let f = AdaptiveQf::read_snapshot(r)?;
        let map = ShadowMap::read_snapshot(r)?;
        r.section(*b"ADYN")?;
        let map_inserts = r.u64()?;
        Ok(Self {
            f,
            map,
            system_mode: false,
            map_inserts,
        })
    }
}

impl DynFilter for AqfDyn {
    fn kind(&self) -> &'static str {
        "aqf"
    }

    fn name(&self) -> &'static str {
        AmqFilter::name(&self.f)
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::Strong
    }

    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        AdaptiveQf::insert(&mut self.f, key)?;
        self.map_inserts += 1;
        if !self.system_mode {
            self.map.record(key);
        }
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        AdaptiveQf::contains(&self.f, key)
    }

    fn len(&self) -> u64 {
        AdaptiveQf::len(&self.f)
    }

    fn size_in_bytes(&self) -> usize {
        AdaptiveQf::size_in_bytes(&self.f)
    }

    fn capacity(&self) -> u64 {
        self.f.capacity()
    }

    fn load_factor(&self) -> f64 {
        self.f.load_factor()
    }

    fn supports_grow(&self) -> bool {
        self.f.supports_grow()
    }

    fn grows(&self) -> u64 {
        self.f.stats().grows
    }

    fn set_auto_grow(&mut self, threshold: Option<f64>) -> Result<(), FilterError> {
        self.f.set_auto_grow(threshold)
    }

    fn set_file_backing(&mut self, path: &Path) -> io::Result<()> {
        self.f.set_file_backing(path)
    }

    fn is_file_backed(&self) -> bool {
        self.f.is_file_backed()
    }

    fn sync(&self) -> io::Result<()> {
        self.f.sync()
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        if !self.system_mode && self.map.needs_settle() {
            let f = &self.f;
            self.map.settle(|k| f.fingerprint(k).minirun_id());
        }
        match AdaptiveQf::delete(&mut self.f, key)? {
            Some(out) => {
                if !self.system_mode {
                    self.map.remove(&out);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn query_adapting(&mut self, key: u64) -> bool {
        match self.f.query(key) {
            QueryResult::Negative => false,
            QueryResult::Positive(hit) => {
                {
                    let f = &self.f;
                    self.map.settle(|k| f.fingerprint(k).minirun_id());
                }
                if let Some(stored) = self.map.get(hit.minirun_id, hit.rank) {
                    if stored != key {
                        let _ = AdaptiveQf::adapt(&mut self.f, &hit, stored, key);
                    }
                }
                true
            }
        }
    }

    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        // The sink fires per key as it lands, so on a mid-batch error the
        // shadow map still mirrors the filter exactly (per-key parity).
        let map = &mut self.map;
        let system_mode = self.system_mode;
        let mut landed = 0u64;
        let r = self.f.insert_batch_with(keys, |i, _out| {
            landed += 1;
            if !system_mode {
                map.record(keys[i]);
            }
        });
        self.map_inserts += landed;
        r
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        AdaptiveQf::contains_batch(&self.f, keys)
    }

    fn keying(&self) -> Keying {
        Keying::Location
    }

    fn set_system_mode(&mut self, on: bool) {
        self.system_mode = on;
    }

    fn insert_tracked(&mut self, key: u64) -> Result<InsertPlan, FilterError> {
        let out = AdaptiveQf::insert(&mut self.f, key)?;
        self.map_inserts += 1;
        Ok(InsertPlan::AtLoc(aqf::revmap::pack_fingerprint_key(
            out.minirun_id,
            out.rank,
        )))
    }

    fn delete_tracked(&mut self, key: u64) -> Result<DeletePlan, FilterError> {
        match AdaptiveQf::delete(&mut self.f, key)? {
            None => Ok(DeletePlan::Missing),
            Some(out) if !out.removed_group => Ok(DeletePlan::Decremented),
            Some(out) => Ok(DeletePlan::ShiftFrom(aqf::revmap::pack_fingerprint_key(
                out.minirun_id,
                out.rank,
            ))),
        }
    }

    fn insert_tracked_batch(&mut self, keys: &[u64]) -> Result<Vec<InsertPlan>, FilterError> {
        let mut plans = vec![InsertPlan::AtKey; keys.len()];
        let mut landed = 0u64;
        let r = self.f.insert_batch_with(keys, |i, out| {
            landed += 1;
            plans[i] =
                InsertPlan::AtLoc(aqf::revmap::pack_fingerprint_key(out.minirun_id, out.rank));
        });
        self.map_inserts += landed;
        r.map(|()| plans)
    }

    fn query_loc(&self, key: u64) -> Option<u64> {
        AdaptiveFilter::query_hit(&self.f, key).map(|h| AdaptiveFilter::store_key(&self.f, &h))
    }

    fn query_loc_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        AdaptiveFilter::query_hit_batch(&self.f, keys)
            .into_iter()
            .map(|h| h.map(|h| AdaptiveFilter::store_key(&self.f, &h)))
            .collect()
    }

    fn adapt_loc(&mut self, loc: u64, stored_key: u64, query_key: u64) -> Result<(), FilterError> {
        let hit: Hit = AdaptiveFilter::hit_at(&self.f, loc);
        AdaptiveQf::adapt(&mut self.f, &hit, stored_key, query_key).map(|_| ())
    }

    fn supports_split_map(&self) -> bool {
        true
    }

    fn map_stats(&self) -> Option<MapStats> {
        // The AQF's map sees exactly one insert per key and — because the
        // filter only ever appends — is never updated or queried during
        // inserts (paper §4.2).
        Some(MapStats {
            inserts: self.map_inserts,
            updates: 0,
            queries: 0,
        })
    }

    fn adapt_bits(&self) -> f64 {
        // Each extension slot holds rbits of hash chunk plus ~4 metadata
        // bits (is_extension + used/runend bookkeeping).
        self.f.stats().extension_slots as f64 * (self.f.config().rbits + 4) as f64
    }

    fn bits_per_item(&self) -> f64 {
        self.f.bits_per_item()
    }

    fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapshotWriter::new("aqf");
        self.f.write_snapshot(&mut w);
        self.map.write_snapshot(&mut w);
        w.section(*b"ADYN");
        w.u64(self.map_inserts);
        Ok(w.finish())
    }
}

// ----------------------------------------------------------------------
// ShardedAqfDyn: the partitioned AQF with per-shard shadow maps
// ----------------------------------------------------------------------

/// The [`ShardedAqf`] behind [`DynFilter`], with one [`ShadowMap`] per
/// shard in standalone mode (shard-local minirun ids collide across
/// shards, so one flat map would be ambiguous).
pub struct ShardedAqfDyn {
    f: ShardedAqf,
    maps: Vec<ShadowMap>,
    system_mode: bool,
    /// Atomic so the shared-reference (concurrent server) write paths can
    /// keep counting without exclusive access.
    map_inserts: AtomicU64,
}

impl ShardedAqfDyn {
    /// Wrap a sharded AQF.
    pub fn new(f: ShardedAqf) -> Self {
        let maps = (0..f.shard_count()).map(|_| ShadowMap::new()).collect();
        Self {
            f,
            maps,
            system_mode: false,
            map_inserts: AtomicU64::new(0),
        }
    }

    /// The wrapped filter.
    pub fn inner(&self) -> &ShardedAqf {
        &self.f
    }

    /// Rebuild a wrapper (sharded filter + per-shard shadow maps + map
    /// counters) from the body sections of an open snapshot frame.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let f = ShardedAqf::read_snapshot(r)?;
        let mut maps = Vec::with_capacity(f.shard_count());
        for _ in 0..f.shard_count() {
            maps.push(ShadowMap::read_snapshot(r)?);
        }
        r.section(*b"ADYN")?;
        let map_inserts = r.u64()?;
        Ok(Self {
            f,
            maps,
            system_mode: false,
            map_inserts: AtomicU64::new(map_inserts),
        })
    }
}

impl DynFilter for ShardedAqfDyn {
    fn kind(&self) -> &'static str {
        "sharded-aqf"
    }

    fn name(&self) -> &'static str {
        AmqFilter::name(&self.f)
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::Strong
    }

    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        ShardedAqf::insert(&self.f, key)?;
        self.map_inserts.fetch_add(1, Ordering::Relaxed);
        if !self.system_mode {
            self.maps[self.f.shard_of(key)].record(key);
        }
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        ShardedAqf::contains(&self.f, key)
    }

    fn len(&self) -> u64 {
        ShardedAqf::len(&self.f)
    }

    fn size_in_bytes(&self) -> usize {
        ShardedAqf::size_in_bytes(&self.f)
    }

    fn capacity(&self) -> u64 {
        self.f.capacity()
    }

    fn load_factor(&self) -> f64 {
        self.f.load_factor()
    }

    fn supports_grow(&self) -> bool {
        self.f.supports_grow()
    }

    fn grows(&self) -> u64 {
        self.f.stats().grows
    }

    /// Per-shard auto-grow: each shard grows independently under its own
    /// mutex while the others keep serving (the table stays file-free —
    /// shards are heap-backed).
    fn set_auto_grow(&mut self, threshold: Option<f64>) -> Result<(), FilterError> {
        self.f.set_auto_grow(threshold)
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        let shard = self.f.shard_of(key);
        if !self.system_mode && self.maps[shard].needs_settle() {
            let f = &self.f;
            self.maps[shard].settle(|k| f.with_shard(shard, |s| s.fingerprint(k).minirun_id()));
        }
        match ShardedAqf::delete(&self.f, key)? {
            Some(out) => {
                if !self.system_mode {
                    self.maps[shard].remove(&out);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn query_adapting(&mut self, key: u64) -> bool {
        match self.f.query(key) {
            QueryResult::Negative => false,
            QueryResult::Positive(hit) => {
                let shard = self.f.shard_of(key);
                let f = &self.f;
                let map = &mut self.maps[shard];
                map.settle(|k| f.with_shard(shard, |s| s.fingerprint(k).minirun_id()));
                if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                    if stored != key {
                        let _ = ShardedAqf::adapt(&self.f, &hit, stored, key);
                    }
                }
                true
            }
        }
    }

    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        // The sink fires per key as it lands with the shard it routed to
        // (no re-hash), so on a mid-batch error the per-shard shadow maps
        // still mirror the filter exactly (per-key parity).
        let maps = &mut self.maps;
        let system_mode = self.system_mode;
        let mut landed = 0u64;
        let r = self.f.insert_batch_with(keys, |i, shard, _out| {
            landed += 1;
            if !system_mode {
                maps[shard].record(keys[i]);
            }
        });
        self.map_inserts.fetch_add(landed, Ordering::Relaxed);
        r
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        ShardedAqf::contains_batch(&self.f, keys)
    }

    fn keying(&self) -> Keying {
        Keying::Location
    }

    fn set_system_mode(&mut self, on: bool) {
        self.system_mode = on;
    }

    fn insert_tracked(&mut self, key: u64) -> Result<InsertPlan, FilterError> {
        self.insert_tracked_shared(key)
    }

    fn delete_tracked(&mut self, key: u64) -> Result<DeletePlan, FilterError> {
        self.delete_tracked_shared(key)
    }

    fn insert_tracked_batch(&mut self, keys: &[u64]) -> Result<Vec<InsertPlan>, FilterError> {
        self.insert_tracked_batch_shared(keys)
    }

    fn supports_concurrent_reads(&self) -> bool {
        // Per-shard seqlocks: `query`/`contains`/`query_loc` validate an
        // optimistic read against the shard version (retrying into the
        // locked fallback), so they stay linearizable against the
        // `_shared` write paths below, which serialize on the shard
        // mutex and bump the version around the mutation.
        true
    }

    fn insert_tracked_shared(&self, key: u64) -> Result<InsertPlan, FilterError> {
        let out = ShardedAqf::insert(&self.f, key)?;
        self.map_inserts.fetch_add(1, Ordering::Relaxed);
        let hit = ShardedHit {
            shard: self.f.shard_of(key),
            hit: Hit {
                minirun_id: out.minirun_id,
                rank: out.rank,
                ext_chunks: 0,
            },
        };
        Ok(InsertPlan::AtLoc(AdaptiveFilter::store_key(&self.f, &hit)))
    }

    fn delete_tracked_shared(&self, key: u64) -> Result<DeletePlan, FilterError> {
        let shard = self.f.shard_of(key);
        match ShardedAqf::delete(&self.f, key)? {
            None => Ok(DeletePlan::Missing),
            Some(out) if !out.removed_group => Ok(DeletePlan::Decremented),
            Some(out) => {
                let hit = ShardedHit {
                    shard,
                    hit: Hit {
                        minirun_id: out.minirun_id,
                        rank: out.rank,
                        ext_chunks: 0,
                    },
                };
                Ok(DeletePlan::ShiftFrom(AdaptiveFilter::store_key(
                    &self.f, &hit,
                )))
            }
        }
    }

    fn insert_tracked_batch_shared(&self, keys: &[u64]) -> Result<Vec<InsertPlan>, FilterError> {
        let f = &self.f;
        let mut plans = vec![InsertPlan::AtKey; keys.len()];
        let mut landed = 0u64;
        let r = f.insert_batch_with(keys, |i, shard, out| {
            landed += 1;
            let hit = ShardedHit {
                shard,
                hit: Hit {
                    minirun_id: out.minirun_id,
                    rank: out.rank,
                    ext_chunks: 0,
                },
            };
            plans[i] = InsertPlan::AtLoc(AdaptiveFilter::store_key(f, &hit));
        });
        self.map_inserts.fetch_add(landed, Ordering::Relaxed);
        r.map(|()| plans)
    }

    fn adapt_loc_shared(
        &self,
        loc: u64,
        stored_key: u64,
        query_key: u64,
    ) -> Result<(), FilterError> {
        let hit: ShardedHit = AdaptiveFilter::hit_at(&self.f, loc);
        // `ShardedAqf::adapt` routes by `query_key`, which lands on
        // `hit.shard` by construction of the store key.
        ShardedAqf::adapt(&self.f, &hit.hit, stored_key, query_key).map(|_| ())
    }

    fn query_loc(&self, key: u64) -> Option<u64> {
        AdaptiveFilter::query_hit(&self.f, key).map(|h| AdaptiveFilter::store_key(&self.f, &h))
    }

    fn query_loc_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        AdaptiveFilter::query_hit_batch(&self.f, keys)
            .into_iter()
            .map(|h| h.map(|h| AdaptiveFilter::store_key(&self.f, &h)))
            .collect()
    }

    fn adapt_loc(&mut self, loc: u64, stored_key: u64, query_key: u64) -> Result<(), FilterError> {
        let hit: ShardedHit = AdaptiveFilter::hit_at(&self.f, loc);
        AdaptiveFilter::adapt(&mut self.f, &hit, stored_key, query_key).map(|_| ())
    }

    fn supports_split_map(&self) -> bool {
        true
    }

    fn map_stats(&self) -> Option<MapStats> {
        Some(MapStats {
            inserts: self.map_inserts.load(Ordering::Relaxed),
            updates: 0,
            queries: 0,
        })
    }

    fn adapt_bits(&self) -> f64 {
        let cfg = *self.f.shard_config();
        self.f.stats().extension_slots as f64 * (cfg.rbits + 4) as f64
    }

    fn bits_per_item(&self) -> f64 {
        self.f.bits_per_item()
    }

    fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapshotWriter::new("sharded-aqf");
        self.f.write_snapshot(&mut w);
        for m in &self.maps {
            m.write_snapshot(&mut w);
        }
        w.section(*b"ADYN");
        w.u64(self.map_inserts.load(Ordering::Relaxed));
        Ok(w.finish())
    }
}
