//! Cascading Bloom filter for static yes/no lists, as used by CRLite
//! (Larisch et al., paper §2.4 and Fig. 9 baseline).
//!
//! Level 0 holds the yes list. Every no-list key that level 0 falsely
//! accepts goes into level 1; every yes-list key level 1 falsely accepts
//! goes into level 2, and so on until a level has no false positives
//! against the opposite list. A query walks the levels until one rejects:
//! acceptance by an even number of levels means "no", odd means "yes".
//! Exact for all keys in `yes ∪ no`; other keys err with the usual Bloom
//! probability.

use aqf::FilterError;

use crate::bloom::BloomFilter;
use crate::common::Filter;

/// A CRLite-style cascading Bloom filter.
pub struct CascadingBloomFilter {
    levels: Vec<BloomFilter>,
}

impl CascadingBloomFilter {
    /// Build from a yes list and a no list.
    ///
    /// `fpr0` is level 0's false-positive target (CRLite uses
    /// `n_yes / (sqrt(2) n_no)`-style sizing; we default each deeper level
    /// to 0.5 as in the original).
    pub fn build(yes: &[u64], no: &[u64], seed: u64) -> Result<Self, FilterError> {
        let mut levels = Vec::new();
        // CRLite level-0 sizing: r = n_no/n_yes, fpr0 = 1/(r·sqrt(2)) capped.
        let fpr0 = if no.is_empty() {
            0.001
        } else {
            (yes.len() as f64 / (no.len() as f64 * std::f64::consts::SQRT_2)).clamp(1e-6, 0.5)
        };
        let mut include: Vec<u64> = yes.to_vec(); // keys this level stores
        let mut exclude: Vec<u64> = no.to_vec(); // keys it must reject
        let mut level = 0u64;
        while !include.is_empty() {
            let fpr = if level == 0 { fpr0 } else { 0.5 };
            let mut bf = BloomFilter::for_capacity(include.len(), fpr, seed ^ level)?;
            for &k in &include {
                bf.insert(k)?;
            }
            // Keys of the opposite list the new level falsely accepts form
            // the next level's include set.
            let fps: Vec<u64> = exclude
                .iter()
                .copied()
                .filter(|&k| bf.contains(k))
                .collect();
            levels.push(bf);
            exclude = std::mem::take(&mut include);
            include = fps;
            level += 1;
            if level > 64 {
                return Err(FilterError::InvalidConfig("cascade failed to converge"));
            }
        }
        Ok(Self { levels })
    }

    /// True = "yes". Exact for keys in either input list.
    pub fn query(&self, key: u64) -> bool {
        let mut accepted = 0usize;
        for bf in &self.levels {
            if bf.contains(key) {
                accepted += 1;
            } else {
                break;
            }
        }
        accepted % 2 == 1
    }

    /// Number of cascade levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total bytes across all levels.
    pub fn size_in_bytes(&self) -> usize {
        self.levels.iter().map(|b| b.size_in_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_both_lists() {
        let yes: Vec<u64> = (0..2000).collect();
        let no: Vec<u64> = (1_000_000..1_008_000).collect();
        let c = CascadingBloomFilter::build(&yes, &no, 7).unwrap();
        for &y in &yes {
            assert!(c.query(y), "yes key {y}");
        }
        for &n in &no {
            assert!(!c.query(n), "no key {n}");
        }
        assert!(c.depth() >= 1);
    }

    #[test]
    fn empty_no_list() {
        let yes: Vec<u64> = (0..100).collect();
        let c = CascadingBloomFilter::build(&yes, &[], 1).unwrap();
        for &y in &yes {
            assert!(c.query(y));
        }
    }

    #[test]
    fn empty_yes_list() {
        let no: Vec<u64> = (0..100).collect();
        let c = CascadingBloomFilter::build(&[], &no, 1).unwrap();
        for &n in &no {
            assert!(!c.query(n));
        }
    }

    #[test]
    fn skewed_ratios_stay_compact() {
        // Fig. 9's regime: aggregate fixed, ratio no/yes varying.
        for shift in 0..5u32 {
            let n_yes = 1000usize >> shift;
            let n_no = 1000 - n_yes;
            let yes: Vec<u64> = (0..n_yes as u64).collect();
            let no: Vec<u64> = (10_000..10_000 + n_no as u64).collect();
            let c = CascadingBloomFilter::build(&yes, &no, 3).unwrap();
            for &y in &yes {
                assert!(c.query(y));
            }
            for &n in &no {
                assert!(!c.query(n));
            }
        }
    }
}
