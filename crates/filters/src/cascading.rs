//! Cascading Bloom filter for static yes/no lists, as used by CRLite
//! (Larisch et al., paper §2.4 and Fig. 9 baseline).
//!
//! Level 0 holds the yes list. Every no-list key that level 0 falsely
//! accepts goes into level 1; every yes-list key level 1 falsely accepts
//! goes into level 2, and so on until a level has no false positives
//! against the opposite list. A query walks the levels until one rejects:
//! acceptance by an even number of levels means "no", odd means "yes".
//! Exact for all keys in `yes ∪ no`; other keys err with the usual Bloom
//! probability.
//!
//! The construction is inherently batch-built, but the filter still
//! implements [`AmqFilter`] so generic harnesses can drive it: inserted
//! keys are buffered in an exact pending list (queried with no false
//! negatives *or* positives) and folded into a rebuilt cascade once the
//! buffer outgrows a fraction of the yes list — amortized O(log n)
//! rebuilds over n inserts, each O(n). The input lists are retained for
//! rebuilds; like the ACF/TQF shadow key arrays, they model the exact
//! store a deployment would already have, and are excluded from
//! [`AmqFilter::size_in_bytes`].

use aqf::FilterError;

use crate::bloom::BloomFilter;
use crate::common::AmqFilter;
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// A CRLite-style cascading Bloom filter.
pub struct CascadingBloomFilter {
    levels: Vec<BloomFilter>,
    yes: Vec<u64>,
    no: Vec<u64>,
    /// Yes-keys inserted since the last rebuild, answered exactly.
    pending: std::collections::HashSet<u64>,
    seed: u64,
}

impl CascadingBloomFilter {
    /// An empty, incrementally-fillable cascade (see the module docs for
    /// the amortized-rebuild semantics).
    pub fn new(seed: u64) -> Self {
        Self {
            levels: Vec::new(),
            yes: Vec::new(),
            no: Vec::new(),
            pending: std::collections::HashSet::new(),
            seed,
        }
    }

    /// Build from a yes list and a no list.
    ///
    /// `fpr0` is level 0's false-positive target (CRLite uses
    /// `n_yes / (sqrt(2) n_no)`-style sizing; we default each deeper level
    /// to 0.5 as in the original).
    pub fn build(yes: &[u64], no: &[u64], seed: u64) -> Result<Self, FilterError> {
        let mut f = Self::new(seed);
        f.yes = yes.to_vec();
        f.no = no.to_vec();
        f.rebuild()?;
        Ok(f)
    }

    /// Rebuild the cascade over `yes ∪ pending`, committing the new
    /// levels (and the merged yes list) only on success so a failed
    /// convergence leaves the filter exactly as it was.
    fn rebuild(&mut self) -> Result<(), FilterError> {
        let mut yes = self.yes.clone();
        yes.extend(self.pending.iter().copied());
        let levels = Self::build_levels(&yes, &self.no, self.seed)?;
        self.yes = yes;
        self.pending.clear();
        self.levels = levels;
        Ok(())
    }

    fn build_levels(yes: &[u64], no: &[u64], seed: u64) -> Result<Vec<BloomFilter>, FilterError> {
        let mut levels = Vec::new();
        // CRLite level-0 sizing: r = n_no/n_yes, fpr0 = 1/(r·sqrt(2)) capped.
        let fpr0 = if no.is_empty() {
            0.001
        } else {
            (yes.len() as f64 / (no.len() as f64 * std::f64::consts::SQRT_2)).clamp(1e-6, 0.5)
        };
        let mut include: Vec<u64> = yes.to_vec(); // keys this level stores
        let mut exclude: Vec<u64> = no.to_vec(); // keys it must reject
        let mut level = 0u64;
        while !include.is_empty() {
            let fpr = if level == 0 { fpr0 } else { 0.5 };
            let mut bf = BloomFilter::for_capacity(include.len(), fpr, seed ^ level)?;
            for &k in &include {
                bf.insert(k)?;
            }
            // Keys of the opposite list the new level falsely accepts form
            // the next level's include set.
            let fps: Vec<u64> = exclude
                .iter()
                .copied()
                .filter(|&k| bf.contains(k))
                .collect();
            levels.push(bf);
            exclude = std::mem::take(&mut include);
            include = fps;
            level += 1;
            if level > 64 {
                return Err(FilterError::InvalidConfig("cascade failed to converge"));
            }
        }
        Ok(levels)
    }

    /// True = "yes". Exact for keys in either input list.
    pub fn query(&self, key: u64) -> bool {
        let mut accepted = 0usize;
        for bf in &self.levels {
            if bf.contains(key) {
                accepted += 1;
            } else {
                break;
            }
        }
        accepted % 2 == 1 || self.pending.contains(&key)
    }

    /// Number of cascade levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total bytes across all levels.
    pub fn size_in_bytes(&self) -> usize {
        self.levels.iter().map(|b| b.size_in_bytes()).sum()
    }
}

impl SnapshotBody for CascadingBloomFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"CBCF");
        w.u64(self.seed);
        w.u64_slice(&self.yes);
        w.u64_slice(&self.no);
        let pending: Vec<u64> = self.pending.iter().copied().collect();
        w.u64_slice(&pending);
        w.u32(self.levels.len() as u32);
        for bf in &self.levels {
            bf.write_snapshot_body(w)?;
        }
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"CBCF")?;
        let seed = r.u64()?;
        let yes = r.u64_vec()?;
        let no = r.u64_vec()?;
        let pending: std::collections::HashSet<u64> = r.u64_vec()?.into_iter().collect();
        let n_levels = r.u32()? as usize;
        if n_levels > 64 {
            return Err(SnapError::corrupt(format!(
                "cascade depth {n_levels} exceeds bound"
            )));
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(BloomFilter::read_snapshot_body(r)?);
        }
        if levels.is_empty() && !yes.is_empty() {
            return Err(SnapError::corrupt(
                "non-empty yes list but no cascade levels",
            ));
        }
        Ok(Self {
            levels,
            yes,
            no,
            pending,
            seed,
        })
    }
}

impl AmqFilter for CascadingBloomFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        self.pending.insert(key);
        if self.pending.len() >= (self.yes.len() / 4).max(64) {
            self.rebuild()?;
        }
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        self.query(key)
    }

    fn len(&self) -> u64 {
        (self.yes.len() + self.pending.len()) as u64
    }

    fn size_in_bytes(&self) -> usize {
        CascadingBloomFilter::size_in_bytes(self)
    }

    fn name(&self) -> &'static str {
        "CBF"
    }

    /// Total bits across all cascade levels — 0 until the first rebuild
    /// materializes a cascade (pending keys live in a plain set).
    fn capacity(&self) -> u64 {
        self.levels.iter().map(AmqFilter::capacity).sum()
    }

    /// Bit-fill fraction across all levels, weighted by level size.
    fn load_factor(&self) -> f64 {
        let total: u64 = self.levels.iter().map(AmqFilter::capacity).sum();
        if total == 0 {
            return 0.0;
        }
        let ones: f64 = self
            .levels
            .iter()
            .map(|b| AmqFilter::load_factor(b) * AmqFilter::capacity(b) as f64)
            .sum();
        ones / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_both_lists() {
        let yes: Vec<u64> = (0..2000).collect();
        let no: Vec<u64> = (1_000_000..1_008_000).collect();
        let c = CascadingBloomFilter::build(&yes, &no, 7).unwrap();
        for &y in &yes {
            assert!(c.query(y), "yes key {y}");
        }
        for &n in &no {
            assert!(!c.query(n), "no key {n}");
        }
        assert!(c.depth() >= 1);
    }

    #[test]
    fn empty_no_list() {
        let yes: Vec<u64> = (0..100).collect();
        let c = CascadingBloomFilter::build(&yes, &[], 1).unwrap();
        for &y in &yes {
            assert!(c.query(y));
        }
    }

    #[test]
    fn empty_yes_list() {
        let no: Vec<u64> = (0..100).collect();
        let c = CascadingBloomFilter::build(&[], &no, 1).unwrap();
        for &n in &no {
            assert!(!c.query(n));
        }
    }

    #[test]
    fn skewed_ratios_stay_compact() {
        // Fig. 9's regime: aggregate fixed, ratio no/yes varying.
        for shift in 0..5u32 {
            let n_yes = 1000usize >> shift;
            let n_no = 1000 - n_yes;
            let yes: Vec<u64> = (0..n_yes as u64).collect();
            let no: Vec<u64> = (10_000..10_000 + n_no as u64).collect();
            let c = CascadingBloomFilter::build(&yes, &no, 3).unwrap();
            for &y in &yes {
                assert!(c.query(y));
            }
            for &n in &no {
                assert!(!c.query(n));
            }
        }
    }

    #[test]
    fn incremental_inserts_never_lose_keys() {
        let mut c = CascadingBloomFilter::new(9);
        // Grow from empty through several rebuild thresholds.
        for k in 0..2000u64 {
            c.insert(k * 13 + 1).unwrap();
        }
        assert_eq!(c.len(), 2000);
        for k in 0..2000u64 {
            assert!(c.contains(k * 13 + 1), "false negative {k}");
        }
        assert!(c.size_in_bytes() > 0, "rebuilds must have happened");
    }

    #[test]
    fn failed_rebuild_leaves_filter_intact() {
        // A key on both lists can never converge: it is a false positive
        // of every level, so the cascade exceeds its depth bound.
        let no: Vec<u64> = (0..100).collect();
        let mut c = CascadingBloomFilter::build(&[], &no, 2).unwrap();
        let mut failed = false;
        for k in 0..200u64 {
            // Key 0 is no-listed; inserting it poisons the next rebuild.
            if c.insert(k).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "overlapping yes/no key must fail the rebuild");
        // Every key inserted so far must still answer positive (the
        // failed rebuild committed nothing).
        for k in 0..64u64 {
            assert!(c.contains(k), "key {k} lost after failed rebuild");
        }
    }

    #[test]
    fn incremental_inserts_preserve_no_list() {
        let no: Vec<u64> = (500_000..501_000).collect();
        let mut c = CascadingBloomFilter::build(&(0..300).collect::<Vec<_>>(), &no, 4).unwrap();
        for k in 1000..1400u64 {
            c.insert(k).unwrap();
        }
        for &n in &no {
            assert!(!c.contains(n), "no-list key {n} leaked to yes");
        }
        for k in 1000..1400u64 {
            assert!(c.contains(k));
        }
    }
}
