//! [`AmqFilter`] / [`AdaptiveFilter`] implementations for the `aqf`
//! crate's filters ([`AdaptiveQf`], [`ShardedAqf`], [`YesNoFilter`]), so
//! the paper's own filter is driven through exactly the same interface as
//! the baselines it is evaluated against.
//!
//! The AdaptiveQF's reverse map is *external* (the backing database, or a
//! [`aqf::ShadowMap`] in microbenchmarks), so
//! [`AdaptiveFilter::stored_key`] returns `None` and callers resolve the
//! [`AdaptiveFilter::store_key`] — `pack_fingerprint_key(minirun_id,
//! rank)` — against their own map before calling
//! [`AdaptiveFilter::adapt`].

use aqf::revmap::{pack_fingerprint_key, unpack_fingerprint_key, RANK_BITS};
use aqf::{AdaptiveQf, FilterError, Hit, QueryResult, ShardedAqf, YesNoFilter};

use crate::common::{AdaptiveFilter, Adaptivity, AmqFilter};

impl AmqFilter for AdaptiveQf {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        AdaptiveQf::insert(self, key).map(|_| ())
    }

    fn contains(&self, key: u64) -> bool {
        AdaptiveQf::contains(self, key)
    }

    fn len(&self) -> u64 {
        AdaptiveQf::len(self)
    }

    fn size_in_bytes(&self) -> usize {
        AdaptiveQf::size_in_bytes(self)
    }

    fn name(&self) -> &'static str {
        "AQF"
    }

    fn capacity(&self) -> u64 {
        AdaptiveQf::capacity(self)
    }

    fn load_factor(&self) -> f64 {
        AdaptiveQf::load_factor(self)
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::Strong
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        AdaptiveQf::delete(self, key).map(|o| o.is_some())
    }

    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        AdaptiveQf::insert_batch(self, keys).map(|_| ())
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        AdaptiveQf::contains_batch(self, keys)
    }
}

impl AdaptiveFilter for AdaptiveQf {
    type Hit = Hit;

    fn query_hit(&self, key: u64) -> Option<Hit> {
        match self.query(key) {
            QueryResult::Positive(hit) => Some(hit),
            QueryResult::Negative => None,
        }
    }

    fn query_hit_batch(&self, keys: &[u64]) -> Vec<Option<Hit>> {
        self.query_batch(keys)
            .into_iter()
            .map(|r| match r {
                QueryResult::Positive(hit) => Some(hit),
                QueryResult::Negative => None,
            })
            .collect()
    }

    fn store_key(&self, hit: &Hit) -> u64 {
        pack_fingerprint_key(hit.minirun_id, hit.rank)
    }

    fn hit_at(&self, store_key: u64) -> Hit {
        let (minirun_id, rank) = unpack_fingerprint_key(store_key);
        // `ext_chunks` is diagnostic only; `adapt` re-reads the group's
        // current extent from the table.
        Hit {
            minirun_id,
            rank,
            ext_chunks: 0,
        }
    }

    fn stored_key(&self, _hit: &Hit) -> Option<u64> {
        None // the reverse map is external (database or ShadowMap)
    }

    fn adapt(&mut self, hit: &Hit, stored_key: u64, query_key: u64) -> Result<u32, FilterError> {
        AdaptiveQf::adapt(self, hit, stored_key, query_key)
    }
}

/// A positive [`ShardedAqf`] query: the shard it matched in, plus the
/// shard-local hit. Both are needed to address an external reverse map
/// unambiguously — shard-local minirun ids collide across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedHit {
    /// Index of the shard the key routed to.
    pub shard: usize,
    /// Hit within that shard's filter.
    pub hit: Hit,
}

/// Bits a shard-local packed fingerprint key occupies.
fn sharded_local_bits(f: &ShardedAqf) -> u32 {
    let cfg = f.shard_config();
    cfg.qbits + cfg.rbits + RANK_BITS
}

impl AmqFilter for ShardedAqf {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        ShardedAqf::insert(self, key).map(|_| ())
    }

    fn contains(&self, key: u64) -> bool {
        ShardedAqf::contains(self, key)
    }

    fn len(&self) -> u64 {
        ShardedAqf::len(self)
    }

    fn size_in_bytes(&self) -> usize {
        ShardedAqf::size_in_bytes(self)
    }

    fn name(&self) -> &'static str {
        "ShardedAQF"
    }

    fn capacity(&self) -> u64 {
        ShardedAqf::capacity(self)
    }

    fn load_factor(&self) -> f64 {
        ShardedAqf::load_factor(self)
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::Strong
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        ShardedAqf::delete(self, key).map(|o| o.is_some())
    }

    fn insert_batch(&mut self, keys: &[u64]) -> Result<(), FilterError> {
        ShardedAqf::insert_batch(self, keys).map(|_| ())
    }

    fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        ShardedAqf::contains_batch(self, keys)
    }
}

impl AdaptiveFilter for ShardedAqf {
    type Hit = ShardedHit;

    fn query_hit(&self, key: u64) -> Option<ShardedHit> {
        match self.query(key) {
            QueryResult::Positive(hit) => Some(ShardedHit {
                shard: self.shard_of(key),
                hit,
            }),
            QueryResult::Negative => None,
        }
    }

    fn query_hit_batch(&self, keys: &[u64]) -> Vec<Option<ShardedHit>> {
        self.query_batch(keys)
            .into_iter()
            .zip(keys)
            .map(|(r, &k)| match r {
                QueryResult::Positive(hit) => Some(ShardedHit {
                    shard: self.shard_of(k),
                    hit,
                }),
                QueryResult::Negative => None,
            })
            .collect()
    }

    fn store_key(&self, hit: &ShardedHit) -> u64 {
        let local_bits = sharded_local_bits(self);
        debug_assert!(local_bits + self.shard_bits() <= 64, "store key overflow");
        ((hit.shard as u64) << local_bits) | pack_fingerprint_key(hit.hit.minirun_id, hit.hit.rank)
    }

    fn hit_at(&self, store_key: u64) -> ShardedHit {
        let local_bits = sharded_local_bits(self);
        let (minirun_id, rank) = unpack_fingerprint_key(store_key & ((1u64 << local_bits) - 1));
        ShardedHit {
            shard: (store_key >> local_bits) as usize,
            hit: Hit {
                minirun_id,
                rank,
                ext_chunks: 0,
            },
        }
    }

    fn stored_key(&self, _hit: &ShardedHit) -> Option<u64> {
        None // the reverse map is external, like the flat AQF's
    }

    fn adapt(
        &mut self,
        hit: &ShardedHit,
        stored_key: u64,
        query_key: u64,
    ) -> Result<u32, FilterError> {
        debug_assert_eq!(
            self.shard_of(query_key),
            hit.shard,
            "hit must come from a query for query_key on this filter"
        );
        ShardedAqf::adapt(self, &hit.hit, stored_key, query_key)
    }
}

impl AmqFilter for YesNoFilter {
    /// Adds `key` to the **yes** list (use the inherent
    /// [`YesNoFilter::insert_no`] for no-listing).
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        self.insert_yes(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.query(key).is_yes()
    }

    fn len(&self) -> u64 {
        (self.yes_len() + self.no_len()) as u64
    }

    fn size_in_bytes(&self) -> usize {
        self.filter_size_in_bytes()
    }

    fn name(&self) -> &'static str {
        "YesNo"
    }

    fn capacity(&self) -> u64 {
        self.filter().capacity()
    }

    fn load_factor(&self) -> f64 {
        self.filter().load_factor()
    }

    /// The yes/no filter adapts *internally at insert time* (collisions
    /// between the lists are separated eagerly); it exposes no query-side
    /// adaptation hook, so to external callers it reports
    /// [`Adaptivity::None`].
    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::None
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn delete(&mut self, key: u64) -> Result<bool, FilterError> {
        self.remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqf::AqfConfig;

    #[test]
    fn sharded_store_keys_roundtrip_and_disambiguate_shards() {
        let f = ShardedAqf::new(AqfConfig::new(12, 9).with_seed(3), 2).unwrap();
        for k in 0..2000u64 {
            ShardedAqf::insert(&f, k).unwrap();
        }
        let mut seen_shards = std::collections::HashSet::new();
        for k in 0..2000u64 {
            let hit = f.query_hit(k).expect("member");
            let sk = f.store_key(&hit);
            let back = f.hit_at(sk);
            assert_eq!(back.shard, hit.shard);
            assert_eq!(back.hit.minirun_id, hit.hit.minirun_id);
            assert_eq!(back.hit.rank, hit.hit.rank);
            seen_shards.insert(hit.shard);
        }
        assert!(seen_shards.len() > 1, "keys should spread across shards");
    }
}
