//! Adaptive cuckoo filter (paper's "ACF", Mitzenmacher et al. 2020),
//! cyclic per-slot hash-selector variant.
//!
//! Each occupied slot stores a tag plus a 2-bit *selector* choosing which
//! tag hash produced it. On a reported false positive the selector is
//! incremented and the tag recomputed from the original key — which lives
//! in the reverse map, so adaptation costs a map query. Unlike the
//! partial-key cuckoo filter, both candidate buckets are derived from the
//! key (a selector-dependent tag cannot address the alternate bucket), so
//! **every kick needs a reverse-map query and update** — the overhead
//! paper Table 2 quantifies. A shadow key array stands in for the map and
//! the [`MapStats`] counters record the traffic.
//!
//! The ACF is *weakly* adaptive: fixing one false positive can re-expose a
//! previously fixed one (the selector cycles through 4 tag functions).

use aqf::FilterError;
use aqf_bits::hash::mix64;
use aqf_bits::word::bitmask;
use aqf_bits::PackedVec;

use crate::common::{AdaptiveFilter, Adaptivity, AmqFilter, MapEvent, MapEventSource, MapStats};
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// Slots per bucket.
pub const BUCKET_SLOTS: usize = 4;
const SELECTOR_BITS: u32 = 2;
const MAX_KICKS: usize = 500;

/// Coordinates of a positive ACF query (for adaptation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcfHit {
    /// Bucket index.
    pub bucket: usize,
    /// Slot within the bucket.
    pub slot: usize,
}

/// An adaptive cuckoo filter.
#[derive(Clone, Debug)]
pub struct AdaptiveCuckooFilter {
    /// `(selector << tag_bits) | tag` per slot; 0 = empty.
    table: PackedVec,
    /// Shadow reverse map: original key per slot.
    keys: Vec<u64>,
    #[allow(dead_code)] // geometry record for diagnostics
    buckets: usize,
    bucket_bits: u32,
    tag_bits: u32,
    seed: u64,
    items: u64,
    stats: MapStats,
    adaptations: u64,
    record_events: bool,
    events: Vec<MapEvent>,
}

impl AdaptiveCuckooFilter {
    /// `2^bucket_bits` buckets of 4 slots with `tag_bits`-bit tags.
    pub fn new(bucket_bits: u32, tag_bits: u32, seed: u64) -> Result<Self, FilterError> {
        if bucket_bits == 0 || bucket_bits > 32 || tag_bits < 4 || tag_bits + SELECTOR_BITS > 40 {
            return Err(FilterError::InvalidConfig("bad ACF geometry"));
        }
        let buckets = 1usize << bucket_bits;
        Ok(Self {
            table: PackedVec::new(buckets * BUCKET_SLOTS, tag_bits + SELECTOR_BITS),
            keys: vec![0; buckets * BUCKET_SLOTS],
            buckets,
            bucket_bits,
            tag_bits,
            seed,
            items: 0,
            stats: MapStats::default(),
            adaptations: 0,
            record_events: false,
            events: Vec::new(),
        })
    }

    /// Enable recording of reverse-map operations for system-level replay.
    pub fn set_event_recording(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Drain recorded reverse-map operations (in execution order).
    pub fn take_events(&mut self) -> Vec<MapEvent> {
        std::mem::take(&mut self.events)
    }

    #[inline]
    fn record(&mut self, e: MapEvent) {
        if self.record_events {
            self.events.push(e);
        }
    }

    /// Stored items.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Reverse-map traffic counters (paper Table 2).
    pub fn map_stats(&self) -> MapStats {
        self.stats
    }

    /// Number of adapt calls performed.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    #[inline]
    fn tag_hash(&self, key: u64, sel: u64) -> u64 {
        let t = mix64(key, self.seed ^ (0x100 + sel)) & bitmask(self.tag_bits);
        if t == 0 {
            1
        } else {
            t
        }
    }

    #[inline]
    fn bucket_pair(&self, key: u64) -> (usize, usize) {
        let b1 = (mix64(key, self.seed ^ 0xb1) >> (64 - self.bucket_bits)) as usize;
        let b2 = (mix64(key, self.seed ^ 0xb2) >> (64 - self.bucket_bits)) as usize;
        (b1, b2)
    }

    #[inline]
    fn slot_index(&self, b: usize, s: usize) -> usize {
        b * BUCKET_SLOTS + s
    }

    fn read_slot(&self, b: usize, s: usize) -> (u64, u64) {
        let v = self.table.get(self.slot_index(b, s));
        (v >> self.tag_bits, v & bitmask(self.tag_bits))
    }

    fn write_slot(&mut self, b: usize, s: usize, sel: u64, tag: u64) {
        self.table
            .set(self.slot_index(b, s), (sel << self.tag_bits) | tag);
    }

    fn try_place(&mut self, b: usize, key: u64) -> bool {
        for s in 0..BUCKET_SLOTS {
            let idx = self.slot_index(b, s);
            if self.table.get(idx) == 0 {
                let tag = self.tag_hash(key, 0);
                self.write_slot(b, s, 0, tag);
                self.keys[idx] = key;
                self.record(MapEvent::Put { loc: idx, key });
                return true;
            }
        }
        false
    }

    /// Query returning the matching slot for adaptation.
    pub fn query_slot(&self, key: u64) -> Option<AcfHit> {
        let (b1, b2) = self.bucket_pair(key);
        for &b in &[b1, b2] {
            for s in 0..BUCKET_SLOTS {
                let raw = self.table.get(self.slot_index(b, s));
                if raw == 0 {
                    continue;
                }
                let (sel, tag) = self.read_slot(b, s);
                if self.tag_hash(key, sel) == tag {
                    return Some(AcfHit { bucket: b, slot: s });
                }
            }
        }
        None
    }

    /// The key the shadow reverse map holds for a slot.
    pub fn stored_key(&self, hit: &AcfHit) -> u64 {
        self.keys[self.slot_index(hit.bucket, hit.slot)]
    }

    /// Adapt after a confirmed false positive at `hit`: advance the slot's
    /// selector and recompute its tag from the stored key (one reverse-map
    /// query). Weakly adaptive: the new tag may collide with other past
    /// queries.
    pub fn adapt(&mut self, hit: &AcfHit) {
        let idx = self.slot_index(hit.bucket, hit.slot);
        let key = self.keys[idx];
        self.stats.queries += 1; // map read to re-derive the tag
        self.record(MapEvent::Get { loc: idx });
        let (sel, _) = self.read_slot(hit.bucket, hit.slot);
        let new_sel = (sel + 1) & bitmask(SELECTOR_BITS);
        let new_tag = self.tag_hash(key, new_sel);
        self.write_slot(hit.bucket, hit.slot, new_sel, new_tag);
        self.adaptations += 1;
    }
}

impl SnapshotBody for AdaptiveCuckooFilter {
    /// Serializes the filter table **and** the shadow key array: the
    /// selectors stored per slot are only meaningful together with the
    /// original keys they are re-derived from, so adaptation state
    /// survives the round trip. Pending event traces are not persisted
    /// (the system layer drains them per operation).
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"ACCF");
        w.u32(self.bucket_bits);
        w.u32(self.tag_bits);
        w.u64(self.seed);
        w.u64(self.items);
        w.u64(self.adaptations);
        w.u64(self.stats.inserts);
        w.u64(self.stats.updates);
        w.u64(self.stats.queries);
        w.section(*b"ACTB");
        w.packed(&self.table);
        w.u64_slice(&self.keys);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"ACCF")?;
        let bucket_bits = r.u32()?;
        let tag_bits = r.u32()?;
        let seed = r.u64()?;
        let items = r.u64()?;
        let adaptations = r.u64()?;
        let stats = MapStats {
            inserts: r.u64()?,
            updates: r.u64()?,
            queries: r.u64()?,
        };
        if bucket_bits == 0 || bucket_bits > 32 || tag_bits < 4 || tag_bits + SELECTOR_BITS > 40 {
            return Err(SnapError::corrupt("bad ACF geometry"));
        }
        let buckets = 1usize << bucket_bits;
        r.section(*b"ACTB")?;
        let table = r.packed()?;
        let keys = r.u64_vec()?;
        if table.len() != buckets * BUCKET_SLOTS || table.width() != tag_bits + SELECTOR_BITS {
            return Err(SnapError::corrupt("ACF table disagrees with geometry"));
        }
        if keys.len() != table.len() {
            return Err(SnapError::corrupt(format!(
                "shadow key array holds {} slots, table has {}",
                keys.len(),
                table.len()
            )));
        }
        let occupied = (0..table.len()).filter(|&i| table.get(i) != 0).count() as u64;
        if occupied != items {
            return Err(SnapError::corrupt(format!(
                "item count {items} disagrees with {occupied} occupied slots"
            )));
        }
        Ok(Self {
            table,
            keys,
            buckets,
            bucket_bits,
            tag_bits,
            seed,
            items,
            stats,
            adaptations,
            record_events: false,
            events: Vec::new(),
        })
    }
}

impl AmqFilter for AdaptiveCuckooFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        self.stats.inserts += 1;
        let (b1, b2) = self.bucket_pair(key);
        if self.try_place(b1, key) || self.try_place(b2, key) {
            self.items += 1;
            return Ok(());
        }
        // Kick loop: every relocation must re-derive the victim's alternate
        // bucket from its original key — a reverse-map query — and then
        // rewrite the victim's map entry at its new location — an update.
        let mut b = b1;
        let mut cur_key = key;
        for kick in 0..MAX_KICKS {
            let s = (mix64(cur_key.wrapping_add(kick as u64), 0x6b69) as usize) % BUCKET_SLOTS;
            let idx = self.slot_index(b, s);
            let victim_key = self.keys[idx];
            self.stats.queries += 1; // read victim's key from the map
            self.record(MapEvent::Get { loc: idx });
            // Place cur_key here.
            let tag = self.tag_hash(cur_key, 0);
            self.write_slot(b, s, 0, tag);
            self.keys[idx] = cur_key;
            self.stats.updates += 1; // rewrite map entry at this location
            self.record(MapEvent::Put {
                loc: idx,
                key: cur_key,
            });
            // Re-home the victim to its other bucket.
            let (v1, v2) = self.bucket_pair(victim_key);
            b = if b == v1 { v2 } else { v1 };
            if self.try_place(b, victim_key) {
                self.stats.updates += 1;
                self.items += 1;
                return Ok(());
            }
            cur_key = victim_key;
        }
        Err(FilterError::Full)
    }

    fn contains(&self, key: u64) -> bool {
        self.query_slot(key).is_some()
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        // Filter table only; the shadow key array models the reverse map,
        // which the paper accounts separately.
        self.table.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "ACF"
    }

    fn capacity(&self) -> u64 {
        (self.buckets * BUCKET_SLOTS) as u64
    }

    fn adaptivity(&self) -> Adaptivity {
        // The 2-bit selector cycles: fixing one false positive can
        // re-expose another.
        Adaptivity::Weak
    }
}

impl AdaptiveFilter for AdaptiveCuckooFilter {
    type Hit = AcfHit;

    fn query_hit(&self, key: u64) -> Option<AcfHit> {
        self.query_slot(key)
    }

    fn store_key(&self, hit: &AcfHit) -> u64 {
        self.slot_index(hit.bucket, hit.slot) as u64
    }

    fn hit_at(&self, store_key: u64) -> AcfHit {
        AcfHit {
            bucket: store_key as usize / BUCKET_SLOTS,
            slot: store_key as usize % BUCKET_SLOTS,
        }
    }

    fn stored_key(&self, hit: &AcfHit) -> Option<u64> {
        Some(self.keys[self.slot_index(hit.bucket, hit.slot)])
    }

    fn adapt(
        &mut self,
        hit: &AcfHit,
        _stored_key: u64,
        _query_key: u64,
    ) -> Result<u32, FilterError> {
        // The ACF re-derives the tag from its internal shadow map; the
        // caller-resolved keys are not needed.
        AdaptiveCuckooFilter::adapt(self, hit);
        Ok(1)
    }
}

impl MapEventSource for AdaptiveCuckooFilter {
    fn set_event_recording(&mut self, on: bool) {
        AdaptiveCuckooFilter::set_event_recording(self, on);
    }

    fn take_events(&mut self) -> Vec<MapEvent> {
        AdaptiveCuckooFilter::take_events(self)
    }

    fn map_stats(&self) -> MapStats {
        AdaptiveCuckooFilter::map_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn no_false_negatives_after_inserts() {
        let mut f = AdaptiveCuckooFilter::new(10, 12, 3).unwrap();
        let keys: Vec<u64> = (0..3500).map(|i| i * 13 + 5).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(f.contains(k), "false negative {k}");
        }
    }

    #[test]
    fn adapt_fixes_reported_false_positive() {
        let mut f = AdaptiveCuckooFilter::new(10, 8, 3).unwrap();
        for k in 0..3000u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(8);
        let mut fixed = 0;
        let mut tries = 0;
        while fixed < 50 && tries < 2_000_000 {
            tries += 1;
            let probe: u64 = rng.random_range(1_000_000..u64::MAX);
            if let Some(hit) = f.query_slot(probe) {
                if f.stored_key(&hit) != probe {
                    f.adapt(&hit);
                    // The same probe should (almost always) now miss this
                    // slot; it may still hit another slot, which a real
                    // system would adapt in turn.
                    let mut guard = 0;
                    while let Some(h2) = f.query_slot(probe) {
                        f.adapt(&h2);
                        guard += 1;
                        if guard > 8 {
                            break; // selector cycling can livelock; give up
                        }
                    }
                    if f.query_slot(probe).is_none() {
                        fixed += 1;
                    }
                }
            }
        }
        assert!(fixed >= 50, "adaptation should usually fix false positives");
        assert!(f.map_stats().queries > 0);
        // True members must never be lost by adaptation of other slots.
        for k in (0..3000u64).step_by(37) {
            assert!(f.contains(k), "member {k} lost");
        }
    }

    #[test]
    fn kicks_generate_map_traffic() {
        let mut f = AdaptiveCuckooFilter::new(8, 12, 1).unwrap();
        for k in 0..920u64 {
            if f.insert(k).is_err() {
                break;
            }
        }
        let st = f.map_stats();
        assert!(st.queries > 0, "high load must force kicks → map queries");
        assert!(st.updates >= st.queries, "each kick updates the map");
    }
}
