//! Classic Bloom filter, used as the building block of the cascading
//! Bloom filter (CRLite) and as a familiar baseline.

use aqf::FilterError;
use aqf_bits::hash::mix64;
use aqf_bits::BitVec;

use crate::common::AmqFilter;
use crate::snapshot::{SnapError, SnapshotBody, SnapshotReader, SnapshotWriter};

/// A standard Bloom filter with `k` hash functions.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    nbits: usize,
    k: u32,
    seed: u64,
    items: u64,
}

impl BloomFilter {
    /// A filter with `nbits` bits and `k` hash functions.
    pub fn new(nbits: usize, k: u32, seed: u64) -> Result<Self, FilterError> {
        if nbits == 0 || k == 0 || k > 32 {
            return Err(FilterError::InvalidConfig("bad bloom geometry"));
        }
        Ok(Self {
            bits: BitVec::new(nbits),
            nbits,
            k,
            seed,
            items: 0,
        })
    }

    /// Optimal geometry for `n` items at false-positive rate `fpr`:
    /// `m = -n ln fpr / (ln 2)^2`, `k = m/n ln 2`.
    pub fn for_capacity(n: usize, fpr: f64, seed: u64) -> Result<Self, FilterError> {
        let n = n.max(1) as f64;
        let m = (-n * fpr.ln() / (2f64.ln() * 2f64.ln())).ceil().max(64.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 32.0) as u32;
        Self::new(m, k, seed)
    }

    /// Number of inserted items.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    #[inline]
    fn position(&self, key: u64, i: u32) -> usize {
        // Kirsch–Mitzenmacher double hashing.
        let h1 = mix64(key, self.seed);
        let h2 = mix64(key, self.seed ^ 0x5bd1_e995) | 1;
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits as u64) as usize
    }
}

impl SnapshotBody for BloomFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        w.section(*b"BFCF");
        w.u64(self.nbits as u64);
        w.u32(self.k);
        w.u64(self.seed);
        w.u64(self.items);
        w.section(*b"BFBT");
        w.bitvec(&self.bits);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        r.section(*b"BFCF")?;
        let nbits = r.len_u64()?;
        let k = r.u32()?;
        let seed = r.u64()?;
        let items = r.u64()?;
        if nbits == 0 || k == 0 || k > 32 {
            return Err(SnapError::corrupt("bad bloom geometry"));
        }
        r.section(*b"BFBT")?;
        let bits = r.bitvec()?;
        if bits.len() != nbits {
            return Err(SnapError::corrupt(format!(
                "bit array holds {} bits, header says {nbits}",
                bits.len()
            )));
        }
        Ok(Self {
            bits,
            nbits,
            k,
            seed,
            items,
        })
    }
}

impl AmqFilter for BloomFilter {
    fn insert(&mut self, key: u64) -> Result<(), FilterError> {
        for i in 0..self.k {
            let p = self.position(key, i);
            self.bits.set(p);
        }
        self.items += 1;
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| self.bits.get(self.position(key, i)))
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.bits.heap_size_bytes()
    }

    fn name(&self) -> &'static str {
        "Bloom"
    }

    fn capacity(&self) -> u64 {
        self.nbits as u64
    }

    /// Bit-array fill fraction (set bits / total bits), not items over a
    /// slot budget — a Bloom filter has no per-item slots.
    fn load_factor(&self) -> f64 {
        self.bits.count_ones() as f64 / self.nbits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(1000, 0.01, 3).unwrap();
        for k in 0..1000u64 {
            f.insert(k).unwrap();
        }
        for k in 0..1000u64 {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn fpr_near_target() {
        let mut f = BloomFilter::for_capacity(5000, 0.01, 9).unwrap();
        for k in 0..5000u64 {
            f.insert(k).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let probes = 100_000;
        let fps = (0..probes)
            .filter(|_| f.contains(rng.random_range(1_000_000..u64::MAX)))
            .count();
        let fpr = fps as f64 / probes as f64;
        assert!(fpr < 0.03, "fpr {fpr} too far above 1% target");
        assert!(fpr > 0.001, "fpr {fpr} suspiciously low — check hashing");
    }
}
