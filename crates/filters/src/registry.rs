//! String-keyed filter registry: a [`FilterSpec`] names a filter kind and
//! its geometry; [`build`] turns it into a ready [`DynFilter`].
//!
//! This is the single place a new filter has to be added for every
//! benchmark binary's `--filter=<kind>` flag, the conformance test
//! suite, and `aqf-storage`'s `FilteredDb` to pick it up.
//!
//! All kinds share one slot budget convention (the paper's §6.2 setup):
//! `2^qbits` slots at ≈`2^-rbits` false-positive rate. QF-family filters
//! take `rbits`-bit remainders; CF-family filters take `tag_bits`-bit
//! tags in 4-slot buckets (so `2^(qbits-2)` buckets); the Bloom baseline
//! is sized for 90% of the slot budget at the same ε.
//!
//! ```
//! use aqf_filters::registry::{self, FilterSpec};
//!
//! for kind in ["aqf", "qf", "tqf"] {
//!     let mut f = registry::build(&FilterSpec::new(kind, 10)).unwrap();
//!     for k in 0..500u64 {
//!         f.insert(k).unwrap();
//!     }
//!     assert!((0..500u64).all(|k| f.contains(k)), "{kind} lost a key");
//! }
//! ```

use std::path::Path;

use aqf::{AdaptiveQf, AqfConfig, FilterError, ShardedAqf, YesNoFilter};
use aqf_bits::snapshot::{read_file, write_atomic};

use crate::acf::AdaptiveCuckooFilter;
use crate::bloom::BloomFilter;
use crate::cascading::CascadingBloomFilter;
use crate::cuckoo::CuckooFilter;
use crate::dynfilter::{AqfDyn, DynFilter, LocDyn, PlainDyn, ShardedAqfDyn};
use crate::quotient::QuotientFilter;
use crate::snapshot::{SnapError, SnapshotReader};
use crate::telescoping::TelescopingFilter;

/// A buildable filter description: kind string plus shared geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterSpec {
    /// Registry kind (see [`kinds`]): `"aqf"`, `"sharded-aqf"`,
    /// `"yesno"`, `"tqf"`, `"acf"`, `"qf"`, `"cf"`, `"bloom"`, `"cbf"`.
    pub kind: String,
    /// log2 of the common slot budget.
    pub qbits: u32,
    /// Remainder bits for QF-family kinds; also sets the Bloom baseline's
    /// ε = `2^-rbits`. Default 9 (the paper's ε ≈ 2^-9).
    pub rbits: u32,
    /// Tag bits for CF-family kinds (CF, ACF). Default 12 (the paper's
    /// 12-bit tags: ε ≈ 8·2^-12 ≈ 2^-9).
    pub tag_bits: u32,
    /// Hash seed.
    pub seed: u64,
    /// log2 shard count for `"sharded-aqf"` (must be < `qbits`).
    /// Default 3.
    pub shard_bits: u32,
}

impl FilterSpec {
    /// A spec with the paper's default geometry at `2^qbits` slots.
    pub fn new(kind: impl Into<String>, qbits: u32) -> Self {
        Self {
            kind: kind.into(),
            qbits,
            rbits: 9,
            tag_bits: 12,
            seed: 1,
            shard_bits: 3,
        }
    }

    /// Set the remainder width (QF-family ε = `2^-rbits`).
    pub fn with_rbits(mut self, rbits: u32) -> Self {
        self.rbits = rbits;
        self
    }

    /// Set the tag width (CF-family).
    pub fn with_tag_bits(mut self, tag_bits: u32) -> Self {
        self.tag_bits = tag_bits;
        self
    }

    /// Set the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the shard count (log2) for `"sharded-aqf"`.
    pub fn with_shard_bits(mut self, shard_bits: u32) -> Self {
        self.shard_bits = shard_bits;
        self
    }

    /// The [`AqfConfig`] equivalent of this spec (AQF-family kinds).
    pub fn aqf_config(&self) -> AqfConfig {
        AqfConfig::new(self.qbits, self.rbits).with_seed(self.seed)
    }

    /// Build the filter ([`build`]).
    pub fn build(&self) -> Result<Box<dyn DynFilter>, FilterError> {
        build(self)
    }
}

/// One registered filter kind.
struct KindEntry {
    name: &'static str,
    summary: &'static str,
    build: fn(&FilterSpec) -> Result<Box<dyn DynFilter>, FilterError>,
    /// Rebuild this kind from the body sections of a snapshot frame whose
    /// header named it (see [`load_snapshot`]).
    load: fn(&mut SnapshotReader<'_>) -> Result<Box<dyn DynFilter>, SnapError>,
}

/// CF-family bucket count: 4-slot buckets over the same slot budget.
fn bucket_bits(spec: &FilterSpec) -> Result<u32, FilterError> {
    spec.qbits
        .checked_sub(2)
        .filter(|&b| b > 0)
        .ok_or(FilterError::InvalidConfig(
            "cuckoo-family kinds need qbits >= 3",
        ))
}

static KINDS: &[KindEntry] = &[
    KindEntry {
        name: "aqf",
        summary: "AdaptiveQF (paper §4): strongly, monotonically adaptive",
        build: |s| Ok(Box::new(AqfDyn::new(AdaptiveQf::new(s.aqf_config())?))),
        load: |r| Ok(Box::new(AqfDyn::read_snapshot(r)?)),
    },
    KindEntry {
        name: "sharded-aqf",
        summary: "Partitioned thread-safe AdaptiveQF (paper §6.3, Fig. 4)",
        build: |s| {
            Ok(Box::new(ShardedAqfDyn::new(ShardedAqf::new(
                s.aqf_config(),
                s.shard_bits,
            )?)))
        },
        load: |r| Ok(Box::new(ShardedAqfDyn::read_snapshot(r)?)),
    },
    KindEntry {
        name: "yesno",
        summary: "Dynamic yes/no-list AQF (paper §4.3); insert = yes-list",
        build: |s| {
            Ok(Box::new(PlainDyn::new(
                "yesno",
                YesNoFilter::with_config(s.aqf_config())?,
            )))
        },
        load: |r| {
            Ok(Box::new(PlainDyn::<YesNoFilter>::read_snapshot(
                "yesno", r,
            )?))
        },
    },
    KindEntry {
        name: "tqf",
        summary: "Telescoping QF (Lee et al.): selector-based, weakly adaptive",
        build: |s| {
            Ok(Box::new(LocDyn::new(
                "tqf",
                TelescopingFilter::new(s.qbits, s.rbits, s.seed)?,
            )))
        },
        load: |r| {
            Ok(Box::new(LocDyn::<TelescopingFilter>::read_snapshot(
                "tqf", r,
            )?))
        },
    },
    KindEntry {
        name: "acf",
        summary: "Adaptive cuckoo filter (Mitzenmacher et al.): weakly adaptive",
        build: |s| {
            Ok(Box::new(LocDyn::new(
                "acf",
                AdaptiveCuckooFilter::new(bucket_bits(s)?, s.tag_bits, s.seed)?,
            )))
        },
        load: |r| {
            Ok(Box::new(LocDyn::<AdaptiveCuckooFilter>::read_snapshot(
                "acf", r,
            )?))
        },
    },
    KindEntry {
        name: "qf",
        summary: "Plain quotient filter (Pandey et al.): non-adaptive baseline",
        build: |s| {
            Ok(Box::new(PlainDyn::new(
                "qf",
                QuotientFilter::new(s.qbits, s.rbits, s.seed)?,
            )))
        },
        load: |r| {
            Ok(Box::new(PlainDyn::<QuotientFilter>::read_snapshot(
                "qf", r,
            )?))
        },
    },
    KindEntry {
        name: "cf",
        summary: "Cuckoo filter (Fan et al.): non-adaptive baseline",
        build: |s| {
            Ok(Box::new(PlainDyn::new(
                "cf",
                CuckooFilter::new(bucket_bits(s)?, s.tag_bits, s.seed)?,
            )))
        },
        load: |r| Ok(Box::new(PlainDyn::<CuckooFilter>::read_snapshot("cf", r)?)),
    },
    KindEntry {
        name: "bloom",
        summary: "Classic Bloom filter sized for 90% of the slot budget",
        build: |s| {
            let n = ((1u64 << s.qbits) as f64 * 0.9) as usize;
            Ok(Box::new(PlainDyn::new(
                "bloom",
                BloomFilter::for_capacity(n, 0.5f64.powi(s.rbits as i32), s.seed)?,
            )))
        },
        load: |r| {
            Ok(Box::new(PlainDyn::<BloomFilter>::read_snapshot(
                "bloom", r,
            )?))
        },
    },
    KindEntry {
        name: "cbf",
        summary: "Cascading Bloom filter (CRLite): static yes/no baseline",
        build: |s| {
            Ok(Box::new(PlainDyn::new(
                "cbf",
                CascadingBloomFilter::new(s.seed),
            )))
        },
        load: |r| {
            Ok(Box::new(PlainDyn::<CascadingBloomFilter>::read_snapshot(
                "cbf", r,
            )?))
        },
    },
];

/// All registered kind strings, in display order.
pub fn kinds() -> Vec<&'static str> {
    KINDS.iter().map(|k| k.name).collect()
}

/// The five kinds the paper's main figures compare, adaptive first.
pub fn paper_kinds() -> &'static [&'static str] {
    &["aqf", "tqf", "acf", "qf", "cf"]
}

/// One-line description of a kind, if registered.
pub fn describe(kind: &str) -> Option<&'static str> {
    KINDS.iter().find(|k| k.name == kind).map(|k| k.summary)
}

/// Build a filter from a spec. Unknown kinds are
/// [`FilterError::InvalidConfig`]; see [`kinds`] for the valid set.
pub fn build(spec: &FilterSpec) -> Result<Box<dyn DynFilter>, FilterError> {
    let entry = KINDS
        .iter()
        .find(|k| k.name == spec.kind)
        .ok_or(FilterError::InvalidConfig(
            "unknown filter kind (see aqf_filters::registry::kinds())",
        ))?;
    (entry.build)(spec)
}

/// The registry kind string a snapshot frame was written for, without
/// decoding its body. Verifies the frame (magic, version, checksum) first.
pub fn snapshot_kind(bytes: &[u8]) -> Result<String, SnapError> {
    Ok(SnapshotReader::new(bytes)?.kind().to_string())
}

/// Rebuild a `Box<dyn DynFilter>` from a snapshot produced by
/// [`DynFilter::snapshot_bytes`], dispatching on the frame's header kind
/// string. All 9 registry kinds round-trip through this path; frames
/// carrying an unregistered kind are [`SnapError::WrongKind`].
///
/// ```
/// use aqf_filters::registry::{self, FilterSpec};
///
/// let mut f = registry::build(&FilterSpec::new("qf", 10)).unwrap();
/// for k in 0..500u64 {
///     f.insert(k).unwrap();
/// }
/// let bytes = f.snapshot_bytes().unwrap();
/// let g = registry::load_snapshot(&bytes).unwrap();
/// assert_eq!(g.kind(), "qf");
/// assert!((0..500u64).all(|k| g.contains(k)));
/// ```
pub fn load_snapshot(bytes: &[u8]) -> Result<Box<dyn DynFilter>, SnapError> {
    load_snapshot_in(bytes, None)
}

/// [`load_snapshot`] with a base directory for external table
/// references: a frame whose filter migrated to a file-backed arena
/// ([`DynFilter::set_file_backing`]) names its arena file, and the open
/// resolves that name inside `base_dir` (mapping the table instead of
/// decoding it). Frames with inline tables ignore `base_dir`; external
/// frames loaded with `None` fail with a typed
/// [`SnapError::Unsupported`].
pub fn load_snapshot_in(
    bytes: &[u8],
    base_dir: Option<&Path>,
) -> Result<Box<dyn DynFilter>, SnapError> {
    let mut r = SnapshotReader::new_in(bytes, base_dir)?;
    load_from_reader(&mut r)
}

/// [`load_snapshot`], but error with [`SnapError::WrongKind`] unless the
/// frame's kind is exactly `kind` — for callers that know what they
/// persisted and must not silently accept a different filter. The frame
/// is parsed and checksummed once.
pub fn load_snapshot_as(kind: &str, bytes: &[u8]) -> Result<Box<dyn DynFilter>, SnapError> {
    let mut r = SnapshotReader::new(bytes)?;
    r.expect_kind(kind)?;
    load_from_reader(&mut r)
}

/// Dispatch an already-verified frame to its kind's loader.
fn load_from_reader(r: &mut SnapshotReader<'_>) -> Result<Box<dyn DynFilter>, SnapError> {
    let kind = r.kind();
    let entry = KINDS
        .iter()
        .find(|k| k.name == kind)
        .ok_or_else(|| SnapError::WrongKind {
            expected: "a registered filter kind".to_string(),
            found: kind.to_string(),
        })?;
    (entry.load)(r)
}

/// Save a filter's snapshot atomically to `path`
/// (write-temp-then-rename; see `aqf_bits::snapshot::write_atomic`).
pub fn save_snapshot(filter: &dyn DynFilter, path: &Path) -> Result<(), SnapError> {
    Ok(write_atomic(path, &filter.snapshot_bytes()?)?)
}

/// Load a filter saved by [`save_snapshot`]. External table references
/// (file-backed arenas) resolve against the snapshot's own directory.
pub fn load_snapshot_file(path: &Path) -> Result<Box<dyn DynFilter>, SnapError> {
    load_snapshot_in(&read_file(path)?, path.parent())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_reports_its_kind() {
        for kind in kinds() {
            let f = build(&FilterSpec::new(kind, 10)).unwrap_or_else(|e| {
                panic!("kind {kind} failed to build: {e}");
            });
            assert_eq!(f.kind(), kind);
            assert!(!f.name().is_empty());
        }
    }

    #[test]
    fn unknown_kind_is_an_error() {
        assert!(build(&FilterSpec::new("nope", 10)).is_err());
    }

    #[test]
    fn paper_kinds_are_registered() {
        for kind in paper_kinds() {
            assert!(kinds().contains(kind), "{kind} missing from registry");
        }
    }
}
