//! Snapshot persistence plumbing for the filter layer.
//!
//! [`SnapshotBody`] is the per-filter codec hook: a filter writes its
//! state as sections of an open [`SnapshotWriter`] frame and rebuilds
//! itself from a [`SnapshotReader`]. The [`crate::DynFilter`] wrappers
//! compose these bodies into registry-kind-keyed frames
//! ([`crate::DynFilter::snapshot_bytes`]), and
//! [`crate::registry::load_snapshot`] dispatches a frame back to the
//! right loader by its header kind string — so all 9 registry kinds
//! round-trip through `Box<dyn DynFilter>` with no per-kind code at the
//! call site.
//!
//! Every method has a default that returns [`SnapError::Unsupported`], so
//! third-party filters can opt in with an empty `impl SnapshotBody for
//! MyFilter {}` and gain snapshot support later without breaking.

pub use aqf_bits::snapshot::{SnapError, SnapshotReader, SnapshotWriter};

/// Per-filter snapshot codec: serialize into / rebuild from the sections
/// of an open snapshot frame. See the module docs.
pub trait SnapshotBody {
    /// Append this filter's state as sections of the open frame.
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::Unsupported(
            std::any::type_name::<Self>().to_string(),
        ))
    }

    /// Rebuild a filter from sections written by
    /// [`SnapshotBody::write_snapshot_body`].
    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError>
    where
        Self: Sized,
    {
        let _ = r;
        Err(SnapError::Unsupported(
            std::any::type_name::<Self>().to_string(),
        ))
    }
}

impl SnapshotBody for aqf::YesNoFilter {
    fn write_snapshot_body(&self, w: &mut SnapshotWriter) -> Result<(), SnapError> {
        self.write_snapshot(w);
        Ok(())
    }

    fn read_snapshot_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        aqf::YesNoFilter::read_snapshot(r)
    }
}
