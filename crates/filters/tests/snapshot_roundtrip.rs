//! Property-based snapshot round-trip suite over **every** registry kind:
//! random key sets plus adaptation traffic, snapshot, load, and assert the
//! loaded filter is element-wise indistinguishable — `query`/`query_loc`
//! outcomes, `len`, `size_in_bytes`, `bits_per_item`, `adapt_bits`,
//! `map_stats` — and stays indistinguishable under *continued* adapting
//! use (the reverse-map state must round-trip too, not just the table).

use aqf_filters::registry::{self, FilterSpec};
use proptest::prelude::*;

const QBITS: u32 = 11;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn every_kind_roundtrips_element_wise(
        keys in proptest::collection::vec(0u64..(1u64 << 40), 1..500),
        probes in proptest::collection::vec((1u64 << 41)..(1u64 << 41) + (1u64 << 40), 1..500),
        seed in 1u64..6,
    ) {
        for kind in registry::kinds() {
            let mut f = FilterSpec::new(kind, QBITS)
                .with_seed(seed)
                .build()
                .unwrap();
            for &k in &keys {
                f.insert(k).unwrap();
            }
            // Adaptation traffic: absent-key probes, resolved through each
            // filter's own shadow state (no-ops for non-adaptive kinds).
            for &p in &probes {
                let _ = f.query_adapting(p);
            }

            let bytes = f.snapshot_bytes().unwrap();
            let mut g = registry::load_snapshot(&bytes).unwrap();

            prop_assert_eq!(g.kind(), kind, "{} kind", kind);
            prop_assert_eq!(g.len(), f.len(), "{} len", kind);
            prop_assert_eq!(g.size_in_bytes(), f.size_in_bytes(), "{} size", kind);
            prop_assert_eq!(g.adaptivity(), f.adaptivity(), "{} adaptivity", kind);
            prop_assert!(
                (g.bits_per_item() - f.bits_per_item()).abs() < 1e-9,
                "{kind} bits_per_item {} vs {}",
                g.bits_per_item(),
                f.bits_per_item()
            );
            prop_assert!(
                (g.adapt_bits() - f.adapt_bits()).abs() < 1e-9,
                "{kind} adapt_bits {} vs {}",
                g.adapt_bits(),
                f.adapt_bits()
            );
            prop_assert_eq!(g.map_stats(), f.map_stats(), "{} map_stats", kind);

            // Element-wise identical outcomes on members and probes alike.
            for &k in keys.iter().chain(probes.iter()) {
                prop_assert_eq!(f.contains(k), g.contains(k), "{} contains({})", kind, k);
                prop_assert_eq!(f.query_loc(k), g.query_loc(k), "{} query_loc({})", kind, k);
            }

            // Continued adapting use must diverge nowhere: the snapshot
            // carried the reverse-map state, not just the table.
            for &p in &probes {
                prop_assert_eq!(
                    f.query_adapting(p),
                    g.query_adapting(p),
                    "{} post-load adapt({})", kind, p
                );
            }
            for &k in &keys {
                prop_assert_eq!(f.contains(k), g.contains(k), "{} member {} after adapt", kind, k);
            }
        }
    }
}

/// Deletes (where supported) after a round trip behave identically: the
/// loaded filter's internal bookkeeping supports every mutation path.
#[test]
fn deletes_after_roundtrip_match() {
    for kind in registry::kinds() {
        let mut f = FilterSpec::new(kind, QBITS).with_seed(9).build().unwrap();
        let keys: Vec<u64> = (0..800u64).map(|i| i * 2654435761 % (1 << 40)).collect();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let mut g = registry::load_snapshot(&f.snapshot_bytes().unwrap()).unwrap();
        if !f.supports_delete() {
            assert!(
                g.delete(keys[0]).is_err(),
                "{kind}: delete support diverged"
            );
            continue;
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(
                f.delete(k).unwrap(),
                g.delete(k).unwrap(),
                "{kind}: delete({k}) diverged"
            );
        }
        assert_eq!(f.len(), g.len(), "{kind}: len after deletes");
        for &k in &keys {
            assert_eq!(
                f.contains(k),
                g.contains(k),
                "{kind}: contains({k}) after deletes"
            );
        }
    }
}
