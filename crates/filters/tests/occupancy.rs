//! Capacity/load-factor conformance, run over every registry kind.
//!
//! PR 8 surfaced `capacity()` and `load_factor()` on [`DynFilter`] so the
//! storage layer and server can drive auto-grow and report occupancy.
//! The contract checked here:
//!
//! - `capacity()` is the filter's slot (or bit) budget and is stable
//!   under inserts unless the filter grows,
//! - `load_factor()` is a real fill fraction: 0 when empty, strictly
//!   increasing over distinct inserts, and bounded by ~1,
//! - for the AQF family an exact oracle exists
//!   (`slots_in_use / capacity`) and the trait value must match it
//!   through mixed insert/delete/adapt histories,
//! - `set_auto_grow` succeeds exactly on growable kinds, and with it
//!   enabled, inserting 8x the initial capacity never returns `Full`
//!   (the PR's acceptance criterion).

use aqf::AdaptiveQf;
use aqf_filters::registry::{self, FilterSpec};
use aqf_filters::DynFilter;

const QBITS: u32 = 12;

fn build(kind: &str) -> Box<dyn DynFilter> {
    FilterSpec::new(kind, QBITS)
        .with_seed(77)
        .build()
        .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"))
}

fn member(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

/// Kinds whose `capacity()` is 0: no fixed budget to fill against.
/// Only the cascading Bloom filter qualifies, and only before its first
/// rebuild materializes levels.
fn capacity_free_when_empty(kind: &str) -> bool {
    kind == "cbf"
}

#[test]
fn empty_filters_report_zero_load() {
    for kind in registry::kinds() {
        let f = build(kind);
        assert_eq!(f.load_factor(), 0.0, "{kind}: fresh filter not at lf 0");
        if capacity_free_when_empty(kind) {
            assert_eq!(f.capacity(), 0, "{kind}: expected no fixed capacity");
        } else {
            assert!(f.capacity() > 0, "{kind}: zero capacity on a sized kind");
        }
    }
}

#[test]
fn load_factor_rises_with_distinct_inserts() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        let (mut last, mut last_cap) = (0.0f64, f.capacity());
        let n = 1500u64;
        for i in 0..n {
            f.insert(member(i))
                .unwrap_or_else(|e| panic!("{kind}: insert {i} failed: {e}"));
            // Sample every 100 inserts; monotone non-decreasing while the
            // capacity holds still (a rebuild/grow resets the baseline —
            // the cascade resizes its levels as it absorbs pending keys).
            if i % 100 == 99 {
                let (lf, cap) = (f.load_factor(), f.capacity());
                assert!(
                    cap != last_cap || lf >= last,
                    "{kind}: load factor fell from {last} to {lf} at {i}"
                );
                (last, last_cap) = (lf, cap);
            }
        }
        let lf = f.load_factor();
        assert!(lf > 0.0, "{kind}: zero load factor after {n} inserts");
        assert!(lf <= 1.0 + 1e-9, "{kind}: load factor {lf} exceeds 1");
        // Sized kinds: occupancy is at least the distinct-key floor
        // (each key costs >= 1 slot; bit-array kinds set >= 1 bit/key
        // only collectively, so just require a sane lower bound).
        if f.capacity() > 0 {
            let floor = n as f64 / f.capacity() as f64;
            assert!(
                lf >= floor.min(1.0) * 0.5,
                "{kind}: load factor {lf} far below occupancy floor {floor}"
            );
        }
    }
}

#[test]
fn capacity_is_stable_without_grow() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        let before = f.capacity();
        for i in 0..1000u64 {
            f.insert(member(i)).unwrap();
        }
        if capacity_free_when_empty(kind) {
            // The cascade materializes levels on its first rebuild; its
            // capacity may go from 0 to positive but never shrinks.
            assert!(f.capacity() >= before, "{kind}: capacity shrank");
        } else {
            assert_eq!(
                f.capacity(),
                before,
                "{kind}: capacity moved without a grow"
            );
        }
        assert_eq!(f.grows(), 0, "{kind}: phantom grow events");
    }
}

/// The AQF family exposes an exact occupancy oracle
/// (`slots_in_use / capacity`); the trait-level load factor must equal
/// it through insert/delete/adapt churn.
#[test]
fn aqf_load_factor_matches_slot_oracle() {
    // Concrete filter: the oracle holds through inserts and deletes.
    let mut c = AdaptiveQf::new(FilterSpec::new("aqf", QBITS).with_seed(77).aqf_config()).unwrap();
    for i in 0..600u64 {
        c.insert(member(i)).unwrap();
    }
    for i in 0..200u64 {
        c.delete(member(i)).unwrap();
    }
    let oracle = c.slots_in_use() as f64 / c.capacity() as f64;
    assert_eq!(c.load_factor(), oracle, "concrete lf diverged from oracle");

    // Dyn view: same config + same inserts must report the same value,
    // and adapt churn (extension slots) may only raise it.
    let mut d = build("aqf");
    let mut c2 = AdaptiveQf::new(FilterSpec::new("aqf", QBITS).with_seed(77).aqf_config()).unwrap();
    for i in 0..600u64 {
        d.insert(member(i)).unwrap();
        c2.insert(member(i)).unwrap();
    }
    assert_eq!(
        d.load_factor(),
        c2.slots_in_use() as f64 / c2.capacity() as f64,
        "dyn lf diverged from concrete oracle"
    );
    let before_adapts = d.load_factor();
    for i in 10_000..12_000u64 {
        let _ = d.query_adapting(member(i));
    }
    assert!(
        d.load_factor() >= before_adapts,
        "adaptation extensions must not lower occupancy"
    );
    if d.supports_delete() {
        for i in 0..300u64 {
            d.delete(member(i)).unwrap();
        }
        assert!(
            d.load_factor() < before_adapts + 0.5,
            "load factor out of range after mixed history"
        );
        assert!(d.load_factor() > 0.0 && d.load_factor() <= 1.0);
    }
}

#[test]
fn set_auto_grow_succeeds_exactly_on_growable_kinds() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        let growable = f.supports_grow();
        let res = f.set_auto_grow(Some(0.9));
        assert_eq!(
            res.is_ok(),
            growable,
            "{kind}: set_auto_grow(Some) vs supports_grow disagree"
        );
        // Disabling is always accepted (it is a no-op elsewhere).
        f.set_auto_grow(None)
            .unwrap_or_else(|e| panic!("{kind}: set_auto_grow(None) failed: {e}"));
    }
}

/// PR acceptance criterion: with auto-grow on, inserting 8x the initial
/// capacity never returns `Full` for any growable kind, and every key
/// remains a member afterwards.
#[test]
fn auto_grow_absorbs_8x_initial_capacity() {
    for kind in registry::kinds() {
        let mut f = FilterSpec::new(kind, 8)
            .with_seed(77)
            .build()
            .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"));
        if !f.supports_grow() {
            continue;
        }
        f.set_auto_grow(Some(0.9)).unwrap();
        let initial = f.capacity();
        assert!(initial > 0, "{kind}: growable kind without capacity");
        let n = initial * 8;
        for i in 0..n {
            f.insert(member(i)).unwrap_or_else(|e| {
                panic!(
                    "{kind}: insert {i}/{n} failed after {} grows: {e}",
                    f.grows()
                )
            });
        }
        assert!(f.grows() > 0, "{kind}: absorbed 8x without growing");
        assert!(
            f.capacity() >= n,
            "{kind}: capacity {} below inserted count {n}",
            f.capacity()
        );
        assert!(
            f.load_factor() <= 1.0 + 1e-9,
            "{kind}: load factor above 1 after grows"
        );
        for i in 0..n {
            assert!(f.contains(member(i)), "{kind}: lost key {i} across grows");
        }
    }
}
