//! Cross-filter behavioural tests: statistical FPR checks, adaptation
//! contracts, and capacity behaviour shared by all baselines.

use aqf_filters::{
    AdaptiveCuckooFilter, AmqFilter, BloomFilter, CascadingBloomFilter, CuckooFilter,
    QuotientFilter, TelescopingFilter,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn fill_and_check(f: &mut dyn AmqFilter, n: u64, tag: &str) {
    for k in 0..n {
        f.insert(k * 2654435761 % (1 << 40)).unwrap();
    }
    for k in 0..n {
        assert!(
            f.contains(k * 2654435761 % (1 << 40)),
            "{tag}: false negative at {k}"
        );
    }
}

#[test]
fn all_filters_no_false_negatives_at_90pct() {
    let n = 3600u64;
    fill_and_check(&mut QuotientFilter::new(12, 9, 1).unwrap(), n, "qf");
    fill_and_check(&mut CuckooFilter::new(10, 12, 1).unwrap(), n, "cf");
    fill_and_check(&mut AdaptiveCuckooFilter::new(10, 12, 1).unwrap(), n, "acf");
    fill_and_check(&mut TelescopingFilter::new(12, 9, 1).unwrap(), n, "tqf");
    fill_and_check(
        &mut BloomFilter::for_capacity(3600, 0.002, 1).unwrap(),
        n,
        "bloom",
    );
}

#[test]
fn fpr_statistically_consistent_across_filters() {
    // All five at the paper's ε=2^-9 configuration must land within a
    // factor ~3 of each other and of the target.
    let n = 3600u64;
    let probes = 300_000u64;
    let mut rng = StdRng::seed_from_u64(5);
    let probe_keys: Vec<u64> = (0..probes)
        .map(|_| rng.random_range(1 << 41..u64::MAX))
        .collect();

    let mut filters: Vec<(&str, Box<dyn AmqFilter>)> = vec![
        ("qf", Box::new(QuotientFilter::new(12, 9, 2).unwrap())),
        ("cf", Box::new(CuckooFilter::new(10, 12, 2).unwrap())),
        (
            "acf",
            Box::new(AdaptiveCuckooFilter::new(10, 12, 2).unwrap()),
        ),
        ("tqf", Box::new(TelescopingFilter::new(12, 9, 2).unwrap())),
    ];
    for (name, f) in &mut filters {
        for k in 0..n {
            f.insert(k).unwrap();
        }
        let fps = probe_keys.iter().filter(|&&k| f.contains(k)).count();
        let fpr = fps as f64 / probes as f64;
        // Target ~ load * 2^-9 ≈ 0.0017 (QF-family) / 8·2^-12 (CF-family).
        assert!(fpr < 0.008, "{name}: fpr {fpr} too high");
        assert!(fpr > 0.00005, "{name}: fpr {fpr} suspiciously low");
    }
}

#[test]
fn acf_and_tqf_fix_and_refind_members_under_heavy_adaptation() {
    let mut acf = AdaptiveCuckooFilter::new(9, 10, 3).unwrap();
    let mut tqf = TelescopingFilter::new(11, 8, 3).unwrap();
    let members: Vec<u64> = (0..1500).collect();
    for &k in &members {
        AmqFilter::insert(&mut acf, k).unwrap();
        AmqFilter::insert(&mut tqf, k).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(9);
    // Hammer both with false-positive fixes.
    for _ in 0..200_000 {
        let probe: u64 = rng.random_range(1_000_000..u64::MAX);
        if let Some(h) = acf.query_slot(probe) {
            if acf.stored_key(&h) != probe {
                acf.adapt(&h);
            }
        }
        if let Some(h) = tqf.query_slot(probe) {
            if tqf.stored_key(&h) != probe {
                tqf.adapt(&h);
            }
        }
    }
    // Every member must still be present (adaptation rewrites tags from
    // the member's own key, so members always re-match).
    for &k in &members {
        assert!(acf.contains(k), "acf lost member {k}");
        assert!(tqf.contains(k), "tqf lost member {k}");
    }
}

#[test]
fn cascading_bloom_handles_adversarial_overlap_sizes() {
    // Tiny yes vs huge no and vice versa; deep cascades must converge.
    for (ny, nn) in [(10usize, 20_000usize), (20_000, 10), (1, 1), (0, 50)] {
        let yes: Vec<u64> = (0..ny as u64).collect();
        let no: Vec<u64> = (1_000_000..1_000_000 + nn as u64).collect();
        let c = CascadingBloomFilter::build(&yes, &no, 8).unwrap();
        assert!(yes.iter().all(|&y| c.query(y)), "{ny}/{nn}");
        assert!(no.iter().all(|&z| !c.query(z)), "{ny}/{nn}");
    }
}

#[test]
fn cuckoo_delete_then_reinsert_cycles() {
    let mut f = CuckooFilter::new(9, 12, 4).unwrap();
    let keys: Vec<u64> = (0..1500).collect();
    for round in 0..5 {
        for &k in &keys {
            f.insert(k)
                .unwrap_or_else(|e| panic!("round {round}: {e:?}"));
        }
        for &k in &keys {
            assert!(f.contains(k));
        }
        for &k in &keys {
            assert!(f.delete(k), "round {round} delete {k}");
        }
        assert_eq!(f.len(), 0);
    }
}

#[test]
fn quotient_filter_sizes_report_consistently() {
    let f9 = QuotientFilter::new(12, 9, 1).unwrap();
    let f12 = QuotientFilter::new(12, 12, 1).unwrap();
    assert!(f12.size_in_bytes() > f9.size_in_bytes());
    let big = QuotientFilter::new(14, 9, 1).unwrap();
    assert!(big.size_in_bytes() > 3 * f9.size_in_bytes());
}

#[test]
fn map_stats_zero_until_pressure() {
    // At low load neither kicks nor shifts should be needed.
    let mut acf = AdaptiveCuckooFilter::new(10, 12, 6).unwrap();
    for k in 0..100u64 {
        AmqFilter::insert(&mut acf, k).unwrap();
    }
    assert_eq!(acf.map_stats().queries, 0, "no kicks at 2% load");
    assert_eq!(acf.map_stats().updates, 0);
    assert_eq!(acf.map_stats().inserts, 100);
}
