//! Generic trait-conformance suite, run over every registry kind: the
//! contracts any filter must honor to be interchangeable in the paper's
//! evaluation harness, regardless of implementation.
//!
//! - no false negatives after insert,
//! - `len()` tracks inserts (and deletes, where supported),
//! - `size_in_bytes() > 0` once built,
//! - standalone `query_adapting` never disturbs members,
//! - strongly adaptive kinds: an adapted query **never fires again**
//!   (monotonicity),
//! - kind metadata (registry string, adaptivity class) is consistent.

use aqf_filters::registry::{self, FilterSpec};
use aqf_filters::{Adaptivity, DynFilter};

const QBITS: u32 = 12;
const N: u64 = 2000;

fn build(kind: &str) -> Box<dyn DynFilter> {
    FilterSpec::new(kind, QBITS)
        .with_seed(21)
        .build()
        .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"))
}

fn member(i: u64) -> u64 {
    i * 2654435761 % (1 << 40)
}

fn fill(f: &mut dyn DynFilter) {
    for i in 0..N {
        f.insert(member(i))
            .unwrap_or_else(|e| panic!("{}: insert {i} failed: {e}", f.kind()));
    }
}

#[test]
fn no_false_negatives_after_insert() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        fill(f.as_mut());
        for i in 0..N {
            assert!(f.contains(member(i)), "{kind}: false negative at {i}");
        }
    }
}

#[test]
fn len_tracks_inserts_and_size_is_positive() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        assert!(f.is_empty(), "{kind}: fresh filter not empty");
        fill(f.as_mut());
        assert_eq!(f.len(), N, "{kind}: len after {N} inserts");
        assert!(f.size_in_bytes() > 0, "{kind}: zero-size table");
    }
}

#[test]
fn delete_where_supported_updates_len_and_membership_survives() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        fill(f.as_mut());
        if !f.supports_delete() {
            assert!(
                f.delete(member(0)).is_err(),
                "{kind}: delete must error when unsupported"
            );
            continue;
        }
        for i in 0..N / 2 {
            let removed = f
                .delete(member(i))
                .unwrap_or_else(|e| panic!("{kind}: delete {i} failed: {e}"));
            assert!(removed, "{kind}: member {i} not found for delete");
        }
        assert_eq!(f.len(), N / 2, "{kind}: len after deletes");
        // Remaining members must still answer positive.
        for i in N / 2..N {
            assert!(f.contains(member(i)), "{kind}: lost member {i} on delete");
        }
    }
}

#[test]
fn query_adapting_never_disturbs_members() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        fill(f.as_mut());
        // Hammer with absent keys, adapting all the way.
        for p in 0..200_000u64 {
            let _ = f.query_adapting((1 << 41) + p * 7919);
        }
        for i in 0..N {
            assert!(
                f.contains(member(i)),
                "{kind}: member {i} lost to adaptation"
            );
        }
    }
}

#[test]
fn strong_adaptivity_is_monotone() {
    // For strongly adaptive kinds: once query_adapting reported (and
    // fixed) a false positive, the same query must never fire again.
    for kind in registry::kinds() {
        let f = build(kind);
        if f.adaptivity() != Adaptivity::Strong {
            continue;
        }
        let mut f = build(kind);
        fill(f.as_mut());
        let mut fixed = Vec::new();
        for p in 0..500_000u64 {
            let probe = (1 << 41) + p * 104_729;
            // Each adapting round fixes the *first* matching fingerprint;
            // a minirun can hold several, so drive the query negative the
            // way a deployed system would (one verification per round).
            let mut rounds = 0;
            while f.query_adapting(probe) {
                rounds += 1;
                assert!(rounds < 64, "{kind}: query {probe} failed to separate");
            }
            if rounds > 0 {
                fixed.push(probe);
            }
        }
        assert!(
            !fixed.is_empty(),
            "{kind}: no false positives in 500K probes — test is vacuous"
        );
        for &probe in &fixed {
            assert!(
                !f.contains(probe),
                "{kind}: adapted query {probe} fired again"
            );
        }
    }
}

#[test]
fn kind_and_adaptivity_metadata_consistent() {
    for kind in registry::kinds() {
        let f = build(kind);
        assert_eq!(f.kind(), kind);
        assert!(registry::describe(kind).is_some());
        match kind {
            "aqf" | "sharded-aqf" => assert_eq!(f.adaptivity(), Adaptivity::Strong, "{kind}"),
            "tqf" | "acf" => assert_eq!(f.adaptivity(), Adaptivity::Weak, "{kind}"),
            _ => assert_eq!(f.adaptivity(), Adaptivity::None, "{kind}"),
        }
    }
}
