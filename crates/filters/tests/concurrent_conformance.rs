//! Concurrency conformance, run over every registry kind (PR 6).
//!
//! `DynFilter` is `Send + Sync`, so any registry filter can be shared
//! across threads. This suite checks the contracts that sharing relies
//! on, at two levels:
//!
//! - **Every kind** behind an `RwLock`: N reader threads hammer
//!   `contains`/`contains_batch` while a writer inserts, deletes (where
//!   supported), and runs `query_adapting` — no panics, no false
//!   negative for *settled* keys (inserted before the threads start and
//!   never deleted), and `len()` coherent with the operation counts at
//!   quiescence.
//! - **`sharded-aqf` without any external lock**: readers call straight
//!   into `ShardedAqf::query`/`query_batch` (the seqlock-optimistic
//!   path) while writer threads mutate through the `&self` API — the
//!   configuration the PR's lock-free read path exists for.
//!
//! Thread counts are deliberately modest (CI runs on few cores); the
//! interleaving suite in `crates/aqf` covers the adversarial schedules
//! deterministically.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::RwLock;

use aqf::{AqfConfig, FilterError, ShardedAqf};
use aqf_filters::registry::{self, FilterSpec};

const QBITS: u32 = 12;
const SETTLED: u64 = 1200;
const WRITER_KEYS: u64 = 600;
const READERS: usize = 2;

fn member(i: u64) -> u64 {
    i * 2654435761 % (1 << 40)
}

/// Writer-owned key range, disjoint from the settled range.
fn churn_key(i: u64) -> u64 {
    (1 << 41) + i * 2654435761 % (1 << 40)
}

#[test]
fn all_kinds_survive_concurrent_readers_and_a_writer() {
    for kind in registry::kinds() {
        let mut f = FilterSpec::new(kind, QBITS)
            .with_seed(23)
            .build()
            .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"));
        let settled: Vec<u64> = (0..SETTLED).map(member).collect();
        f.insert_batch(&settled)
            .unwrap_or_else(|e| panic!("{kind}: settled fill failed: {e}"));
        let supports_delete = f.supports_delete();

        let lock = RwLock::new(f);
        let done = AtomicBool::new(false);
        let (net, adapts) = std::thread::scope(|s| {
            for r in 0..READERS {
                let (lock, done, settled) = (&lock, &done, &settled);
                s.spawn(move || {
                    let mut i = r; // desynchronize the readers
                    while !done.load(Relaxed) {
                        let f = lock.read().unwrap();
                        let k = settled[i % settled.len()];
                        assert!(f.contains(k), "{}: false negative for {k}", f.kind());
                        let chunk_at = i % (settled.len() - 16);
                        let chunk = &settled[chunk_at..chunk_at + 16];
                        assert!(
                            f.contains_batch(chunk).into_iter().all(|b| b),
                            "{}: batch false negative",
                            f.kind()
                        );
                        assert!(!f.is_empty(), "{}: empty mid-run", f.kind());
                        i += 7;
                    }
                });
            }
            // Writer: churn inserts, interleaved deletes of its own keys
            // (never the settled ones), and adapting queries.
            let writer = s.spawn(|| {
                let mut inserted = 0u64;
                let mut deleted = 0u64;
                let mut adapts = 0u64;
                for i in 0..WRITER_KEYS {
                    let mut f = lock.write().unwrap();
                    match f.insert(churn_key(i)) {
                        Ok(()) => inserted += 1,
                        Err(FilterError::Full) => break,
                        Err(e) => panic!("{}: churn insert failed: {e}", f.kind()),
                    }
                    if supports_delete && i % 3 == 2 {
                        // Delete an older churn key (present unless its
                        // fingerprint was already removed via a collision).
                        if f.delete(churn_key(i - 2)).unwrap() {
                            deleted += 1;
                        }
                    }
                    if i % 5 == 0 && f.query_adapting(member(i % SETTLED) ^ 0x5a5a) {
                        adapts += 1;
                    }
                }
                (inserted - deleted, adapts)
            });
            let out = writer.join().unwrap();
            done.store(true, Relaxed);
            out
        });

        // Quiescence: settled keys still members; len coherent with the
        // exact operation counts.
        let f = lock.into_inner().unwrap();
        for &k in &settled {
            assert!(f.contains(k), "{kind}: settled key {k} lost");
        }
        assert_eq!(
            f.len(),
            SETTLED + net,
            "{kind}: len incoherent at quiescence (adapting queries hit {adapts})"
        );
        assert!(f.size_in_bytes() > 0, "{kind}: zero-size table");
    }
}

/// The sharded AQF shared with **no external lock at all**: readers on
/// the optimistic seqlock path race real writers through the `&self`
/// API.
#[test]
fn sharded_aqf_lock_free_reads_race_real_writers() {
    let f = ShardedAqf::new(AqfConfig::new(13, 9).with_seed(29), 3).unwrap();
    let settled: Vec<u64> = (0..4000u64).map(member).collect();
    for &k in &settled {
        f.insert(k).unwrap();
    }

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for r in 0..READERS {
            let (f, done, settled) = (&f, &done, &settled);
            s.spawn(move || {
                let mut i = r;
                while !done.load(Relaxed) {
                    // Point reads on the optimistic path.
                    let k = settled[i % settled.len()];
                    assert!(f.contains(k), "lock-free false negative for {k}");
                    assert!(
                        f.query(k).is_positive(),
                        "lock-free query false negative for {k}"
                    );
                    // Group-batched reads cross shard boundaries.
                    let at = i % (settled.len() - 64);
                    let chunk = &settled[at..at + 64];
                    assert!(
                        f.contains_batch(chunk).into_iter().all(|b| b),
                        "lock-free batch false negative"
                    );
                    i += 13;
                }
            });
        }
        let writer = s.spawn(|| {
            let mut net = 0i64;
            for i in 0..1500u64 {
                match f.insert(churn_key(i)) {
                    Ok(_) => net += 1,
                    Err(FilterError::Full) => break,
                    Err(e) => panic!("churn insert failed: {e}"),
                }
                if i % 3 == 2 && f.delete(churn_key(i - 2)).unwrap().is_some() {
                    net -= 1;
                }
                if i % 7 == 0 {
                    // Adapt against a non-member probe (false positives
                    // only); settled keys stay true positives throughout.
                    let probe = member(i) ^ 0xa5a5;
                    if let aqf::QueryResult::Positive(hit) = f.query(probe) {
                        let _ = hit; // resolving stored keys needs the
                                     // reverse map; adaptation is covered
                                     // by the interleaving suite
                    }
                }
            }
            net
        });
        let net = writer.join().unwrap();
        done.store(true, Relaxed);

        // Quiescence coherence, still through &self.
        for &k in &settled {
            assert!(f.query(k).is_positive(), "settled key {k} lost");
            assert!(
                f.query_optimistic_only(k).is_some(),
                "optimistic path not quiescent for {k}"
            );
        }
        assert_eq!(f.len() as i64, settled.len() as i64 + net, "len incoherent");
        let stats = f.stats();
        let slots = f.slots_in_use();
        assert!(
            slots >= f.distinct_fingerprints()
                && stats.extension_slots + stats.counter_slots < slots,
            "stats incoherent at quiescence: {stats:?}, slots {slots}"
        );
    });
}
