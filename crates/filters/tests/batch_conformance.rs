//! Batch-vs-sequential conformance over **every** registry kind: the
//! `DynFilter` batch methods (real bulk paths for the AQF family,
//! per-key default fallbacks for everything else) must produce
//! element-wise identical filters and answers to sequential calls.

use aqf_filters::registry::{self, FilterSpec};
use aqf_filters::DynFilter;

const QBITS: u32 = 12;
const N: u64 = 2000;

fn build(kind: &str) -> Box<dyn DynFilter> {
    FilterSpec::new(kind, QBITS)
        .with_seed(21)
        .build()
        .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"))
}

fn member(i: u64) -> u64 {
    i * 2654435761 % (1 << 40)
}

#[test]
fn batch_insert_and_contains_match_sequential_for_every_kind() {
    for kind in registry::kinds() {
        let mut seq = build(kind);
        let mut bat = build(kind);
        let keys: Vec<u64> = (0..N).map(member).collect();
        for &k in &keys {
            seq.insert(k)
                .unwrap_or_else(|e| panic!("{kind}: sequential insert failed: {e}"));
        }
        for chunk in keys.chunks(89) {
            bat.insert_batch(chunk)
                .unwrap_or_else(|e| panic!("{kind}: batch insert failed: {e}"));
        }
        assert_eq!(seq.len(), bat.len(), "{kind}: len diverges");

        // Element-wise: members plus a stream of (mostly absent) probes.
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain((0..N).map(|i| (1 << 41) + i * 7919))
            .collect();
        let got = bat.contains_batch(&probes);
        assert_eq!(got.len(), probes.len(), "{kind}: result length");
        for (j, &p) in probes.iter().enumerate() {
            assert_eq!(
                got[j],
                seq.contains(p),
                "{kind}: batch-built filter diverges from sequential twin at probe {p}"
            );
            assert_eq!(
                got[j],
                bat.contains(p),
                "{kind}: batch answers diverge from the same filter's per-key answers at {p}"
            );
        }
        // No false negatives through the batch path.
        assert!(
            got[..keys.len()].iter().all(|&b| b),
            "{kind}: batch lost a member"
        );
    }
}

#[test]
fn batch_methods_handle_empty_input() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        f.insert_batch(&[])
            .unwrap_or_else(|e| panic!("{kind}: empty insert_batch failed: {e}"));
        assert!(
            f.contains_batch(&[]).is_empty(),
            "{kind}: empty contains_batch"
        );
        assert!(f.is_empty(), "{kind}: empty batch inserted something");
    }
}
