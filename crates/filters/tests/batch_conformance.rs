//! Batch-vs-sequential conformance over **every** registry kind: the
//! `DynFilter` batch methods (real bulk paths for the AQF family,
//! per-key default fallbacks for everything else) must produce
//! element-wise identical filters and answers to sequential calls.

use aqf_filters::registry::{self, FilterSpec};
use aqf_filters::DynFilter;

const QBITS: u32 = 12;
const N: u64 = 2000;

fn build(kind: &str) -> Box<dyn DynFilter> {
    FilterSpec::new(kind, QBITS)
        .with_seed(21)
        .build()
        .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"))
}

fn member(i: u64) -> u64 {
    i * 2654435761 % (1 << 40)
}

#[test]
fn batch_insert_and_contains_match_sequential_for_every_kind() {
    for kind in registry::kinds() {
        let mut seq = build(kind);
        let mut bat = build(kind);
        let keys: Vec<u64> = (0..N).map(member).collect();
        for &k in &keys {
            seq.insert(k)
                .unwrap_or_else(|e| panic!("{kind}: sequential insert failed: {e}"));
        }
        for chunk in keys.chunks(89) {
            bat.insert_batch(chunk)
                .unwrap_or_else(|e| panic!("{kind}: batch insert failed: {e}"));
        }
        assert_eq!(seq.len(), bat.len(), "{kind}: len diverges");

        // Element-wise: members plus a stream of (mostly absent) probes.
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain((0..N).map(|i| (1 << 41) + i * 7919))
            .collect();
        let got = bat.contains_batch(&probes);
        assert_eq!(got.len(), probes.len(), "{kind}: result length");
        for (j, &p) in probes.iter().enumerate() {
            assert_eq!(
                got[j],
                seq.contains(p),
                "{kind}: batch-built filter diverges from sequential twin at probe {p}"
            );
            assert_eq!(
                got[j],
                bat.contains(p),
                "{kind}: batch answers diverge from the same filter's per-key answers at {p}"
            );
        }
        // No false negatives through the batch path.
        assert!(
            got[..keys.len()].iter().all(|&b| b),
            "{kind}: batch lost a member"
        );
    }
}

#[test]
fn batch_methods_handle_empty_input() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        f.insert_batch(&[])
            .unwrap_or_else(|e| panic!("{kind}: empty insert_batch failed: {e}"));
        assert!(
            f.contains_batch(&[]).is_empty(),
            "{kind}: empty contains_batch"
        );
        assert!(f.is_empty(), "{kind}: empty batch inserted something");
    }
}

#[test]
fn system_mode_batch_methods_handle_empty_input() {
    for kind in registry::kinds() {
        let mut f = build(kind);
        f.set_system_mode(true);
        let plans = f
            .insert_tracked_batch(&[])
            .unwrap_or_else(|e| panic!("{kind}: empty insert_tracked_batch failed: {e}"));
        assert!(plans.is_empty(), "{kind}: empty batch produced plans");
        assert!(
            f.query_loc_batch(&[]).is_empty(),
            "{kind}: empty query_loc_batch"
        );
        assert!(
            f.is_empty(),
            "{kind}: empty tracked batch inserted something"
        );
    }
}

/// Batches with duplicate keys (the same key several times in one batch,
/// and keys already present from earlier batches) must behave exactly
/// like the equivalent sequence of per-key inserts — including the
/// multiset semantics of the AQF family and the set semantics of the
/// yes/no and cascading kinds.
#[test]
fn duplicate_keys_in_batches_match_sequential() {
    for kind in registry::kinds() {
        let mut seq = build(kind);
        let mut bat = build(kind);
        // Every key appears 3x within the stream, some adjacent, some
        // spread across chunk boundaries.
        let mut keys = Vec::new();
        for i in 0..400u64 {
            keys.push(member(i));
            if i % 2 == 0 {
                keys.push(member(i));
            }
        }
        for i in 0..400u64 {
            keys.push(member(i));
            if i % 2 == 1 {
                keys.push(member(i));
            }
        }
        for &k in &keys {
            seq.insert(k)
                .unwrap_or_else(|e| panic!("{kind}: sequential duplicate insert failed: {e}"));
        }
        for chunk in keys.chunks(37) {
            bat.insert_batch(chunk)
                .unwrap_or_else(|e| panic!("{kind}: batch duplicate insert failed: {e}"));
        }
        assert_eq!(seq.len(), bat.len(), "{kind}: len diverges on duplicates");
        let probes: Vec<u64> = (0..400u64)
            .map(member)
            .chain((0..400).map(|i| (1 << 41) + i * 7919))
            .collect();
        let got = bat.contains_batch(&probes);
        for (j, &p) in probes.iter().enumerate() {
            assert_eq!(
                got[j],
                seq.contains(p),
                "{kind}: duplicate-batch filter diverges at probe {p}"
            );
        }
        // A batch that is *entirely* one repeated key (6 copies: within
        // the cuckoo kinds' 2x4-slot capacity for a single key).
        let mut seq = build(kind);
        let mut bat = build(kind);
        let same = vec![member(7); 6];
        for &k in &same {
            seq.insert(k).unwrap();
        }
        bat.insert_batch(&same).unwrap();
        assert_eq!(seq.len(), bat.len(), "{kind}: all-same-key batch len");
        assert_eq!(
            seq.contains(member(7)),
            bat.contains(member(7)),
            "{kind}: all-same-key membership"
        );
    }
}

/// System-mode duplicate batches: `insert_tracked_batch` must yield the
/// same per-key plans as sequential `insert_tracked` calls (the AQF
/// family's location plans encode minirun ranks, which duplicates bump).
#[test]
fn tracked_duplicate_batches_match_sequential_plans() {
    use aqf_filters::InsertPlan;
    for kind in registry::kinds() {
        let mut seq = build(kind);
        let mut bat = build(kind);
        seq.set_system_mode(true);
        bat.set_system_mode(true);
        let mut keys = Vec::new();
        for i in 0..200u64 {
            keys.push(member(i));
            if i % 3 == 0 {
                keys.push(member(i));
            }
        }
        let mut seq_plans = Vec::new();
        for &k in &keys {
            seq_plans.push(
                seq.insert_tracked(k)
                    .unwrap_or_else(|e| panic!("{kind}: tracked insert failed: {e}")),
            );
        }
        let mut bat_plans = Vec::new();
        for chunk in keys.chunks(53) {
            bat_plans.extend(
                bat.insert_tracked_batch(chunk)
                    .unwrap_or_else(|e| panic!("{kind}: tracked batch failed: {e}")),
            );
        }
        assert_eq!(seq_plans.len(), bat_plans.len(), "{kind}: plan count");
        for (i, (s, b)) in seq_plans.iter().zip(&bat_plans).enumerate() {
            match (s, b) {
                (InsertPlan::AtKey, InsertPlan::AtKey) => {}
                (InsertPlan::AtLoc(a), InsertPlan::AtLoc(c)) => {
                    assert_eq!(a, c, "{kind}: plan {i} location diverges");
                }
                // Event traces replay location-keyed map traffic whose
                // physical layout may legitimately differ batch-vs-seq
                // only if the filters diverged — which the query check
                // below would catch — so require identical traces too.
                (InsertPlan::Events(a), InsertPlan::Events(c)) => {
                    assert_eq!(a, c, "{kind}: plan {i} event trace diverges");
                }
                (s, b) => panic!("{kind}: plan {i} shape diverges: {s:?} vs {b:?}"),
            }
        }
        let locs_seq = seq.query_loc_batch(&keys);
        let locs_bat = bat.query_loc_batch(&keys);
        assert_eq!(
            locs_seq, locs_bat,
            "{kind}: query_loc diverges after duplicates"
        );
    }
}
