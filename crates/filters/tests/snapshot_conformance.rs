//! Snapshot conformance over every registry kind: the contracts the
//! persistence subsystem must honor regardless of filter implementation.
//!
//! Positive: every kind round-trips through the registry-keyed
//! `Box<dyn DynFilter>` path with its kind string intact. Negative
//! (corruption robustness): truncated files, flipped bytes anywhere —
//! header, body, checksum — and wrong-kind snapshots must surface as
//! *typed* `SnapError`s; decoding never panics and never silently loads
//! a wrong filter.

use aqf_filters::registry::{self, FilterSpec};
use aqf_filters::snapshot::{SnapError, SnapshotWriter};

const QBITS: u32 = 10;
const N: u64 = 700;

fn member(i: u64) -> u64 {
    i * 2654435761 % (1 << 40)
}

fn snapshot_of(kind: &str) -> Vec<u8> {
    let mut f = FilterSpec::new(kind, QBITS)
        .with_seed(17)
        .build()
        .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"));
    for i in 0..N {
        f.insert(member(i))
            .unwrap_or_else(|e| panic!("{kind}: insert failed: {e}"));
    }
    // Some adaptation traffic so adaptive kinds persist non-trivial state.
    for p in 0..2000u64 {
        let _ = f.query_adapting((1 << 41) + p * 7919);
    }
    f.snapshot_bytes()
        .unwrap_or_else(|e| panic!("{kind}: snapshot failed: {e}"))
}

#[test]
fn every_kind_roundtrips_through_the_registry() {
    for kind in registry::kinds() {
        let bytes = snapshot_of(kind);
        assert_eq!(registry::snapshot_kind(&bytes).unwrap(), kind);
        let g =
            registry::load_snapshot(&bytes).unwrap_or_else(|e| panic!("{kind}: load failed: {e}"));
        assert_eq!(g.kind(), kind);
        assert_eq!(g.len(), N);
        for i in 0..N {
            assert!(g.contains(member(i)), "{kind}: lost member {i}");
        }
    }
}

#[test]
fn truncated_files_are_typed_errors_for_every_kind() {
    for kind in registry::kinds() {
        let bytes = snapshot_of(kind);
        // Every prefix, sampled densely near the interesting boundaries
        // (header, first section) and sparsely through the body.
        let cuts: Vec<usize> = (0..64.min(bytes.len()))
            .chain((64..bytes.len()).step_by(211))
            .chain(bytes.len().saturating_sub(9)..bytes.len())
            .collect();
        for n in cuts {
            match registry::load_snapshot(&bytes[..n]) {
                Err(SnapError::Truncated { .. } | SnapError::ChecksumMismatch { .. }) => {}
                Err(e) => panic!("{kind}: truncation to {n} gave unexpected error {e}"),
                Ok(_) => panic!("{kind}: truncation to {n} loaded successfully"),
            }
        }
    }
}

#[test]
fn flipped_bytes_are_typed_errors_for_every_kind() {
    for kind in registry::kinds() {
        let bytes = snapshot_of(kind);
        // Header bytes, a sample of body bytes, and the trailing checksum.
        let positions: Vec<usize> = (0..32.min(bytes.len()))
            .chain((32..bytes.len()).step_by(97))
            .chain(bytes.len() - 8..bytes.len())
            .collect();
        for i in positions {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            match registry::load_snapshot(&bad) {
                Err(_) => {}
                Ok(_) => panic!("{kind}: flip at byte {i} loaded successfully"),
            }
        }
    }
}

#[test]
fn wrong_kind_snapshots_are_rejected_not_misloaded() {
    let qf_bytes = snapshot_of("qf");
    // Typed loader: a qf frame fed to the cf loader must be WrongKind.
    for other in registry::kinds() {
        if other == "qf" {
            continue;
        }
        match registry::load_snapshot_as(other, &qf_bytes) {
            Err(SnapError::WrongKind { expected, found }) => {
                assert_eq!(expected, other);
                assert_eq!(found, "qf");
            }
            Err(e) => panic!("{other}: unexpected error {e}"),
            Ok(_) => panic!("{other}: loaded a qf snapshot"),
        }
    }
    // A well-formed frame for a kind the registry does not know.
    let mut w = SnapshotWriter::new("definitely-not-a-filter");
    w.section(*b"XXXX");
    w.u64(1);
    let alien = w.finish();
    assert!(matches!(
        registry::load_snapshot(&alien),
        Err(SnapError::WrongKind { .. })
    ));
}

#[test]
fn garbage_and_empty_inputs_are_typed_errors() {
    assert!(matches!(
        registry::load_snapshot(&[]),
        Err(SnapError::Truncated { .. })
    ));
    let garbage: Vec<u8> = (0..256u32).map(|i| (i * 37 + 11) as u8).collect();
    assert!(matches!(
        registry::load_snapshot(&garbage),
        Err(SnapError::BadMagic)
    ));
    // Right magic, garbage after it: checksum catches it.
    let mut half = b"AQFSNAP\0".to_vec();
    half.extend_from_slice(&garbage);
    assert!(registry::load_snapshot(&half).is_err());
}

/// Cross-kind body splice: take kind A's frame header but kind B's body
/// sections, re-sealed with a fresh checksum. The per-kind decoders must
/// reject the mismatched sections as typed errors (section tags and
/// geometry checks), never panic or mis-load.
#[test]
fn spliced_bodies_are_rejected() {
    let a = snapshot_of("qf");
    let b = snapshot_of("bloom");
    // Both kinds' headers are 12 bytes + kind string.
    let header_a = 12 + "qf".len();
    let header_b = 12 + "bloom".len();
    let mut spliced = a[..header_a].to_vec();
    spliced.extend_from_slice(&b[header_b..b.len() - 8]);
    let sum = aqf_bits::snapshot::content_checksum(&spliced);
    spliced.extend_from_slice(&sum.to_le_bytes());
    match registry::load_snapshot(&spliced) {
        Err(SnapError::WrongSection { .. } | SnapError::Corrupt(_)) => {}
        Err(e) => panic!("splice gave unexpected error {e}"),
        Ok(_) => panic!("spliced snapshot loaded successfully"),
    }
}

/// Split a frame into (header, section byte-ranges, checksum-less end).
/// Sections are framed as a 4-byte tag + u64 LE length + payload.
fn section_ranges(bytes: &[u8], kind: &str) -> (usize, Vec<std::ops::Range<usize>>) {
    let header = 12 + kind.len();
    let content_end = bytes.len() - 8;
    let mut ranges = Vec::new();
    let mut pos = header;
    while pos < content_end {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let end = pos + 12 + len;
        assert!(end <= content_end, "section overruns frame");
        ranges.push(pos..end);
        pos = end;
    }
    (header, ranges)
}

/// In-frame section reordering with a **valid checksum**: swapping two
/// well-formed sections and re-sealing the frame produces bytes that
/// pass the integrity check, so only the decoders' section-tag
/// discipline stands between the reordering and a mis-loaded filter.
/// Every multi-section kind must reject it as a typed error.
#[test]
fn reordered_sections_with_valid_checksum_are_rejected() {
    let mut covered = 0;
    for kind in registry::kinds() {
        let bytes = snapshot_of(kind);
        let (_, ranges) = section_ranges(&bytes, kind);
        if ranges.len() < 2 {
            continue;
        }
        covered += 1;
        // Swap every adjacent pair once; each swap is a separate frame.
        for w in ranges.windows(2) {
            let (a, b) = (w[0].clone(), w[1].clone());
            if bytes[a.start..a.start + 4] == bytes[b.start..b.start + 4] {
                // Identical tags (repeated sections, e.g. per-shard
                // frames): a swap is not detectable by tag discipline
                // alone and may legitimately decode.
                continue;
            }
            let mut swapped = bytes[..a.start].to_vec();
            swapped.extend_from_slice(&bytes[b.clone()]);
            swapped.extend_from_slice(&bytes[a.clone()]);
            swapped.extend_from_slice(&bytes[b.end..bytes.len() - 8]);
            let sum = aqf_bits::snapshot::content_checksum(&swapped);
            swapped.extend_from_slice(&sum.to_le_bytes());
            match registry::load_snapshot(&swapped) {
                Err(SnapError::WrongSection { .. } | SnapError::Corrupt(_)) => {}
                Err(SnapError::Truncated { .. }) => {
                    // A moved variable-length section can also surface as
                    // an out-of-bounds read — typed, never a panic.
                }
                Err(e) => panic!(
                    "{kind}: swap at {}..{} gave unexpected error {e}",
                    a.start, b.end
                ),
                Ok(_) => panic!("{kind}: reordered snapshot loaded successfully"),
            }
        }
    }
    assert!(covered >= 2, "too few multi-section kinds exercised");
}
