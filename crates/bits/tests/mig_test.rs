//! Regression test: `migrate_to_file` onto the table's *own* backing
//! path must not truncate the arena it is reading from (the serverd
//! restart path calls `enable_file_backing` unconditionally).

#[test]
fn migrate_onto_own_backing_file() {
    let dir = std::env::temp_dir().join(format!("aqf-mig-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.arena");
    let mut t = aqf_bits::BlockedTable::new_file(&path, 300, 4, 9).unwrap();
    for i in 0..300 {
        t.set_slot(i, (i as u64) & 511);
    }
    t.sync().unwrap();
    drop(t);
    // Reopen (like FilteredDb::open) then migrate to the same path
    // (like serverd's unconditional enable_file_backing on restart).
    let mut t = aqf_bits::BlockedTable::open_file(&path).unwrap();
    assert_eq!(t.slot(37), 37);
    t.migrate_to_file(&path).unwrap();
    assert_eq!(t.slot(37), 37, "data destroyed by self-migration");
}
