//! Equivalence proof for the word-parallel shift paths.
//!
//! `BlockedTable::shift_right_insert` and `shift_right_insert_slot` were
//! rewritten from per-element loops into SWAR whole-word shifts (one
//! load/store per word, funnel-shifted across word and block boundaries).
//! These tests pin the new implementations element-wise against the
//! retained per-slot references (`*_ref`) on identically-seeded tables,
//! across word boundaries, block boundaries, every slot width 1–48 plus
//! the 64-bit fallback, and the `pos == end` degenerate case.

use aqf_bits::block::BlockedTable;
use proptest::prelude::*;

/// Build two identical tables with pseudo-random lane bits and slot values.
fn seeded_pair(len: usize, lanes: u32, width: u32, seed: u64) -> (BlockedTable, BlockedTable) {
    let mut a = BlockedTable::new(len, lanes, width);
    let mut b = BlockedTable::new(len, lanes, width);
    let mut x = seed | 1;
    let mut next = || {
        // xorshift64* — deterministic filler, no external deps.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in 0..len {
        for lane in 0..lanes {
            let v = next() & 1 == 1;
            a.assign(lane, i, v);
            b.assign(lane, i, v);
        }
        let v = next() & ((1u128 << width) - 1) as u64;
        a.set_slot(i, v);
        b.set_slot(i, v);
    }
    (a, b)
}

/// Assert every lane bit and every slot matches between the two tables.
fn assert_tables_eq(a: &BlockedTable, b: &BlockedTable, ctx: &str) {
    for i in 0..a.len() {
        for lane in 0..a.lanes() {
            assert_eq!(
                a.get(lane, i),
                b.get(lane, i),
                "{ctx}: lane {lane} bit {i} diverged"
            );
        }
        assert_eq!(a.slot(i), b.slot(i), "{ctx}: slot {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Word-parallel lane shift == per-bit reference, arbitrary geometry.
    #[test]
    fn lane_shift_matches_reference(
        len in 2usize..300,
        lanes in 1u32..=4,
        width in 1u32..=48,
        seed in any::<u64>(),
        a_raw in any::<usize>(),
        b_raw in any::<usize>(),
        value in any::<bool>(),
        lane_raw in any::<u32>(),
    ) {
        let (x, y) = (a_raw % (len - 1), b_raw % (len - 1));
        let (pos, end) = if x <= y { (x, y) } else { (y, x) };
        let lane = lane_raw % lanes;
        let (mut fast, mut slow) = seeded_pair(len, lanes, width, seed);
        fast.shift_right_insert(lane, pos, end, value);
        slow.shift_right_insert_ref(lane, pos, end, value);
        assert_tables_eq(&fast, &slow, &format!("lane shift pos={pos} end={end}"));
    }

    /// Word-parallel slot shift == per-slot reference, widths 1–48.
    #[test]
    fn slot_shift_matches_reference(
        len in 2usize..300,
        lanes in 1u32..=4,
        width in 1u32..=48,
        seed in any::<u64>(),
        a_raw in any::<usize>(),
        b_raw in any::<usize>(),
        value_raw in any::<u64>(),
    ) {
        let (x, y) = (a_raw % (len - 1), b_raw % (len - 1));
        let (pos, end) = if x <= y { (x, y) } else { (y, x) };
        let value = value_raw & ((1u128 << width) - 1) as u64;
        let (mut fast, mut slow) = seeded_pair(len, lanes, width, seed);
        fast.shift_right_insert_slot(pos, end, value);
        slow.shift_right_insert_slot_ref(pos, end, value);
        assert_tables_eq(&fast, &slow, &format!("slot shift w={width} pos={pos} end={end}"));
    }

    /// The 64-bit width falls back to the reference walk; still pin it.
    #[test]
    fn slot_shift_width64_matches_reference(
        len in 2usize..200,
        seed in any::<u64>(),
        a_raw in any::<usize>(),
        b_raw in any::<usize>(),
        value in any::<u64>(),
    ) {
        let (x, y) = (a_raw % (len - 1), b_raw % (len - 1));
        let (pos, end) = if x <= y { (x, y) } else { (y, x) };
        let (mut fast, mut slow) = seeded_pair(len, 2, 64, seed);
        fast.shift_right_insert_slot(pos, end, value);
        slow.shift_right_insert_slot_ref(pos, end, value);
        assert_tables_eq(&fast, &slow, &format!("w64 slot shift pos={pos} end={end}"));
    }
}

/// `pos == end` writes exactly one element and moves nothing — exercised
/// deterministically at word boundaries (63/64) and block boundaries
/// (127/128) where the SWAR masks are most fragile.
#[test]
fn pos_equals_end_edges() {
    for &p in &[0usize, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191] {
        for width in [1u32, 7, 9, 13, 48] {
            let (mut fast, mut slow) = seeded_pair(192, 4, width, 0x9E37_79B9 + p as u64);
            fast.shift_right_insert(1, p, p, true);
            slow.shift_right_insert_ref(1, p, p, true);
            fast.shift_right_insert_slot(p, p, 0x55 & ((1u128 << width) - 1) as u64);
            slow.shift_right_insert_slot_ref(p, p, 0x55 & ((1u128 << width) - 1) as u64);
            assert_tables_eq(&fast, &slow, &format!("pos==end at {p} w={width}"));
        }
    }
}

/// Shifts that span exactly one block boundary, pinned deterministically
/// so the cross-block carry (previous block's slot 63 → next block's
/// slot 0) is always exercised.
#[test]
fn cross_block_carries() {
    for width in [1u32, 3, 9, 17, 31, 48] {
        for &(pos, end) in &[(60usize, 70usize), (0, 127), (63, 64), (100, 170), (0, 191)] {
            let (mut fast, mut slow) = seeded_pair(192, 4, width, width as u64 * 7 + pos as u64);
            fast.shift_right_insert(0, pos, end, true);
            slow.shift_right_insert_ref(0, pos, end, true);
            fast.shift_right_insert_slot(pos, end, 1);
            slow.shift_right_insert_slot_ref(pos, end, 1);
            assert_tables_eq(&fast, &slow, &format!("cross-block w={width} {pos}..{end}"));
        }
    }
}
