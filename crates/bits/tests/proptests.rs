//! Property-based tests for the bit substrates: every operation is
//! compared against naive `Vec<bool>` / `Vec<u64>` models under random
//! operation sequences.

use aqf_bits::{BitVec, PackedVec};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum BitOp {
    Set(usize),
    Clear(usize),
    ShiftRightInsert { pos: usize, end: usize, value: bool },
    ShiftLeftRemove { pos: usize, end: usize },
}

fn bitop(len: usize) -> impl Strategy<Value = BitOp> {
    prop_oneof![
        (0..len).prop_map(BitOp::Set),
        (0..len).prop_map(BitOp::Clear),
        (0..len - 1, 0..len - 1, any::<bool>()).prop_map(|(a, b, value)| {
            let (pos, end) = if a <= b { (a, b) } else { (b, a) };
            BitOp::ShiftRightInsert { pos, end, value }
        }),
        (0..len, 1..len).prop_map(|(a, b)| {
            let (pos, end) = if a < b {
                (a, b)
            } else if a > b {
                (b, a)
            } else {
                (a, a + 1)
            };
            BitOp::ShiftLeftRemove { pos, end }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitvec_matches_bool_model(ops in proptest::collection::vec(bitop(300), 1..60)) {
        let len = 300;
        let mut v = BitVec::new(len);
        let mut m = vec![false; len];
        for op in ops {
            match op {
                BitOp::Set(i) => {
                    v.set(i);
                    m[i] = true;
                }
                BitOp::Clear(i) => {
                    v.clear(i);
                    m[i] = false;
                }
                BitOp::ShiftRightInsert { pos, end, value } => {
                    v.shift_right_insert(pos, end, value);
                    for i in (pos + 1..=end).rev() {
                        m[i] = m[i - 1];
                    }
                    m[pos] = value;
                }
                BitOp::ShiftLeftRemove { pos, end } => {
                    v.shift_left_remove(pos, end);
                    for i in pos..end - 1 {
                        m[i] = m[i + 1];
                    }
                    m[end - 1] = false;
                }
            }
            for (i, &b) in m.iter().enumerate() {
                prop_assert_eq!(v.get(i), b, "bit {} after {:?}", i, "op");
            }
        }
        // Derived queries agree everywhere.
        prop_assert_eq!(v.count_ones(), m.iter().filter(|&&b| b).count());
        for i in 0..len {
            prop_assert_eq!(v.rank(i), m[..i].iter().filter(|&&b| b).count());
            prop_assert_eq!(
                v.next_zero(i),
                (i..len).find(|&j| !m[j]),
                "next_zero({})", i
            );
            prop_assert_eq!(
                v.next_one(i),
                (i..len).find(|&j| m[j]),
                "next_one({})", i
            );
            prop_assert_eq!(
                v.prev_zero(i),
                (0..=i).rev().find(|&j| !m[j]),
                "prev_zero({})", i
            );
        }
        for a in (0..len).step_by(13) {
            for b in (a..=len).step_by(29) {
                prop_assert_eq!(
                    v.count_range(a, b),
                    m[a..b].iter().filter(|&&x| x).count()
                );
            }
        }
    }

    #[test]
    fn packedvec_matches_u64_model(
        width in 1u32..=64,
        writes in proptest::collection::vec((0usize..200, any::<u64>()), 1..100),
    ) {
        let mask = aqf_bits::word::bitmask(width);
        let mut v = PackedVec::new(200, width);
        let mut m = vec![0u64; 200];
        for (i, raw) in writes {
            let val = raw & mask;
            v.set(i, val);
            m[i] = val;
        }
        for (i, &expect) in m.iter().enumerate() {
            prop_assert_eq!(v.get(i), expect, "slot {}", i);
        }
    }

    #[test]
    fn packedvec_shift_matches_model(
        width in 1u32..=17,
        pos in 0usize..80,
        span in 0usize..40,
        value in any::<u64>(),
    ) {
        let mask = aqf_bits::word::bitmask(width);
        let mut v = PackedVec::new(140, width);
        let mut m: Vec<u64> = (0..140).map(|i| (i as u64 * 37 + 11) & mask).collect();
        for (i, &x) in m.iter().enumerate() {
            v.set(i, x);
        }
        let end = pos + span;
        v.shift_right_insert(pos, end, value & mask);
        for i in (pos + 1..=end).rev() {
            m[i] = m[i - 1];
        }
        m[pos] = value & mask;
        for (i, &expect) in m.iter().enumerate() {
            prop_assert_eq!(v.get(i), expect, "slot {}", i);
        }
        // And undo with a left shift.
        v.shift_left_remove(pos, end + 1);
        for i in pos..end {
            m[i] = m[i + 1];
        }
        m[end] = 0;
        for (i, &expect) in m.iter().enumerate() {
            prop_assert_eq!(v.get(i), expect, "slot {} after remove", i);
        }
    }

    #[test]
    fn hashseq_msb_lsb_agree_on_full_words(key in any::<u64>(), seed in any::<u64>()) {
        let h = aqf_bits::hash::HashSeq::new(key, seed);
        for w in 0..4u64 {
            prop_assert_eq!(h.bits(w * 64, 64), h.word(w));
            prop_assert_eq!(h.bits_msb(w * 64, 64), h.word(w));
        }
    }

    #[test]
    fn murmur_is_deterministic_and_length_sensitive(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let a = aqf_bits::hash::murmur64a(&data, 1);
        prop_assert_eq!(a, aqf_bits::hash::murmur64a(&data, 1));
        let mut extended = data.clone();
        extended.push(0);
        // Appending a zero byte must (essentially always) change the hash.
        prop_assert_ne!(a, aqf_bits::hash::murmur64a(&extended, 1));
    }
}
