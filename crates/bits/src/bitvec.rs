//! A fixed-capacity bit vector with rank/select and Robin Hood shifting.
//!
//! Quotient filters shift runs of slots right by one on insert and left by
//! one on delete. The metadata bit vectors (`runends`, `extensions`) must
//! shift in lock-step with the remainders, so [`BitVec`] provides
//! [`BitVec::shift_right_insert`] / [`BitVec::shift_left_remove`] over an
//! arbitrary bit range, implemented with word-level operations.

use crate::word::{bitmask, select_from_words};

/// Fixed-capacity bit vector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// A bit vector of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds zero bits.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Set bit `i` to 1.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Set bit `i` to 0.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Set bit `i` to `value`.
    #[inline(always)]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i)
        } else {
            self.clear(i)
        }
    }

    /// The raw word containing bits `[64*w, 64*w+64)`.
    #[inline(always)]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// All backing words (for the snapshot codec).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from backing words; the caller (the snapshot codec)
    /// guarantees `words.len() == len.div_ceil(64)`.
    pub(crate) fn from_raw(words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Self { words, len }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly below bit `i` (`i` may equal `len`).
    ///
    /// Full-prefix rank is inherently O(i/64): it must popcount every
    /// word below `i`. Hot paths that only need a *local* window — run
    /// and cluster navigation in the quotient filters — must use
    /// [`Self::count_range`] with both endpoints instead; every in-tree
    /// hot path (the AQF's `Table::run_range`, the QF/TQF run scans)
    /// does. `rank` itself delegates to `count_range(0, i)` so there is
    /// exactly one windowed popcount implementation to keep correct, and
    /// remains for diagnostics, tests, and genuine whole-prefix queries.
    pub fn rank(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        self.count_range(0, i)
    }

    /// Position of the set bit with rank `k`, scanning from bit `from`.
    pub fn select_from(&self, k: usize, from: usize) -> Option<usize> {
        select_from_words(self.len, from, k, |w| self.words[w])
    }

    /// Number of set bits in `[a, b)`, touching only the words that overlap
    /// the range (unlike [`Self::rank`], which scans from bit 0).
    pub fn count_range(&self, a: usize, b: usize) -> usize {
        debug_assert!(a <= b && b <= self.len);
        if a == b {
            return 0;
        }
        let (wa, wb) = (a >> 6, (b - 1) >> 6);
        if wa == wb {
            let mask = bitmask((b - a) as u32) << (a & 63);
            return (self.words[wa] & mask).count_ones() as usize;
        }
        let mut r = (self.words[wa] & !bitmask((a & 63) as u32)).count_ones() as usize;
        for w in wa + 1..wb {
            r += self.words[w].count_ones() as usize;
        }
        let tail_bits = (b - (wb << 6)) as u32;
        r += (self.words[wb] & bitmask(tail_bits)).count_ones() as usize;
        r
    }

    /// First position `>= from` holding a zero bit, or `None`.
    pub fn next_zero(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from >> 6;
        let mut word = !self.words[w] & !bitmask((from & 63) as u32);
        loop {
            if word != 0 {
                let pos = (w << 6) + word.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = !self.words[w];
        }
    }

    /// First position `>= from` holding a one bit, or `None`.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from >> 6;
        let mut word = self.words[w] & !bitmask((from & 63) as u32);
        loop {
            if word != 0 {
                let pos = (w << 6) + word.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Last position `<= from` holding a zero bit, or `None`.
    pub fn prev_zero(&self, from: usize) -> Option<usize> {
        debug_assert!(from < self.len);
        let mut w = from >> 6;
        let mut word = !self.words[w] & bitmask((from & 63) as u32 + 1);
        loop {
            if word != 0 {
                return Some((w << 6) + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = !self.words[w];
        }
    }

    /// Shift bits in `[pos, end)` one position right so they occupy
    /// `[pos+1, end+1)`, then write `value` into bit `pos`.
    ///
    /// Bit `end` is overwritten by the old bit `end-1`; callers guarantee
    /// slot `end` was free. When `pos == end` this just assigns bit `pos`.
    pub fn shift_right_insert(&mut self, pos: usize, end: usize, value: bool) {
        debug_assert!(pos <= end && end < self.len);
        let mut i = end;
        // Word-level path: shift whole words where possible.
        while i > pos {
            let w = i >> 6;
            let lo_bit = w << 6;
            let seg_start = pos.max(lo_bit);
            // Bits [seg_start, i) live in word w and move right by one
            // within it; bit i receives the old bit i-1 (same word since
            // seg_start < i implies i-1 >= seg_start >= lo_bit).
            let word = self.words[w];
            let keep_lo = word & bitmask((seg_start - lo_bit) as u32);
            let move_mask = bitmask((i - lo_bit) as u32) & !bitmask((seg_start - lo_bit) as u32);
            let moved = (word & move_mask) << 1;
            let keep_hi = word & !bitmask((i - lo_bit + 1) as u32);
            self.words[w] = keep_lo | moved | keep_hi;
            if seg_start == pos {
                break;
            }
            // Bit seg_start (now vacated) receives old bit seg_start-1 from
            // the previous word.
            let prev = self.words[w - 1] >> 63 & 1 == 1;
            self.assign(seg_start, prev);
            // Bit seg_start-1 was consumed as the carry; the next pass
            // overwrites it while shifting its own word.
            i = seg_start - 1;
        }
        self.assign(pos, value);
    }

    /// Shift bits in `(pos, end)` one position left so they occupy
    /// `[pos, end-1)`, then clear bit `end-1`.
    ///
    /// This is the inverse of [`Self::shift_right_insert`], used on delete.
    pub fn shift_left_remove(&mut self, pos: usize, end: usize) {
        debug_assert!(pos < end && end <= self.len);
        for i in pos..end - 1 {
            let v = self.get(i + 1);
            self.assign(i, v);
        }
        self.clear(end - 1);
    }

    /// Bytes of heap memory used.
    pub fn heap_size_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Set every bit to zero.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_bits(bits: &[bool]) -> BitVec {
        let mut v = BitVec::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.assign(i, b);
        }
        v
    }

    fn to_bits(v: &BitVec) -> Vec<bool> {
        (0..v.len()).map(|i| v.get(i)).collect()
    }

    #[test]
    fn get_set_clear() {
        let mut v = BitVec::new(130);
        assert!(!v.get(0));
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn rank_select_cross_words() {
        let mut v = BitVec::new(256);
        for i in (0..256).step_by(5) {
            v.set(i);
        }
        for i in 0..=256 {
            let naive = (0..i).filter(|&j| j % 5 == 0).count();
            assert_eq!(v.rank(i), naive, "rank({i})");
        }
        for k in 0..52 {
            assert_eq!(v.select_from(k, 0), Some(k * 5));
        }
        assert_eq!(v.select_from(52, 0), None);
        assert_eq!(v.select_from(0, 6), Some(10));
        assert_eq!(v.select_from(1, 70), Some(75));
    }

    fn naive_shift_right(bits: &mut [bool], pos: usize, end: usize, value: bool) {
        for i in (pos + 1..=end).rev() {
            bits[i] = bits[i - 1];
        }
        bits[pos] = value;
    }

    #[test]
    fn shift_right_insert_matches_naive() {
        // Exercise in-word, cross-word, and multi-word shifts.
        let cases = [
            (0usize, 0usize),
            (3, 10),
            (0, 63),
            (62, 66),
            (10, 200),
            (63, 64),
            (64, 127),
            (100, 101),
        ];
        for &(pos, end) in &cases {
            let mut bits: Vec<bool> = (0..256).map(|i| (i * 7 + 3) % 5 < 2).collect();
            let mut v = from_bits(&bits);
            v.shift_right_insert(pos, end, true);
            naive_shift_right(&mut bits, pos, end, true);
            assert_eq!(to_bits(&v), bits, "pos={pos} end={end}");
        }
    }

    #[test]
    fn shift_left_remove_matches_naive() {
        let cases = [(0usize, 2usize), (3, 10), (0, 64), (62, 130), (10, 256)];
        for &(pos, end) in &cases {
            let mut bits: Vec<bool> = (0..256).map(|i| (i * 11 + 1) % 3 == 0).collect();
            let mut v = from_bits(&bits);
            v.shift_left_remove(pos, end);
            for i in pos..end - 1 {
                bits[i] = bits[i + 1];
            }
            bits[end - 1] = false;
            assert_eq!(to_bits(&v), bits, "pos={pos} end={end}");
        }
    }

    #[test]
    fn rank_equals_windowed_prefix_count() {
        // Regression pin for the rank -> count_range(0, i) delegation:
        // both must agree with a naive bit count on irregular patterns,
        // including word boundaries and i == len.
        for len in [1usize, 63, 64, 65, 130, 256, 517] {
            let mut v = BitVec::new(len);
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x >> 61 & 1 == 1 {
                    v.set(i);
                }
            }
            let mut naive = 0usize;
            for i in 0..=len {
                assert_eq!(v.rank(i), naive, "len={len} rank({i})");
                assert_eq!(v.count_range(0, i), naive, "len={len} count_range(0,{i})");
                if i < len && v.get(i) {
                    naive += 1;
                }
            }
        }
    }

    #[test]
    fn count_range_matches_rank_difference() {
        let mut v = BitVec::new(300);
        for i in (0..300).step_by(7) {
            v.set(i);
        }
        for a in (0..300).step_by(13) {
            for b in (a..=300).step_by(17) {
                assert_eq!(v.count_range(a, b), v.rank(b) - v.rank(a), "[{a},{b})");
            }
        }
    }

    #[test]
    fn next_prev_zero() {
        let mut v = BitVec::new(200);
        for i in 0..200 {
            v.set(i);
        }
        v.clear(0);
        v.clear(70);
        v.clear(199);
        assert_eq!(v.next_zero(0), Some(0));
        assert_eq!(v.next_zero(1), Some(70));
        assert_eq!(v.next_zero(71), Some(199));
        assert_eq!(v.prev_zero(199), Some(199));
        assert_eq!(v.prev_zero(198), Some(70));
        assert_eq!(v.prev_zero(69), Some(0));
        let mut full = BitVec::new(128);
        for i in 0..128 {
            full.set(i);
        }
        assert_eq!(full.next_zero(0), None);
        assert_eq!(full.prev_zero(127), None);
    }

    #[test]
    fn shift_then_unshift_roundtrip() {
        // End slot (181) must be free per the shift contract: 181 % 3 != 0.
        let bits: Vec<bool> = (0..192).map(|i| i % 3 == 0).collect();
        let v0 = from_bits(&bits);
        let mut v = v0.clone();
        v.shift_right_insert(5, 181, false);
        v.shift_left_remove(5, 182);
        assert_eq!(to_bits(&v), to_bits(&v0));
    }
}
