//! Hashing for fingerprint filters.
//!
//! The paper uses MurmurHash2 for all filters. We provide:
//!
//! - [`murmur64a`]: the classic MurmurHash64A over byte strings,
//! - [`mix64`]: its finalizer as a fast integer mixer for `u64` keys,
//! - [`HashSeq`]: a *seeded chunk deriver* that treats the hash of a key as
//!   an **infinite bit string**. Adaptive filters extend fingerprints
//!   without bound, so 64 bits are not always enough; chunk `i` beyond the
//!   first word is drawn from `murmur(key, seed + 1 + i/64-ish)` so that
//!   every key has an unbounded, independently-random hash string.

/// MurmurHash64A over a byte slice.
pub fn murmur64a(data: &[u8], seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;
    let mut h: u64 = seed ^ (data.len() as u64).wrapping_mul(M);
    let chunks = data.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut k = u64::from_le_bytes(chunk.try_into().unwrap());
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }
    if !tail.is_empty() {
        let mut k: u64 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= (b as u64) << (8 * i);
        }
        h ^= k;
        h = h.wrapping_mul(M);
    }
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// Mix a `u64` key with a seed into a 64-bit hash (MurmurHash64A applied to
/// the key's little-endian bytes).
#[inline]
pub fn mix64(key: u64, seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;
    let mut h: u64 = seed ^ 8u64.wrapping_mul(M);
    let mut k = key;
    k = k.wrapping_mul(M);
    k ^= k >> R;
    k = k.wrapping_mul(M);
    h ^= k;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// An unbounded hash bit-string for one key.
///
/// `word(i)` is the i-th 64-bit word of the string; `bits(start, n)` reads
/// an arbitrary `n <= 64` bit substring. Fingerprint layout in this
/// workspace: quotient = bits `[0, q)`, remainder = bits `[q, q+r)`,
/// extension chunk `e` = bits `[q + r + e*r, q + r + (e+1)*r)`.
#[derive(Clone, Copy, Debug)]
pub struct HashSeq {
    key: u64,
    seed: u64,
    /// Word 0, computed eagerly: every fingerprint read (quotient,
    /// remainder, minirun id) starts in word 0, so one insert or query
    /// touches it several times; memoizing it turns those repeat mixes
    /// into a field load. Words past 0 only matter for long extension
    /// chains and stay lazy.
    word0: u64,
}

impl HashSeq {
    /// Hash string of `key` under `seed`.
    #[inline]
    pub fn new(key: u64, seed: u64) -> Self {
        Self {
            key,
            seed,
            // Word 0 is the plain hash so that non-adaptive filters using
            // mix64(key, seed) agree with the first 64 bits seen here.
            word0: mix64(key, seed),
        }
    }

    /// The i-th 64-bit word of the infinite hash string.
    #[inline]
    pub fn word(&self, i: u64) -> u64 {
        if i == 0 {
            return self.word0;
        }
        mix64(
            self.key,
            self.seed
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Read `n` (1..=64) bits starting at bit offset `start`, LSB-first
    /// (bit 0 is the least significant bit of word 0).
    #[inline]
    pub fn bits(&self, start: u64, n: u32) -> u64 {
        debug_assert!((1..=64).contains(&n));
        let w = start >> 6;
        let off = (start & 63) as u32;
        let lo = self.word(w) >> off;
        let val = if off + n > 64 {
            lo | (self.word(w + 1) << (64 - off))
        } else {
            lo
        };
        val & crate::word::bitmask(n)
    }

    /// Read `n` (1..=64) bits starting at MSB-first position `start`
    /// (position 0 is the *most* significant bit of word 0).
    ///
    /// Quotient filters split fingerprints MSB-first — quotient = high
    /// bits, remainder next, extensions after — so that the numeric order
    /// of `(quotient, remainder, extensions...)` equals lexicographic
    /// order of hash prefixes. That property is what keeps enumeration
    /// order stable across resizes and merges.
    #[inline]
    pub fn bits_msb(&self, start: u64, n: u32) -> u64 {
        debug_assert!((1..=64).contains(&n));
        let w = start >> 6;
        let off = (start & 63) as u32;
        if off + n <= 64 {
            (self.word(w) << off) >> (64 - n)
        } else {
            let hi_bits = 64 - off; // from word w
            let lo_bits = n - hi_bits; // from word w+1
            let hi = (self.word(w) << off) >> (64 - hi_bits);
            let lo = self.word(w + 1) >> (64 - lo_bits);
            (hi << lo_bits) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur_matches_reference_vectors() {
        // Reference values computed from the canonical MurmurHash64A
        // implementation (Appleby's smhasher), seed 0.
        assert_eq!(murmur64a(b"", 0), 0);
        // Determinism and seed sensitivity.
        assert_eq!(murmur64a(b"hello", 1), murmur64a(b"hello", 1));
        assert_ne!(murmur64a(b"hello", 1), murmur64a(b"hello", 2));
        assert_ne!(murmur64a(b"hello", 1), murmur64a(b"hellp", 1));
    }

    #[test]
    fn mix64_equals_murmur_on_le_bytes() {
        for k in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for s in [0u64, 7, 12345] {
                assert_eq!(mix64(k, s), murmur64a(&k.to_le_bytes(), s));
            }
        }
    }

    #[test]
    fn hashseq_word0_is_mix64() {
        let h = HashSeq::new(99, 5);
        assert_eq!(h.word(0), mix64(99, 5));
    }

    #[test]
    fn hashseq_bits_reassemble_words() {
        let h = HashSeq::new(0xABCD, 17);
        let w0 = h.word(0);
        let w1 = h.word(1);
        assert_eq!(h.bits(0, 64), w0);
        assert_eq!(h.bits(64, 64), w1);
        // Straddling read.
        let lo = w0 >> 60;
        let hi = (w1 & 0xFF) << 4;
        assert_eq!(h.bits(60, 12), (lo | hi) & 0xFFF);
        // Sub-word reads.
        assert_eq!(h.bits(3, 11), (w0 >> 3) & 0x7FF);
    }

    #[test]
    fn hashseq_bit_consistency_across_chunk_sizes() {
        // Reading [q, q+r) then [q+r, q+2r) must equal reading [q, q+2r).
        let h = HashSeq::new(777, 3);
        for q in [0u64, 13, 60, 120] {
            for r in [4u32, 9, 17] {
                let a = h.bits(q, r);
                let b = h.bits(q + r as u64, r);
                let combined = h.bits(q, 2 * r);
                assert_eq!(combined, a | (b << r), "q={q} r={r}");
            }
        }
    }

    #[test]
    fn bits_msb_matches_naive() {
        let h = HashSeq::new(0xFACE, 9);
        let bit_at = |p: u64| -> u64 { h.word(p / 64) >> (63 - (p % 64)) & 1 };
        for start in [0u64, 1, 13, 60, 63, 64, 100, 127] {
            for n in [1u32, 5, 9, 33, 64] {
                let mut expect = 0u64;
                for i in 0..n as u64 {
                    expect = (expect << 1) | bit_at(start + i);
                }
                assert_eq!(h.bits_msb(start, n), expect, "start={start} n={n}");
            }
        }
    }

    #[test]
    fn bits_msb_prefix_concatenation() {
        // Splitting a prefix as (q bits, r bits) and re-splitting as
        // (q+1, r-1) must preserve the numeric value of the whole prefix.
        let h = HashSeq::new(31337, 0);
        let (q, r) = (10u32, 9u32);
        let whole = h.bits_msb(0, q + r);
        let a = h.bits_msb(0, q);
        let b = h.bits_msb(q as u64, r);
        assert_eq!(whole, (a << r) | b);
        let a2 = h.bits_msb(0, q + 1);
        let b2 = h.bits_msb(q as u64 + 1, r - 1);
        assert_eq!(whole, (a2 << (r - 1)) | b2);
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip ~half the output bits.
        let base = mix64(0x1234_5678, 0);
        let mut total = 0u32;
        for b in 0..64 {
            let flipped = mix64(0x1234_5678 ^ (1 << b), 0);
            total += (base ^ flipped).count_ones();
        }
        let avg = total / 64;
        assert!((20..=44).contains(&avg), "poor avalanche: avg {avg} bits");
    }
}
