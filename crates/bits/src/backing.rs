//! Where a [`crate::BlockedTable`]'s word arena lives: heap or file.
//!
//! [`TableBacking`] abstracts the storage behind the blocked table's
//! `AtomicU64` arena. The heap variant is what every table has used so
//! far: one anonymous allocation. The file variant maps the arena
//! directly out of a file (`mmap` with `MAP_SHARED` on Linux, a
//! read-into-heap/write-back emulation elsewhere), so "loading" a
//! snapshot becomes an O(1) open + demand paging instead of a full
//! decode, and tables larger than RAM stay usable.
//!
//! An arena file is:
//!
//! ```text
//! offset  size      field
//! 0       8         magic  "AQFARENA"
//! 8       2         format version (LE; currently 1)
//! 10      2         reserved (zero)
//! 12      4         metadata lanes (LE)
//! 16      4         slot width in bits (LE)
//! 20      8         logical slot count (LE)
//! 28      8         arena word count (LE)
//! 36      ..4096    reserved (zero)
//! 4096    nwords*8  the word arena, little-endian u64s, page-aligned
//! ```
//!
//! The header pins the geometry so an arena can never be re-opened with
//! the wrong shape; the page-aligned payload means the mapped words are
//! always 8-byte aligned for `AtomicU64` access. Arena *contents* are
//! deliberately not checksummed — a content checksum would force a full
//! read and defeat the O(1) open. Callers that need integrity pair the
//! arena with a checksummed frame carrying cheap summary invariants.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Arena file magic.
pub const ARENA_MAGIC: [u8; 8] = *b"AQFARENA";
/// Arena file format version.
pub const ARENA_VERSION: u16 = 1;
/// Byte offset of the word arena within an arena file (one page, so the
/// mapped payload is page- and hence 8-byte aligned).
pub const ARENA_HEADER_LEN: usize = 4096;

/// Geometry recorded in an arena file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaGeometry {
    /// Logical slot count of the table.
    pub len: usize,
    /// Metadata lanes per block.
    pub lanes: u32,
    /// Slot width in bits.
    pub width: u32,
    /// Total words in the arena.
    pub nwords: usize,
}

fn encode_header(g: &ArenaGeometry) -> [u8; 36] {
    let mut h = [0u8; 36];
    h[0..8].copy_from_slice(&ARENA_MAGIC);
    h[8..10].copy_from_slice(&ARENA_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&g.lanes.to_le_bytes());
    h[16..20].copy_from_slice(&g.width.to_le_bytes());
    h[20..28].copy_from_slice(&(g.len as u64).to_le_bytes());
    h[28..36].copy_from_slice(&(g.nwords as u64).to_le_bytes());
    h
}

fn decode_header(h: &[u8; 36]) -> io::Result<ArenaGeometry> {
    if h[0..8] != ARENA_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an AQF arena file (bad magic)",
        ));
    }
    let version = u16::from_le_bytes([h[8], h[9]]);
    if version != ARENA_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported arena format version {version}"),
        ));
    }
    Ok(ArenaGeometry {
        lanes: u32::from_le_bytes(h[12..16].try_into().unwrap()),
        width: u32::from_le_bytes(h[16..20].try_into().unwrap()),
        len: u64::from_le_bytes(h[20..28].try_into().unwrap()) as usize,
        nwords: u64::from_le_bytes(h[28..36].try_into().unwrap()) as usize,
    })
}

/// The storage behind a blocked table's word arena.
///
/// Cloning a `TableBacking` clones the *handle* (both variants are
/// reference-counted); the words themselves are shared, which is exactly
/// what [`crate::BlockedTable::share`] needs.
#[derive(Clone)]
pub struct TableBacking {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Anonymous heap allocation.
    Heap(Arc<[AtomicU64]>),
    /// File-backed arena (`mmap` on Linux, emulated elsewhere).
    File(Arc<FileArena>),
}

impl TableBacking {
    /// A zeroed heap arena of `nwords` words.
    pub fn heap(nwords: usize) -> Self {
        Self {
            repr: Repr::Heap((0..nwords).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Create a new zeroed file-backed arena at `path` (truncating any
    /// existing file) and record `geometry` in its header.
    pub fn create_file(path: &Path, geometry: ArenaGeometry) -> io::Result<Self> {
        Ok(Self {
            repr: Repr::File(Arc::new(FileArena::create(path, geometry)?)),
        })
    }

    /// Open an existing arena file, returning the backing and the
    /// geometry recorded in its header.
    pub fn open_file(path: &Path) -> io::Result<(Self, ArenaGeometry)> {
        let (arena, g) = FileArena::open(path)?;
        Ok((
            Self {
                repr: Repr::File(Arc::new(arena)),
            },
            g,
        ))
    }

    /// The word arena.
    #[inline(always)]
    pub fn words(&self) -> &[AtomicU64] {
        match &self.repr {
            Repr::Heap(w) => w,
            Repr::File(f) => f.words(),
        }
    }

    /// True if both handles alias the same arena.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Heap(a), Repr::Heap(b)) => Arc::ptr_eq(a, b),
            (Repr::File(a), Repr::File(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// True if the arena lives in a file.
    pub fn is_file_backed(&self) -> bool {
        matches!(self.repr, Repr::File(_))
    }

    /// Flush a file-backed arena's dirty pages to disk (no-op for heap).
    pub fn sync(&self) -> io::Result<()> {
        match &self.repr {
            Repr::Heap(_) => Ok(()),
            Repr::File(f) => f.sync(),
        }
    }
}

// ---------------------------------------------------------------------
// File arenas: real mmap on Linux, portable emulation elsewhere.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub(crate) use mmap_impl::FileArena;
#[cfg(not(target_os = "linux"))]
pub(crate) use portable_impl::FileArena;

/// `mmap(MAP_SHARED)`-backed arena. The kernel pages words in on demand
/// and writes dirty pages back; [`FileArena::sync`] is `msync(MS_SYNC)`.
///
/// This module is the only unsafe code in the crate beyond the BMI2
/// select intrinsic: raw `mmap`/`munmap`/`msync` FFI plus the
/// `&[AtomicU64]` view over the mapping. Soundness: the mapping is
/// created once, stays valid until `Drop`, is page-aligned (so 8-byte
/// aligned for `AtomicU64`), and is only ever reinterpreted as the
/// plain-old-data word array the header's `nwords` declares (bounds
/// checked against the file length before mapping).
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod mmap_impl {
    use super::*;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;
    const MS_SYNC: i32 = 4;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn msync(addr: *mut core::ffi::c_void, len: usize, flags: i32) -> i32;
    }

    pub(crate) struct FileArena {
        base: *mut core::ffi::c_void,
        map_len: usize,
        nwords: usize,
        file: File,
    }

    // The mapping is plain shared memory of atomics; the raw pointer is
    // only a stable base address.
    unsafe impl Send for FileArena {}
    unsafe impl Sync for FileArena {}

    impl FileArena {
        fn map(file: File, nwords: usize) -> io::Result<(Self, usize)> {
            let map_len = ARENA_HEADER_LEN + nwords * 8;
            let base = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    map_len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if base as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok((
                Self {
                    base,
                    map_len,
                    nwords,
                    file,
                },
                map_len,
            ))
        }

        pub fn create(path: &Path, g: ArenaGeometry) -> io::Result<Self> {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            file.set_len((ARENA_HEADER_LEN + g.nwords * 8) as u64)?;
            (&file).write_all(&encode_header(&g))?;
            let (arena, _) = Self::map(file, g.nwords)?;
            Ok(arena)
        }

        pub fn open(path: &Path) -> io::Result<(Self, ArenaGeometry)> {
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            let mut h = [0u8; 36];
            file.read_exact(&mut h)?;
            let g = decode_header(&h)?;
            let expect = (ARENA_HEADER_LEN as u64)
                .checked_add((g.nwords as u64).checked_mul(8).ok_or_else(bad_nwords)?)
                .ok_or_else(bad_nwords)?;
            if file.metadata()?.len() < expect {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "arena file shorter than its header declares",
                ));
            }
            let (arena, _) = Self::map(file, g.nwords)?;
            Ok((arena, g))
        }

        #[inline(always)]
        pub fn words(&self) -> &[AtomicU64] {
            unsafe {
                std::slice::from_raw_parts(
                    (self.base as *const u8).add(ARENA_HEADER_LEN) as *const AtomicU64,
                    self.nwords,
                )
            }
        }

        pub fn sync(&self) -> io::Result<()> {
            let rc = unsafe { msync(self.base, self.map_len, MS_SYNC) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            self.file.sync_all()
        }
    }

    impl Drop for FileArena {
        fn drop(&mut self) {
            unsafe {
                munmap(self.base, self.map_len);
            }
        }
    }
}

fn bad_nwords() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "arena word count overflows")
}

/// Portable emulation for targets without `mmap`: the arena is read into
/// heap memory on open and written back wholesale on [`FileArena::sync`].
/// Correct (same visible semantics after a sync) but not O(1)-open; the
/// Linux build gets the real mapping.
#[cfg(not(target_os = "linux"))]
mod portable_impl {
    use super::*;
    use std::io::{Seek, SeekFrom};
    use std::sync::atomic::Ordering::Relaxed;
    use std::sync::Mutex;

    pub(crate) struct FileArena {
        words: Box<[AtomicU64]>,
        geometry: ArenaGeometry,
        file: Mutex<File>,
    }

    impl FileArena {
        pub fn create(path: &Path, g: ArenaGeometry) -> io::Result<Self> {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            file.set_len((ARENA_HEADER_LEN + g.nwords * 8) as u64)?;
            file.write_all(&encode_header(&g))?;
            Ok(Self {
                words: (0..g.nwords).map(|_| AtomicU64::new(0)).collect(),
                geometry: g,
                file: Mutex::new(file),
            })
        }

        pub fn open(path: &Path) -> io::Result<(Self, ArenaGeometry)> {
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            let mut h = [0u8; 36];
            file.read_exact(&mut h)?;
            let g = decode_header(&h)?;
            let expect = (ARENA_HEADER_LEN as u64)
                .checked_add((g.nwords as u64).checked_mul(8).ok_or_else(bad_nwords)?)
                .ok_or_else(bad_nwords)?;
            if file.metadata()?.len() < expect {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "arena file shorter than its header declares",
                ));
            }
            file.seek(SeekFrom::Start(ARENA_HEADER_LEN as u64))?;
            let mut buf = vec![0u8; g.nwords * 8];
            file.read_exact(&mut buf)?;
            let words: Box<[AtomicU64]> = buf
                .chunks_exact(8)
                .map(|c| AtomicU64::new(u64::from_le_bytes(c.try_into().unwrap())))
                .collect();
            Ok((
                Self {
                    words,
                    geometry: g,
                    file: Mutex::new(file),
                },
                g,
            ))
        }

        #[inline(always)]
        pub fn words(&self) -> &[AtomicU64] {
            &self.words
        }

        pub fn sync(&self) -> io::Result<()> {
            let mut buf = Vec::with_capacity(self.geometry.nwords * 8);
            for w in self.words.iter() {
                buf.extend_from_slice(&w.load(Relaxed).to_le_bytes());
            }
            let mut file = self.file.lock().expect("arena file lock poisoned");
            file.seek(SeekFrom::Start(ARENA_HEADER_LEN as u64))?;
            file.write_all(&buf)?;
            file.sync_all()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "aqf-backing-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_arena_roundtrips_words() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("t.arena");
        let g = ArenaGeometry {
            len: 128,
            lanes: 4,
            width: 9,
            nwords: 29,
        };
        let b = TableBacking::create_file(&path, g).unwrap();
        assert!(b.is_file_backed());
        assert_eq!(b.words().len(), 29);
        for (i, w) in b.words().iter().enumerate() {
            w.store(i as u64 * 0x9E37_79B9, Relaxed);
        }
        b.sync().unwrap();
        drop(b);
        let (b2, g2) = TableBacking::open_file(&path).unwrap();
        assert_eq!(g2, g);
        for (i, w) in b2.words().iter().enumerate() {
            assert_eq!(w.load(Relaxed), i as u64 * 0x9E37_79B9, "word {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_wrong_magic_and_truncation() {
        let dir = tmpdir("reject");
        let path = dir.join("bad.arena");
        std::fs::write(&path, b"not an arena file at all........").unwrap();
        assert!(TableBacking::open_file(&path).is_err());
        // Valid header but file shorter than declared.
        let g = ArenaGeometry {
            len: 64,
            lanes: 2,
            width: 7,
            nwords: 1000,
        };
        let mut h = vec![0u8; 64];
        h[..36].copy_from_slice(&encode_header(&g));
        std::fs::write(&path, &h).unwrap();
        assert!(TableBacking::open_file(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heap_and_file_never_alias_each_other() {
        let dir = tmpdir("alias");
        let path = dir.join("t.arena");
        let g = ArenaGeometry {
            len: 64,
            lanes: 1,
            width: 3,
            nwords: 5,
        };
        let h = TableBacking::heap(5);
        let f = TableBacking::create_file(&path, g).unwrap();
        assert!(h.ptr_eq(&h.clone()));
        assert!(f.ptr_eq(&f.clone()));
        assert!(!h.ptr_eq(&f));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
