//! A vector of fixed-width slots (1..=64 bits each), bit-packed into `u64`
//! words, with the insert/remove shifting that Robin Hood hashing needs.
//!
//! Quotient filters store one `r`-bit remainder per slot; the AdaptiveQF
//! widens slots by `value_bits` when it tags fingerprints (yes/no lists).

use crate::word::bitmask;

/// Bit-packed vector of `len` slots, each `width` bits wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedVec {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl PackedVec {
    /// A packed vector of `len` zeroed slots of `width` bits (1..=64).
    pub fn new(len: usize, width: u32) -> Self {
        assert!((1..=64).contains(&width), "slot width must be 1..=64");
        let total_bits = len
            .checked_mul(width as usize)
            .expect("packed vector size overflow");
        Self {
            words: vec![0; total_bits.div_ceil(64) + 1],
            width,
            len,
        }
    }

    /// Number of slots.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no slots.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot width in bits.
    #[inline(always)]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// All backing words (for the snapshot codec).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from backing words; the caller (the snapshot codec)
    /// guarantees the word count matches [`PackedVec::new`]'s layout.
    pub(crate) fn from_raw(words: Vec<u64>, len: usize, width: u32) -> Self {
        debug_assert_eq!(
            words.len(),
            len.checked_mul(width as usize).unwrap().div_ceil(64) + 1
        );
        Self { words, width, len }
    }

    /// Read slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let bit = i * self.width as usize;
        let w = bit >> 6;
        let off = (bit & 63) as u32;
        let lo = self.words[w] >> off;
        let val = if off + self.width > 64 {
            lo | (self.words[w + 1] << (64 - off))
        } else {
            lo
        };
        val & bitmask(self.width)
    }

    /// Write slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        debug_assert!(i < self.len);
        debug_assert!(value <= bitmask(self.width), "value wider than slot");
        let bit = i * self.width as usize;
        let w = bit >> 6;
        let off = (bit & 63) as u32;
        let mask = bitmask(self.width);
        self.words[w] = (self.words[w] & !(mask << off)) | (value << off);
        if off + self.width > 64 {
            let spill = 64 - off;
            self.words[w + 1] = (self.words[w + 1] & !(mask >> spill)) | (value >> spill);
        }
    }

    /// Shift slots `[pos, end)` right by one so they occupy `[pos+1, end+1)`,
    /// then write `value` into slot `pos`. Slot `end` must be dead space.
    pub fn shift_right_insert(&mut self, pos: usize, end: usize, value: u64) {
        debug_assert!(pos <= end && end < self.len);
        for i in (pos..end).rev() {
            let v = self.get(i);
            self.set(i + 1, v);
        }
        self.set(pos, value);
    }

    /// Shift slots `(pos, end)` left by one so they occupy `[pos, end-1)`,
    /// then zero slot `end-1`.
    pub fn shift_left_remove(&mut self, pos: usize, end: usize) {
        debug_assert!(pos < end && end <= self.len);
        for i in pos..end - 1 {
            let v = self.get(i + 1);
            self.set(i, v);
        }
        self.set(end - 1, 0);
    }

    /// Bytes of heap memory used.
    pub fn heap_size_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Zero every slot.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_all_widths() {
        for width in 1..=64u32 {
            let mut v = PackedVec::new(100, width);
            let mask = bitmask(width);
            for i in 0..100usize {
                let val = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
                v.set(i, val);
            }
            for i in 0..100usize {
                let val = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
                assert_eq!(v.get(i), val, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn set_does_not_clobber_neighbors() {
        let mut v = PackedVec::new(10, 13);
        for i in 0..10 {
            v.set(i, (i as u64 + 1) * 37 % (1 << 13));
        }
        v.set(5, 0);
        for i in 0..10 {
            let expect = if i == 5 {
                0
            } else {
                (i as u64 + 1) * 37 % (1 << 13)
            };
            assert_eq!(v.get(i), expect);
        }
    }

    #[test]
    fn shift_right_insert_matches_naive() {
        for width in [3u32, 9, 17, 64] {
            let mask = bitmask(width);
            let mut model: Vec<u64> = (0..50).map(|i| (i * 0xABCD + 7) & mask).collect();
            let mut v = PackedVec::new(50, width);
            for (i, &m) in model.iter().enumerate() {
                v.set(i, m);
            }
            v.shift_right_insert(10, 30, 42 & mask);
            for i in (11..=30).rev() {
                model[i] = model[i - 1];
            }
            model[10] = 42 & mask;
            for (i, &m) in model.iter().enumerate() {
                assert_eq!(v.get(i), m, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn shift_left_remove_matches_naive() {
        let mask = bitmask(9);
        let mut model: Vec<u64> = (0..50).map(|i| (i * 31 + 5) & mask).collect();
        let mut v = PackedVec::new(50, 9);
        for (i, &m) in model.iter().enumerate() {
            v.set(i, m);
        }
        v.shift_left_remove(4, 20);
        for i in 4..19 {
            model[i] = model[i + 1];
        }
        model[19] = 0;
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(v.get(i), m, "i={i}");
        }
    }
}
