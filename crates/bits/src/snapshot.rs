//! Versioned binary snapshot codec for filter persistence.
//!
//! Adaptive filters only pay off in a long-lived system: the adaptations
//! accumulated against false positives are exactly the state that must
//! survive a restart. This module is the hand-rolled (the build
//! environment is offline — no serde) on-disk framing every snapshot in
//! the workspace shares:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "AQFSNAP\0"
//! 8       2     format version (LE; currently 3 — v3 adds grow metadata
//!               and optional external arena-file table sections, v2
//!               serializes quotient filter tables as native block
//!               arenas, v1 as split bit vectors; readers accept all
//!               three and decoders branch on [`SnapshotReader::version`])
//! 10      2     kind-string length (LE)
//! 12      k     kind string (UTF-8; e.g. "aqf", "sharded-aqf", "filtered-db")
//! 12+k    ...   sections: { tag [u8;4], payload length u64 LE, payload }
//! end-8   8     content checksum: murmur64a over every preceding byte
//! ```
//!
//! Sections are length-prefixed so readers can skip or bound-check them;
//! payloads are written/read through the little-endian primitive helpers
//! on [`SnapshotWriter`] / [`SnapshotReader`]. The trailing checksum is
//! verified *before* any payload is interpreted, so a flipped byte
//! anywhere in the file surfaces as [`SnapError::ChecksumMismatch`], never
//! as a mis-loaded structure. All decode paths return typed [`SnapError`]s
//! — corruption must never panic.
//!
//! [`write_atomic`] is the shared commit protocol: write to `<path>.tmp`,
//! fsync, then rename over `<path>`, so a crash at any point leaves either
//! the old snapshot or the new one, never a torn file. A leftover `.tmp`
//! (crash between write and rename) is detected with [`stale_temp_path`]
//! and simply discarded by openers.

use std::path::{Path, PathBuf};

use crate::hash::murmur64a;
use crate::word::bitmask;
use crate::{BitVec, BlockedTable, PackedVec};

/// Snapshot file magic.
pub const MAGIC: [u8; 8] = *b"AQFSNAP\0";

/// Current snapshot format version. Version 3 adds dynamic-capacity
/// metadata (grow counters) and *external* table arenas — a frame section
/// that references a [`crate::TableBacking`] arena file beside the
/// snapshot instead of inlining the words, so loading is an O(1) mmap
/// open ([`SnapshotReader::blocked_external`]). Version 2 introduced the
/// blocked, offset-indexed table arena ([`crate::BlockedTable`]); version
/// 1 frames (split bit-vector tables) are still read, with block offsets
/// rebuilt on decode. Readers accept all three.
pub const VERSION: u16 = 3;

/// Seed for the content checksum.
const CHECKSUM_SEED: u64 = 0x5eed_c0de_ca1c_50b3;

/// Typed snapshot errors. Decoding never panics and never silently
/// mis-loads: every failure mode maps to one of these.
#[derive(Debug)]
pub enum SnapError {
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed at this point.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The leading magic bytes are not a snapshot's.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// The content checksum does not match — the file was corrupted.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// The snapshot holds a different kind of object than requested
    /// (e.g. a `"cf"` snapshot fed to the `"aqf"` loader).
    WrongKind {
        /// Kind the caller expected.
        expected: String,
        /// Kind string the snapshot header carries.
        found: String,
    },
    /// A section tag other than the expected one came next.
    WrongSection {
        /// Tag the decoder expected.
        expected: [u8; 4],
        /// Tag actually found.
        found: [u8; 4],
    },
    /// The bytes decoded but describe an invalid structure (bad geometry,
    /// inconsistent lengths, violated filter invariants).
    Corrupt(String),
    /// This object does not support snapshotting.
    Unsupported(String),
    /// An underlying file operation failed.
    Io(std::io::Error),
}

impl SnapError {
    /// A [`SnapError::Corrupt`] with formatted detail — the one
    /// construction point every decoder in the workspace shares.
    pub fn corrupt(detail: impl std::fmt::Display) -> Self {
        SnapError::Corrupt(detail.to_string())
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, {available} available"
            ),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads <= {supported})"
            ),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapError::WrongKind { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            SnapError::WrongSection { expected, found } => write!(
                f,
                "snapshot section mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found),
            ),
            SnapError::Corrupt(detail) => write!(f, "snapshot corrupt: {detail}"),
            SnapError::Unsupported(what) => {
                write!(f, "snapshotting is not supported for {what}")
            }
            SnapError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

/// Streaming snapshot encoder; see the module docs for the layout.
///
/// ```
/// use aqf_bits::snapshot::{SnapshotReader, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new("example");
/// w.section(*b"NUMS");
/// w.u64(42);
/// w.u64_slice(&[1, 2, 3]);
/// let bytes = w.finish();
///
/// let mut r = SnapshotReader::new(&bytes).unwrap();
/// assert_eq!(r.kind(), "example");
/// r.section(*b"NUMS").unwrap();
/// assert_eq!(r.u64().unwrap(), 42);
/// assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
/// ```
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Offset of the open section's length field, if a section is open.
    open_len_at: Option<usize>,
}

impl SnapshotWriter {
    /// Start a snapshot for an object of the given kind.
    pub fn new(kind: &str) -> Self {
        Self::new_versioned(kind, VERSION)
    }

    /// Start a snapshot claiming an older format version — for writers
    /// that must emit a legacy frame (compatibility tests, downgrade
    /// tooling). The caller is responsible for writing sections in that
    /// version's layout.
    pub fn new_versioned(kind: &str, version: u16) -> Self {
        assert!(kind.len() <= u16::MAX as usize, "kind string too long");
        assert!(
            (1..=VERSION).contains(&version),
            "snapshot version {version} out of supported range"
        );
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&(kind.len() as u16).to_le_bytes());
        buf.extend_from_slice(kind.as_bytes());
        Self {
            buf,
            open_len_at: None,
        }
    }

    fn close_section(&mut self) {
        if let Some(at) = self.open_len_at.take() {
            let len = (self.buf.len() - at - 8) as u64;
            self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
        }
    }

    /// Begin a new length-prefixed section (closing any open one).
    pub fn section(&mut self, tag: [u8; 4]) {
        self.close_section();
        self.buf.extend_from_slice(&tag);
        self.open_len_at = Some(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no length prefix — for streaming a large
    /// payload in pieces after writing its total length with
    /// [`SnapshotWriter::u64`] yourself (the pieces must add up exactly,
    /// or readers of the following fields will misparse). Avoids
    /// materializing the payload in a second buffer first.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u64` sequence.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a [`BitVec`]: bit length, then its backing words.
    pub fn bitvec(&mut self, b: &BitVec) {
        self.u64(b.len() as u64);
        self.u64_slice(b.as_words());
    }

    /// Append a [`PackedVec`]: slot count and width, then backing words.
    pub fn packed(&mut self, p: &PackedVec) {
        self.u64(p.len() as u64);
        self.u32(p.width());
        self.u64_slice(p.as_words());
    }

    /// Append a [`BlockedTable`] natively: geometry, then the raw block
    /// arena (offset words, metadata lanes, and packed slots interleaved
    /// exactly as in memory).
    pub fn blocked(&mut self, t: &BlockedTable) {
        self.u64(t.len() as u64);
        self.u32(t.lanes());
        self.u32(t.width());
        self.u64_slice(&t.snapshot_words());
    }

    /// Append an *external* [`BlockedTable`] reference (v3): the table's
    /// geometry plus the name of an arena file living beside the
    /// snapshot. The arena contents are **not** covered by this frame's
    /// checksum — that is what makes [`SnapshotReader::blocked_external`]
    /// an O(1) open instead of a full decode; the arena file's own header
    /// re-pins the geometry, and callers re-check cheap summary
    /// invariants after opening.
    pub fn blocked_external(&mut self, t: &BlockedTable, file_name: &str) {
        self.u64(t.len() as u64);
        self.u32(t.lanes());
        self.u32(t.width());
        self.bytes(file_name.as_bytes());
    }

    /// Close the open section and seal the snapshot with its checksum.
    pub fn finish(mut self) -> Vec<u8> {
        self.close_section();
        let sum = content_checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// The checksum [`SnapshotWriter::finish`] seals a frame with — exposed
/// so corruption-test harnesses can craft frames whose checksum is valid
/// but whose content is not (forcing the typed per-structure errors).
pub fn content_checksum(content: &[u8]) -> u64 {
    murmur64a(content, CHECKSUM_SEED)
}

// ----------------------------------------------------------------------
// Reader
// ----------------------------------------------------------------------

/// Sequential snapshot decoder. [`SnapshotReader::new`] verifies magic,
/// version, and the content checksum up front; the typed getters then
/// bound-check every read.
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    kind_end: usize,
    /// One past the last content byte (start of the checksum).
    content_end: usize,
    version: u16,
    /// Directory external arena references resolve against, if any.
    base_dir: Option<PathBuf>,
}

impl<'a> SnapshotReader<'a> {
    /// Validate the frame (magic, version, checksum) and position the
    /// reader at the first section.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapError> {
        let min = MAGIC.len() + 2 + 2 + 8;
        if bytes.len() < min {
            return Err(SnapError::Truncated {
                needed: min,
                available: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let content_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[content_end..].try_into().unwrap());
        let computed = murmur64a(&bytes[..content_end], CHECKSUM_SEED);
        if stored != computed {
            return Err(SnapError::ChecksumMismatch { stored, computed });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version == 0 || version > VERSION {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let kind_len = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
        let kind_end = 12 + kind_len;
        if kind_end > content_end {
            return Err(SnapError::Truncated {
                needed: kind_end + 8,
                available: bytes.len(),
            });
        }
        std::str::from_utf8(&bytes[12..kind_end])
            .map_err(|_| SnapError::Corrupt("kind string is not UTF-8".into()))?;
        Ok(Self {
            buf: bytes,
            pos: kind_end,
            kind_end,
            content_end,
            version,
            base_dir: None,
        })
    }

    /// Like [`SnapshotReader::new`], but records the directory the frame
    /// was read from so external arena references
    /// ([`SnapshotReader::blocked_external`]) can be resolved. Frames
    /// decoded from bare byte slices (no directory) reject external
    /// references with a typed error instead of guessing.
    pub fn new_in(bytes: &'a [u8], base_dir: Option<&Path>) -> Result<Self, SnapError> {
        let mut r = Self::new(bytes)?;
        r.base_dir = base_dir.map(Path::to_path_buf);
        Ok(r)
    }

    /// The format version the frame was written with (1..=[`VERSION`]).
    /// Decoders branch on this when a structure's section layout changed
    /// across versions.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The kind string the snapshot was written for.
    pub fn kind(&self) -> &'a str {
        // Validated UTF-8 in `new`.
        std::str::from_utf8(&self.buf[12..self.kind_end]).unwrap()
    }

    /// Error unless the snapshot's kind is exactly `expected`.
    pub fn expect_kind(&self, expected: &str) -> Result<(), SnapError> {
        if self.kind() != expected {
            return Err(SnapError::WrongKind {
                expected: expected.to_string(),
                found: self.kind().to_string(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        // checked_add: a checksum-valid but hostile frame can carry any
        // length; overflow must be a typed error, never a panic.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.content_end)
            .ok_or(SnapError::Truncated {
                needed: self.pos.saturating_add(n).saturating_add(8),
                available: self.buf.len(),
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Enter the next section, which must carry `tag`. The declared length
    /// is bound-checked against the remaining content.
    pub fn section(&mut self, tag: [u8; 4]) -> Result<(), SnapError> {
        let found: [u8; 4] = self.take(4)?.try_into().unwrap();
        if found != tag {
            return Err(SnapError::WrongSection {
                expected: tag,
                found,
            });
        }
        let len = self.len_u64()?;
        if self
            .pos
            .checked_add(len)
            .is_none_or(|e| e > self.content_end)
        {
            return Err(SnapError::Truncated {
                needed: self.pos.saturating_add(len).saturating_add(8),
                available: self.buf.len(),
            });
        }
        Ok(())
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` and check it fits in `usize`.
    pub fn len_u64(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_u64()?;
        self.take(n)
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.len_u64()?;
        // Bound before allocating so a corrupted length cannot OOM.
        let raw = self
            .take(n.checked_mul(8).ok_or_else(|| {
                SnapError::Corrupt(format!("u64 sequence length {n} overflows"))
            })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a [`BitVec`] written by [`SnapshotWriter::bitvec`].
    pub fn bitvec(&mut self) -> Result<BitVec, SnapError> {
        let len = self.len_u64()?;
        let words = self.u64_vec()?;
        BitVec::from_words(words, len)
            .ok_or_else(|| SnapError::Corrupt(format!("bit vector of {len} bits: bad word count")))
    }

    /// Read a [`PackedVec`] written by [`SnapshotWriter::packed`].
    pub fn packed(&mut self) -> Result<PackedVec, SnapError> {
        let len = self.len_u64()?;
        let width = self.u32()?;
        if !(1..=64).contains(&width) {
            return Err(SnapError::Corrupt(format!(
                "packed slot width {width} out of 1..=64"
            )));
        }
        let words = self.u64_vec()?;
        PackedVec::from_words(words, len, width).ok_or_else(|| {
            SnapError::Corrupt(format!(
                "packed vector of {len}x{width}-bit slots: bad word count"
            ))
        })
    }

    /// Read a [`BlockedTable`] written by [`SnapshotWriter::blocked`].
    /// The cached per-block offsets come straight from the file; callers
    /// must structurally validate the decoded table (offsets included)
    /// before trusting navigation.
    pub fn blocked(&mut self) -> Result<BlockedTable, SnapError> {
        let len = self.len_u64()?;
        let lanes = self.u32()?;
        let width = self.u32()?;
        if !(1..=64).contains(&width) || lanes == 0 || lanes > 16 {
            return Err(SnapError::Corrupt(format!(
                "blocked table geometry {lanes} lanes x {width}-bit slots out of range"
            )));
        }
        let words = self.u64_vec()?;
        BlockedTable::from_words(words, len, lanes, width).ok_or_else(|| {
            SnapError::Corrupt(format!(
                "blocked table of {len} slots ({lanes} lanes, {width}-bit): bad word count"
            ))
        })
    }

    /// Open a [`BlockedTable`] referenced externally by
    /// [`SnapshotWriter::blocked_external`]: resolve the recorded file
    /// name against the reader's base directory (see
    /// [`SnapshotReader::new_in`]) and mmap-open the arena. The frame's
    /// geometry must agree with the arena header's; path components in
    /// the recorded name are rejected so a hostile frame cannot reference
    /// files outside the snapshot directory.
    /// Returns the opened table along with the recorded file name, so
    /// callers that re-save the structure can reference the same arena.
    pub fn blocked_external(&mut self) -> Result<(BlockedTable, String), SnapError> {
        let len = self.len_u64()?;
        let lanes = self.u32()?;
        let width = self.u32()?;
        let name_bytes = self.bytes()?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| SnapError::Corrupt("arena file name is not UTF-8".into()))?;
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(SnapError::Corrupt(format!(
                "arena file name {name:?} is not a plain file name"
            )));
        }
        let Some(dir) = &self.base_dir else {
            return Err(SnapError::Unsupported(
                "a file-backed snapshot frame decoded without a base directory".into(),
            ));
        };
        let t = BlockedTable::open_file(&dir.join(name))?;
        if t.len() != len || t.lanes() != lanes || t.width() != width {
            return Err(SnapError::Corrupt(format!(
                "arena file {name:?} geometry {}x{}-bit ({} lanes) disagrees with frame \
                 {len}x{width}-bit ({lanes} lanes)",
                t.len(),
                t.width(),
                t.lanes()
            )));
        }
        Ok((t, name.to_string()))
    }

    /// Bytes of content left to read (excluding the checksum).
    pub fn remaining(&self) -> usize {
        self.content_end - self.pos
    }
}

// ----------------------------------------------------------------------
// Word-level accessors used by the codec
// ----------------------------------------------------------------------

impl BitVec {
    /// The backing words (64 bits each, LSB-first).
    pub fn as_words(&self) -> &[u64] {
        self.words()
    }

    /// Rebuild from backing words; `None` if the word count does not match
    /// `len` bits. Bits beyond `len` in the last word are masked off so a
    /// reconstructed vector can never report phantom set bits.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= bitmask((len % 64) as u32);
            }
        }
        Some(Self::from_raw(words, len))
    }
}

impl PackedVec {
    /// The backing words.
    pub fn as_words(&self) -> &[u64] {
        self.words()
    }

    /// Rebuild from backing words; `None` if the word count does not match
    /// `len` slots of `width` bits (the layout [`PackedVec::new`] uses).
    pub fn from_words(words: Vec<u64>, len: usize, width: u32) -> Option<Self> {
        if !(1..=64).contains(&width) {
            return None;
        }
        let total_bits = len.checked_mul(width as usize)?;
        if words.len() != total_bits.div_ceil(64) + 1 {
            return None;
        }
        Some(Self::from_raw(words, len, width))
    }
}

// ----------------------------------------------------------------------
// Atomic file I/O
// ----------------------------------------------------------------------

/// The temp path `write_atomic` stages `path`'s new content at.
pub fn stale_temp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Atomically replace `path` with `bytes`: write to `<path>.tmp`, fsync,
/// rename over `path`, fsync the parent directory. A crash at any point
/// leaves either the previous file or the complete new one — never a
/// torn mix — and once this returns `Ok` the rename itself is durable
/// (without the directory fsync, a power loss after `Ok` could roll the
/// commit back to the previous file).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = stale_temp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Read a snapshot file fully into memory. Missing files surface as
/// [`SnapError::Io`] with [`std::io::ErrorKind::NotFound`].
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives_and_vectors() {
        let mut bv = BitVec::new(130);
        bv.set(0);
        bv.set(64);
        bv.set(129);
        let mut pv = PackedVec::new(77, 13);
        for i in 0..77 {
            pv.set(i, (i as u64 * 131) & bitmask(13));
        }
        let mut w = SnapshotWriter::new("test-kind");
        w.section(*b"HEAD");
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.bytes(b"payload");
        w.section(*b"VECS");
        w.u64_slice(&[9, 8, 7]);
        w.bitvec(&bv);
        w.packed(&pv);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(r.kind(), "test-kind");
        r.expect_kind("test-kind").unwrap();
        r.section(*b"HEAD").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.bytes().unwrap(), b"payload");
        r.section(*b"VECS").unwrap();
        assert_eq!(r.u64_vec().unwrap(), vec![9, 8, 7]);
        let bv2 = r.bitvec().unwrap();
        assert_eq!(bv2, bv);
        let pv2 = r.packed().unwrap();
        assert_eq!(pv2, pv);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut w = SnapshotWriter::new("flip");
        w.section(*b"DATA");
        w.u64_slice(&[1, 2, 3, 4, 5]);
        let bytes = w.finish();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                SnapshotReader::new(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let mut w = SnapshotWriter::new("trunc");
        w.section(*b"DATA");
        w.u64_slice(&[1, 2, 3]);
        let bytes = w.finish();
        for n in 0..bytes.len() {
            match SnapshotReader::new(&bytes[..n]) {
                Err(SnapError::Truncated { .. } | SnapError::ChecksumMismatch { .. }) => {}
                Err(e) => panic!("truncation to {n} gave unexpected error {e}"),
                Ok(_) => panic!("truncation to {n} parsed"),
            }
        }
    }

    #[test]
    fn wrong_kind_and_section_are_typed() {
        let mut w = SnapshotWriter::new("alpha");
        w.section(*b"AAAA");
        w.u64(1);
        let bytes = w.finish();
        let r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(
            r.expect_kind("beta"),
            Err(SnapError::WrongKind { .. })
        ));
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(
            r.section(*b"BBBB"),
            Err(SnapError::WrongSection { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected_with_typed_error() {
        let mut w = SnapshotWriter::new("v");
        w.section(*b"DATA");
        w.u64(1);
        let mut bytes = w.finish();
        // Bump the version and re-seal so only the version differs.
        bytes[8] = (VERSION + 1) as u8;
        let end = bytes.len() - 8;
        let sum = content_checksum(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn hostile_lengths_with_valid_checksums_are_typed_errors() {
        // A checksum-valid frame whose section length field is u64::MAX:
        // must be a typed Truncated error, not an overflow panic or OOM.
        let mut w = SnapshotWriter::new("hostile");
        w.section(*b"DATA");
        w.u64(0);
        let mut bytes = w.finish();
        let len_at = 12 + "hostile".len() + 4;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let end = bytes.len() - 8;
        let sum = content_checksum(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(
            r.section(*b"DATA"),
            Err(SnapError::Truncated { .. })
        ));
        // Same for an in-payload byte-string length.
        let mut w = SnapshotWriter::new("hostile");
        w.section(*b"DATA");
        w.u64(u64::MAX); // will be read back as a bytes() length
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.section(*b"DATA").unwrap();
        assert!(r.bytes().is_err());
    }

    #[test]
    fn external_blocked_reference_roundtrips() {
        let dir = std::env::temp_dir().join(format!(
            "aqf-snap-ext-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = BlockedTable::new_file(&dir.join("t.arena"), 200, 4, 9).unwrap();
        for i in (0..200).step_by(7) {
            t.set(1, i);
            t.set_slot(i, i as u64 & bitmask(9));
        }
        t.sync().unwrap();
        let mut w = SnapshotWriter::new("ext");
        w.section(*b"QTBF");
        w.blocked_external(&t, "t.arena");
        let bytes = w.finish();
        // With a base dir: O(1) open, contents match.
        let mut r = SnapshotReader::new_in(&bytes, Some(&dir)).unwrap();
        r.section(*b"QTBF").unwrap();
        let (back, name) = r.blocked_external().unwrap();
        assert!(back.is_file_backed());
        assert_eq!(name, "t.arena");
        assert_eq!(back, t);
        // Without a base dir: typed Unsupported, not a guess.
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.section(*b"QTBF").unwrap();
        assert!(matches!(
            r.blocked_external(),
            Err(SnapError::Unsupported(_))
        ));
        // A reference that tries to escape the directory is Corrupt.
        let mut w = SnapshotWriter::new("ext");
        w.section(*b"QTBF");
        w.blocked_external(&t, "../t.arena");
        let bytes = w.finish();
        let mut r = SnapshotReader::new_in(&bytes, Some(&dir)).unwrap();
        r.section(*b"QTBF").unwrap();
        assert!(matches!(r.blocked_external(), Err(SnapError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_and_stale_temp() {
        let dir = std::env::temp_dir().join(format!(
            "aqf-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(
            !stale_temp_path(&path).exists(),
            "temp must be renamed away"
        );
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
