//! Blocked, offset-indexed slot tables (the CQF block layout, Pandey et
//! al., SIGMOD 2017, generalized to a configurable set of metadata lanes).
//!
//! Slots are grouped into blocks of [`BLOCK_SLOTS`] = 64. Each block is one
//! contiguous run of `u64` words:
//!
//! ```text
//! word 0            : offset  — distance from this block's base slot B to
//!                     one past the physical end of the run owned by the
//!                     last occupied quotient <= B-1 (0 if that run ends
//!                     before B). Makes run location O(1): no scan back to
//!                     the cluster start.
//! words 1..=L       : one 64-bit metadata word per lane (occupieds,
//!                     runends, ..., one bit per slot, LSB = slot B)
//! words L+1..L+width: the block's 64 packed `width`-bit slots
//! ```
//!
//! A block of `L` lanes and `width`-bit slots is `1 + L + width` words, so
//! the metadata a query touches sits on the same cache line(s) as the
//! remainders it guards — one block read answers "which run, where, and
//! does any remainder match" for 64 quotients.
//!
//! Bit-lane operations mirror [`crate::BitVec`] (rank, zero/one scans, the
//! Robin Hood insert-shift); slot operations mirror [`crate::PackedVec`].
//! Offsets are *maintained*, not derived: [`BlockedTable::inc_offsets`] is
//! the one-increment-per-block rule shifts apply, and
//! [`BlockedTable::set_offset`] lets rebuilders write recomputed values.

use crate::backing::{ArenaGeometry, TableBacking};
use crate::word::{bitmask, select_from_words};
use crate::{BitVec, PackedVec};
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering::Relaxed;

/// Slots per block: one metadata word's worth.
pub const BLOCK_SLOTS: usize = 64;

/// A blocked slot table: per-block offset word, metadata bit lanes, and
/// packed `width`-bit slots, interleaved block by block in one contiguous
/// allocation.
///
/// The arena is a shared [`TableBacking`] — a heap allocation by default,
/// or a file mapping via [`BlockedTable::new_file`]/
/// [`BlockedTable::open_file`] — of `AtomicU64` words accessed with
/// `Relaxed` atomics (plain loads/stores on x86-64, so the
/// single-threaded paths cost nothing), which makes
/// [`BlockedTable::share`] possible: an aliasing read handle over the
/// same arena that optimistic seqlock readers can probe while an
/// exclusive writer mutates through `&mut self`. Torn *values* are
/// impossible (every access is a whole-word atomic); torn *states* (a
/// reader observing a half-finished shift) are possible by design and
/// must be rejected by the caller's version validation — see
/// `aqf_bits::SeqLock`.
pub struct BlockedTable {
    words: TableBacking,
    /// Logical slot count; physical capacity is `nblocks * 64` and the
    /// tail slots beyond `len` must never carry metadata bits.
    len: usize,
    nblocks: usize,
    lanes: u32,
    width: u32,
    /// Words per block: `1 + lanes + width`.
    stride: usize,
    /// `1 << (i * width)` for each whole field in a word (SWAR constant).
    rep_lo: u64,
    /// `1 << (i * width + width - 1)` for each whole field (SWAR constant).
    rep_hi: u64,
}

/// Arena word count for a table of `len` slots: blocks of `1 + lanes +
/// width` words, plus one trailing padding word for gather over-reads.
fn arena_words(len: usize, lanes: u32, width: u32) -> usize {
    let nblocks = len.div_ceil(BLOCK_SLOTS);
    let stride = 1 + lanes as usize + width as usize;
    nblocks
        .checked_mul(stride)
        .and_then(|w| w.checked_add(1))
        .expect("blocked table size overflow")
}

impl BlockedTable {
    fn with_backing(words: TableBacking, len: usize, lanes: u32, width: u32) -> Self {
        assert!((1..=64).contains(&width), "slot width must be 1..=64");
        assert!(lanes >= 1, "need at least one metadata lane");
        debug_assert_eq!(words.words().len(), arena_words(len, lanes, width));
        let mut rep_lo = 0u64;
        let mut bit = 0u32;
        while bit + width <= 64 {
            rep_lo |= 1 << bit;
            bit += width;
        }
        Self {
            words,
            len,
            nblocks: len.div_ceil(BLOCK_SLOTS),
            lanes,
            width,
            stride: 1 + lanes as usize + width as usize,
            rep_lo,
            rep_hi: rep_lo << (width - 1),
        }
    }

    /// A table of `len` zeroed slots with `lanes` metadata bit lanes and
    /// `width`-bit slots (1..=64), backed by the heap.
    pub fn new(len: usize, lanes: u32, width: u32) -> Self {
        Self::with_backing(
            TableBacking::heap(arena_words(len, lanes, width)),
            len,
            lanes,
            width,
        )
    }

    /// A zeroed table whose arena lives in a new file at `path`
    /// (truncating any existing file). Mutations write straight into the
    /// mapping; call [`BlockedTable::sync`] to force dirty pages to disk.
    pub fn new_file(path: &Path, len: usize, lanes: u32, width: u32) -> io::Result<Self> {
        assert!((1..=64).contains(&width), "slot width must be 1..=64");
        assert!(lanes >= 1, "need at least one metadata lane");
        let g = ArenaGeometry {
            len,
            lanes,
            width,
            nwords: arena_words(len, lanes, width),
        };
        Ok(Self::with_backing(
            TableBacking::create_file(path, g)?,
            len,
            lanes,
            width,
        ))
    }

    /// Re-open a table whose arena was written by [`BlockedTable::new_file`]
    /// (or migrated there and [`BlockedTable::sync`]ed). O(1): the header
    /// pins the geometry and the words page in on demand — no decode.
    ///
    /// Only the header is validated here. Arena *contents* are whatever
    /// the file holds; callers layering semantic invariants on top (run
    /// structure, offsets, stat counters) must re-check the cheap ones
    /// themselves.
    pub fn open_file(path: &Path) -> io::Result<Self> {
        let (backing, g) = TableBacking::open_file(path)?;
        if !(1..=64).contains(&g.width) || !(1..=16).contains(&g.lanes) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("arena geometry {}x{}-bit out of range", g.lanes, g.width),
            ));
        }
        if g.nwords != arena_words(g.len, g.lanes, g.width) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "arena word count {} disagrees with geometry ({} slots, {} lanes, {} bits)",
                    g.nwords, g.len, g.lanes, g.width
                ),
            ));
        }
        Ok(Self::with_backing(backing, g.len, g.lanes, g.width))
    }

    /// True if the arena lives in a file.
    pub fn is_file_backed(&self) -> bool {
        self.words.is_file_backed()
    }

    /// Move the arena into a new file at `path` (truncating any existing
    /// file): creates the file arena, copies every word, and swaps the
    /// backing in place. Existing [`BlockedTable::share`] handles keep
    /// aliasing the *old* arena and must be re-taken.
    pub fn migrate_to_file(&mut self, path: &Path) -> io::Result<()> {
        let g = ArenaGeometry {
            len: self.len,
            lanes: self.lanes,
            width: self.width,
            nwords: self.words.words().len(),
        };
        // If the arena is already file-backed, `path` may be the very file
        // backing it (self-migration: a server unconditionally re-enabling
        // file backing on restart), and `create_file`'s truncation would
        // wipe the mapping before the copy. Stage the words on the heap
        // first; heap arenas cannot alias the target and copy directly.
        let staged: Option<Vec<u64>> = self
            .words
            .is_file_backed()
            .then(|| (0..g.nwords).map(|i| self.w(i)).collect());
        let file = TableBacking::create_file(path, g)?;
        for (i, w) in file.words().iter().enumerate() {
            let v = staged.as_ref().map_or_else(|| self.w(i), |s| s[i]);
            w.store(v, Relaxed);
        }
        self.words = file;
        Ok(())
    }

    /// Flush a file-backed arena's dirty pages to disk (no-op for heap).
    pub fn sync(&self) -> io::Result<()> {
        self.words.sync()
    }

    /// An empty successor table for a capacity-doubling rebuild: same
    /// metadata lanes, `new_len` slots of `new_width` bits, heap-backed.
    /// (A file-backed table grows into the heap; re-attach the grown
    /// arena to a file at the next snapshot.)
    pub fn grow_into(&self, new_len: usize, new_width: u32) -> Self {
        Self::new(new_len, self.lanes, new_width)
    }

    /// Load arena word `i` (`Relaxed`: a plain load on x86-64).
    #[inline(always)]
    fn w(&self, i: usize) -> u64 {
        self.words.words()[i].load(Relaxed)
    }

    /// Store arena word `i`. Takes `&mut self` so every mutation still
    /// requires exclusive access at the type level — sharing is read-only
    /// by construction (see [`BlockedTable::share`]).
    #[inline(always)]
    fn store_w(&mut self, i: usize, v: u64) {
        self.words.words()[i].store(v, Relaxed);
    }

    /// An aliasing handle over the **same** arena, for optimistic
    /// (seqlock-validated) readers. The handle never mutates: it exposes
    /// only `&self` accessors, and all `&mut self` methods on it would
    /// write through the shared arena — callers must treat a shared
    /// handle as read-only and pair every probe with version validation.
    /// Use [`Clone`] for an independent deep copy.
    pub fn share(&self) -> Self {
        Self {
            words: self.words.clone(),
            ..*self
        }
    }

    /// True if `self` and `other` alias the same arena (share handles).
    pub fn shares_arena(&self, other: &Self) -> bool {
        self.words.ptr_eq(&other.words)
    }

    /// Logical slot count.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds zero slots.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-slot blocks.
    #[inline(always)]
    pub fn blocks(&self) -> usize {
        self.nblocks
    }

    /// Metadata lanes per block.
    #[inline(always)]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Slot width in bits.
    #[inline(always)]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline(always)]
    fn lane_idx(&self, lane: u32, b: usize) -> usize {
        debug_assert!(lane < self.lanes && b < self.nblocks);
        b * self.stride + 1 + lane as usize
    }

    // ------------------------------------------------------------------
    // Offsets
    // ------------------------------------------------------------------

    /// The cached offset of block `b`.
    #[inline(always)]
    pub fn offset(&self, b: usize) -> usize {
        self.w(b * self.stride) as usize
    }

    /// Overwrite block `b`'s offset (rebuild paths).
    #[inline(always)]
    pub fn set_offset(&mut self, b: usize, v: usize) {
        self.store_w(b * self.stride, v as u64);
    }

    /// Increment the offsets of blocks `lo..=hi` by one — the maintenance
    /// rule for an insert-shift on behalf of quotient `q` that consumed
    /// free slot `fe`: every block base in `(q, fe]` sees the physical end
    /// of its pending run move right by exactly one slot.
    #[inline]
    pub fn inc_offsets(&mut self, lo: usize, hi: usize) {
        let hi = hi.min(self.nblocks.saturating_sub(1));
        for b in lo..=hi {
            let i = b * self.stride;
            let v = self.w(i) + 1;
            self.store_w(i, v);
        }
    }

    /// Zero every block offset (rebuild paths).
    pub fn clear_offsets(&mut self) {
        for b in 0..self.nblocks {
            self.store_w(b * self.stride, 0);
        }
    }

    /// Starting point for offset-based run navigation at quotient `q`,
    /// with occupancy bits in lane `occ`: `(from, d)` where `from` is the
    /// block base plus its cached offset (the first position this block's
    /// runends can occupy) and `d` is the number of occupied quotients in
    /// `[block base, q)` — `q`'s runend is then the `d`-th one at or
    /// after `from`.
    #[inline]
    pub fn run_nav_start(&self, occ: u32, q: usize) -> (usize, usize) {
        let blk = q >> 6;
        let from = (blk << 6) + self.offset(blk);
        let d = (self.lane_word(occ, blk) & bitmask((q & 63) as u32)).count_ones() as usize;
        (from, d)
    }

    // ------------------------------------------------------------------
    // Lane bit operations
    // ------------------------------------------------------------------

    /// Read bit `i` of `lane`.
    #[inline(always)]
    pub fn get(&self, lane: u32, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.w(self.lane_idx(lane, i >> 6)) >> (i & 63) & 1 == 1
    }

    /// Set bit `i` of `lane`.
    #[inline(always)]
    pub fn set(&mut self, lane: u32, i: usize) {
        debug_assert!(i < self.len);
        let w = self.lane_idx(lane, i >> 6);
        let v = self.w(w) | 1 << (i & 63);
        self.store_w(w, v);
    }

    /// Clear bit `i` of `lane`.
    #[inline(always)]
    pub fn clear(&mut self, lane: u32, i: usize) {
        debug_assert!(i < self.len);
        let w = self.lane_idx(lane, i >> 6);
        let v = self.w(w) & !(1 << (i & 63));
        self.store_w(w, v);
    }

    /// Set bit `i` of `lane` to `value`.
    #[inline(always)]
    pub fn assign(&mut self, lane: u32, i: usize, value: bool) {
        if value {
            self.set(lane, i)
        } else {
            self.clear(lane, i)
        }
    }

    /// The metadata word of `lane` for block `b` (bits `[64b, 64b+64)`).
    #[inline(always)]
    pub fn lane_word(&self, lane: u32, b: usize) -> u64 {
        self.w(self.lane_idx(lane, b))
    }

    /// Total set bits in `lane`.
    pub fn count_ones(&self, lane: u32) -> usize {
        (0..self.nblocks)
            .map(|b| self.lane_word(lane, b).count_ones() as usize)
            .sum()
    }

    /// Set bits of `lane` in `[a, b)`.
    pub fn count_range(&self, lane: u32, a: usize, b: usize) -> usize {
        debug_assert!(a <= b && b <= self.len);
        if a == b {
            return 0;
        }
        let (wa, wb) = (a >> 6, (b - 1) >> 6);
        if wa == wb {
            let mask = bitmask((b - a) as u32) << (a & 63);
            return (self.lane_word(lane, wa) & mask).count_ones() as usize;
        }
        let mut r = (self.lane_word(lane, wa) & !bitmask((a & 63) as u32)).count_ones() as usize;
        for w in wa + 1..wb {
            r += self.lane_word(lane, w).count_ones() as usize;
        }
        let tail_bits = (b - (wb << 6)) as u32;
        r += (self.lane_word(lane, wb) & bitmask(tail_bits)).count_ones() as usize;
        r
    }

    /// First position `>= from` with a zero bit in `lane`, or `None`.
    pub fn next_zero(&self, lane: u32, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from >> 6;
        let mut word = !self.lane_word(lane, w) & !bitmask((from & 63) as u32);
        loop {
            if word != 0 {
                let pos = (w << 6) + word.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            w += 1;
            if w >= self.nblocks {
                return None;
            }
            word = !self.lane_word(lane, w);
        }
    }

    /// First position `>= from` with a one bit in `lane`, or `None`.
    pub fn next_one(&self, lane: u32, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from >> 6;
        let mut word = self.lane_word(lane, w) & !bitmask((from & 63) as u32);
        loop {
            if word != 0 {
                let pos = (w << 6) + word.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            w += 1;
            if w >= self.nblocks {
                return None;
            }
            word = self.lane_word(lane, w);
        }
    }

    /// Last position `<= from` with a zero bit in `lane`, or `None`.
    pub fn prev_zero(&self, lane: u32, from: usize) -> Option<usize> {
        debug_assert!(from < self.len);
        let mut w = from >> 6;
        let mut word = !self.lane_word(lane, w) & bitmask((from & 63) as u32 + 1);
        loop {
            if word != 0 {
                return Some((w << 6) + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = !self.lane_word(lane, w);
        }
    }

    /// Position of the `k`-th (0-indexed) set bit at or after `from` in the
    /// word sequence produced by masking `lane` bits through `f(word)`.
    #[inline]
    pub fn select_lane_from(
        &self,
        lane: u32,
        from: usize,
        k: usize,
        f: impl Fn(&Self, usize, u64) -> u64,
    ) -> Option<usize> {
        select_from_words(self.len, from, k, |w| f(self, w, self.lane_word(lane, w)))
    }

    /// Number of consecutive one bits at `from` (stopping at the first
    /// zero or the end of the table) in the per-block word sequence
    /// `word_at(block)` — the word-wise "trailing ones" walk behind group
    /// extent decoding.
    #[inline]
    pub fn ones_run_len(&self, mut from: usize, word_at: impl Fn(&Self, usize) -> u64) -> usize {
        let mut n = 0usize;
        while from < self.len {
            let w = from >> 6;
            let word = word_at(self, w) >> (from & 63);
            let t = word.trailing_ones() as usize;
            let avail = 64 - (from & 63);
            n += t.min(avail);
            if t < avail {
                return n;
            }
            from += avail;
        }
        n
    }

    /// Shift `lane` bits in `[pos, end)` one position right so they occupy
    /// `[pos+1, end+1)`, then write `value` into bit `pos`. Bit `end` is
    /// overwritten (callers guarantee slot `end` was free).
    ///
    /// Word-parallel: each metadata word in range is rewritten with one
    /// load/store pair — the word shifted left by one with the previous
    /// word's top bit carried in, masked onto the destination bit range.
    /// Words are processed high to low so every carry source is read
    /// before it is overwritten. The common case (`pos` and `end` in one
    /// block) touches a single word with no carry at all.
    pub fn shift_right_insert(&mut self, lane: u32, pos: usize, end: usize, value: bool) {
        debug_assert!(pos <= end && end < self.len);
        let ws = pos >> 6;
        let mut w = end >> 6;
        loop {
            // Destination bits [d_lo, d_hi] local to word w.
            let d_lo = if w == ws { (pos & 63) + 1 } else { 0 };
            let d_hi = if w == end >> 6 { end & 63 } else { 63 };
            // d_lo == 64 (pos on a word's top bit): this word only
            // supplies its carry; the destination range above is empty.
            if d_lo <= d_hi {
                let wi = self.lane_idx(lane, w);
                let word = self.w(wi);
                let carry = if d_lo == 0 {
                    self.lane_word(lane, w - 1) >> 63
                } else {
                    0 // masked out below
                };
                let shifted = (word << 1) | carry;
                let mask = bitmask((d_hi - d_lo + 1) as u32) << d_lo;
                self.store_w(wi, (word & !mask) | (shifted & mask));
            }
            if w == ws {
                break;
            }
            w -= 1;
        }
        self.assign(lane, pos, value);
    }

    /// Per-bit reference for [`BlockedTable::shift_right_insert`]:
    /// element-wise moves, trivially correct by inspection. Retained so
    /// the word-parallel path is provable (shift-equivalence proptests),
    /// not assumed.
    pub fn shift_right_insert_ref(&mut self, lane: u32, pos: usize, end: usize, value: bool) {
        debug_assert!(pos <= end && end < self.len);
        for i in (pos..end).rev() {
            let v = self.get(lane, i);
            self.assign(lane, i + 1, v);
        }
        self.assign(lane, pos, value);
    }

    // ------------------------------------------------------------------
    // Slot operations
    // ------------------------------------------------------------------

    #[inline(always)]
    fn slot_word_bit(&self, i: usize) -> (usize, u32) {
        debug_assert!(i < self.len);
        let b = i >> 6;
        let bit = (i & 63) * self.width as usize;
        (
            b * self.stride + 1 + self.lanes as usize + (bit >> 6),
            (bit & 63) as u32,
        )
    }

    /// Read slot `i`.
    #[inline]
    pub fn slot(&self, i: usize) -> u64 {
        let (w, off) = self.slot_word_bit(i);
        let lo = self.w(w) >> off;
        let val = if off + self.width > 64 {
            // Never leaves the block's slot region: 64 slots fill exactly
            // `width` words.
            lo | (self.w(w + 1) << (64 - off))
        } else {
            lo
        };
        val & bitmask(self.width)
    }

    /// Write slot `i`.
    #[inline]
    pub fn set_slot(&mut self, i: usize, value: u64) {
        debug_assert!(value <= bitmask(self.width), "value wider than slot");
        let (w, off) = self.slot_word_bit(i);
        let mask = bitmask(self.width);
        let v = (self.w(w) & !(mask << off)) | (value << off);
        self.store_w(w, v);
        if off + self.width > 64 {
            let spill = 64 - off;
            let v = (self.w(w + 1) & !(mask >> spill)) | (value >> spill);
            self.store_w(w + 1, v);
        }
    }

    /// Shift slots `[pos, end)` right by one so they occupy `[pos+1,
    /// end+1)`, then write `value` into slot `pos`. Slot `end` must be
    /// dead space.
    ///
    /// Word-parallel: within each block the packed remainders form a
    /// contiguous `width * 64`-bit string, so shifting a slot range right
    /// by one slot is a funnel shift of that string by `width` bits —
    /// one load and one store per packed word instead of a cross-word
    /// read-modify-write per slot. Blocks are processed high to low and
    /// each takes its carry-in (the previous block's slot 63) before that
    /// block is touched; a shift confined to one block runs with no
    /// cross-block carry at all.
    pub fn shift_right_insert_slot(&mut self, pos: usize, end: usize, value: u64) {
        debug_assert!(pos <= end && end < self.len);
        let w = self.width as usize;
        if w == 64 {
            // Whole-word slots: the per-slot reference loop already moves
            // word-at-a-time, and `x << 64` would be undefined below.
            self.shift_right_insert_slot_ref(pos, end, value);
            return;
        }
        let bs = pos >> 6;
        let mut b = end >> 6;
        loop {
            // Destination slots [d_lo, d_hi] local to block b.
            let d_lo = if b == bs { (pos & 63) + 1 } else { 0 };
            let d_hi = if b == end >> 6 { end & 63 } else { 63 };
            // d_lo == 64 (pos on a block's top slot): the block only
            // supplies its carry; its own destination range is empty.
            if d_lo <= d_hi {
                let base = b * self.stride + 1 + self.lanes as usize;
                let lo_bit = d_lo * w;
                let hi_bit = (d_hi + 1) * w;
                // Slot 63 of the previous block funnels into slot 0; for
                // d_lo > 0 the shifted-in bits sit below lo_bit and are
                // masked out, so the carry value is irrelevant.
                let carry = if d_lo == 0 {
                    self.slot((b << 6) - 1) << (64 - w as u32)
                } else {
                    0
                };
                let w_lo = lo_bit >> 6;
                let mut k = (hi_bit - 1) >> 6;
                loop {
                    let word = self.w(base + k);
                    let below = if k > 0 { self.w(base + k - 1) } else { carry };
                    let shifted = (word << w) | (below >> (64 - w));
                    let lo = lo_bit.max(k << 6) - (k << 6);
                    let hi = hi_bit.min((k + 1) << 6) - (k << 6);
                    let mask = bitmask((hi - lo) as u32) << lo;
                    self.store_w(base + k, (word & !mask) | (shifted & mask));
                    if k == w_lo {
                        break;
                    }
                    k -= 1;
                }
            }
            if b == bs {
                break;
            }
            b -= 1;
        }
        self.set_slot(pos, value);
    }

    /// Per-slot reference for [`BlockedTable::shift_right_insert_slot`]:
    /// element-wise moves, trivially correct by inspection. Retained so
    /// the word-parallel path is provable (shift-equivalence proptests),
    /// not assumed.
    pub fn shift_right_insert_slot_ref(&mut self, pos: usize, end: usize, value: u64) {
        debug_assert!(pos <= end && end < self.len);
        for i in (pos..end).rev() {
            let v = self.slot(i);
            self.set_slot(i + 1, v);
        }
        self.set_slot(pos, value);
    }

    /// Hint the CPU to pull the block holding `slot` into cache: the
    /// block-leading line (offset word + metadata lanes — everything run
    /// navigation reads first) and the line holding the last packed
    /// remainder word. Batch pipelines issue this a few keys ahead of the
    /// probe cursor so the dependent block loads hit L1/L2 instead of
    /// DRAM. No-op on non-x86-64 targets.
    #[inline(always)]
    pub fn prefetch_block_of_slot(&self, slot: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = (slot >> 6).min(self.nblocks - 1) * self.stride;
            let words = self.words.words();
            let p = words[base].as_ptr() as *const i8;
            // SAFETY: `_mm_prefetch` is architecturally a hint with no
            // memory effects (valid for any address); both offsets point
            // within this block's words, which `base` bounds-checked.
            #[allow(unsafe_code)]
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(p);
                _mm_prefetch::<_MM_HINT_T0>(p.add((self.stride - 1) * 8));
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slot;
    }

    /// 64 raw bits of packed slot data starting at slot `i`'s first bit:
    /// slot `i` occupies bits `[0, width)`, slot `i+1` bits `[width,
    /// 2*width)`, and so on — valid through the end of `i`'s block (the
    /// tail bits beyond the block's slot region are unspecified).
    #[inline]
    pub fn slot_bits_from(&self, i: usize) -> u64 {
        let (w, off) = self.slot_word_bit(i);
        if off == 0 {
            self.w(w)
        } else {
            // w+1 may be the next block's offset word or the trailing
            // padding word; those bits are beyond the valid range and the
            // caller masks them.
            (self.w(w) >> off) | (self.w(w + 1) << (64 - off))
        }
    }

    /// First slot in `[rs, re]` whose value ANDed with `mask` equals
    /// `needle` (which must be pre-masked). Compares up to `64/width`
    /// slots per step with a branchless SWAR zero-field search.
    pub fn find_slot_eq_masked(
        &self,
        rs: usize,
        re: usize,
        needle: u64,
        mask: u64,
    ) -> Option<usize> {
        debug_assert!(rs <= re && re < self.len);
        debug_assert_eq!(needle & mask, needle);
        let w = self.width as usize;
        let kmax = 64 / w;
        if kmax < 2 {
            // Fields wider than 32 bits: plain scan.
            return (rs..=re).find(|&i| self.slot(i) & mask == needle);
        }
        let rep_needle = needle.wrapping_mul(self.rep_lo);
        let rep_mask = mask.wrapping_mul(self.rep_lo);
        let mut s = rs;
        while s <= re {
            let n = kmax.min(64 - (s & 63)).min(re - s + 1);
            let g = self.slot_bits_from(s);
            // Zero-field detection on the masked XOR: the lowest set flag
            // marks the first equal slot (higher flags may be borrows).
            let diff = (g ^ rep_needle) & rep_mask;
            let flags = diff.wrapping_sub(self.rep_lo) & !diff & self.rep_hi;
            let valid = flags & bitmask((n * w) as u32);
            if valid != 0 {
                return Some(s + valid.trailing_zeros() as usize / w);
            }
            s += n;
        }
        None
    }

    // ------------------------------------------------------------------
    // Bulk / conversion
    // ------------------------------------------------------------------

    /// Bytes of arena memory used (heap or mapped).
    pub fn heap_size_bytes(&self) -> usize {
        self.words.words().len() * 8
    }

    /// Zero every lane bit, slot, and offset.
    pub fn reset(&mut self) {
        for i in 0..self.words.words().len() {
            self.store_w(i, 0);
        }
    }

    /// A copy of the backing words (for the snapshot codec). A copy
    /// rather than a borrow: the arena is atomic, so a `&[u64]` view
    /// cannot exist.
    pub fn snapshot_words(&self) -> Vec<u64> {
        (0..self.words.words().len()).map(|i| self.w(i)).collect()
    }

    /// Rebuild from backing words written by a snapshot of the same
    /// geometry; `None` if the word count does not match.
    pub fn from_words(words: Vec<u64>, len: usize, lanes: u32, width: u32) -> Option<Self> {
        if !(1..=64).contains(&width) || lanes == 0 {
            return None;
        }
        let nblocks = len.div_ceil(BLOCK_SLOTS);
        let stride = 1 + lanes as usize + width as usize;
        if words.len() != nblocks.checked_mul(stride)?.checked_add(1)? {
            return None;
        }
        let mut t = Self::new(len, lanes, width);
        for (i, v) in words.into_iter().enumerate() {
            t.store_w(i, v);
        }
        Some(t)
    }

    /// Copy one metadata lane out as a [`BitVec`] (legacy snapshot format).
    pub fn lane_to_bitvec(&self, lane: u32) -> BitVec {
        let mut words = Vec::with_capacity(self.len.div_ceil(64));
        for b in 0..self.len.div_ceil(64) {
            words.push(self.lane_word(lane, b));
        }
        if !self.len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= bitmask((self.len % 64) as u32);
            }
        }
        BitVec::from_words(words, self.len).expect("word count matches by construction")
    }

    /// Copy the slot data out as a [`PackedVec`] (legacy snapshot format).
    pub fn slots_to_packed(&self) -> PackedVec {
        let mut p = PackedVec::new(self.len, self.width);
        for i in 0..self.len {
            p.set(i, self.slot(i));
        }
        p
    }

    /// Build a blocked table from per-lane [`BitVec`]s and a [`PackedVec`]
    /// of slots (legacy snapshot format). All offsets are left at zero —
    /// the caller must recompute them. `None` on any length/width
    /// disagreement.
    pub fn from_parts(lanes: &[&BitVec], slots: &PackedVec, len: usize) -> Option<Self> {
        if lanes.is_empty() || lanes.iter().any(|l| l.len() != len) || slots.len() != len {
            return None;
        }
        let mut t = Self::new(len, lanes.len() as u32, slots.width());
        for (lane, bv) in lanes.iter().enumerate() {
            for b in 0..len.div_ceil(64) {
                let wi = t.lane_idx(lane as u32, b);
                t.store_w(wi, bv.as_words()[b]);
            }
        }
        for i in 0..len {
            t.set_slot(i, slots.get(i));
        }
        Some(t)
    }
}

/// Deep copy: the clone gets its own independent arena. Use
/// [`BlockedTable::share`] for an aliasing read handle instead.
impl Clone for BlockedTable {
    fn clone(&self) -> Self {
        let nwords = self.words.words().len();
        let copy = TableBacking::heap(nwords);
        for i in 0..nwords {
            copy.words()[i].store(self.w(i), Relaxed);
        }
        Self {
            words: copy,
            ..*self
        }
    }
}

impl PartialEq for BlockedTable {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.lanes == other.lanes
            && self.width == other.width
            && (0..self.words.words().len()).all(|i| self.w(i) == other.w(i))
    }
}

impl Eq for BlockedTable {}

impl std::fmt::Debug for BlockedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockedTable")
            .field("len", &self.len)
            .field("nblocks", &self.nblocks)
            .field("lanes", &self.lanes)
            .field("width", &self.width)
            .field("words", &self.snapshot_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_bits_roundtrip_and_counts() {
        let mut t = BlockedTable::new(200, 3, 9);
        for i in (0..200).step_by(5) {
            t.set(1, i);
        }
        t.set(0, 64);
        t.set(2, 199);
        assert!(t.get(1, 0) && t.get(1, 195) && !t.get(1, 7));
        assert!(t.get(0, 64) && !t.get(0, 65));
        assert_eq!(t.count_ones(1), 40);
        assert_eq!(t.count_range(1, 0, 200), 40);
        assert_eq!(t.count_range(1, 3, 11), 2);
        assert_eq!(t.count_range(1, 60, 130), 14);
        t.clear(1, 0);
        assert!(!t.get(1, 0));
        assert_eq!(t.next_one(1, 0), Some(5));
        assert_eq!(t.next_zero(0, 64), Some(65));
        assert_eq!(t.prev_zero(0, 64), Some(63));
    }

    #[test]
    fn scans_match_bitvec_reference() {
        let len = 300usize;
        let mut t = BlockedTable::new(len, 2, 4);
        let mut bv = BitVec::new(len);
        let mut x = 7u64;
        for i in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x >> 60 & 1 == 1 {
                t.set(0, i);
                bv.set(i);
            }
        }
        for from in [0usize, 1, 63, 64, 100, 255, 299] {
            assert_eq!(t.next_one(0, from), bv.next_one(from), "next_one {from}");
            assert_eq!(t.next_zero(0, from), bv.next_zero(from), "next_zero {from}");
            assert_eq!(t.prev_zero(0, from), bv.prev_zero(from), "prev_zero {from}");
            for k in [0usize, 1, 5, 40] {
                assert_eq!(
                    t.select_lane_from(0, from, k, |_, _, w| w),
                    bv.select_from(k, from),
                    "select {from} {k}"
                );
            }
        }
        for a in (0..len).step_by(37) {
            for b in (a..=len).step_by(41) {
                assert_eq!(t.count_range(0, a, b), bv.count_range(a, b), "[{a},{b})");
            }
        }
    }

    #[test]
    fn slots_roundtrip_all_widths() {
        for width in [1u32, 3, 9, 13, 17, 31, 33, 64] {
            let mut t = BlockedTable::new(150, 4, width);
            let mask = bitmask(width);
            for i in 0..150usize {
                t.set_slot(i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask);
            }
            for i in 0..150usize {
                assert_eq!(
                    t.slot(i),
                    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask,
                    "width={width} i={i}"
                );
            }
        }
    }

    #[test]
    fn lane_shift_matches_bitvec() {
        let len = 256usize;
        let cases = [(0usize, 0usize), (3, 10), (62, 66), (10, 200), (63, 64)];
        for &(pos, end) in &cases {
            let mut t = BlockedTable::new(len, 2, 5);
            let mut bv = BitVec::new(len);
            for i in 0..len {
                if (i * 7 + 3) % 5 < 2 {
                    t.set(1, i);
                    bv.set(i);
                }
            }
            t.shift_right_insert(1, pos, end, true);
            bv.shift_right_insert(pos, end, true);
            for i in 0..len {
                assert_eq!(t.get(1, i), bv.get(i), "pos={pos} end={end} bit {i}");
            }
        }
    }

    #[test]
    fn slot_shift_matches_packed() {
        for width in [3u32, 9, 17] {
            let mask = bitmask(width);
            let mut t = BlockedTable::new(200, 1, width);
            let mut p = PackedVec::new(200, width);
            for i in 0..200usize {
                let v = ((i as u64) * 0xABCD + 7) & mask;
                t.set_slot(i, v);
                p.set(i, v);
            }
            t.shift_right_insert_slot(10, 130, 42 & mask);
            p.shift_right_insert(10, 130, 42 & mask);
            for i in 0..200 {
                assert_eq!(t.slot(i), p.get(i), "width={width} i={i}");
            }
        }
    }

    #[test]
    fn find_slot_eq_masked_matches_scan() {
        for width in [3u32, 9, 12, 20, 33] {
            let mask = bitmask(width.min(8)); // compare only low bits
            let mut t = BlockedTable::new(300, 2, width);
            let mut x = 3u64;
            for i in 0..300usize {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037);
                t.set_slot(i, x & bitmask(width));
            }
            for rs in [0usize, 1, 60, 63, 64, 120, 250] {
                for re in [rs, rs + 1, rs + 40, 299] {
                    let re = re.min(299);
                    if re < rs {
                        continue;
                    }
                    for needle in 0..8u64 {
                        let naive = (rs..=re).find(|&i| t.slot(i) & mask == needle & mask);
                        assert_eq!(
                            t.find_slot_eq_masked(rs, re, needle & mask, mask),
                            naive,
                            "width={width} [{rs},{re}] needle={needle}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn offsets_and_conversions() {
        let mut t = BlockedTable::new(130, 2, 7);
        t.set_offset(1, 9);
        t.inc_offsets(0, 2);
        assert_eq!(t.offset(0), 1);
        assert_eq!(t.offset(1), 10);
        assert_eq!(t.offset(2), 1);
        // inc_offsets clamps past the last block.
        t.inc_offsets(2, 50);
        assert_eq!(t.offset(2), 2);
        t.clear_offsets();
        assert_eq!(t.offset(1), 0);

        for i in (0..130).step_by(3) {
            t.set(0, i);
            t.set_slot(i, (i as u64) & bitmask(7));
        }
        let bv = t.lane_to_bitvec(0);
        let pv = t.slots_to_packed();
        let empty = BitVec::new(130);
        let back = BlockedTable::from_parts(&[&bv, &empty], &pv, 130).unwrap();
        for i in 0..130 {
            assert_eq!(back.get(0, i), t.get(0, i));
            assert!(!back.get(1, i));
            assert_eq!(back.slot(i), t.slot(i));
        }
        // Word-level snapshot roundtrip.
        let again =
            BlockedTable::from_words(t.snapshot_words(), t.len(), t.lanes(), t.width()).unwrap();
        assert_eq!(again, t);
        assert!(BlockedTable::from_words(vec![0; 3], 130, 2, 7).is_none());
    }

    #[test]
    fn share_aliases_clone_copies() {
        let mut t = BlockedTable::new(128, 2, 7);
        t.set(0, 5);
        t.set_slot(5, 99);
        let view = t.share();
        let copy = t.clone();
        assert!(t.shares_arena(&view));
        assert!(!t.shares_arena(&copy));
        assert_eq!(view, t);
        assert_eq!(copy, t);
        // Mutations through the owner are visible to the share, not the
        // clone.
        t.set_slot(6, 42);
        t.set(1, 6);
        assert_eq!(view.slot(6), 42);
        assert!(view.get(1, 6));
        assert_eq!(copy.slot(6), 0);
        assert!(!copy.get(1, 6));
        assert_ne!(copy, t);
    }

    #[test]
    fn file_backed_table_roundtrips_and_shares() {
        let dir = std::env::temp_dir().join(format!(
            "aqf-blocked-file-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.arena");
        let mut t = BlockedTable::new_file(&path, 300, 4, 9).unwrap();
        assert!(t.is_file_backed());
        for i in (0..300).step_by(3) {
            t.set(0, i);
            t.set_slot(i, (i as u64) & bitmask(9));
        }
        t.set_offset(2, 7);
        // Shares alias the same mapping; clones are independent heap copies.
        let view = t.share();
        assert!(t.shares_arena(&view));
        let copy = t.clone();
        assert!(!t.shares_arena(&copy) && !copy.is_file_backed());
        assert_eq!(copy, t);
        t.sync().unwrap();
        drop(view);
        drop(t);
        let back = BlockedTable::open_file(&path).unwrap();
        assert!(back.is_file_backed());
        assert_eq!(back, copy);
        assert_eq!(back.offset(2), 7);
        // grow_into: empty heap successor with the same lane count.
        let g = back.grow_into(600, 8);
        assert_eq!((g.len(), g.lanes(), g.width()), (600, 4, 8));
        assert!(!g.is_file_backed());
        assert_eq!(g.count_ones(0), 0);
        // migrate_to_file: a heap arena moves into a fresh file and
        // survives a close/open cycle.
        let mpath = dir.join("m.arena");
        let mut mig = copy.clone();
        mig.migrate_to_file(&mpath).unwrap();
        assert!(mig.is_file_backed());
        assert_eq!(mig, copy);
        mig.sync().unwrap();
        drop(mig);
        assert_eq!(BlockedTable::open_file(&mpath).unwrap(), copy);
        // Opening a non-arena file fails cleanly.
        let junk = dir.join("junk");
        std::fs::write(&junk, b"short").unwrap();
        assert!(BlockedTable::open_file(&junk).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ones_run_len_counts_trailing_ones() {
        let mut t = BlockedTable::new(200, 1, 4);
        for i in 10..80 {
            t.set(0, i);
        }
        t.set(0, 199);
        assert_eq!(t.ones_run_len(10, |t, b| t.lane_word(0, b)), 70);
        assert_eq!(t.ones_run_len(12, |t, b| t.lane_word(0, b)), 68);
        assert_eq!(t.ones_run_len(80, |t, b| t.lane_word(0, b)), 0);
        assert_eq!(t.ones_run_len(199, |t, b| t.lane_word(0, b)), 1);
        assert_eq!(t.ones_run_len(200, |t, b| t.lane_word(0, b)), 0);
    }
}
