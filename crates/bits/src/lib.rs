//! Bit-level substrates for quotient-filter-family data structures.
//!
//! This crate provides the low-level building blocks shared by the
//! AdaptiveQF and the baseline filters in this workspace:
//!
//! - [`word`]: branch-light rank/select primitives on single `u64` words
//!   (plus the shared multi-word masked select every navigation loop uses),
//! - [`bitvec`]: a fixed-capacity bit vector with rank/select and the
//!   *insert-shift* / *remove-shift* operations Robin Hood hashing needs,
//! - [`block`]: the blocked, offset-indexed slot table (CQF-style 64-slot
//!   blocks interleaving metadata lanes with packed remainders, plus the
//!   per-block offsets that make run location O(1)),
//! - [`packed`]: a vector of fixed-width (1..=64 bit) slots with the same
//!   shifting operations, used to store remainders,
//! - [`hash`]: the MurmurHash2-style 64-bit finalizer the paper uses, plus a
//!   seeded *chunk deriver* that treats a key's hash as an infinite bit
//!   string (required for unbounded fingerprint extension),
//! - [`snapshot`]: the hand-rolled versioned binary codec (magic, sections,
//!   content checksum, atomic write-temp-then-rename) every persistent
//!   filter snapshot in the workspace shares,
//! - [`seqlock`]: the even/odd version counter behind the optimistic
//!   lock-free read path ([`BlockedTable::share`] hands seqlock-validated
//!   readers an aliasing view of the atomic block arena).
//!
//! Everything here is allocation-free on the hot paths and model-tested
//! against naive reference implementations. The only `unsafe` in the crate
//! is the single BMI2 `pdep` intrinsic behind `word::select_u64`'s
//! compile-time feature gate, plus the `mmap` FFI and mapped-slice view
//! inside [`backing`]'s file-backed arena (portable safe code everywhere
//! else).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod bitvec;
pub mod block;
pub mod hash;
pub mod packed;
pub mod seqlock;
pub mod snapshot;
pub mod word;

pub use backing::{ArenaGeometry, TableBacking};
pub use bitvec::BitVec;
pub use block::{BlockedTable, BLOCK_SLOTS};
pub use packed::PackedVec;
pub use seqlock::{SeqLock, SeqWriteGuard};
