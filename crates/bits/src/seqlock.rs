//! A sequence lock: the version-counter half of an optimistic read
//! protocol (Lameter, "Effective synchronization on Linux/NUMA systems";
//! the same discipline as `crossbeam`'s `AtomicCell` seqlock).
//!
//! A [`SeqLock`] pairs with data held in whole-word atomics (here, the
//! `Relaxed` `AtomicU64` arena of [`crate::BlockedTable`]). Writers are
//! assumed to already be serialized among themselves (e.g. by a mutex);
//! the seqlock's job is only to let **readers** run without blocking:
//!
//! - Writer: [`SeqLock::write_guard`] bumps the counter to **odd**
//!   (`Relaxed` store, then a `Release` fence so the odd value is
//!   published before any data store), mutates, and on drop bumps back
//!   to **even** with a `Release` store (data stores cannot sink below
//!   it).
//! - Reader: [`SeqLock::read_begin`] loads the counter with `Acquire`
//!   (no data load can float above it) and bails out on odd;
//!   [`SeqLock::read_validate`] issues an `Acquire` fence (no data load
//!   can sink below it) and re-loads. If the stamp is unchanged, every
//!   data word the reader saw belongs to the single consistent state
//!   published by the writer's last `Release` — otherwise the read was
//!   torn and must be retried or retried under the writer lock.
//!
//! Because the data words themselves are atomics, a torn read here is a
//! *stale or mixed combination of whole words*, never undefined
//! behavior — validation failure is the only signal the combination may
//! be inconsistent.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// An even/odd version counter for seqlock-style optimistic reads.
///
/// The counter is even when no writer is inside a critical section and
/// odd while one is. It only counts; it does not provide writer mutual
/// exclusion — serialize writers externally (see [`SeqLock::write_guard`]).
#[derive(Debug, Default)]
pub struct SeqLock {
    seq: AtomicU64,
}

impl SeqLock {
    /// A new, quiescent (even) lock.
    pub const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
        }
    }

    /// Begin an optimistic read: `Some(stamp)` if no writer is inside a
    /// critical section, `None` (caller should retry or fall back) if
    /// the counter is odd.
    #[inline]
    pub fn read_begin(&self) -> Option<u64> {
        let s = self.seq.load(Ordering::Acquire);
        (s & 1 == 0).then_some(s)
    }

    /// Finish an optimistic read: true iff no writer entered since the
    /// matching [`SeqLock::read_begin`], i.e. everything loaded in
    /// between came from one consistent published state.
    #[inline]
    pub fn read_validate(&self, stamp: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == stamp
    }

    /// Enter a write critical section, returning a guard that re-opens
    /// the lock on drop. The caller must hold whatever lock serializes
    /// writers **before** calling this — the counter alone does not
    /// exclude concurrent writers (debug builds panic on a nested
    /// write).
    #[inline]
    pub fn write_guard(&self) -> SeqWriteGuard<'_> {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(s & 1 == 0, "nested seqlock write (writers not serialized?)");
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        // Data stores in the critical section must not be reordered
        // before the odd store above.
        fence(Ordering::Release);
        SeqWriteGuard {
            lock: self,
            odd: s.wrapping_add(1),
        }
    }

    /// The raw counter value (diagnostics / tests).
    pub fn stamp(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Force the counter odd **without** a guard, simulating a writer
    /// parked mid-mutation forever — every optimistic read will fail its
    /// [`SeqLock::read_begin`] until [`SeqLock::test_unpoison`] runs.
    /// Test-only by contract (exercises max-retry fallback paths).
    #[doc(hidden)]
    pub fn test_poison(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s | 1, Ordering::Release);
    }

    /// Undo [`SeqLock::test_poison`].
    #[doc(hidden)]
    pub fn test_unpoison(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(s & 1), Ordering::Release);
    }
}

/// RAII write section: created odd, re-published even on drop.
#[derive(Debug)]
pub struct SeqWriteGuard<'a> {
    lock: &'a SeqLock,
    odd: u64,
}

impl Drop for SeqWriteGuard<'_> {
    fn drop(&mut self) {
        // Release: every data store in the section happens-before any
        // reader that observes the new even value.
        self.lock
            .seq
            .store(self.odd.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_reads_validate() {
        let l = SeqLock::new();
        let s = l.read_begin().expect("even at rest");
        assert!(l.read_validate(s));
        assert_eq!(s, 0);
    }

    #[test]
    fn write_section_is_odd_and_invalidates() {
        let l = SeqLock::new();
        let before = l.read_begin().unwrap();
        {
            let _g = l.write_guard();
            assert!(l.read_begin().is_none(), "odd inside a write");
            assert!(!l.read_validate(before), "stamp changed");
        }
        // Even again, but a new stamp: the old read must still fail.
        let after = l.read_begin().expect("even after write");
        assert!(!l.read_validate(before));
        assert!(l.read_validate(after));
        assert_eq!(after, before + 2);
    }

    #[test]
    fn poison_blocks_reads_until_unpoisoned() {
        let l = SeqLock::new();
        l.test_poison();
        assert!(l.read_begin().is_none());
        l.test_unpoison();
        let s = l.read_begin().unwrap();
        assert!(l.read_validate(s));
    }

    #[test]
    fn cross_thread_reads_are_consistent() {
        // A writer flips two words in lockstep under the seqlock; a
        // reader must only ever validate states where both words agree.
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
        use std::sync::Arc;
        let lock = Arc::new(SeqLock::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));
        let writer = {
            let (lock, a, b, stop) = (lock.clone(), a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                for i in 1..20_000u64 {
                    let _g = lock.write_guard();
                    a.store(i, Relaxed);
                    b.store(i, Relaxed);
                }
                stop.store(1, Relaxed);
            })
        };
        // Overlap is scheduler-dependent (this may mostly run after the
        // writer on a single core); the load-bearing assertion is that no
        // *validated* read ever sees a torn pair.
        while stop.load(Relaxed) == 0 {
            if let Some(s) = lock.read_begin() {
                let (x, y) = (a.load(Relaxed), b.load(Relaxed));
                if lock.read_validate(s) {
                    assert_eq!(x, y, "validated read saw a torn pair");
                }
            }
        }
        writer.join().unwrap();
        let s = lock.read_begin().expect("quiescent after join");
        let (x, y) = (a.load(Relaxed), b.load(Relaxed));
        assert!(lock.read_validate(s));
        assert_eq!((x, y), (19_999, 19_999));
    }
}
