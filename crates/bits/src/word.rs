//! Rank/select primitives on single 64-bit words.
//!
//! These are the innermost loops of quotient-filter navigation: `rank`
//! counts set bits below a position, `select` finds the position of the
//! k-th set bit. Both are O(1)-ish (popcount / short loop over set bits).

/// A mask with the low `n` bits set. `n` may be 0..=64.
#[inline(always)]
pub const fn bitmask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Number of set bits strictly below bit position `i` (`i` in 0..=64).
#[inline(always)]
pub const fn rank_u64(word: u64, i: u32) -> u32 {
    (word & bitmask(i)).count_ones()
}

/// Position of the set bit with rank `k` (0-indexed), or `None` if `word`
/// has at most `k` set bits.
///
/// On x86-64 builds with BMI2 enabled (`-C target-feature=+bmi2` or
/// `target-cpu=native`) this compiles to a single `pdep` + `tzcnt`;
/// elsewhere it uses a portable broadword (SWAR byte-prefix-popcount)
/// search, branch-free down to the final byte.
#[inline]
pub fn select_u64(word: u64, k: u32) -> Option<u32> {
    if word.count_ones() <= k {
        return None;
    }
    Some(select_in_word(word, k))
}

/// `select_u64` minus the rank check: `word` must have more than `k` set
/// bits.
#[cfg(all(target_arch = "x86_64", target_feature = "bmi2"))]
#[inline]
fn select_in_word(word: u64, k: u32) -> u32 {
    // SAFETY: gated on compile-time availability of the BMI2 target
    // feature, which is exactly what `_pdep_u64` requires.
    #[allow(unsafe_code)]
    unsafe {
        core::arch::x86_64::_pdep_u64(1u64 << k, word).trailing_zeros()
    }
}

/// x86-64 without compile-time BMI2: detect `pdep` support once at
/// runtime (cached in a static), falling back to the portable path on
/// CPUs that lack it. The predictable branch costs ~a cycle; `pdep`
/// replaces a ~20-op broadword chain with two instructions.
#[cfg(all(target_arch = "x86_64", not(target_feature = "bmi2")))]
#[inline]
fn select_in_word(word: u64, k: u32) -> u32 {
    use std::sync::atomic::{AtomicU8, Ordering};
    static HAS_BMI2: AtomicU8 = AtomicU8::new(0);
    match HAS_BMI2.load(Ordering::Relaxed) {
        1 => {
            // SAFETY: state 1 is only stored after is_x86_feature_detected!
            // confirmed BMI2 on this CPU.
            #[allow(unsafe_code)]
            unsafe {
                pdep_select(word, k)
            }
        }
        2 => select_portable(word, k),
        _ => {
            let has = std::arch::is_x86_feature_detected!("bmi2");
            HAS_BMI2.store(if has { 1 } else { 2 }, Ordering::Relaxed);
            select_in_word(word, k)
        }
    }
}

/// `pdep`-based in-word select (deposit the k-th counting mask bit, then
/// count trailing zeros).
#[cfg(all(target_arch = "x86_64", not(target_feature = "bmi2")))]
#[target_feature(enable = "bmi2")]
#[allow(unsafe_code)]
unsafe fn pdep_select(word: u64, k: u32) -> u32 {
    // Safe to call here: the surrounding fn enables the bmi2 target
    // feature, and callers guarantee the CPU supports it.
    core::arch::x86_64::_pdep_u64(1u64 << k, word).trailing_zeros()
}

/// Portable select: a `blsr` clear-lowest loop for small ranks (short
/// dependency chain, one cycle per set bit and filter metadata words are
/// sparse), switching to broadword (Vigna, "Broadword implementation of
/// rank/select queries") for deep ranks where the loop would run long.
#[cfg(not(all(target_arch = "x86_64", target_feature = "bmi2")))]
#[inline]
fn select_portable(mut word: u64, k: u32) -> u32 {
    debug_assert!(k < word.count_ones());
    if k < 8 {
        for _ in 0..k {
            word &= word - 1;
        }
        return word.trailing_zeros();
    }
    select_broadword(word, k)
}

/// Non-x86 targets without a deposit instruction: portable select only.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn select_in_word(word: u64, k: u32) -> u32 {
    select_portable(word, k)
}

/// Branchless broadword select: per-byte prefix popcounts via SWAR, a
/// `<=`-per-byte search for the byte holding the answer, then a bounded
/// (≤ 8 iteration) scan inside that byte.
#[cfg(not(all(target_arch = "x86_64", target_feature = "bmi2")))]
#[inline]
fn select_broadword(word: u64, k: u32) -> u32 {
    const ONES: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    // Per-byte popcounts, then per-byte *prefix* sums via the multiply.
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    let cum = s.wrapping_mul(ONES);
    // Count bytes whose prefix popcount is <= k: every byte value is
    // < 128, so `(k|0x80) - cum` keeps each byte's high bit exactly when
    // k >= cum there, with no inter-byte borrows.
    let kk = (k as u64) * ONES;
    let le = ((kk | HI) - cum) & HI;
    let byte_idx = ((le >> 7).wrapping_mul(ONES) >> 56) as u32;
    let base = byte_idx * 8;
    // Rank already consumed by the bytes below; byte_idx=0 yields 0.
    let consumed = ((cum << 8) >> base) as u32 & 0xFF;
    let mut byte = (word >> base) & 0xFF;
    let mut rem = k - consumed;
    while rem > 0 {
        byte &= byte - 1;
        rem -= 1;
    }
    base + byte.trailing_zeros()
}

/// Position of the set bit with rank `k`, scanning a *virtual* multi-word
/// bit vector from bit `from`, where `word_at(w)` yields the 64-bit word
/// holding bits `[64w, 64w+64)`. Bits below `from` are ignored; positions
/// at or beyond `len` yield `None`.
///
/// This is the one shared masked-select loop behind
/// [`crate::BitVec::select_from`], the quotient filters' masked-runend
/// selects, and the blocked table's lane selects: callers express *which*
/// bits count purely through `word_at` (e.g. `runends & !extensions`).
#[inline]
pub fn select_from_words(
    len: usize,
    from: usize,
    mut k: usize,
    mut word_at: impl FnMut(usize) -> u64,
) -> Option<usize> {
    if from >= len {
        return None;
    }
    let nwords = len.div_ceil(64);
    let mut w = from >> 6;
    let mut word = word_at(w) & !bitmask((from & 63) as u32);
    loop {
        let ones = word.count_ones() as usize;
        if k < ones {
            let pos = (w << 6) + select_u64(word, k as u32).unwrap() as usize;
            return (pos < len).then_some(pos);
        }
        k -= ones;
        w += 1;
        if w >= nwords {
            return None;
        }
        word = word_at(w);
    }
}

/// Like [`select_u64`] but ignores the low `ignore` bits of the word.
#[inline]
pub fn select_u64_ignore(word: u64, k: u32, ignore: u32) -> Option<u32> {
    select_u64(word & !bitmask(ignore), k)
}

/// Position of the highest set bit at or below `i`, or `None`.
#[inline]
pub fn prev_set_bit(word: u64, i: u32) -> Option<u32> {
    let masked = word & bitmask(i + 1);
    if masked == 0 {
        None
    } else {
        Some(63 - masked.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(word: u64, i: u32) -> u32 {
        (0..i).filter(|&b| word >> b & 1 == 1).count() as u32
    }

    fn naive_select(word: u64, k: u32) -> Option<u32> {
        let mut seen = 0;
        for b in 0..64 {
            if word >> b & 1 == 1 {
                if seen == k {
                    return Some(b);
                }
                seen += 1;
            }
        }
        None
    }

    #[test]
    fn bitmask_edges() {
        assert_eq!(bitmask(0), 0);
        assert_eq!(bitmask(1), 1);
        assert_eq!(bitmask(63), u64::MAX >> 1);
        assert_eq!(bitmask(64), u64::MAX);
    }

    #[test]
    fn rank_matches_naive() {
        let words = [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63];
        for &w in &words {
            for i in 0..=64 {
                assert_eq!(rank_u64(w, i), naive_rank(w, i), "w={w:#x} i={i}");
            }
        }
    }

    #[test]
    fn select_matches_naive() {
        let words = [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63, 0xAAAA];
        for &w in &words {
            for k in 0..66 {
                assert_eq!(select_u64(w, k), naive_select(w, k), "w={w:#x} k={k}");
            }
        }
    }

    #[test]
    fn select_rank_roundtrip() {
        let w = 0x8421_8421_8421_8421u64;
        for k in 0..w.count_ones() {
            let pos = select_u64(w, k).unwrap();
            assert_eq!(rank_u64(w, pos), k);
        }
    }

    #[test]
    fn select_ignore_skips_low_bits() {
        let w = 0b1011_0101u64;
        assert_eq!(select_u64_ignore(w, 0, 3), Some(4));
        assert_eq!(select_u64_ignore(w, 1, 3), Some(5));
        assert_eq!(select_u64_ignore(w, 2, 3), Some(7));
        assert_eq!(select_u64_ignore(w, 3, 3), None);
    }

    #[test]
    fn select_from_words_matches_flat_scan() {
        // A 200-bit virtual vector over an irregular word pattern.
        let words = [0xDEAD_BEEF_CAFE_F00Du64, 0, u64::MAX, 0x0000_0000_0000_00FF];
        let len = 200usize;
        let bit = |i: usize| words[i >> 6] >> (i & 63) & 1 == 1;
        for from in [0usize, 1, 63, 64, 65, 128, 190, 199, 200, 230] {
            for k in 0..=130usize {
                let naive = (from..len).filter(|&i| bit(i)).nth(k);
                assert_eq!(
                    select_from_words(len, from, k, |w| words[w]),
                    naive,
                    "from={from} k={k}"
                );
            }
        }
    }

    #[test]
    fn prev_set_bit_works() {
        let w = 0b1001_0010u64;
        assert_eq!(prev_set_bit(w, 0), None);
        assert_eq!(prev_set_bit(w, 1), Some(1));
        assert_eq!(prev_set_bit(w, 3), Some(1));
        assert_eq!(prev_set_bit(w, 4), Some(4));
        assert_eq!(prev_set_bit(w, 63), Some(7));
        assert_eq!(prev_set_bit(0, 63), None);
    }
}
