//! Rank/select primitives on single 64-bit words.
//!
//! These are the innermost loops of quotient-filter navigation: `rank`
//! counts set bits below a position, `select` finds the position of the
//! k-th set bit. Both are O(1)-ish (popcount / short loop over set bits).

/// A mask with the low `n` bits set. `n` may be 0..=64.
#[inline(always)]
pub const fn bitmask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Number of set bits strictly below bit position `i` (`i` in 0..=64).
#[inline(always)]
pub const fn rank_u64(word: u64, i: u32) -> u32 {
    (word & bitmask(i)).count_ones()
}

/// Position of the set bit with rank `k` (0-indexed), or `None` if `word`
/// has at most `k` set bits.
///
/// The loop runs once per set bit up to the answer; on filter metadata
/// words that is a handful of iterations, and `blsr`-style `word & (word-1)`
/// compiles to a single instruction.
#[inline]
pub fn select_u64(mut word: u64, mut k: u32) -> Option<u32> {
    while word != 0 {
        let t = word.trailing_zeros();
        if k == 0 {
            return Some(t);
        }
        k -= 1;
        word &= word - 1;
    }
    None
}

/// Like [`select_u64`] but ignores the low `ignore` bits of the word.
#[inline]
pub fn select_u64_ignore(word: u64, k: u32, ignore: u32) -> Option<u32> {
    select_u64(word & !bitmask(ignore), k)
}

/// Position of the highest set bit at or below `i`, or `None`.
#[inline]
pub fn prev_set_bit(word: u64, i: u32) -> Option<u32> {
    let masked = word & bitmask(i + 1);
    if masked == 0 {
        None
    } else {
        Some(63 - masked.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(word: u64, i: u32) -> u32 {
        (0..i).filter(|&b| word >> b & 1 == 1).count() as u32
    }

    fn naive_select(word: u64, k: u32) -> Option<u32> {
        let mut seen = 0;
        for b in 0..64 {
            if word >> b & 1 == 1 {
                if seen == k {
                    return Some(b);
                }
                seen += 1;
            }
        }
        None
    }

    #[test]
    fn bitmask_edges() {
        assert_eq!(bitmask(0), 0);
        assert_eq!(bitmask(1), 1);
        assert_eq!(bitmask(63), u64::MAX >> 1);
        assert_eq!(bitmask(64), u64::MAX);
    }

    #[test]
    fn rank_matches_naive() {
        let words = [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63];
        for &w in &words {
            for i in 0..=64 {
                assert_eq!(rank_u64(w, i), naive_rank(w, i), "w={w:#x} i={i}");
            }
        }
    }

    #[test]
    fn select_matches_naive() {
        let words = [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63, 0xAAAA];
        for &w in &words {
            for k in 0..66 {
                assert_eq!(select_u64(w, k), naive_select(w, k), "w={w:#x} k={k}");
            }
        }
    }

    #[test]
    fn select_rank_roundtrip() {
        let w = 0x8421_8421_8421_8421u64;
        for k in 0..w.count_ones() {
            let pos = select_u64(w, k).unwrap();
            assert_eq!(rank_u64(w, pos), k);
        }
    }

    #[test]
    fn select_ignore_skips_low_bits() {
        let w = 0b1011_0101u64;
        assert_eq!(select_u64_ignore(w, 0, 3), Some(4));
        assert_eq!(select_u64_ignore(w, 1, 3), Some(5));
        assert_eq!(select_u64_ignore(w, 2, 3), Some(7));
        assert_eq!(select_u64_ignore(w, 3, 3), None);
    }

    #[test]
    fn prev_set_bit_works() {
        let w = 0b1001_0010u64;
        assert_eq!(prev_set_bit(w, 0), None);
        assert_eq!(prev_set_bit(w, 1), Some(1));
        assert_eq!(prev_set_bit(w, 3), Some(1));
        assert_eq!(prev_set_bit(w, 4), Some(4));
        assert_eq!(prev_set_bit(w, 63), Some(7));
        assert_eq!(prev_set_bit(0, 63), None);
    }
}
