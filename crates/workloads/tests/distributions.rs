//! Statistical validation of the workload generators.

use aqf_workloads::datasets::{
    caida_like_trace, churn_schedule, shalla_like_urls, url_key, ChurnOp,
};
use aqf_workloads::{rng, Adversary, ZipfGenerator};
use rand::RngExt;
use std::collections::HashMap;

/// Zipf(α) rank frequencies should decay like k^-α: check the ratio of
/// rank-1 to rank-10 mass against theory within a loose band.
#[test]
fn zipf_follows_power_law() {
    for alpha in [1.2f64, 1.5, 2.0] {
        let z = ZipfGenerator::new(100_000, alpha, 1);
        let mut r = rng(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let samples = 400_000;
        for _ in 0..samples {
            *counts.entry(z.sample_rank(&mut r)).or_insert(0) += 1;
        }
        let c1 = counts.get(&1).copied().unwrap_or(0) as f64;
        let c10 = counts.get(&10).copied().unwrap_or(0) as f64;
        let expect = 10f64.powf(alpha);
        let got = c1 / c10.max(1.0);
        assert!(
            got > expect * 0.7 && got < expect * 1.4,
            "alpha={alpha}: rank1/rank10 = {got:.1}, theory {expect:.1}"
        );
    }
}

#[test]
fn zipf_key_mapping_is_injective_for_small_ranks() {
    let z = ZipfGenerator::new(10_000, 1.5, 3);
    let keys: Vec<u64> = (1..=1000).map(|r| z.key_for_rank(r)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 1000, "mixer must not collide on small ranks");
}

#[test]
fn caida_trace_temporal_mixing() {
    // After shuffling, the hottest flow should not be clustered: check its
    // occurrences are spread over the trace (first and last quartile).
    let (_, trace) = caida_like_trace(500, 20_000, 1.3, 4);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &t in &trace {
        *counts.entry(t).or_insert(0) += 1;
    }
    let (&hot, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
    let first = trace[..5000].iter().filter(|&&t| t == hot).count();
    let last = trace[15_000..].iter().filter(|&&t| t == hot).count();
    assert!(first > 0 && last > 0, "hot flow must appear throughout");
}

#[test]
fn shalla_urls_hash_collision_free_at_scale() {
    let (block, _) = shalla_like_urls(50_000, 0, 6);
    let mut keys: Vec<u64> = block.iter().map(|u| url_key(u)).collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(
        keys.len() as f64 > 49_990.0,
        "64-bit URL keys must not collide"
    );
}

#[test]
fn churn_preserves_member_count_through_many_bursts() {
    let members: Vec<u64> = (0..500).collect();
    let (ops, final_members) = churn_schedule(&members, 10_000, 1000, 0.2, 100_000, 1.5, 7);
    // Replay the schedule tracking membership.
    let mut set: std::collections::HashSet<u64> = members.iter().copied().collect();
    for op in &ops {
        match op {
            ChurnOp::Delete(k) => {
                assert!(set.remove(k), "delete of non-member {k}");
            }
            ChurnOp::Insert(k) => {
                assert!(set.insert(*k), "double insert {k}");
            }
            ChurnOp::Query(_) => {}
        }
    }
    assert_eq!(set.len(), 500);
    let final_set: std::collections::HashSet<u64> = final_members.into_iter().collect();
    assert_eq!(set, final_set);
}

#[test]
fn adversary_frequency_zero_never_replays() {
    let mut a = Adversary::new(0.0, 1);
    for k in 0..100u64 {
        a.observe(k, true, false);
    }
    for _ in 0..1000 {
        let q = a.next_query(|r| 10_000 + r.random_range(0..100u64));
        assert!(q >= 10_000, "freq 0 must never replay");
    }
}

#[test]
fn uniform_universe_keys_cover_universe() {
    let ks = aqf_workloads::uniform_universe_keys(50_000, 64, 9);
    let distinct: std::collections::HashSet<u64> = ks.iter().copied().collect();
    // 50K draws from 64 mapped values should hit every one.
    assert_eq!(distinct.len(), 64);
}
