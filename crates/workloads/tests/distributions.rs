//! Statistical validation of the workload generators.

use aqf_workloads::datasets::{
    caida_like_trace, churn_schedule, shalla_like_urls, url_key, ChurnOp,
};
use aqf_workloads::{rng, Adversary, KeyStream, SettledCycle, ZipfGenerator};
use rand::RngExt;
use std::collections::HashMap;

/// Zipf(α) rank frequencies should decay like k^-α: check the ratio of
/// rank-1 to rank-10 mass against theory within a loose band.
#[test]
fn zipf_follows_power_law() {
    for alpha in [1.2f64, 1.5, 2.0] {
        let z = ZipfGenerator::new(100_000, alpha, 1);
        let mut r = rng(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let samples = 400_000;
        for _ in 0..samples {
            *counts.entry(z.sample_rank(&mut r)).or_insert(0) += 1;
        }
        let c1 = counts.get(&1).copied().unwrap_or(0) as f64;
        let c10 = counts.get(&10).copied().unwrap_or(0) as f64;
        let expect = 10f64.powf(alpha);
        let got = c1 / c10.max(1.0);
        assert!(
            got > expect * 0.7 && got < expect * 1.4,
            "alpha={alpha}: rank1/rank10 = {got:.1}, theory {expect:.1}"
        );
    }
}

#[test]
fn zipf_key_mapping_is_injective_for_small_ranks() {
    let z = ZipfGenerator::new(10_000, 1.5, 3);
    let keys: Vec<u64> = (1..=1000).map(|r| z.key_for_rank(r)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 1000, "mixer must not collide on small ranks");
}

#[test]
fn caida_trace_temporal_mixing() {
    // After shuffling, the hottest flow should not be clustered: check its
    // occurrences are spread over the trace (first and last quartile).
    let (_, trace) = caida_like_trace(500, 20_000, 1.3, 4);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &t in &trace {
        *counts.entry(t).or_insert(0) += 1;
    }
    let (&hot, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
    let first = trace[..5000].iter().filter(|&&t| t == hot).count();
    let last = trace[15_000..].iter().filter(|&&t| t == hot).count();
    assert!(first > 0 && last > 0, "hot flow must appear throughout");
}

#[test]
fn shalla_urls_hash_collision_free_at_scale() {
    let (block, _) = shalla_like_urls(50_000, 0, 6);
    let mut keys: Vec<u64> = block.iter().map(|u| url_key(u)).collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(
        keys.len() as f64 > 49_990.0,
        "64-bit URL keys must not collide"
    );
}

#[test]
fn churn_preserves_member_count_through_many_bursts() {
    let members: Vec<u64> = (0..500).collect();
    let (ops, final_members) = churn_schedule(&members, 10_000, 1000, 0.2, 100_000, 1.5, 7);
    // Replay the schedule tracking membership.
    let mut set: std::collections::HashSet<u64> = members.iter().copied().collect();
    for op in &ops {
        match op {
            ChurnOp::Delete(k) => {
                assert!(set.remove(k), "delete of non-member {k}");
            }
            ChurnOp::Insert(k) => {
                assert!(set.insert(*k), "double insert {k}");
            }
            ChurnOp::Query(_) => {}
        }
    }
    assert_eq!(set.len(), 500);
    let final_set: std::collections::HashSet<u64> = final_members.into_iter().collect();
    assert_eq!(set, final_set);
}

#[test]
fn adversary_frequency_zero_never_replays() {
    let mut a = Adversary::new(0.0, 1);
    for k in 0..100u64 {
        a.observe(k, true, false);
    }
    for _ in 0..1000 {
        let q = a.next_query(|r| 10_000 + r.random_range(0..100u64));
        assert!(q >= 10_000, "freq 0 must never replay");
    }
}

#[test]
fn uniform_universe_keys_cover_universe() {
    let ks = aqf_workloads::uniform_universe_keys(50_000, 64, 9);
    let distinct: std::collections::HashSet<u64> = ks.iter().copied().collect();
    // 50K draws from 64 mapped values should hit every one.
    assert_eq!(distinct.len(), 64);
}

// ----------------------------------------------------------------------
// stream.rs: equivalence pins — the shared KeyStream / SettledCycle
// helpers must reproduce, element for element, the constructions the
// harnesses used to build inline (fig4_parallel's reader verification
// stride, direct ZipfGenerator sampling, direct Adversary driving).
// Refactoring a harness onto the helpers must not change its workload.
// ----------------------------------------------------------------------

#[test]
fn settled_cycle_matches_fig4_inline_formula() {
    let keys = aqf_workloads::uniform_keys(1013, 5);
    for reader in [0usize, 1, 3, 11] {
        let got: Vec<u64> = SettledCycle::new(&keys, reader).take(5000).collect();
        // The formula fig4_parallel --mode=mixed readers used inline.
        let want: Vec<u64> = (0..5000)
            .map(|j| keys[(reader * 17 + j) % keys.len()])
            .collect();
        assert_eq!(got, want, "reader {reader} diverged from the inline stride");
    }
}

#[test]
fn keystream_zipf_matches_direct_generator() {
    let (universe, alpha, salt, seed) = (100_000u64, 1.5f64, 7u64, 42u64);
    let mut s = KeyStream::zipf(universe, alpha, salt, seed);
    let z = ZipfGenerator::new(universe, alpha, salt);
    let mut r = rng(seed);
    for i in 0..20_000 {
        assert_eq!(s.next_key(), z.sample_key(&mut r), "draw {i} diverged");
    }
}

#[test]
fn keystream_uniform_matches_universe_key_construction() {
    let (universe, salt, seed) = (1 << 20, 9u64, 3u64);
    let mut s = KeyStream::uniform(universe, salt, seed);
    let mut r = rng(seed);
    for i in 0..20_000 {
        let want = aqf_workloads::aqf_bits_mix(r.random_range(0..universe), salt);
        assert_eq!(s.next_key(), want, "draw {i} diverged");
        assert_eq!(s.key_for_element(i), aqf_workloads::aqf_bits_mix(i, salt));
    }
}

#[test]
fn keystream_adversarial_matches_direct_adversary() {
    let (frequency, universe, salt, seed) = (0.3f64, 1u64 << 16, 11u64, 8u64);
    let mut s = KeyStream::adversarial(frequency, universe, salt, seed);
    let mut a = Adversary::new(frequency, seed);
    // Identical observation schedules (mixing hits, fast misses, and
    // replay-worthy slow misses)...
    for k in 0..600u64 {
        let (disk, found) = (k % 3 != 2, k % 5 == 0);
        s.observe(k, disk, found);
        a.observe(k, disk, found);
    }
    assert_eq!(s.arsenal(), a.arsenal());
    assert!(s.arsenal() > 0, "schedule must collect false positives");
    // ...must yield identical query streams (replays and background
    // draws interleave by the adversary's own RNG, so element-wise
    // equality pins both the mix and the background construction).
    for i in 0..20_000 {
        let want = a.next_query(|r| aqf_workloads::aqf_bits_mix(r.random_range(0..universe), salt));
        assert_eq!(s.next_key(), want, "draw {i} diverged");
    }
}
