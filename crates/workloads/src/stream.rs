//! Shared key-stream construction for multi-client workloads.
//!
//! Several harnesses drive the same three traffic shapes — uniform
//! background probes, Zipf-skewed queries, and the Fig. 6
//! repeat-false-positive adversary — against a filter or a filter
//! server: the `fig4_parallel --mode=mixed` contention bench, the
//! `aqf-loadgen` network load generator, and the `fig13_server`
//! end-to-end bench. This module is the one construction point they all
//! share, so a workload tweak (or bug fix) lands everywhere at once and
//! the streams stay comparable across harnesses:
//!
//! - [`KeyStream`] — a seeded, self-contained query-key source in one of
//!   the three shapes. The adversarial shape wraps [`Adversary`] and is
//!   fed observations through [`KeyStream::observe`].
//! - [`SettledCycle`] — the strided verified-read probe sequence reader
//!   threads use to hammer settled (known-present) keys; each reader
//!   starts at its own offset so concurrent readers spread over the
//!   keyset instead of marching in lockstep.
//!
//! `distributions.rs` pins [`KeyStream`]'s output element-wise to the
//! underlying generators and [`SettledCycle`] to the original inline
//! formula, so refactoring a harness onto these helpers cannot silently
//! change its workload.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::adversary::Adversary;
use crate::zipf::ZipfGenerator;

/// Stride between successive probes of a [`SettledCycle`]. Coprime to
/// most keyset sizes, so one reader still visits (nearly) every settled
/// key while distinct readers start `READ_STRIDE` apart.
pub const READ_STRIDE: usize = 17;

/// The strided settled-key probe sequence for verified reads: probe `i`
/// of reader `r` is `keys[(r * READ_STRIDE + i) % keys.len()]`.
///
/// This is exactly the reader-verification stream of
/// `fig4_parallel --mode=mixed` (every probe must answer positive — a
/// false negative on a settled key fails the run), reused by the
/// loadgen's verified-read connections.
#[derive(Clone, Debug)]
pub struct SettledCycle<'a> {
    keys: &'a [u64],
    next: usize,
}

impl<'a> SettledCycle<'a> {
    /// Reader `reader`'s probe stream over `keys` (non-empty).
    pub fn new(keys: &'a [u64], reader: usize) -> Self {
        assert!(!keys.is_empty(), "settled keyset must be non-empty");
        Self {
            keys,
            next: reader.wrapping_mul(READ_STRIDE),
        }
    }
}

impl Iterator for SettledCycle<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        let k = self.keys[self.next % self.keys.len()];
        self.next = self.next.wrapping_add(1);
        Some(k)
    }
}

/// Which of the three shared traffic shapes a [`KeyStream`] produces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamShape {
    /// Uniform keys from a bounded universe, spread over the 64-bit key
    /// space by the shared mixer (like [`crate::uniform_universe_keys`]).
    Uniform,
    /// Zipf-skewed keys (the paper's α = 1.5 query distribution).
    Zipf {
        /// Zipf exponent.
        alpha: f64,
    },
    /// The Fig. 6 latency-observing adversary: uniform background
    /// traffic, with observed false positives replayed at `frequency`.
    Adversarial {
        /// Fraction of the stream the adversary controls.
        frequency: f64,
    },
}

/// A seeded query-key source in one of the [`StreamShape`]s; see the
/// module docs.
pub struct KeyStream {
    shape: StreamShape,
    universe: u64,
    salt: u64,
    rng: StdRng,
    zipf: Option<ZipfGenerator>,
    adversary: Option<Adversary>,
}

impl KeyStream {
    /// A stream of `shape` over `universe` elements. `seed` drives the
    /// sampling RNG; `salt` fixes the universe-element → key mixing (two
    /// streams with equal `salt` and universe draw from the same keyset,
    /// so a query stream can be pointed at an insert stream's keys).
    pub fn new(shape: StreamShape, universe: u64, salt: u64, seed: u64) -> Self {
        assert!(universe >= 1, "stream universe must be non-empty");
        let zipf = match shape {
            StreamShape::Zipf { alpha } => Some(ZipfGenerator::new(universe, alpha, salt)),
            _ => None,
        };
        let adversary = match shape {
            StreamShape::Adversarial { frequency } => Some(Adversary::new(frequency, seed)),
            _ => None,
        };
        Self {
            shape,
            universe,
            salt,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            adversary,
        }
    }

    /// Uniform stream (see [`StreamShape::Uniform`]).
    pub fn uniform(universe: u64, salt: u64, seed: u64) -> Self {
        Self::new(StreamShape::Uniform, universe, salt, seed)
    }

    /// Zipf stream at exponent `alpha` (the paper uses 1.5).
    pub fn zipf(universe: u64, alpha: f64, salt: u64, seed: u64) -> Self {
        Self::new(StreamShape::Zipf { alpha }, universe, salt, seed)
    }

    /// Adversarial stream controlling `frequency` of the traffic.
    pub fn adversarial(frequency: f64, universe: u64, salt: u64, seed: u64) -> Self {
        Self::new(StreamShape::Adversarial { frequency }, universe, salt, seed)
    }

    /// The stream's shape.
    pub fn shape(&self) -> StreamShape {
        self.shape
    }

    /// The key for universe element `i` — ground truth for building the
    /// member set a [`Self::zipf`] or [`Self::uniform`] stream will hit.
    pub fn key_for_element(&self, i: u64) -> u64 {
        crate::aqf_bits_mix(i, self.salt)
    }

    /// Next query key.
    pub fn next_key(&mut self) -> u64 {
        let universe = self.universe;
        let salt = self.salt;
        match (&mut self.adversary, &self.zipf) {
            (Some(adv), _) => {
                adv.next_query(|rng| crate::aqf_bits_mix(rng.random_range(0..universe), salt))
            }
            (None, Some(z)) => z.sample_key(&mut self.rng),
            (None, None) => crate::aqf_bits_mix(self.rng.random_range(0..universe), salt),
        }
    }

    /// Feed back what the issuer could observe about its own query:
    /// whether it was slow (hit the backing store) and whether it found a
    /// result. Only the adversarial shape reacts — a slow "not found" is
    /// a false positive worth replaying ([`Adversary::observe`]).
    pub fn observe(&mut self, key: u64, went_to_disk: bool, found: bool) {
        if let Some(adv) = &mut self.adversary {
            adv.observe(key, went_to_disk, found);
        }
    }

    /// Replayable false positives collected so far (0 for non-adversarial
    /// shapes).
    pub fn arsenal(&self) -> usize {
        self.adversary.as_ref().map_or(0, Adversary::arsenal)
    }
}
