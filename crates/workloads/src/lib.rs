//! Workload and dataset generators for the AdaptiveQF evaluation (§6):
//!
//! - [`zipf`] — Zipfian sampling by rejection-inversion (no tables), the
//!   paper's skewed query distribution (coefficient 1.5, universe 10M),
//! - [`adversary`] — the Fig. 6 query-only adversary: collects observed
//!   false positives during a warmup phase, then replays them at a chosen
//!   frequency to force disk I/O,
//! - [`datasets`] — synthetic stand-ins for the CAIDA passive traces and
//!   the Shalla URL blocklist (substitutions documented in DESIGN.md §4),
//!   plus the Fig. 8 churn schedule,
//! - [`restart`] — the snapshot/kill/recover phase schedule driving the
//!   crash-recovery tests and the `fig11_persist` benchmark,
//! - [`stream`] — the shared query-key stream shapes (uniform / Zipf /
//!   adversarial, plus the strided settled-key verification cycle) that
//!   `fig4_parallel --mode=mixed`, `aqf-loadgen`, and `fig13_server` all
//!   construct through one code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod datasets;
pub mod restart;
pub mod stream;
pub mod zipf;

pub use adversary::Adversary;
pub use datasets::{caida_like_trace, churn_schedule, shalla_like_urls, ChurnOp};
pub use restart::RestartSchedule;
pub use stream::{KeyStream, SettledCycle, StreamShape};
pub use zipf::ZipfGenerator;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic RNG for experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A unique scratch-directory path for test and bench harnesses:
/// `<tmpdir>/<prefix>-<pid>-<thread id>-<seq>`. Unique per call (the
/// sequence number is process-wide), so parallel `cargo test` threads and
/// leftovers of killed runs can never collide. Any existing directory at
/// the path is removed; the directory itself is NOT created.
pub fn unique_temp_dir(prefix: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "{prefix}-{}-{:?}-{}",
        std::process::id(),
        std::thread::current().id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// `n` uniform random 64-bit keys.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.random()).collect()
}

/// `n` uniform keys drawn from a bounded universe `[0, universe)`,
/// re-mapped through a mixer so they spread over the full 64-bit space.
pub fn uniform_universe_keys(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| aqf_bits_mix(r.random_range(0..universe), seed))
        .collect()
}

/// Key for universe element `i` (stable mapping shared by generators).
#[inline]
pub fn aqf_bits_mix(i: u64, salt: u64) -> u64 {
    // splitmix-style finalizer; cheap and statistically adequate here.
    let mut z = i.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_are_deterministic_and_distinct() {
        let a = uniform_keys(1000, 7);
        let b = uniform_keys(1000, 7);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 1000, "64-bit keys should not collide");
    }

    #[test]
    fn universe_keys_come_from_bounded_set() {
        let ks = uniform_universe_keys(10_000, 100, 3);
        let mut distinct = ks.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 100);
    }
}
