//! Restart/recovery workload (beyond the paper): a keyed stream with a
//! kill point.
//!
//! Persistence turns the paper's long-lived-system argument into a
//! testable scenario: a serving process inserts a stream, snapshots
//! mid-way, keeps inserting, and is then killed before it can snapshot
//! again. On restart it recovers the snapshot, loses the post-snapshot
//! tail, and replays it. [`RestartSchedule`] generates the disjoint key
//! phases of that scenario deterministically so the storage tests and the
//! `fig11_persist` benchmark drive exactly the same shape:
//!
//! 1. insert [`RestartSchedule::committed`], then snapshot,
//! 2. insert [`RestartSchedule::lost`] — wiped by the simulated kill,
//! 3. recover, assert `committed` present and `lost` absent,
//! 4. replay `lost`, then insert [`RestartSchedule::post`],
//! 5. throughout, probe with [`RestartSchedule::probes`] (absent keys —
//!    adaptation traffic that must also survive the restart).

use crate::uniform_keys;

/// Key phases of one kill-and-recover run; see the module docs.
#[derive(Clone, Debug)]
pub struct RestartSchedule {
    /// Keys inserted before the snapshot (must survive recovery).
    pub committed: Vec<u64>,
    /// Keys inserted after the snapshot and lost to the kill.
    pub lost: Vec<u64>,
    /// Fresh keys inserted after recovery.
    pub post: Vec<u64>,
    /// Absent-key probes, replayed in every phase (disjoint from all
    /// inserted keys by construction).
    pub probes: Vec<u64>,
}

impl RestartSchedule {
    /// A schedule of `n` total inserts: `lost_frac` of them after the
    /// snapshot, `post_frac` after recovery, the rest committed before
    /// the snapshot. All four phases are pairwise disjoint.
    pub fn generate(n: usize, lost_frac: f64, post_frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lost_frac)
                && (0.0..=1.0).contains(&post_frac)
                && lost_frac + post_frac < 1.0,
            "phase fractions must leave a committed prefix"
        );
        let n_lost = (n as f64 * lost_frac) as usize;
        let n_post = (n as f64 * post_frac) as usize;
        let n_committed = n - n_lost - n_post;
        // One draw, split into phases: uniform 64-bit keys are distinct
        // w.h.p., and phase tags make disjointness deterministic.
        let keys = uniform_keys(n, seed);
        let tag = |k: u64, t: u64| (k >> 3) | (t << 61);
        Self {
            committed: keys[..n_committed].iter().map(|&k| tag(k, 0)).collect(),
            lost: keys[n_committed..n_committed + n_lost]
                .iter()
                .map(|&k| tag(k, 1))
                .collect(),
            post: keys[n_committed + n_lost..]
                .iter()
                .map(|&k| tag(k, 2))
                .collect(),
            probes: uniform_keys(n, seed ^ 0x9E37_79B9)
                .iter()
                .map(|&k| tag(k, 3))
                .collect(),
        }
    }

    /// Total keys the fully recovered system must hold
    /// (`committed` + replayed `lost` + `post`).
    pub fn final_count(&self) -> usize {
        self.committed.len() + self.lost.len() + self.post.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn phases_are_disjoint_and_deterministic() {
        let a = RestartSchedule::generate(10_000, 0.2, 0.1, 7);
        let b = RestartSchedule::generate(10_000, 0.2, 0.1, 7);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.committed.len(), 7000);
        assert_eq!(a.lost.len(), 2000);
        assert_eq!(a.post.len(), 1000);
        let mut all: HashSet<u64> = HashSet::new();
        for k in a
            .committed
            .iter()
            .chain(&a.lost)
            .chain(&a.post)
            .chain(&a.probes)
        {
            assert!(all.insert(*k), "phases overlap at key {k}");
        }
    }

    #[test]
    #[should_panic]
    fn fractions_must_leave_a_committed_prefix() {
        let _ = RestartSchedule::generate(100, 0.6, 0.5, 1);
    }
}
