//! The Fig. 6 query-only adversary.
//!
//! The attacker can measure query latency, so it learns which of its
//! queries hit the disk (filter positives — including false positives).
//! It records them during a warmup phase and afterwards replays them at a
//! chosen frequency, defeating any cache by cycling through more false
//! positives than the cache holds. Non-adaptive filters re-pay the disk
//! access every time; adaptive filters fixed each one on first sight.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A latency-observing adversary mixed into a query stream.
pub struct Adversary {
    /// Queries the adversary observed going to disk without a result.
    collected: Vec<u64>,
    /// Fraction of post-warmup queries the adversary controls.
    frequency: f64,
    /// Replay cursor (cycling defeats LRU caches).
    cursor: usize,
    rng: StdRng,
}

impl Adversary {
    /// An adversary controlling `frequency` of the query stream.
    pub fn new(frequency: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frequency));
        Self {
            collected: Vec::new(),
            frequency,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Tell the adversary what it could observe about its own query:
    /// `went_to_disk` (latency) and `found` (the application's response).
    /// A slow "not found" is a false positive worth replaying.
    pub fn observe(&mut self, key: u64, went_to_disk: bool, found: bool) {
        if went_to_disk && !found {
            self.collected.push(key);
        }
    }

    /// Number of replayable false positives collected.
    pub fn arsenal(&self) -> usize {
        self.collected.len()
    }

    /// Next query: with probability `frequency` an adversarial replay,
    /// otherwise a background query drawn by `background`.
    pub fn next_query(&mut self, background: impl FnOnce(&mut StdRng) -> u64) -> u64 {
        if !self.collected.is_empty() && self.rng.random::<f64>() < self.frequency {
            let k = self.collected[self.cursor % self.collected.len()];
            self.cursor += 1;
            k
        } else {
            background(&mut self.rng)
        }
    }

    /// Uniform background query helper over a key universe.
    pub fn uniform_background(universe_salt: u64) -> impl Fn(&mut StdRng) -> u64 {
        move |rng: &mut StdRng| crate::aqf_bits_mix(rng.random_range(0..u64::MAX), universe_salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_only_slow_misses() {
        let mut a = Adversary::new(0.5, 1);
        a.observe(1, true, true); // slow hit: a real member
        a.observe(2, false, false); // fast miss: filter negative
        a.observe(3, true, false); // slow miss: false positive!
        assert_eq!(a.arsenal(), 1);
    }

    #[test]
    fn replays_at_roughly_configured_frequency() {
        let mut a = Adversary::new(0.3, 2);
        for k in 0..50u64 {
            a.observe(k, true, false);
        }
        let mut adversarial = 0;
        let n = 20_000;
        for _ in 0..n {
            let q = a.next_query(|rng| 1_000_000 + rng.random_range(0..1_000_000u64));
            if q < 50 {
                adversarial += 1;
            }
        }
        let frac = adversarial as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "frequency {frac}");
    }

    #[test]
    fn cycles_through_whole_arsenal() {
        let mut a = Adversary::new(1.0, 3);
        for k in 0..10u64 {
            a.observe(k, true, false);
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10 {
            seen.insert(a.next_query(|_| unreachable!()));
        }
        assert_eq!(seen.len(), 10, "round-robin replay defeats caches");
    }
}
