//! Synthetic datasets standing in for the paper's real-world traces
//! (DESIGN.md §4 records the substitutions):
//!
//! - [`caida_like_trace`] — CAIDA passive traces: network flows with
//!   heavy-tailed packet counts. We synthesize flow identifiers and a
//!   query trace in which flow `f` appears `size(f)` times (Pareto-ish
//!   sizes via Zipf), shuffled for temporal mixing. The filter-relevant
//!   property — repeated queries to a hot subset of a large universe,
//!   with mild skew — is preserved.
//! - [`shalla_like_urls`] — the Shalla blocklist: ~3M malicious URLs. We
//!   synthesize a URL corpus from a domain/path grammar; filters only see
//!   64-bit hashes, so set size and query skew are what matter.
//! - [`churn_schedule`] — the Fig. 8 dynamic workload: queries with
//!   periodic bursts replacing 20% of the member set.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::zipf::ZipfGenerator;

/// A CAIDA-like query trace: `trace_len` queries over `flows` distinct
/// flow keys whose popularity follows Zipf(`alpha`). Returns
/// `(distinct_flow_keys, query_trace)`.
pub fn caida_like_trace(
    flows: usize,
    trace_len: usize,
    alpha: f64,
    seed: u64,
) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(flows as u64, alpha, seed ^ 0xCADA);
    let flow_keys: Vec<u64> = (1..=flows as u64).map(|r| z.key_for_rank(r)).collect();
    let mut trace: Vec<u64> = (0..trace_len).map(|_| z.sample_key(&mut rng)).collect();
    trace.shuffle(&mut rng);
    (flow_keys, trace)
}

/// A Shalla-like URL corpus: `n` synthetic URLs (blocklist) plus
/// `extra` benign URLs for querying. Returns `(blocklist, benign)`.
pub fn shalla_like_urls(n: usize, extra: usize, seed: u64) -> (Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    const TLDS: &[&str] = &["com", "net", "org", "io", "ru", "cn", "info", "biz"];
    const WORDS: &[&str] = &[
        "login", "update", "secure", "account", "free", "win", "bank", "verify", "promo",
        "download", "media", "cdn", "static", "track", "click", "offer", "prize", "news",
    ];
    let mut make = |i: usize| -> String {
        let d1 = WORDS[rng.random_range(0..WORDS.len())];
        let d2 = WORDS[rng.random_range(0..WORDS.len())];
        let tld = TLDS[rng.random_range(0..TLDS.len())];
        let path = WORDS[rng.random_range(0..WORDS.len())];
        let id: u32 = rng.random();
        format!("http://{d1}-{d2}{}.{tld}/{path}/{id:x}", i % 997)
    };
    let blocklist: Vec<String> = (0..n).map(&mut make).collect();
    let benign: Vec<String> = (n..n + extra).map(&mut make).collect();
    (blocklist, benign)
}

/// Hash a URL (or any string) to the 64-bit key space filters operate on.
pub fn url_key(url: &str) -> u64 {
    aqf_bits::hash::murmur64a(url.as_bytes(), 0x5A11)
}

/// One step of the Fig. 8 dynamic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnOp {
    /// Query this key (adapt on false positives).
    Query(u64),
    /// Delete this member.
    Delete(u64),
    /// Insert this key as a new member.
    Insert(u64),
}

/// Build the Fig. 8 schedule: `total_queries` Zipfian queries with a churn
/// burst every `interval` queries replacing `churn_frac` of the `members`.
/// Returns the op list and the final member set.
pub fn churn_schedule(
    members: &[u64],
    total_queries: usize,
    interval: usize,
    churn_frac: f64,
    universe: u64,
    alpha: f64,
    seed: u64,
) -> (Vec<ChurnOp>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let z = ZipfGenerator::new(universe, alpha, seed ^ 0xC4A2);
    let mut current: Vec<u64> = members.to_vec();
    let mut next_fresh: u64 = 0xF00D_0000_0000_0000;
    let mut ops = Vec::with_capacity(total_queries + total_queries / interval * members.len() / 2);
    let mut q = 0usize;
    while q < total_queries {
        ops.push(ChurnOp::Query(z.sample_key(&mut rng)));
        q += 1;
        if q.is_multiple_of(interval) && q < total_queries {
            let n_replace = (current.len() as f64 * churn_frac) as usize;
            for _ in 0..n_replace {
                let i = rng.random_range(0..current.len());
                let victim = current.swap_remove(i);
                ops.push(ChurnOp::Delete(victim));
                next_fresh += 1;
                ops.push(ChurnOp::Insert(next_fresh));
                current.push(next_fresh);
            }
        }
    }
    (ops, current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caida_trace_is_skewed_and_bounded() {
        let (flows, trace) = caida_like_trace(1000, 50_000, 1.2, 5);
        assert_eq!(flows.len(), 1000);
        assert_eq!(trace.len(), 50_000);
        let set: std::collections::BTreeSet<u64> = flows.iter().copied().collect();
        for &t in &trace {
            assert!(set.contains(&t), "trace queries must be real flows");
        }
        // The hottest flow should dominate.
        let mut counts = std::collections::HashMap::new();
        for &t in &trace {
            *counts.entry(t).or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > trace.len() / 100, "hot flow should be frequent");
    }

    #[test]
    fn shalla_urls_unique_enough() {
        let (block, benign) = shalla_like_urls(5000, 5000, 9);
        assert_eq!(block.len(), 5000);
        let mut keys: Vec<u64> = block.iter().map(|u| url_key(u)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() > 4990, "hashed URLs should rarely collide");
        assert!(benign.iter().all(|u| u.starts_with("http://")));
    }

    #[test]
    fn churn_schedule_replaces_members() {
        let members: Vec<u64> = (0..100).collect();
        let (ops, final_members) = churn_schedule(&members, 1000, 250, 0.2, 10_000, 1.5, 3);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Delete(_)))
            .count();
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Insert(_)))
            .count();
        assert_eq!(deletes, inserts);
        assert_eq!(deletes, 3 * 20, "three bursts of 20%");
        assert_eq!(final_members.len(), 100);
    }
}
