//! Zipfian sampling via rejection-inversion (Hörmann & Derflinger 1996),
//! the standard table-free method: O(1) amortized per sample for any
//! universe size, used by YCSB-style benchmarks.
//!
//! Rank 1 is the hottest element; [`ZipfGenerator::sample_key`] maps ranks
//! through a mixer so hot elements are spread uniformly over the key
//! space (their hotness must not correlate with filter slots).

use rand::RngExt;

/// A Zipf(α) sampler over ranks `1..=n`.
#[derive(Clone, Debug)]
pub struct ZipfGenerator {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion method.
    h_x1: f64,
    h_n: f64,
    s: f64,
    salt: u64,
}

impl ZipfGenerator {
    /// A Zipfian distribution over `n` elements with exponent `alpha`
    /// (the paper uses `alpha = 1.5`, `n = 10M`).
    pub fn new(n: u64, alpha: f64, salt: u64) -> Self {
        assert!(n >= 1 && alpha > 0.0 && (alpha - 1.0).abs() > 1e-9);
        let h = |x: f64| -> f64 { (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - h_inv(h(2.5) - 2f64.powf(-alpha), alpha);
        Self {
            n,
            alpha,
            h_x1,
            h_n,
            s,
            salt,
        }
    }

    /// Number of elements.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Sample a rank in `1..=n` (rank 1 most popular).
    pub fn sample_rank<R: RngExt + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.random::<f64>() * (self.h_n - self.h_x1);
            let x = h_inv(u, self.alpha);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let h_k = |x: f64| -> f64 { (x.powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha) };
            if k - x <= self.s || u >= h_k(k + 0.5) - k.powf(-self.alpha) {
                return k as u64;
            }
        }
    }

    /// Sample a key: the rank mapped through a mixer (stable per salt).
    pub fn sample_key<R: RngExt + ?Sized>(&self, rng: &mut R) -> u64 {
        crate::aqf_bits_mix(self.sample_rank(rng), self.salt)
    }

    /// The key for a given rank (to build ground-truth sets).
    pub fn key_for_rank(&self, rank: u64) -> u64 {
        crate::aqf_bits_mix(rank, self.salt)
    }
}

fn h_inv(x: f64, alpha: f64) -> f64 {
    (1.0 + x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_bounds() {
        let z = ZipfGenerator::new(1000, 1.5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = z.sample_rank(&mut rng);
            assert!((1..=1000).contains(&r));
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = ZipfGenerator::new(1_000_000, 1.5, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = 100_000;
        let top10 = (0..samples)
            .filter(|_| z.sample_rank(&mut rng) <= 10)
            .count();
        // For α=1.5 the top-10 mass is ≈ Σ_{k≤10} k^-1.5 / ζ(1.5) ≈ 0.76.
        let frac = top10 as f64 / samples as f64;
        assert!(frac > 0.6 && frac < 0.9, "top-10 mass {frac}");
    }

    #[test]
    fn rank1_is_modal() {
        let z = ZipfGenerator::new(100, 1.5, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[5]);
    }

    #[test]
    fn keys_are_stable_for_ranks() {
        let z = ZipfGenerator::new(100, 1.5, 42);
        assert_eq!(z.key_for_rank(1), z.key_for_rank(1));
        assert_ne!(z.key_for_rank(1), z.key_for_rank(2));
    }
}
