//! Criterion group: per-key vs batched throughput for the batch
//! subsystem — the regression-tracking companion to the `fig10_batch`
//! harness binary. Single-thread AQF insert/query, then the sharded AQF
//! at 1–12 threads (lock-once-per-batch vs lock-per-key).
//!
//! Geometry matches `fig10_batch`'s defaults: the batch win comes from
//! lock amortization plus cache-resident quotient-region walks, so the
//! table must not fit in cache whole — benchmark at 2^20 slots with
//! 16K-key batches, not at smoke scale.

use aqf::{AdaptiveQf, AqfConfig, ShardedAqf};
use aqf_bench::run_threads;
use aqf_workloads::uniform_keys;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

const QBITS: u32 = 20;
const SHARD_BITS: u32 = 5;
const BATCH: usize = 16384;

fn cfg() -> AqfConfig {
    AqfConfig::new(QBITS, 9).with_seed(1)
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_single");
    g.sample_size(10);
    let n = ((1u64 << QBITS) as f64 * 0.85) as usize;
    let keys = uniform_keys(n, 3);
    let probes = uniform_keys(n, 4);

    g.bench_function("aqf_insert_perkey", |b| {
        b.iter_batched(
            || AdaptiveQf::new(cfg()).unwrap(),
            |mut f| {
                for &k in &keys {
                    f.insert(k).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("aqf_insert_batch", |b| {
        b.iter_batched(
            || AdaptiveQf::new(cfg()).unwrap(),
            |mut f| {
                for ch in keys.chunks(BATCH) {
                    f.insert_batch(ch).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });

    let mut f = AdaptiveQf::new(cfg()).unwrap();
    f.insert_batch(&keys).unwrap();
    g.bench_function("aqf_query_perkey", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in &probes {
                hits += f.contains(k) as u64;
            }
            black_box(hits)
        })
    });
    g.bench_function("aqf_query_batch", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ch in probes.chunks(BATCH) {
                hits += f.contains_batch(ch).iter().filter(|&&x| x).count();
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_sharded_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_sharded");
    g.sample_size(8);
    let n = ((1u64 << QBITS) as f64 * 0.85) as usize;
    let keys = uniform_keys(n, 5);
    let probes = uniform_keys(n, 6);

    for &t in &[1usize, 4, 8, 12] {
        g.bench_function(format!("insert_perkey_t{t}"), |b| {
            b.iter_batched(
                || Arc::new(ShardedAqf::new(cfg(), SHARD_BITS).unwrap()),
                |f| {
                    run_threads(t, &keys, |ks| {
                        for &k in ks {
                            let _ = f.insert(k);
                        }
                    });
                    f
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("insert_batch_t{t}"), |b| {
            b.iter_batched(
                || Arc::new(ShardedAqf::new(cfg(), SHARD_BITS).unwrap()),
                |f| {
                    run_threads(t, &keys, |ks| {
                        // Discard outcomes through the sink, mirroring the
                        // per-key cell (which also drops its outcomes).
                        for ch in ks.chunks(BATCH) {
                            let _ = f.insert_batch_with(ch, |_, _, _| {});
                        }
                    });
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }

    let f = ShardedAqf::new(cfg(), SHARD_BITS).unwrap();
    f.insert_batch(&keys).unwrap();
    for &t in &[1usize, 4, 8, 12] {
        g.bench_function(format!("query_perkey_t{t}"), |b| {
            b.iter(|| {
                run_threads(t, &probes, |ks| {
                    let mut hits = 0u64;
                    for &k in ks {
                        hits += f.contains(k) as u64;
                    }
                    black_box(hits);
                })
            })
        });
        g.bench_function(format!("query_batch_t{t}"), |b| {
            b.iter(|| {
                run_threads(t, &probes, |ks| {
                    let mut hits = 0usize;
                    for ch in ks.chunks(BATCH) {
                        hits += f.contains_batch(ch).iter().filter(|&&x| x).count();
                    }
                    black_box(hits);
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_sharded_threads);
criterion_main!(benches);
