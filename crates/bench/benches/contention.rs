//! Criterion contention benchmarks for the seqlock read path (PR 6):
//! reader threads × writer threads over one `ShardedAqf`, lock-free
//! (`query`) vs locked (`query_locked`) point reads.
//!
//! The grid (1–12 readers × 0–4 writers) is the regression-tracking
//! companion to `fig4_parallel --mode=mixed`, which sweeps the same axes
//! at larger scale and emits `BENCH_PR6.json` (see
//! `scripts/bench_json.sh`). Wall-clock speedups compress on small CI
//! machines — the interesting signal here is the *trend* of lock-free
//! vs locked as reader count grows.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

use aqf::{AqfConfig, ShardedAqf};
use aqf_workloads::uniform_keys;
use criterion::{criterion_group, criterion_main, Criterion};

const QBITS: u32 = 16;
const SHARD_BITS: u32 = 3;
const READS_PER_READER: usize = 4000;

fn loaded_filter() -> (ShardedAqf, Vec<u64>, Vec<u64>) {
    let n = ((1u64 << QBITS) as f64 * 0.7) as usize;
    let settled = uniform_keys(n, 5);
    let churn = uniform_keys(1 << 12, 99);
    let f = ShardedAqf::new(AqfConfig::new(QBITS, 9).with_seed(1), SHARD_BITS).unwrap();
    for &k in &settled {
        let _ = f.insert(k);
    }
    (f, settled, churn)
}

/// One contention round; readers verify every settled answer.
fn round(
    f: &ShardedAqf,
    settled: &[u64],
    churn: &[u64],
    readers: usize,
    writers: usize,
    locked: bool,
) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..writers {
            let stop = &stop;
            let part = &churn[w * (churn.len() / writers.max(1))..];
            s.spawn(move || 'outer: loop {
                for &k in part.iter().take(1024) {
                    if stop.load(Relaxed) {
                        break 'outer;
                    }
                    let _ = f.insert(k);
                    let _ = f.delete(k);
                }
            });
        }
        std::thread::scope(|rs| {
            for r in 0..readers {
                rs.spawn(move || {
                    let mut hits = 0usize;
                    for j in 0..READS_PER_READER {
                        let k = settled[(r * 29 + j) % settled.len()];
                        let pos = if locked {
                            f.query_locked(k).is_positive()
                        } else {
                            f.query(k).is_positive()
                        };
                        hits += pos as usize;
                    }
                    assert_eq!(hits, READS_PER_READER, "false negative for settled key");
                });
            }
        });
        stop.store(true, Relaxed);
    });
}

fn bench_contention(c: &mut Criterion) {
    let (f, settled, churn) = loaded_filter();
    let mut g = c.benchmark_group("contention");
    g.sample_size(10);
    for &writers in &[0usize, 1, 4] {
        for &readers in &[1usize, 4, 8, 12] {
            g.bench_function(format!("lockfree/r{readers}_w{writers}"), |b| {
                b.iter(|| round(&f, &settled, &churn, readers, writers, false))
            });
            g.bench_function(format!("locked/r{readers}_w{writers}"), |b| {
                b.iter(|| round(&f, &settled, &churn, readers, writers, true))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
