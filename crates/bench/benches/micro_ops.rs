//! Criterion micro-op latency benchmarks: insert, query (hit/miss),
//! adapt, delete, merge, bulk build — the regression-tracking companion
//! to the Fig. 3 / Table 5 harness binaries.

use aqf::{AdaptiveQf, AqfConfig, QueryResult};
use aqf_bench::{fill_aqf, ShadowMap};
use aqf_filters::{AmqFilter, CuckooFilter, QuotientFilter};
use aqf_workloads::uniform_keys;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

const QBITS: u32 = 16;

fn loaded_aqf(load: f64) -> (AdaptiveQf, ShadowMap, Vec<u64>) {
    let n = ((1u64 << QBITS) as f64 * load) as usize;
    let keys = uniform_keys(n, 7);
    let mut f = AdaptiveQf::new(AqfConfig::new(QBITS, 9).with_seed(1)).unwrap();
    let mut map = ShadowMap::default();
    fill_aqf(&mut f, &mut map, &keys);
    (f, map, keys)
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert");
    g.sample_size(20);
    let n = ((1u64 << QBITS) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 3);

    g.bench_function("aqf_fill_90", |b| {
        b.iter_batched(
            || AdaptiveQf::new(AqfConfig::new(QBITS, 9).with_seed(1)).unwrap(),
            |mut f| {
                for &k in &keys {
                    f.insert(k).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("qf_fill_90", |b| {
        b.iter_batched(
            || QuotientFilter::new(QBITS, 9, 1).unwrap(),
            |mut f| {
                for &k in &keys {
                    AmqFilter::insert(&mut f, k).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cf_fill_90", |b| {
        b.iter_batched(
            || CuckooFilter::new(QBITS - 2, 12, 1).unwrap(),
            |mut f| {
                for &k in &keys {
                    AmqFilter::insert(&mut f, k).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("aqf_bulk_build_90", |b| {
        b.iter(|| AdaptiveQf::bulk_build(AqfConfig::new(QBITS, 9).with_seed(1), &keys).unwrap())
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    let (f, _, keys) = loaded_aqf(0.9);
    let misses = uniform_keys(10_000, 99);

    g.bench_function("aqf_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(f.contains(keys[i]))
        })
    });
    g.bench_function("aqf_miss", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % misses.len();
            std::hint::black_box(f.contains(misses[i]))
        })
    });

    let mut qf = QuotientFilter::new(QBITS, 9, 1).unwrap();
    for &k in &keys {
        AmqFilter::insert(&mut qf, k).unwrap();
    }
    g.bench_function("qf_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(AmqFilter::contains(&qf, keys[i]))
        })
    });
    g.finish();
}

fn bench_adapt_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("adapt_delete");
    g.sample_size(20);

    g.bench_function("adapt_one_fp", |b| {
        b.iter_batched(
            || {
                let (f, map, _) = loaded_aqf(0.7);
                // Find a false positive to fix.
                let mut probe = 10_000_000u64;
                loop {
                    probe += 1;
                    if let QueryResult::Positive(hit) = f.query(probe) {
                        let stored = map.get(hit.minirun_id, hit.rank).unwrap();
                        if stored != probe {
                            return (f, hit, stored, probe);
                        }
                    }
                }
            },
            |(mut f, hit, stored, probe)| {
                f.adapt(&hit, stored, probe).unwrap();
                f
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("delete_member", |b| {
        b.iter_batched(
            || loaded_aqf(0.7),
            |(mut f, _, keys)| {
                for &k in keys.iter().take(64) {
                    f.delete(k).unwrap();
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(10);
    let n = ((1u64 << QBITS) as f64 * 0.8) as usize;
    let keys = uniform_keys(n, 13);
    let half = AqfConfig::new(QBITS - 1, 10).with_seed(2);
    let mut a = AdaptiveQf::new(half).unwrap();
    let mut b_ = AdaptiveQf::new(half).unwrap();
    for (i, &k) in keys.iter().enumerate() {
        if i % 2 == 0 {
            a.insert(k).unwrap();
        } else {
            b_.insert(k).unwrap();
        }
    }
    g.bench_function("merge_halves", |b| b.iter(|| a.merge(&b_).unwrap()));
    g.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_queries,
    bench_adapt_delete,
    bench_merge
);
criterion_main!(benches);
