//! Ablation benchmarks for the design choices DESIGN.md §8 calls out:
//!
//! - remainder width (over-adaptation granularity: adapting appends whole
//!   `r`-bit chunks, so wider `r` means fewer-but-larger extensions),
//! - lock shard count for the parallel filter,
//! - bulk build vs incremental inserts.

use aqf::{AdaptiveQf, AqfConfig, QueryResult, ShardedAqf};
use aqf_bench::{fill_aqf, ShadowMap};
use aqf_workloads::uniform_keys;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

const QBITS: u32 = 14;

/// Fixing 200 false positives at each remainder width (the
/// over-adaptation granularity ablation).
fn bench_chunk_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chunk_width");
    g.sample_size(10);
    for rbits in [5u32, 9, 13] {
        let n = ((1u64 << QBITS) as f64 * 0.6) as usize;
        let keys = uniform_keys(n, 17);
        g.bench_function(format!("adapt_200_fps_r{rbits}"), |b| {
            b.iter_batched(
                || {
                    let mut f = AdaptiveQf::new(AqfConfig::new(QBITS, rbits).with_seed(3)).unwrap();
                    let mut map = ShadowMap::default();
                    fill_aqf(&mut f, &mut map, &keys);
                    (f, map)
                },
                |(mut f, map)| {
                    let mut fixed = 0;
                    let mut probe = 50_000_000u64;
                    while fixed < 200 {
                        probe += 1;
                        if let QueryResult::Positive(hit) = f.query(probe) {
                            if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                                if stored != probe && f.adapt(&hit, stored, probe).is_ok() {
                                    fixed += 1;
                                }
                            }
                        }
                    }
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_shard_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_shards");
    g.sample_size(10);
    let n = ((1u64 << QBITS) as f64 * 0.8) as usize;
    let keys = uniform_keys(n, 19);
    for shard_bits in [2u32, 4, 6] {
        g.bench_function(format!("insert_4threads_shards2e{shard_bits}"), |b| {
            b.iter_batched(
                || ShardedAqf::new(AqfConfig::new(QBITS, 9).with_seed(4), shard_bits).unwrap(),
                |f| {
                    std::thread::scope(|s| {
                        for t in 0..4usize {
                            let f = &f;
                            let keys = &keys;
                            s.spawn(move || {
                                for &k in keys.iter().skip(t).step_by(4) {
                                    let _ = f.insert(k);
                                }
                            });
                        }
                    });
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_bulk_vs_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bulk");
    g.sample_size(10);
    let n = ((1u64 << QBITS) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 23);
    let cfg = AqfConfig::new(QBITS, 9).with_seed(5);
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut f = AdaptiveQf::new(cfg).unwrap();
            for &k in &keys {
                f.insert(k).unwrap();
            }
            f
        })
    });
    g.bench_function("bulk", |b| {
        b.iter(|| AdaptiveQf::bulk_build(cfg, &keys).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chunk_width,
    bench_shard_counts,
    bench_bulk_vs_incremental
);
criterion_main!(benches);
