//! Criterion group for run-location navigation (PR 5): the operations the
//! blocked, offset-indexed layout turned into O(1) metadata arithmetic —
//! hit/miss lookups and inserts across load factors, AQF and QF, single
//! and batched. This is the regression tripwire for the table layout; the
//! before/after story lives in `fig12_layout` + BENCHMARKS.md.

use aqf::{AdaptiveQf, AqfConfig};
use aqf_filters::{AmqFilter, QuotientFilter};
use aqf_workloads::uniform_keys;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

const QBITS: u32 = 16;

fn loaded_aqf(load: f64) -> (AdaptiveQf, Vec<u64>) {
    let n = ((1u64 << QBITS) as f64 * load) as usize;
    let keys = uniform_keys(n, 7);
    let mut f = AdaptiveQf::new(AqfConfig::new(QBITS, 9).with_seed(1)).unwrap();
    for &k in &keys {
        f.insert(k).unwrap();
    }
    (f, keys)
}

fn loaded_qf(load: f64) -> (QuotientFilter, Vec<u64>) {
    let n = ((1u64 << QBITS) as f64 * load) as usize;
    let keys = uniform_keys(n, 7);
    let mut f = QuotientFilter::new(QBITS, 9, 1).unwrap();
    for &k in &keys {
        AmqFilter::insert(&mut f, k).unwrap();
    }
    (f, keys)
}

fn bench_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_nav");
    for &load in &[0.5f64, 0.9, 0.95] {
        let tag = (load * 100.0) as u32;
        let (f, keys) = loaded_aqf(load);
        let misses = uniform_keys(10_000, 99);
        g.bench_function(format!("aqf_lookup_hit_{tag}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(f.contains(keys[i]))
            })
        });
        g.bench_function(format!("aqf_lookup_miss_{tag}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % misses.len();
                black_box(f.contains(misses[i]))
            })
        });
        g.bench_function(format!("aqf_batch_lookup_hit_{tag}"), |b| {
            let batch = &keys[..keys.len().min(1024)];
            b.iter(|| black_box(f.contains_batch(batch)))
        });

        let (qf, qkeys) = loaded_qf(load);
        g.bench_function(format!("qf_lookup_hit_{tag}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % qkeys.len();
                black_box(qf.contains(qkeys[i]))
            })
        });
    }
    g.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_nav_insert");
    g.sample_size(20);
    for &load in &[0.9f64, 0.95] {
        let tag = (load * 100.0) as u32;
        let n = ((1u64 << QBITS) as f64 * load) as usize;
        let keys = uniform_keys(n, 3);
        g.bench_function(format!("aqf_fill_{tag}"), |b| {
            b.iter_batched(
                || AdaptiveQf::new(AqfConfig::new(QBITS, 9).with_seed(1)).unwrap(),
                |mut f| {
                    for &k in &keys {
                        f.insert(k).unwrap();
                    }
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookups, bench_inserts);
criterion_main!(benches);
