//! Table 4: query speed on (synthetic stand-ins for) real-world datasets —
//! CAIDA-like network flows and Shalla-like URL keys — after filling each
//! filter, including occasional database accesses. Any registry kind runs
//! (default: the paper's five).
//!
//! Paper: 2^26 inserts, real traces. Defaults: 2^15 slots, 500K queries
//! (`--qbits`, `--queries`, `--filter=<kinds>`). DESIGN.md §4 documents
//! the substitution.

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::datasets::{caida_like_trace, shalla_like_urls, url_key};
use aqf_workloads::ZipfGenerator;
use rand::SeedableRng;

fn main() {
    let qbits = flag_u64("qbits", 15) as u32;
    let queries = flag_u64("queries", 500_000) as usize;
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let base = std::env::temp_dir().join(format!("aqf-tab4-{}", std::process::id()));

    // CAIDA-like: members = observed flows; queries = trace mixing member
    // flows and unseen flows (skewed).
    let (flows, trace) = caida_like_trace(n * 2, queries, 1.2, 9);
    let caida_members: Vec<u64> = flows[..n].to_vec();

    // Shalla-like: members = blocklist URL keys; queries = Zipfian over
    // blocklist + benign URLs.
    let (blocklist, benign) = shalla_like_urls(n, n, 10);
    let shalla_members: Vec<u64> = blocklist.iter().map(|u| url_key(u)).collect();
    let shalla_universe: Vec<u64> = shalla_members
        .iter()
        .copied()
        .chain(benign.iter().map(|u| url_key(u)))
        .collect();
    let z = ZipfGenerator::new(shalla_universe.len() as u64, 1.1, 11);
    let mut zrng = rand::rngs::StdRng::seed_from_u64(12);
    let shalla_trace: Vec<u64> = (0..queries)
        .map(|_| shalla_universe[(z.sample_rank(&mut zrng) - 1) as usize])
        .collect();

    let mut rows = Vec::new();
    for kind in filter_kinds(registry::paper_kinds()) {
        let mut row = Vec::new();
        for (tag, members, probe_trace) in [
            ("caida", &caida_members, &trace),
            ("shalla", &shalla_members, &shalla_trace),
        ] {
            let dir = base.join(format!("{kind}-{tag}"));
            let filter = FilterSpec::new(&*kind, qbits).with_seed(4).build().unwrap();
            if row.is_empty() {
                row.push(filter.name().to_string());
            }
            let mut db =
                FilteredDb::new(filter, &dir, 4096, IoPolicy::default(), RevMapMode::Merged)
                    .unwrap();
            for &k in members {
                let _ = db.insert(k, b"rec");
            }
            let (_, secs) = timed(|| {
                for &k in probe_trace.iter() {
                    let _ = db.query(k).unwrap();
                }
            });
            row.push(ops_per_sec(probe_trace.len() as u64, secs));
            let _ = std::fs::remove_dir_all(&dir);
        }
        rows.push(row);
    }
    print_table(
        &format!("Table 4: query speed on synthetic real-world datasets (2^{qbits} slots)"),
        &["Filter", "CAIDA-like q/s", "Shalla-like q/s"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
