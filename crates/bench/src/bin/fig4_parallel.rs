//! Figure 4: parallel insertion throughput of the AQF vs the QF as thread
//! count grows (paper: 2^26 slots, 2^16-slot lock regions, 1..12 threads).
//!
//! Defaults: 2^20 slots, 9-bit remainders, 2^6 shards, threads
//! 1,2,4,..,12 (`--qbits`, `--rbits`, `--shard-bits`, `--max-threads`).
//! Both sides share `--rbits` so the comparison stays apples-to-apples.

use aqf_bench::*;
use aqf_workloads::uniform_keys;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let qbits = flag_u64("qbits", 20) as u32;
    let rbits = flag_u64("rbits", 9) as u32;
    let shard_bits = flag_u64("shard-bits", 6) as u32;
    let max_threads = flag_u64("max-threads", 12) as usize;
    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let keys = Arc::new(uniform_keys(n, 5));

    let mut rows = Vec::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        // AQF: sharded adaptive filter.
        let aqf = Arc::new(
            aqf::ShardedAqf::new(aqf::AqfConfig::new(qbits, rbits).with_seed(1), shard_bits)
                .unwrap(),
        );
        let (_, aqf_secs) = timed(|| {
            run_threads(threads, &keys, |ks| {
                for &k in ks {
                    let _ = aqf.insert(k);
                }
            })
        });

        // QF baseline: same sharding scheme around the plain filter, at
        // the same remainder width as the AQF above.
        let shards: Arc<Vec<Mutex<QuotientFilter>>> = Arc::new(
            (0..(1usize << shard_bits))
                .map(|_| Mutex::new(QuotientFilter::new(qbits - shard_bits, rbits, 1).unwrap()))
                .collect(),
        );
        let (_, qf_secs) = timed(|| {
            let sb = shard_bits;
            run_threads(threads, &keys, |ks| {
                for &k in ks {
                    let s = (aqf_bits::hash::mix64(k, 0xABCD) >> (64 - sb)) as usize;
                    let _ = aqf_filters::AmqFilter::insert(&mut *shards[s].lock(), k);
                }
            })
        });

        rows.push(vec![
            threads.to_string(),
            ops_per_sec(n as u64, aqf_secs),
            ops_per_sec(n as u64, qf_secs),
        ]);
        threads = if threads == 1 { 2 } else { threads + 2 };
    }
    print_table(
        &format!("Fig 4: parallel insert throughput (2^{qbits} slots, 2^{shard_bits} shards)"),
        &["Threads", "AQF inserts/s", "QF inserts/s"],
        &rows,
    );
}
