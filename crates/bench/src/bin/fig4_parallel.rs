//! Figure 4: parallel throughput of the AQF vs the QF as thread count
//! grows (paper: 2^26 slots, 2^16-slot lock regions, 1..12 threads).
//!
//! Two modes (`--mode`):
//!
//! - `insert` (default): the paper's parallel-fill comparison — sharded
//!   AQF vs an equivalently sharded, mutex-per-shard QF baseline.
//! - `mixed`: PR 6's read/write contention sweep — reader threads hammer
//!   point queries on settled keys while `--writers` writer threads
//!   churn inserts/deletes, comparing the seqlock **lock-free** read
//!   path (`ShardedAqf::query`) against the **locked** read path
//!   (`ShardedAqf::query_locked`, one mutex acquisition per query).
//!   Readers verify every settled answer, so a correctness drift fails
//!   the run. `--json=PATH` writes the rows as machine-readable JSON
//!   (see `scripts/bench_json.sh`, which emits `BENCH_PR6.json`).
//!
//! Defaults: 2^20 slots, 9-bit remainders, 2^6 shards (`insert`) or 2^3
//! (`mixed`: fewer shards = more mutex contention for the locked
//! baseline to suffer), threads 1,2,4,..,12 (`--qbits`, `--rbits`,
//! `--shard-bits`, `--max-threads`, `--writers`, `--reads`, `--load`).
//! Both sides share `--rbits` so the comparison stays apples-to-apples.

use aqf_bench::*;
use aqf_workloads::{uniform_keys, SettledCycle};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

fn main() {
    let mode = flag_str("mode", "insert");
    match mode.as_str() {
        "insert" => insert_mode(),
        "mixed" => mixed_mode(),
        other => {
            eprintln!("unknown --mode={other} (expected insert|mixed)");
            std::process::exit(2);
        }
    }
}

fn insert_mode() {
    let qbits = flag_u64("qbits", 20) as u32;
    let rbits = flag_u64("rbits", 9) as u32;
    let shard_bits = flag_u64("shard-bits", 6) as u32;
    let max_threads = flag_u64("max-threads", 12) as usize;
    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let keys = Arc::new(uniform_keys(n, 5));

    let mut rows = Vec::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        // AQF: sharded adaptive filter.
        let aqf = Arc::new(
            aqf::ShardedAqf::new(aqf::AqfConfig::new(qbits, rbits).with_seed(1), shard_bits)
                .unwrap(),
        );
        let (_, aqf_secs) = timed(|| {
            run_threads(threads, &keys, |ks| {
                for &k in ks {
                    let _ = aqf.insert(k);
                }
            })
        });

        // QF baseline: same sharding scheme around the plain filter, at
        // the same remainder width as the AQF above.
        let shards: Arc<Vec<Mutex<QuotientFilter>>> = Arc::new(
            (0..(1usize << shard_bits))
                .map(|_| Mutex::new(QuotientFilter::new(qbits - shard_bits, rbits, 1).unwrap()))
                .collect(),
        );
        let (_, qf_secs) = timed(|| {
            let sb = shard_bits;
            run_threads(threads, &keys, |ks| {
                for &k in ks {
                    let s = (aqf_bits::hash::mix64(k, 0xABCD) >> (64 - sb)) as usize;
                    let _ = aqf_filters::AmqFilter::insert(&mut *shards[s].lock(), k);
                }
            })
        });

        rows.push(vec![
            threads.to_string(),
            ops_per_sec(n as u64, aqf_secs),
            ops_per_sec(n as u64, qf_secs),
        ]);
        threads = if threads == 1 { 2 } else { threads + 2 };
    }
    print_table(
        &format!("Fig 4: parallel insert throughput (2^{qbits} slots, 2^{shard_bits} shards)"),
        &["Threads", "AQF inserts/s", "QF inserts/s"],
        &rows,
    );
}

struct MixedRow {
    readers: usize,
    writers: usize,
    lockfree_mops: f64,
    locked_mops: f64,
    write_ops: u64,
}

/// One timed round: `readers` threads each perform `reads` verified
/// point queries on settled keys (the shared [`SettledCycle`] probe
/// stream, also driven by `aqf-loadgen`'s verified-read connections)
/// while `writers` threads churn insert/delete on a disjoint key range
/// until the readers finish. Returns (read seconds, writer ops
/// completed).
fn mixed_round(
    f: &aqf::ShardedAqf,
    settled: &[u64],
    churn: &[u64],
    readers: usize,
    writers: usize,
    reads: usize,
    locked: bool,
) -> (f64, u64) {
    let stop = AtomicBool::new(false);
    let write_ops = std::sync::atomic::AtomicU64::new(0);
    let mut secs = 0.0;
    std::thread::scope(|s| {
        for w in 0..writers {
            let (stop, write_ops) = (&stop, &write_ops);
            let part = &churn[w * (churn.len() / writers.max(1))..];
            s.spawn(move || {
                let mut ops = 0u64;
                'outer: loop {
                    for &k in part.iter().take(4096) {
                        if stop.load(Relaxed) {
                            break 'outer;
                        }
                        let _ = f.insert(k);
                        let _ = f.delete(k);
                        ops += 2;
                    }
                }
                write_ops.fetch_add(ops, Relaxed);
            });
        }
        let (_, t) = timed(|| {
            std::thread::scope(|rs| {
                for r in 0..readers {
                    rs.spawn(move || {
                        let mut hits = 0usize;
                        for k in SettledCycle::new(settled, r).take(reads) {
                            let pos = if locked {
                                f.query_locked(k).is_positive()
                            } else {
                                f.query(k).is_positive()
                            };
                            hits += pos as usize;
                        }
                        assert_eq!(hits, reads, "false negative for a settled key");
                    });
                }
            })
        });
        secs = t;
        stop.store(true, Relaxed);
    });
    (secs, write_ops.load(Relaxed))
}

fn mixed_mode() {
    let qbits = flag_u64("qbits", 20) as u32;
    let rbits = flag_u64("rbits", 9) as u32;
    let shard_bits = flag_u64("shard-bits", 3) as u32;
    let max_threads = flag_u64("max-threads", 12) as usize;
    let writers = flag_u64("writers", 1) as usize;
    let reads = flag_u64("reads", 200_000) as usize;
    let reps = flag_u64("reps", 3).max(1);
    let load = flag_f64("load", 0.7);
    let json_path = flag_str("json", "");

    let n = ((1u64 << qbits) as f64 * load) as usize;
    let settled = uniform_keys(n, 5);
    let churn = uniform_keys(1 << 14, 99);
    let f =
        aqf::ShardedAqf::new(aqf::AqfConfig::new(qbits, rbits).with_seed(1), shard_bits).unwrap();
    for &k in &settled {
        let _ = f.insert(k);
    }

    let mut rows: Vec<MixedRow> = Vec::new();
    let mut readers = 1usize;
    while readers <= max_threads {
        let total_reads = (readers * reads) as u64;
        // Best-of-`reps`: thread scheduling dominates the variance on
        // small machines, and the fastest round is the least disturbed.
        let (mut lf_secs, mut lk_secs) = (f64::MAX, f64::MAX);
        let (mut lf_wops, mut lk_wops) = (0, 0);
        for _ in 0..reps {
            let (s, w) = mixed_round(&f, &settled, &churn, readers, writers, reads, false);
            if s < lf_secs {
                (lf_secs, lf_wops) = (s, w);
            }
            let (s, w) = mixed_round(&f, &settled, &churn, readers, writers, reads, true);
            if s < lk_secs {
                (lk_secs, lk_wops) = (s, w);
            }
        }
        rows.push(MixedRow {
            readers,
            writers,
            lockfree_mops: total_reads as f64 / lf_secs / 1e6,
            locked_mops: total_reads as f64 / lk_secs / 1e6,
            write_ops: lf_wops + lk_wops,
        });
        readers = if readers == 1 { 2 } else { readers + 2 };
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.readers.to_string(),
                r.writers.to_string(),
                format!("{:.2}", r.lockfree_mops),
                format!("{:.2}", r.locked_mops),
                format!("{:.2}x", r.lockfree_mops / r.locked_mops),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 4 (mixed): read throughput under write load \
             (2^{qbits} slots, 2^{shard_bits} shards, {writers} writers, Mops/s)"
        ),
        &[
            "Readers",
            "Writers",
            "Lock-free reads",
            "Locked reads",
            "Speedup",
        ],
        &table,
    );

    if !json_path.is_empty() {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"fig4_mixed\",");
        let _ = writeln!(out, "  \"qbits\": {qbits},");
        let _ = writeln!(out, "  \"shard_bits\": {shard_bits},");
        let _ = writeln!(out, "  \"load\": {load},");
        let _ = writeln!(out, "  \"reads_per_reader\": {reads},");
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"readers\": {}, \"writers\": {}, \"lockfree_mops\": {:.3}, \
                 \"locked_mops\": {:.3}, \"speedup\": {:.3}, \"write_ops\": {}}}",
                r.readers,
                r.writers,
                r.lockfree_mops,
                r.locked_mops,
                r.lockfree_mops / r.locked_mops,
                r.write_ops
            );
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&json_path, out).expect("write --json file");
        eprintln!("wrote {json_path}");
    }
}
