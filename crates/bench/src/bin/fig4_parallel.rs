//! Figure 4: parallel insertion throughput of the AQF vs the QF as thread
//! count grows (paper: 2^26 slots, 2^16-slot lock regions, 1..12 threads).
//!
//! Defaults: 2^20 slots, 2^6 shards, threads 1,2,4,..,12
//! (`--qbits`, `--shard-bits`, `--max-threads`).

use aqf_bench::*;
use aqf_workloads::uniform_keys;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let qbits = flag_u64("qbits", 20) as u32;
    let shard_bits = flag_u64("shard-bits", 6) as u32;
    let max_threads = flag_u64("max-threads", 12) as usize;
    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let keys = Arc::new(uniform_keys(n, 5));

    let mut rows = Vec::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        // AQF: sharded adaptive filter.
        let aqf = Arc::new(
            aqf::ShardedAqf::new(aqf::AqfConfig::new(qbits, 9).with_seed(1), shard_bits).unwrap(),
        );
        let (_, aqf_secs) = timed(|| {
            run_threads(threads, &keys, |k| {
                let _ = aqf.insert(k);
            })
        });

        // QF baseline: same sharding scheme around the plain filter.
        let shards: Arc<Vec<Mutex<QuotientFilter>>> = Arc::new(
            (0..(1usize << shard_bits))
                .map(|_| Mutex::new(QuotientFilter::new(qbits - shard_bits, 9, 1).unwrap()))
                .collect(),
        );
        let (_, qf_secs) = timed(|| {
            let sb = shard_bits;
            run_threads(threads, &keys, |k| {
                let s = (aqf_bits::hash::mix64(k, 0xABCD) >> (64 - sb)) as usize;
                let _ = aqf_filters::AmqFilter::insert(&mut *shards[s].lock(), k);
            })
        });

        rows.push(vec![
            threads.to_string(),
            ops_per_sec(n as u64, aqf_secs),
            ops_per_sec(n as u64, qf_secs),
        ]);
        threads = if threads == 1 { 2 } else { threads + 2 };
    }
    print_table(
        &format!("Fig 4: parallel insert throughput (2^{qbits} slots, 2^{shard_bits} shards)"),
        &["Threads", "AQF inserts/s", "QF inserts/s"],
        &rows,
    );
}

/// Run `f` over `keys` partitioned across `n` threads.
fn run_threads(n: usize, keys: &Arc<Vec<u64>>, f: impl Fn(u64) + Sync) {
    std::thread::scope(|scope| {
        let chunk = keys.len().div_ceil(n);
        for t in 0..n {
            let keys = Arc::clone(keys);
            let f = &f;
            scope.spawn(move || {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(keys.len());
                for &k in &keys[start..end] {
                    f(k);
                }
            });
        }
    });
}
