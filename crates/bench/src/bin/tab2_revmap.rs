//! Table 2: reverse-map accesses during insertions. The AQF performs one
//! map insert per key and never touches existing entries; the TQF's
//! location-keyed map follows every Robin Hood shift; the ACF queries and
//! updates the map on every kick. Any registry kind that tracks map
//! traffic can run (kinds without counters report "-").
//!
//! Paper sizes: 2^20 and 2^24 slots at 90% load. Defaults: 2^14 and 2^18
//! (`--qbits1`, `--qbits2`, `--filter=<kinds>`).

use aqf_bench::*;
use aqf_workloads::uniform_keys;

fn run_one(qbits: u32, kinds: &[String]) -> Vec<Vec<String>> {
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 31);
    let mut rows = Vec::new();
    for kind in kinds {
        let mut f = FilterSpec::new(&**kind, qbits)
            .with_seed(6)
            .build()
            .unwrap();
        for &k in &keys {
            let _ = f.insert(k);
        }
        let mut row = vec![f.name().to_string(), qbits.to_string()];
        match f.map_stats() {
            Some(st) => {
                row.push(st.inserts.to_string());
                row.push(st.updates.to_string());
                row.push(st.queries.to_string());
            }
            None => row.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
        }
        rows.push(row);
    }
    rows
}

fn main() {
    let q1 = flag_u64("qbits1", 14) as u32;
    let q2 = flag_u64("qbits2", 18) as u32;
    let kinds = filter_kinds(&["aqf", "tqf", "acf"]);
    let mut rows = run_one(q1, &kinds);
    rows.extend(run_one(q2, &kinds));
    print_table(
        "Table 2: reverse-map accesses while filling to 90%",
        &[
            "Filter",
            "Size (log)",
            "Map inserts",
            "Map updates",
            "Map queries",
        ],
        &rows,
    );
}
