//! Table 2: reverse-map accesses during insertions. The AQF performs one
//! map insert per key and never touches existing entries; the TQF's
//! location-keyed map follows every Robin Hood shift; the ACF queries and
//! updates the map on every kick.
//!
//! Paper sizes: 2^20 and 2^24 slots at 90% load. Defaults: 2^14 and 2^18
//! (`--qbits1`, `--qbits2`).

use aqf_bench::*;
use aqf_filters::MapStats;
use aqf_workloads::uniform_keys;

fn run_one(qbits: u32) -> Vec<Vec<String>> {
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 31);
    let mut rows = Vec::new();
    for kind in ["aqf", "tqf", "acf"] {
        let mut f = AnyFilter::build(kind, qbits, 6);
        for &k in &keys {
            f.insert(k);
        }
        let st: MapStats = match &f {
            // The AQF's merged map sees exactly one insert per key and is
            // never updated or queried during inserts (paper §4.2).
            AnyFilter::Aqf(..) => MapStats {
                inserts: n as u64,
                updates: 0,
                queries: 0,
            },
            AnyFilter::Tqf(t) => t.map_stats(),
            AnyFilter::Acf(a) => a.map_stats(),
            _ => unreachable!(),
        };
        rows.push(vec![
            f.name().to_string(),
            qbits.to_string(),
            st.inserts.to_string(),
            st.updates.to_string(),
            st.queries.to_string(),
        ]);
    }
    rows
}

fn main() {
    let q1 = flag_u64("qbits1", 14) as u32;
    let q2 = flag_u64("qbits2", 18) as u32;
    let mut rows = run_one(q1);
    rows.extend(run_one(q2));
    print_table(
        "Table 2: reverse-map accesses while filling to 90%",
        &[
            "Filter",
            "Size (log)",
            "Map inserts",
            "Map updates",
            "Map queries",
        ],
        &rows,
    );
}
