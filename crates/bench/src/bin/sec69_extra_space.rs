//! Section 6.9: giving non-adaptive filters extra bits (lower ε) does not
//! close the gap — the AQF-fronted system still wins on skewed queries
//! because it eliminates *repeated* false positives entirely.
//!
//! The AQF runs at the paper geometry; every other kind named by
//! `--filter` (default: QF, CF) gets `--extra-bits` additional
//! remainder/tag bits.
//!
//! Defaults: 2^14 slots, 100K queries, 3 extra bits
//! (`--qbits`, `--queries`, `--extra-bits`, `--filter=<kinds>`).

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::{uniform_keys, ZipfGenerator};
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 100_000) as usize;
    let extra = flag_u64("extra-bits", 3) as u32;
    let io_us = flag_u64("io-us", 20);
    let baselines = filter_kinds(&["qf", "cf"]);
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 71);
    let policy = IoPolicy {
        read_delay: Some(Duration::from_micros(io_us)),
        write_delay: None,
        yield_io: false,
    };
    let base = std::env::temp_dir().join(format!("aqf-sec69-{}", std::process::id()));

    let z = ZipfGenerator::new(10_000_000, 1.5, 72);
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    let probes: Vec<u64> = (0..queries).map(|_| z.sample_key(&mut rng)).collect();

    let mut specs: Vec<(String, FilterSpec)> = vec![(
        "AQF (9-bit)".to_string(),
        FilterSpec::new("aqf", qbits).with_seed(8),
    )];
    for kind in &baselines {
        let spec = FilterSpec::new(&**kind, qbits)
            .with_seed(8)
            .with_rbits(9 + extra)
            .with_tag_bits(12 + extra);
        specs.push((format!("{} (+{extra} bits)", kind.to_uppercase()), spec));
    }

    let mut rows = Vec::new();
    for (label, spec) in specs {
        let dir = base.join(label.replace([' ', '(', ')', '+'], "_"));
        let filter = spec.build().unwrap();
        let mut db = FilteredDb::new(filter, &dir, 1024, policy, RevMapMode::Merged).unwrap();
        for &k in &keys {
            let _ = db.insert(k, &k.to_le_bytes());
        }
        let (_, secs) = timed(|| {
            for &k in &probes {
                let _ = db.query(k).unwrap();
            }
        });
        let st = db.stats();
        rows.push(vec![
            label,
            format!("{}", db.filter().size_in_bytes()),
            ops_per_sec(queries as u64, secs),
            st.false_positives.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &format!("Sec 6.9: extra bits for non-adaptive filters (Zipfian queries, {io_us}us/IO)"),
        &["System", "Filter bytes", "Queries/s", "False positives"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
