//! Section 6.9: giving non-adaptive filters extra bits (lower ε) does not
//! close the gap — the AQF-fronted system still wins on skewed queries
//! because it eliminates *repeated* false positives entirely.
//!
//! Defaults: 2^14 slots, 100K queries, QF/CF get 3 extra remainder/tag
//! bits (`--qbits`, `--queries`, `--extra-bits`).

use aqf::AqfConfig;
use aqf_bench::*;
use aqf_filters::{CuckooFilter, QuotientFilter};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SystemFilter};
use aqf_workloads::{uniform_keys, ZipfGenerator};
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 100_000) as usize;
    let extra = flag_u64("extra-bits", 3) as u32;
    let io_us = flag_u64("io-us", 20);
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 71);
    let policy = IoPolicy {
        read_delay: Some(Duration::from_micros(io_us)),
        write_delay: None,
    };
    let base = std::env::temp_dir().join(format!("aqf-sec69-{}", std::process::id()));

    let z = ZipfGenerator::new(10_000_000, 1.5, 72);
    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    let probes: Vec<u64> = (0..queries).map(|_| z.sample_key(&mut rng)).collect();

    let systems: Vec<(&str, SystemFilter)> = vec![
        (
            "AQF (9-bit)",
            SystemFilter::Aqf(Box::new(
                aqf::AdaptiveQf::new(AqfConfig::new(qbits, 9).with_seed(8)).unwrap(),
            )),
        ),
        (
            "QF (+extra bits)",
            SystemFilter::Qf(Box::new(QuotientFilter::new(qbits, 9 + extra, 8).unwrap())),
        ),
        (
            "CF (+extra bits)",
            SystemFilter::Cf(Box::new(
                CuckooFilter::new(qbits - 2, 12 + extra, 8).unwrap(),
            )),
        ),
    ];

    let mut rows = Vec::new();
    for (label, f) in systems {
        let dir = base.join(label.replace([' ', '(', ')', '+'], "_"));
        let mut db = FilteredDb::new(f, &dir, 1024, policy, RevMapMode::Merged).unwrap();
        for &k in &keys {
            let _ = db.insert(k, &k.to_le_bytes());
        }
        let (_, secs) = timed(|| {
            for &k in &probes {
                let _ = db.query(k).unwrap();
            }
        });
        let st = db.stats();
        rows.push(vec![
            label.to_string(),
            format!("{}", db.filter().size_in_bytes()),
            ops_per_sec(queries as u64, secs),
            st.false_positives.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &format!("Sec 6.9: extra bits for non-adaptive filters (Zipfian queries, {io_us}us/IO)"),
        &["System", "Filter bytes", "Queries/s", "False positives"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
