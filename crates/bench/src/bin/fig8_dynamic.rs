//! Figure 8: false-positive rate over time on a dynamic workload —
//! Zipfian queries with a churn burst every 10% of operations replacing
//! 20% of the members. Runs any registry kind that supports deletion
//! (default: AQF; TQF/ACF are excluded by construction — no deletes).
//!
//! Paper: 3M queries, 1M-probe instantaneous FPR. Defaults: 2^14 slots,
//! 200K queries (`--qbits`, `--queries`, `--filter=<kinds>`).
//!
//! Output: CSV `filter,ops,fpr,churn` (churn=1 marks a burst checkpoint).

use aqf_bench::*;
use aqf_workloads::datasets::{churn_schedule, ChurnOp};
use aqf_workloads::ZipfGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 200_000) as usize;
    let kinds = filter_kinds(&["aqf"]);
    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let universe = 1_000_000u64;

    let members: Vec<u64> = aqf_workloads::uniform_universe_keys(n, universe, 41)
        .into_iter()
        .collect();
    let (ops, _) = churn_schedule(&members, queries, queries / 10, 0.2, universe, 1.5, 42);

    // Instantaneous-FPR probe set from the same Zipf distribution.
    let z = ZipfGenerator::new(universe, 1.5, 42 ^ 0xC4A2);
    let mut prng = StdRng::seed_from_u64(43);
    let probes: Vec<u64> = (0..50_000).map(|_| z.sample_key(&mut prng)).collect();

    println!("filter,ops,fpr,churn");
    for kind in &kinds {
        let mut f = FilterSpec::new(&**kind, qbits)
            .with_seed(5)
            .build()
            .unwrap();
        if !f.supports_delete() {
            eprintln!("{kind}: no deletion support, skipping (churn needs deletes)");
            continue;
        }
        let mut member_set: std::collections::HashSet<u64> = members.iter().copied().collect();
        for &k in &members {
            f.insert(k).expect("sized for the member set");
        }

        let checkpoint = (ops.len() / 40).max(1);
        let mut qcount = 0usize;
        let mut churn_flag = 0;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                ChurnOp::Query(k) => {
                    qcount += 1;
                    // Adapting query: the filter resolves the stored key
                    // through its shadow reverse map and fixes any
                    // reported false positive.
                    let _ = f.query_adapting(k);
                }
                ChurnOp::Delete(k) => {
                    churn_flag = 1;
                    let _ = f.delete(k);
                    member_set.remove(&k);
                }
                ChurnOp::Insert(k) => {
                    if f.insert(k).is_ok() {
                        member_set.insert(k);
                    }
                }
            }
            if i % checkpoint == 0 {
                // Adaptation off while measuring (plain contains()).
                let mut fps = 0usize;
                let mut negs = 0usize;
                for &p in &probes {
                    if member_set.contains(&p) {
                        continue;
                    }
                    negs += 1;
                    if f.contains(p) {
                        fps += 1;
                    }
                }
                println!(
                    "{},{},{:.8},{}",
                    f.name(),
                    qcount,
                    fps as f64 / negs.max(1) as f64,
                    churn_flag
                );
                churn_flag = 0;
            }
        }
        eprintln!(
            "{}: final {} members, {:.4} adaptation bits/item",
            f.name(),
            member_set.len(),
            f.adapt_bits() / member_set.len().max(1) as f64
        );
    }
}
