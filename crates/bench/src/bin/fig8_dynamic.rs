//! Figure 8: AQF false-positive rate over time on a dynamic workload —
//! Zipfian queries with a churn burst every 10% of operations replacing
//! 20% of the members (TQF/ACF are excluded: no deletes).
//!
//! Paper: 3M queries, 1M-probe instantaneous FPR. Defaults: 2^14 slots,
//! 200K queries (`--qbits`, `--queries`).
//!
//! Output: CSV `ops,fpr,churn` (churn=1 marks a burst checkpoint).

use aqf::{AdaptiveQf, AqfConfig, QueryResult};
use aqf_bench::*;
use aqf_workloads::datasets::{churn_schedule, ChurnOp};
use aqf_workloads::ZipfGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 200_000) as usize;
    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let universe = 1_000_000u64;

    let members: Vec<u64> = aqf_workloads::uniform_universe_keys(n, universe, 41)
        .into_iter()
        .collect();
    let (ops, _) = churn_schedule(&members, queries, queries / 10, 0.2, universe, 1.5, 42);

    let mut f = AdaptiveQf::new(AqfConfig::new(qbits, 9).with_seed(5)).unwrap();
    let mut map = ShadowMap::default();
    let mut member_set: std::collections::HashSet<u64> = members.iter().copied().collect();
    fill_aqf(&mut f, &mut map, &members);

    // Instantaneous-FPR probe set from the same Zipf distribution.
    let z = ZipfGenerator::new(universe, 1.5, 42 ^ 0xC4A2);
    let mut prng = StdRng::seed_from_u64(43);
    let probes: Vec<u64> = (0..50_000).map(|_| z.sample_key(&mut prng)).collect();

    println!("ops,fpr,churn");
    let checkpoint = (ops.len() / 40).max(1);
    let mut qcount = 0usize;
    let mut churn_flag = 0;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ChurnOp::Query(k) => {
                qcount += 1;
                if let QueryResult::Positive(hit) = f.query(k) {
                    if !member_set.contains(&k) {
                        if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                            let _ = f.adapt(&hit, stored, k);
                        }
                    }
                }
            }
            ChurnOp::Delete(k) => {
                churn_flag = 1;
                let _ = f.delete(k);
                member_set.remove(&k);
            }
            ChurnOp::Insert(k) => {
                if let Ok(out) = f.insert(k) {
                    map.record(&out, k);
                    member_set.insert(k);
                }
            }
        }
        if i % checkpoint == 0 {
            // Adaptation off while measuring (plain contains()).
            let mut fps = 0usize;
            let mut negs = 0usize;
            for &p in &probes {
                if member_set.contains(&p) {
                    continue;
                }
                negs += 1;
                if f.contains(p) {
                    fps += 1;
                }
            }
            println!(
                "{},{:.8},{}",
                qcount,
                fps as f64 / negs.max(1) as f64,
                churn_flag
            );
            churn_flag = 0;
        }
    }
    eprintln!(
        "final: {} members, {} adaptations, {} ext slots",
        member_set.len(),
        f.stats().adaptations,
        f.stats().extension_slots
    );
}
