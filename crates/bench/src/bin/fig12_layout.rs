//! Figure 12 (repo extension): table-layout throughput — query and insert
//! ops/s versus load factor for the quotient-filter family.
//!
//! This is the before/after instrument for the blocked, offset-indexed
//! table layout: run it at git tag `pre-PR5` for the scan-based numbers
//! and on current HEAD for the blocked numbers (both are recorded in
//! BENCHMARKS.md). Lookups are split into *hit* probes (members: every
//! probe walks a run) and *uniform* probes (mostly negative), because run
//! location is exactly what the blocked layout makes O(1).
//!
//! The bulk-load phase drives every filter kind through the same public
//! `insert_batch` API in `--batch`-sized chunks. Kinds without a native
//! batch path inherit the trait's per-key loop (identical cost to calling
//! `insert` directly), while the AQF routes through its partitioned,
//! prefetched pipeline — so `insert_mops` compares what each filter can
//! actually sustain under a bulk load, not just its scalar path.
//!
//! `--json=PATH` additionally writes the rows as machine-readable JSON
//! (see `scripts/bench_json.sh`, which emits `BENCH_PR5.json`).

use std::fmt::Write as _;

use aqf_bench::*;
use aqf_workloads::uniform_keys;

struct Row {
    kind: String,
    load: f64,
    insert_mops: f64,
    hit_mops: f64,
    uniform_mops: f64,
    batch_hit_mops: f64,
}

fn mops(n: usize, secs: f64) -> f64 {
    n as f64 / secs / 1e6
}

fn main() {
    let qbits = flag_u64("qbits", 20) as u32;
    let queries = flag_u64("queries", 2_000_000) as usize;
    let batch = flag_u64("batch", 1024) as usize;
    let reps = flag_u64("reps", 3) as usize;
    let loads_raw = flag_str("loads", "0.5,0.6,0.7,0.8,0.85,0.9,0.95");
    let json_path = flag_str("json", "");
    let loads: Vec<f64> = loads_raw
        .split(',')
        .map(|s| s.trim().parse().expect("--loads takes comma-separated f64"))
        .collect();
    let kinds = filter_kinds(&["aqf", "qf"]);

    let mut rows: Vec<Row> = Vec::new();
    for kind in &kinds {
        for &load in &loads {
            let n = ((1u64 << qbits) as f64 * load) as usize;
            let keys = uniform_keys(n, 42);
            let mut f = FilterSpec::new(kind.clone(), qbits)
                .with_seed(1)
                .build()
                .unwrap();
            let (inserted, ins_secs) = timed(|| {
                let mut ok = 0usize;
                for chunk in keys.chunks(batch.max(1)) {
                    if f.insert_batch(chunk).is_err() {
                        break; // filter full: the remainder can't land
                    }
                    ok += chunk.len();
                }
                ok
            });

            // Probe arrays are precomputed so the timed loops measure
            // lookups, not index arithmetic; every timing is best-of-reps.
            let hit_probes: Vec<u64> = (0..queries).map(|i| keys[i % n]).collect();
            let best = |work: &mut dyn FnMut() -> usize| -> (usize, f64) {
                let mut out = (0usize, f64::INFINITY);
                for _ in 0..reps.max(1) {
                    let (r, secs) = timed(&mut *work);
                    if secs < out.1 {
                        out = (r, secs);
                    }
                }
                out
            };

            // Hit probes: members in a key-order pass distinct from the
            // insertion pass (uniform keys are already in random order).
            let (hits, hit_secs) = best(&mut || {
                let mut pos = 0usize;
                for &k in &hit_probes {
                    if f.contains(k) {
                        pos += 1;
                    }
                }
                pos
            });
            assert!(hits * 2 >= queries, "members must stay positive");

            // Uniform probes: fresh keys, overwhelmingly negative.
            let probes = uniform_keys(queries, 99);
            let (_, uni_secs) = best(&mut || {
                let mut pos = 0usize;
                for &k in &probes {
                    if f.contains(k) {
                        pos += 1;
                    }
                }
                pos
            });

            // Batched hit probes (the PR 3 pipeline).
            let (_, batch_secs) = best(&mut || {
                let mut pos = 0usize;
                for chunk in hit_probes.chunks(batch) {
                    pos += f.contains_batch(chunk).iter().filter(|&&b| b).count();
                }
                pos
            });

            rows.push(Row {
                kind: kind.clone(),
                load,
                insert_mops: mops(inserted, ins_secs),
                hit_mops: mops(queries, hit_secs),
                uniform_mops: mops(queries, uni_secs),
                batch_hit_mops: mops(queries, batch_secs),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                format!("{:.2}", r.load),
                format!("{:.2}", r.insert_mops),
                format!("{:.2}", r.hit_mops),
                format!("{:.2}", r.uniform_mops),
                format!("{:.2}", r.batch_hit_mops),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 12: layout throughput vs load (2^{qbits} slots, {queries} probes, Mops/s)"),
        &[
            "Filter",
            "Load",
            "Insert",
            "Lookup (hit)",
            "Lookup (uniform)",
            "Batch lookup (hit)",
        ],
        &table,
    );

    if !json_path.is_empty() {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"fig12_layout\",");
        let _ = writeln!(out, "  \"qbits\": {qbits},");
        let _ = writeln!(out, "  \"queries\": {queries},");
        let _ = writeln!(out, "  \"batch\": {batch},");
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"filter\": \"{}\", \"load\": {:.2}, \"insert_mops\": {:.3}, \
                 \"lookup_hit_mops\": {:.3}, \"lookup_uniform_mops\": {:.3}, \
                 \"batch_lookup_hit_mops\": {:.3}}}",
                r.kind, r.load, r.insert_mops, r.hit_mops, r.uniform_mops, r.batch_hit_mops
            );
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&json_path, out).expect("write --json file");
        eprintln!("wrote {json_path}");
    }
}
