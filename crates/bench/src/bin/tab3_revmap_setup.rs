//! Table 3: merged vs split reverse-map setups for the AQF system.
//! Merged (map doubles as the database) pays one write per insert but
//! cannot range-query; split pays two writes per insert and ~1-2% slower
//! queries (false positives are rare). `--filter` accepts any registry
//! kind that supports the split map (aqf, sharded-aqf).
//!
//! Paper: 2^25-slot filter, 200M queries. Defaults: 2^15, 200K
//! (`--qbits`, `--queries`, `--filter=aqf`).

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::uniform_keys;

fn main() {
    let qbits = flag_u64("qbits", 15) as u32;
    let queries = flag_u64("queries", 200_000) as usize;
    let kinds = filter_kinds(&["aqf"]);
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 3);
    let probes = uniform_keys(queries, 555);
    let base = std::env::temp_dir().join(format!("aqf-tab3-{}", std::process::id()));

    let mut rows = Vec::new();
    for kind in &kinds {
        for (label, mode) in [("Merged", RevMapMode::Merged), ("Split", RevMapMode::Split)] {
            let dir = base.join(format!("{kind}-{label}"));
            let filter = FilterSpec::new(&**kind, qbits)
                .with_seed(2)
                .build()
                .unwrap();
            if !filter.supports_split_map() {
                eprintln!("{kind}: no split reverse-map support, skipping");
                break;
            }
            let name = filter.name();
            let mut db = FilteredDb::new(filter, &dir, 4096, IoPolicy::default(), mode).unwrap();
            let (_, ins_secs) = timed(|| {
                for &k in &keys {
                    let _ = db.insert(k, &k.to_le_bytes());
                }
            });
            let (_, qry_secs) = timed(|| {
                for &k in &probes {
                    let _ = db.query(k).unwrap();
                }
            });
            rows.push(vec![
                format!("{name} {label}"),
                ops_per_sec(n as u64, ins_secs),
                ops_per_sec(queries as u64, qry_secs),
                db.io_stats().writes.to_string(),
            ]);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    print_table(
        &format!("Table 3: merged vs split reverse map (2^{qbits} slots)"),
        &["Setup", "Inserts/s", "Queries/s", "Disk writes"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
