//! Figure 9: space usage of the (dynamic-capable) AQF yes/no filter vs
//! the static cascading Bloom filter (CRLite) as the no/yes ratio varies,
//! with a fixed aggregate list size.
//!
//! `--filter=yesno,cbf` selects which solutions to compare (registry
//! kinds; both are batch-built here from explicit yes/no lists, which is
//! what Fig. 9 measures — the registry's incremental constructions are
//! exercised by the conformance suite instead).
//!
//! Paper: 1M aggregate items, ratios 2^-5..2^5. Defaults: 64K aggregate
//! (`--aggregate`).

use aqf::AqfConfig;
use aqf_bench::*;
use aqf_filters::CascadingBloomFilter;

fn main() {
    let aggregate = flag_u64("aggregate", 1 << 16) as usize;
    let kinds = filter_kinds(&["yesno", "cbf"]);
    let want_aqf = kinds.iter().any(|k| k == "yesno");
    let want_cbf = kinds.iter().any(|k| k == "cbf");
    for kind in &kinds {
        if kind != "yesno" && kind != "cbf" {
            eprintln!("{kind}: not a yes/no-list construction, skipping (fig9 compares yesno/cbf)");
        }
    }
    if !want_aqf && !want_cbf {
        eprintln!("nothing to measure: pass --filter=yesno,cbf (or a subset)");
        std::process::exit(2);
    }
    let mut rows = Vec::new();
    let mut header = vec!["no/yes", "|Y|", "|N|"];
    if want_aqf {
        header.push("AQF bytes");
    }
    if want_cbf {
        header.push("CBF bytes");
        header.push("CBF depth");
    }
    for e in -5i32..=5 {
        let ratio = 2f64.powi(e);
        // no = ratio * yes; yes + no = aggregate.
        let n_yes = ((aggregate as f64) / (1.0 + ratio)).round().max(1.0) as usize;
        let n_no = aggregate - n_yes;
        let yes: Vec<u64> = aqf_workloads::uniform_keys(n_yes, 51);
        let no: Vec<u64> = aqf_workloads::uniform_keys(n_no, 52);
        let mut row = vec![format!("2^{e}"), n_yes.to_string(), n_no.to_string()];

        if want_aqf {
            // AQF static yes/no construction (paper §5.1). The optimal ε
            // for the yes/no problem is n/m when m > n (space lower bound
            // is n·log(max(1/ε, m/n))), so the remainder width tracks the
            // ratio: rbits ≈ log2(m/n), clamped to at least 2.
            let rbits =
                ((n_no.max(1) as f64 / n_yes as f64).log2().ceil() as i64).clamp(2, 16) as u32;
            let cfg = AqfConfig::for_capacity(n_yes.max(64), 0.85, rbits).with_seed(6);
            let aqf_bytes = match aqf::StaticYesNo::build(cfg, &yes, &no) {
                Ok(f) => {
                    // Verify the guarantee before reporting space.
                    assert!(no.iter().all(|&z| !f.query(z)), "no-list FP escaped");
                    f.size_in_bytes()
                }
                Err(_) => {
                    // Adaptivity space exhausted: grow once (the Thm 2
                    // failure path) and retry.
                    let cfg2 = AqfConfig {
                        qbits: cfg.qbits + 1,
                        ..cfg
                    };
                    let f = aqf::StaticYesNo::build(cfg2, &yes, &no).expect("grown filter fits");
                    f.size_in_bytes()
                }
            };
            row.push(aqf_bytes.to_string());
        }

        if want_cbf {
            let cbf = CascadingBloomFilter::build(&yes, &no, 7).unwrap();
            row.push(cbf.size_in_bytes().to_string());
            row.push(cbf.depth().to_string());
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig 9: yes/no-list space vs no/yes ratio ({aggregate} aggregate items)"),
        &header,
        &rows,
    );
}
