//! Figure 9: space usage of the (dynamic-capable) AQF yes/no filter vs
//! the static cascading Bloom filter (CRLite) as the no/yes ratio varies,
//! with a fixed aggregate list size.
//!
//! Paper: 1M aggregate items, ratios 2^-5..2^5. Defaults: 64K aggregate
//! (`--aggregate`).

use aqf::AqfConfig;
use aqf_bench::*;
use aqf_filters::CascadingBloomFilter;

fn main() {
    let aggregate = flag_u64("aggregate", 1 << 16) as usize;
    let mut rows = Vec::new();
    for e in -5i32..=5 {
        let ratio = 2f64.powi(e);
        // no = ratio * yes; yes + no = aggregate.
        let n_yes = ((aggregate as f64) / (1.0 + ratio)).round().max(1.0) as usize;
        let n_no = aggregate - n_yes;
        let yes: Vec<u64> = aqf_workloads::uniform_keys(n_yes, 51);
        let no: Vec<u64> = aqf_workloads::uniform_keys(n_no, 52);

        // AQF static yes/no construction (paper §5.1). The optimal ε for
        // the yes/no problem is n/m when m > n (space lower bound is
        // n·log(max(1/ε, m/n))), so the remainder width tracks the ratio:
        // rbits ≈ log2(m/n), clamped to at least 2.
        let rbits = ((n_no.max(1) as f64 / n_yes as f64).log2().ceil() as i64).clamp(2, 16) as u32;
        let cfg = AqfConfig::for_capacity(n_yes.max(64), 0.85, rbits).with_seed(6);
        let aqf_bytes = match aqf::StaticYesNo::build(cfg, &yes, &no) {
            Ok(f) => {
                // Verify the guarantee before reporting space.
                assert!(no.iter().all(|&z| !f.query(z)), "no-list FP escaped");
                f.size_in_bytes()
            }
            Err(_) => {
                // Adaptivity space exhausted: grow once (the Thm 2 failure
                // path) and retry.
                let cfg2 = AqfConfig {
                    qbits: cfg.qbits + 1,
                    ..cfg
                };
                let f = aqf::StaticYesNo::build(cfg2, &yes, &no).expect("grown filter fits");
                f.size_in_bytes()
            }
        };

        let cbf = CascadingBloomFilter::build(&yes, &no, 7).unwrap();
        rows.push(vec![
            format!("2^{e}"),
            n_yes.to_string(),
            n_no.to_string(),
            aqf_bytes.to_string(),
            cbf.size_in_bytes().to_string(),
            cbf.depth().to_string(),
        ]);
    }
    print_table(
        &format!("Fig 9: yes/no-list space vs no/yes ratio ({aggregate} aggregate items)"),
        &[
            "no/yes",
            "|Y|",
            "|N|",
            "AQF bytes",
            "CBF bytes",
            "CBF depth",
        ],
        &rows,
    );
}
