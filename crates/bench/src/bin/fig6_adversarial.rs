//! Figure 6: system query throughput under a query-only adversary, over a
//! grid of cache sizes × adversary frequencies, for any registry kind
//! (default: the paper's five).
//!
//! The adversary collects observed false positives during a warmup phase
//! and replays them round-robin, defeating the page cache. Paper: 100M
//! warmup + 100M measured queries, caches 1.5%..25% of the dataset.
//! Defaults: 2^14-slot filters, 60K+60K queries, caches {3,12,25}%, adv
//! frequencies {0, 1, 5, 10}% (`--qbits`, `--queries`, `--io-us`,
//! `--filter=<kinds>`).

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::{uniform_keys, Adversary};
use rand::RngExt;
use std::time::Duration;

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 60_000) as usize;
    let io_us = flag_u64("io-us", 20);
    let kinds = filter_kinds(registry::paper_kinds());
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 21);
    // Dataset pages ≈ n * 24B / 4096; cache % of dataset.
    let data_pages = (n * 24 / 4096).max(16);
    let base = std::env::temp_dir().join(format!("aqf-fig6-{}", std::process::id()));
    let policy = IoPolicy {
        read_delay: Some(Duration::from_micros(io_us)),
        write_delay: None,
        yield_io: false,
    };

    let mut header = vec!["Adv freq".to_string()];
    let mut names_done = false;

    for cache_pct in [3u64, 12, 25] {
        let cache_pages = (data_pages as u64 * cache_pct / 100).max(8) as usize;
        let mut rows = Vec::new();
        for adv_pct in [0u64, 1, 5, 10] {
            let mut row = vec![format!("{adv_pct}%")];
            for kind in &kinds {
                let dir = base.join(format!("{kind}-{cache_pct}-{adv_pct}"));
                let filter = FilterSpec::new(&**kind, qbits)
                    .with_seed(3)
                    .build()
                    .unwrap();
                if !names_done {
                    header.push(filter.name().to_string());
                }
                let mut db =
                    FilteredDb::new(filter, &dir, cache_pages, policy, RevMapMode::Merged).unwrap();
                for &k in &keys {
                    let _ = db.insert(k, &k.to_le_bytes());
                }
                let mut adv = Adversary::new(adv_pct as f64 / 100.0, 4);
                let mut rng = aqf_workloads::rng(17);
                // Warmup: the adversary probes uniformly and remembers
                // which queries were slow misses (false positives).
                for _ in 0..queries {
                    let k: u64 = rng.random();
                    // Any store access (even a cache hit) is measurably
                    // slower than a filter-negative; that's what the
                    // adversary's timer distinguishes.
                    let before = db.stats().filter_negatives;
                    let found = db.query(k).unwrap().is_some();
                    adv.observe(k, db.stats().filter_negatives == before, found);
                }
                // Measured phase: adversary-controlled mix.
                let probes: Vec<u64> = (0..queries)
                    .map(|_| adv.next_query(|r| r.random()))
                    .collect();
                let (_, secs) = timed(|| {
                    for &k in &probes {
                        let _ = db.query(k).unwrap();
                    }
                });
                row.push(ops_per_sec(queries as u64, secs));
                let _ = std::fs::remove_dir_all(&dir);
            }
            names_done = true;
            rows.push(row);
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Fig 6: query throughput, cache {cache_pct}% of data ({cache_pages} pages), {io_us}us/IO"
            ),
            &header_refs,
            &rows,
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
