//! Figure 5: system (filter + on-disk B-tree) insert throughput as the
//! filter fills, for all five filters. The ACF and TQF collapse as load
//! rises because kicks/shifts rewrite their location-keyed reverse maps.
//!
//! Paper: 2^25-slot filters over a SplinterDB B-tree. Defaults: 2^15
//! slots, 10% reporting buckets (`--qbits`, `--buckets`).

use aqf::AqfConfig;
use aqf_bench::*;
use aqf_filters::{AdaptiveCuckooFilter, CuckooFilter, QuotientFilter, TelescopingFilter};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SystemFilter};
use aqf_workloads::uniform_keys;

fn build_system(kind: &str, qbits: u32, dir: &std::path::Path, cache: usize) -> FilteredDb {
    let f = match kind {
        "aqf" => SystemFilter::Aqf(Box::new(
            aqf::AdaptiveQf::new(AqfConfig::new(qbits, 9).with_seed(1)).unwrap(),
        )),
        "tqf" => SystemFilter::Tqf(Box::new(TelescopingFilter::new(qbits, 9, 1).unwrap())),
        "acf" => SystemFilter::Acf(Box::new(
            AdaptiveCuckooFilter::new(qbits - 2, 12, 1).unwrap(),
        )),
        "qf" => SystemFilter::Qf(Box::new(QuotientFilter::new(qbits, 9, 1).unwrap())),
        "cf" => SystemFilter::Cf(Box::new(CuckooFilter::new(qbits - 2, 12, 1).unwrap())),
        _ => unreachable!(),
    };
    FilteredDb::new(f, dir, cache, IoPolicy::default(), RevMapMode::Merged).unwrap()
}

fn main() {
    let qbits = flag_u64("qbits", 15) as u32;
    let buckets = flag_u64("buckets", 9) as usize; // report every 10%
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 77);
    let base = std::env::temp_dir().join(format!("aqf-fig5-{}", std::process::id()));

    let mut rows: Vec<Vec<String>> = (0..buckets)
        .map(|b| vec![format!("{}%", (b + 1) * 90 / buckets)])
        .collect();
    let mut header = vec!["Load".to_string()];

    for kind in AnyFilter::kinds() {
        let dir = base.join(kind);
        let mut db = build_system(kind, qbits, &dir, 4096);
        header.push(format!("{} ins/s", kind.to_uppercase()));
        let per = n / buckets;
        for b in 0..buckets {
            let slice = &keys[b * per..((b + 1) * per).min(n)];
            let (_, secs) = timed(|| {
                for &k in slice {
                    let _ = db.insert(k, &k.to_le_bytes());
                }
            });
            rows[b].push(ops_per_sec(slice.len() as u64, secs));
        }
        let io = db.io_stats();
        println!(
            "{}: disk reads {} writes {}",
            kind.to_uppercase(),
            io.reads,
            io.writes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("Fig 5: system insert throughput vs load (2^{qbits} slots)"),
        &header_refs,
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
