//! Figure 5: system (filter + on-disk B-tree) insert throughput as the
//! filter fills, for any registry kind (default: the paper's five). The
//! ACF and TQF collapse as load rises because kicks/shifts rewrite their
//! location-keyed reverse maps.
//!
//! Paper: 2^25-slot filters over a SplinterDB B-tree. Defaults: 2^15
//! slots, 10% reporting buckets (`--qbits`, `--buckets`,
//! `--filter=<kinds>`).

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::uniform_keys;

fn main() {
    let qbits = flag_u64("qbits", 15) as u32;
    let buckets = flag_u64("buckets", 9) as usize; // report every 10%
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 77);
    let base = std::env::temp_dir().join(format!("aqf-fig5-{}", std::process::id()));

    let mut rows: Vec<Vec<String>> = (0..buckets)
        .map(|b| vec![format!("{}%", (b + 1) * 90 / buckets)])
        .collect();
    let mut header = vec!["Load".to_string()];

    for kind in filter_kinds(registry::paper_kinds()) {
        let dir = base.join(&kind);
        let filter = FilterSpec::new(&*kind, qbits).with_seed(1).build().unwrap();
        header.push(format!("{} ins/s", filter.name()));
        let mut db =
            FilteredDb::new(filter, &dir, 4096, IoPolicy::default(), RevMapMode::Merged).unwrap();
        let per = n / buckets;
        for b in 0..buckets {
            let slice = &keys[b * per..((b + 1) * per).min(n)];
            let (_, secs) = timed(|| {
                for &k in slice {
                    let _ = db.insert(k, &k.to_le_bytes());
                }
            });
            rows[b].push(ops_per_sec(slice.len() as u64, secs));
        }
        let io = db.io_stats();
        println!(
            "{}: disk reads {} writes {}",
            db.filter().name(),
            io.reads,
            io.writes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("Fig 5: system insert throughput vs load (2^{qbits} slots)"),
        &header_refs,
        &rows,
    );
    let _ = std::fs::remove_dir_all(&base);
}
