//! Table 5: average per-item latency for (a) inserting into a full-size
//! AQF, (b) inserting into two half-size AQFs, (c) merging the halves,
//! (d) sorting keys in hash order, and (e) bulk building from sorted keys.
//!
//! Paper: 2^26 slots. Defaults: 2^18 (`--qbits`).

use aqf::{AdaptiveQf, AqfConfig};
use aqf_bench::*;
use aqf_workloads::uniform_keys;

fn main() {
    let qbits = flag_u64("qbits", 18) as u32;
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 61);
    // Full-size geometry (q, r); halves use (q-1, r+1) so that merging
    // yields exactly (q, r) — fingerprint length is conserved.
    let full_cfg = AqfConfig::new(qbits, 9).with_seed(9);
    let half_cfg = AqfConfig::new(qbits - 1, 10).with_seed(9);

    let mut rows = Vec::new();

    let (_, t_full) = timed(|| {
        let mut f = AdaptiveQf::new(full_cfg).unwrap();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        f
    });
    rows.push(vec!["Insert into filter".into(), us_per_item(t_full, n)]);

    let ((a, b), t_half) = timed(|| {
        let mut a = AdaptiveQf::new(half_cfg).unwrap();
        let mut b = AdaptiveQf::new(half_cfg).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                a.insert(k).unwrap();
            } else {
                b.insert(k).unwrap();
            }
        }
        (a, b)
    });
    rows.push(vec![
        "Insert into half-size filters".into(),
        us_per_item(t_half, n),
    ]);

    let (merged, t_merge) = timed(|| a.merge(&b).unwrap());
    assert_eq!(merged.len(), n as u64);
    rows.push(vec![
        "Merge two half-size filters".into(),
        us_per_item(t_merge, n),
    ]);

    let (sorted, t_sort) = timed(|| {
        let probe = AdaptiveQf::new(full_cfg).unwrap();
        let mut ids: Vec<(u64, u64)> = keys
            .iter()
            .map(|&k| (probe.fingerprint(k).minirun_id(), k))
            .collect();
        ids.sort_unstable();
        ids
    });
    rows.push(vec!["Sort in hash order".into(), us_per_item(t_sort, n)]);
    drop(sorted);

    let (bulk, t_bulk) = timed(|| AdaptiveQf::bulk_build(full_cfg, &keys).unwrap());
    assert_eq!(bulk.len(), n as u64);
    rows.push(vec!["Bulk insert".into(), us_per_item(t_bulk, n)]);

    print_table(
        &format!("Table 5: merge and bulk-load latency (2^{qbits} slots, {n} keys)"),
        &["Operation", "Time per item (us)"],
        &rows,
    );
}

fn us_per_item(secs: f64, n: usize) -> String {
    format!("{:.4}", secs * 1e6 / n as f64)
}
