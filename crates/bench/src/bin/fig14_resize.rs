//! "Figure 14" (beyond the paper): the cost of online capacity growth
//! and the payoff of file-backed tables (PR 8).
//!
//! **Section 1 — insert throughput across grow events.** A filter that
//! starts small and doubles on a load-factor threshold pays for each
//! grow with a full rebuild into the doubled table. This section inserts
//! the same key set into (a) a filter starting at `--qbits-start` with
//! auto-grow enabled and (b) a filter pre-sized to the final geometry,
//! and reports aggregate throughput plus the number of grow events —
//! the amortized price of not knowing your capacity in advance. Runs on
//! every growable `--filter` kind.
//!
//! **Section 2 — file-backed open vs full decode.** A snapshot of a
//! file-backed filter references its table arena by name instead of
//! inlining it; `load` maps the arena (page-cache warm or lazily faulted)
//! and runs a cheap occupancy check instead of decoding and rebuilding
//! the table. This section saves the same `--file-qbits` filter both
//! ways and times the two load paths — the restart-latency trade that
//! motivates file backing for big tables.
//!
//! Defaults: section 1 grows 2^10 -> 2^{14} slots at threshold 0.85
//! (`--qbits-start`, `--qbits-final`, `--threshold`); section 2 at
//! 2^22 slots (`--file-qbits`), 3 reps (`--reps`). `--json=PATH` writes
//! the rows as machine-readable JSON (see `scripts/bench_json.sh`,
//! which emits `BENCH_PR8.json`).

use std::fmt::Write as _;

use aqf_bench::*;
use aqf_workloads::{uniform_keys, unique_temp_dir};

struct GrowRow {
    kind: String,
    grows: u64,
    grown_mops: f64,
    presized_mops: f64,
}

fn main() {
    let qbits_start = flag_u64("qbits-start", 10) as u32;
    let qbits_final = (flag_u64("qbits-final", 14) as u32).max(qbits_start);
    let threshold = flag_f64("threshold", 0.85);
    let file_qbits = flag_u64("file-qbits", 22) as u32;
    let reps = (flag_u64("reps", 3) as usize).max(1);
    let json_path = flag_str("json", "");
    let kinds = filter_kinds(&["aqf", "sharded-aqf"]);

    // ---- Section 1: insert throughput across grow events ---------------
    let n = ((1u64 << qbits_final) as f64 * (threshold - 0.05)) as usize;
    let keys = uniform_keys(n, 31);
    let mut grow_rows = Vec::new();
    for kind in &kinds {
        let spec_small = FilterSpec::new(kind.clone(), qbits_start).with_seed(1);
        {
            let mut probe = spec_small.build().expect("spec validated by filter_kinds");
            if !probe.supports_grow() || probe.set_auto_grow(Some(threshold)).is_err() {
                eprintln!("skipping {kind}: not growable");
                continue;
            }
        }

        let mut grown_s = f64::INFINITY;
        let mut grows = 0;
        for _ in 0..reps {
            let mut f = spec_small.build().expect("spec validated");
            f.set_auto_grow(Some(threshold)).expect("checked above");
            let (_, s) = timed(|| {
                for c in keys.chunks(4096) {
                    f.insert_batch(c).expect("auto-grow absorbs the overflow");
                }
            });
            grown_s = grown_s.min(s);
            grows = f.grows();
        }

        let spec_final = FilterSpec::new(kind.clone(), qbits_final).with_seed(1);
        let mut presized_s = f64::INFINITY;
        for _ in 0..reps {
            let mut f = spec_final.build().expect("spec validated");
            let (_, s) = timed(|| {
                for c in keys.chunks(4096) {
                    f.insert_batch(c).expect("pre-sized to fit");
                }
            });
            presized_s = presized_s.min(s);
        }

        grow_rows.push(GrowRow {
            kind: kind.clone(),
            grows,
            grown_mops: n as f64 / grown_s / 1e6,
            presized_mops: n as f64 / presized_s / 1e6,
        });
    }
    print_table(
        &format!(
            "Fig 14a: insert throughput, auto-grown 2^{qbits_start}->2^{qbits_final} \
             vs pre-sized (threshold {threshold}, {n} keys, best of {reps})"
        ),
        &[
            "Filter",
            "Grows",
            "Grown Mops",
            "Pre-sized Mops",
            "Overhead",
        ],
        &grow_rows
            .iter()
            .map(|r| {
                vec![
                    r.kind.clone(),
                    r.grows.to_string(),
                    format!("{:.3}", r.grown_mops),
                    format!("{:.3}", r.presized_mops),
                    format!("{:.2}x", r.presized_mops / r.grown_mops),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ---- Section 2: file-backed open vs full decode ---------------------
    use aqf::{AdaptiveQf, AqfConfig};
    let dir = unique_temp_dir("aqf-fig14");
    std::fs::create_dir_all(&dir).expect("create bench tempdir");
    let slots = 1u64 << file_qbits;
    let fn_keys = uniform_keys((slots as f64 * 0.85) as usize, 32);
    let mut f = AdaptiveQf::new(AqfConfig::new(file_qbits, 9).with_seed(1)).expect("config");
    for &k in &fn_keys {
        f.insert(k).expect("sized to fit");
    }
    let full_path = dir.join("full.snap");
    f.save(&full_path).expect("save full snapshot");
    f.set_file_backing(&dir.join("table.arena"))
        .expect("migrate to arena file");
    let fb_path = dir.join("fb.snap");
    f.save(&fb_path).expect("save file-backed snapshot");

    let mut full_s = f64::INFINITY;
    let mut fb_s = f64::INFINITY;
    for _ in 0..reps {
        let (g, s) = timed(|| AdaptiveQf::load(&full_path).expect("full decode load"));
        assert_eq!(g.len(), f.len(), "full decode must reproduce the filter");
        full_s = full_s.min(s);
        let (g, s) = timed(|| AdaptiveQf::load(&fb_path).expect("file-backed load"));
        assert_eq!(g.len(), f.len(), "mapped open must reproduce the filter");
        fb_s = fb_s.min(s);
    }
    print_table(
        &format!("Fig 14b: restart load path, 2^{file_qbits} slots (best of {reps})"),
        &["Path", "Load ms", "Speedup"],
        &[
            vec![
                "full decode".into(),
                format!("{:.2}", full_s * 1e3),
                "1.0x".into(),
            ],
            vec![
                "file-backed open".into(),
                format!("{:.2}", fb_s * 1e3),
                format!("{:.1}x", full_s / fb_s),
            ],
        ],
    );

    if !json_path.is_empty() {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"fig14_resize\",");
        let _ = writeln!(out, "  \"qbits_start\": {qbits_start},");
        let _ = writeln!(out, "  \"qbits_final\": {qbits_final},");
        let _ = writeln!(out, "  \"threshold\": {threshold},");
        let _ = writeln!(out, "  \"keys\": {n},");
        out.push_str("  \"grow_rows\": [\n");
        for (i, r) in grow_rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"filter\": \"{}\", \"grows\": {}, \"grown_insert_mops\": {:.3}, \
                 \"presized_insert_mops\": {:.3}}}",
                r.kind, r.grows, r.grown_mops, r.presized_mops
            );
            out.push_str(if i + 1 < grow_rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"open\": {{");
        let _ = writeln!(out, "    \"slots\": {slots},");
        let _ = writeln!(out, "    \"full_decode_ms\": {:.3},", full_s * 1e3);
        let _ = writeln!(out, "    \"file_backed_open_ms\": {:.3},", fb_s * 1e3);
        let _ = writeln!(out, "    \"speedup\": {:.2}", full_s / fb_s);
        out.push_str("  }\n}\n");
        std::fs::write(&json_path, out).expect("write --json file");
        eprintln!("wrote {json_path}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
