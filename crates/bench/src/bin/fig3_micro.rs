//! Figure 3: micro operation throughput of filters absent any system —
//! (a) insertions, (b) uniform queries, (c) Zipfian queries — for any
//! registry kind (default: the paper's AQF, TQF, ACF, QF, CF).
//!
//! Paper scale: 2^27 slots, 200M queries. Defaults here: 2^18 slots,
//! 2M queries (`--qbits`, `--queries` to scale up, `--filter=<kinds>` to
//! choose filters).

use aqf_bench::*;
use aqf_workloads::{uniform_keys, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let qbits = flag_u64("qbits", 18) as u32;
    let queries = flag_u64("queries", 2_000_000) as usize;
    let load = flag_f64("load", 0.9);
    let n = ((1u64 << qbits) as f64 * load) as usize;
    let keys = uniform_keys(n, 42);
    let zipf = ZipfGenerator::new(10_000_000, 1.5, 7);

    let mut rows = Vec::new();
    for kind in filter_kinds(registry::paper_kinds()) {
        let mut f = FilterSpec::new(kind, qbits).with_seed(1).build().unwrap();
        // (a) Insertions.
        let (inserted, ins_secs) = timed(|| {
            let mut ok = 0u64;
            for &k in &keys {
                if f.insert(k).is_ok() {
                    ok += 1;
                }
            }
            ok
        });

        // (b) Uniform queries (with adaptation on FPs, as deployed).
        let probes = uniform_keys(queries, 99);
        let (_, uni_secs) = timed(|| {
            let mut pos = 0u64;
            for &k in &probes {
                if f.query_adapting(k) {
                    pos += 1;
                }
            }
            pos
        });

        // (c) Zipfian queries.
        let mut rng = StdRng::seed_from_u64(3);
        let zprobes: Vec<u64> = (0..queries).map(|_| zipf.sample_key(&mut rng)).collect();
        let (_, zipf_secs) = timed(|| {
            let mut pos = 0u64;
            for &k in &zprobes {
                if f.query_adapting(k) {
                    pos += 1;
                }
            }
            pos
        });

        rows.push(vec![
            f.name().to_string(),
            ops_per_sec(inserted, ins_secs),
            ops_per_sec(queries as u64, uni_secs),
            ops_per_sec(queries as u64, zipf_secs),
        ]);
    }
    print_table(
        &format!("Fig 3: micro op throughput (2^{qbits} slots, {queries} queries, ops/s)"),
        &["Filter", "Inserts", "Uniform queries", "Zipfian queries"],
        &rows,
    );
}
