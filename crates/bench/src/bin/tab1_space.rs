//! Table 1: empirical space usage and false-positive rate of all filters
//! at a common slot budget and 90% load (paper: 2^26 slots, target
//! ε=2^-9). Any registry kind runs (`--filter=all` for the full set).
//!
//! Defaults: 2^18 slots, 500K probes (`--qbits`, `--probes`,
//! `--filter=<kinds>`).

use aqf_bench::*;
use aqf_workloads::uniform_keys;

fn main() {
    let qbits = flag_u64("qbits", 18) as u32;
    let probes = flag_u64("probes", 500_000);
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 8);
    let probe_keys = uniform_keys(probes as usize, 1234);

    let mut rows = Vec::new();
    for kind in filter_kinds(registry::paper_kinds()) {
        let mut f = FilterSpec::new(kind, qbits).with_seed(2).build().unwrap();
        for &k in &keys {
            let _ = f.insert(k);
        }
        let fps = probe_keys.iter().filter(|&&k| f.contains(k)).count();
        let fpr = fps as f64 / probes as f64;
        let neg_log = if fpr > 0.0 {
            -fpr.log2()
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            f.name().to_string(),
            format!("{:.2}", neg_log),
            format!("{:.3}", f.size_in_bytes() as f64 / (1 << 20) as f64),
            format!("{:.2}", f.size_in_bytes() as f64 * 8.0 / n as f64),
        ]);
    }
    print_table(
        &format!("Table 1: space and FPR (2^{qbits} slots, 90% load, {n} keys)"),
        &["Filter", "-log2(FPR)", "Space (MiB)", "Bits/item"],
        &rows,
    );
    println!("\nNote: AQF carries is_extension + used metadata bits (DESIGN.md §5);");
    println!("the AQF/QF ratio tracks the paper's ~1.09.");
}
