//! Figure 7: instantaneous false-positive rate and added space (bits/item)
//! over time for adaptive filters (default: AQF, TQF, ACF) on CAIDA-like,
//! Shalla-like, and Zipfian query streams.
//!
//! Protocol (paper §6.5): fill to 90%; run the adapting query stream;
//! every 1% of queries, freeze adaptation and measure FPR on independent
//! Zipfian probe sets. Paper: 3M queries. Defaults: 2^14 slots, 300K
//! queries, checkpoints every 10% (`--qbits`, `--queries`,
//! `--filter=<kinds>`).
//!
//! Output: CSV `dataset,filter,queries,fpr,bits_per_item`.

use aqf_bench::*;
use aqf_workloads::datasets::{caida_like_trace, shalla_like_urls, url_key};
use aqf_workloads::ZipfGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure_fpr(f: &dyn DynFilter, probes: &[u64], members: &std::collections::HashSet<u64>) -> f64 {
    let mut fps = 0usize;
    let mut negs = 0usize;
    for &k in probes {
        if members.contains(&k) {
            continue;
        }
        negs += 1;
        if f.contains(k) {
            fps += 1;
        }
    }
    if negs == 0 {
        0.0
    } else {
        fps as f64 / negs as f64
    }
}

fn main() {
    let qbits = flag_u64("qbits", 14) as u32;
    let queries = flag_u64("queries", 300_000) as usize;
    let checkpoints = flag_u64("checkpoints", 10) as usize;
    let kinds = filter_kinds(&["aqf", "tqf", "acf"]);
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;

    // Build the three datasets: (name, member keys, adapting query trace).
    let (caida_flows, caida_trace) = caida_like_trace(n * 4, queries, 1.2, 19);
    let (blocklist, benign) = shalla_like_urls(n, n * 3, 20);
    let shalla_members: Vec<u64> = blocklist.iter().map(|u| url_key(u)).collect();
    let shalla_universe: Vec<u64> = shalla_members
        .iter()
        .copied()
        .chain(benign.iter().map(|u| url_key(u)))
        .collect();
    let zs = ZipfGenerator::new(shalla_universe.len() as u64, 1.1, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let shalla_trace: Vec<u64> = (0..queries)
        .map(|_| shalla_universe[(zs.sample_rank(&mut rng) - 1) as usize])
        .collect();
    let zz = ZipfGenerator::new(1_000_000_000, 1.5, 23);
    let zipf_trace: Vec<u64> = (0..queries).map(|_| zz.sample_key(&mut rng)).collect();
    let zipf_members: Vec<u64> = aqf_workloads::uniform_keys(n, 24);

    // Per-dataset universes: traces query members, probe sets measure FPR
    // so they must draw from each dataset's full universe (members and
    // non-members alike), Zipf-skewed like the trace itself.
    let caida_z = ZipfGenerator::new(caida_flows.len() as u64, 1.2, 19 ^ 0xCADA);
    type Dataset = (&'static str, Vec<u64>, Vec<u64>, Vec<u64>);
    let datasets: Vec<Dataset> = vec![
        (
            "caida",
            caida_flows[..n].to_vec(),
            caida_trace,
            caida_flows.clone(),
        ),
        (
            "shalla",
            shalla_members,
            shalla_trace,
            shalla_universe.clone(),
        ),
        ("zipfian", zipf_members, zipf_trace, Vec::new()),
    ];

    println!("dataset,filter,queries,fpr,bits_per_item");
    for (name, members, trace, universe) in &datasets {
        let member_set: std::collections::HashSet<u64> = members.iter().copied().collect();
        // Independent probe sets (paper uses 100; we default to 4).
        let mut prng = StdRng::seed_from_u64(31);
        let probe_sets: Vec<Vec<u64>> = (0..4)
            .map(|_| {
                (0..20_000)
                    .map(|_| match *name {
                        "zipfian" => zz.sample_key(&mut prng),
                        "caida" => universe[(caida_z.sample_rank(&mut prng) - 1) as usize],
                        _ => universe[(zs.sample_rank(&mut prng) - 1) as usize],
                    })
                    .collect()
            })
            .collect();
        for kind in &kinds {
            let mut f = FilterSpec::new(&**kind, qbits)
                .with_seed(7)
                .build()
                .unwrap();
            let base_bytes = f.size_in_bytes();
            for &k in members.iter() {
                let _ = f.insert(k);
            }
            let per = trace.len() / checkpoints;
            for c in 0..checkpoints {
                for &k in &trace[c * per..((c + 1) * per).min(trace.len())] {
                    let _ = f.query_adapting(k);
                }
                let fpr: f64 = probe_sets
                    .iter()
                    .map(|p| measure_fpr(f.as_ref(), p, &member_set))
                    .sum::<f64>()
                    / probe_sets.len() as f64;
                // Added space: adaptation bits (extension slots for the
                // AQF) plus any table growth — selector-based filters
                // pre-allocate, so both terms are 0 for them.
                let grown_bits = (f.size_in_bytes().saturating_sub(base_bytes)) as f64 * 8.0;
                let added = (f.adapt_bits() + grown_bits) / members.len() as f64;
                println!(
                    "{},{},{},{:.8},{:.6}",
                    name,
                    f.name(),
                    (c + 1) * per,
                    fpr,
                    added
                );
            }
        }
    }
}
