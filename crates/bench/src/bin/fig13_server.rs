//! Figure 13 (beyond the paper): loopback server throughput vs client
//! connections — per-op framing against batched framing.
//!
//! For each filter kind, an in-process `aqf_server::Server` is started
//! on an ephemeral loopback port and prefilled; then, for each
//! connection count, every connection thread issues `--ops` point
//! queries two ways:
//!
//! - **per-op**: one `QUERY` frame per key, pipelined `--pipeline` deep
//!   (the server's burst coalescer folds buffered runs into
//!   `query_batch` calls),
//! - **batched**: explicit `QUERY_BATCH` frames of `--batch` keys.
//!
//! Batched framing amortizes both framing overhead and the server's
//! per-request lock acquisitions, so it should win from a few
//! connections up — that crossover is the figure. Query keys are the
//! shared Zipf stream (`aqf_workloads::KeyStream`) over the prefilled
//! universe. `--json=PATH` writes machine-readable rows (see
//! `scripts/bench_json.sh`, which emits `BENCH_PR7.json`).
//!
//! Defaults: 2^16 slots, 60%-load prefill, connections 1,2,4,8,
//! 30k queries per connection, batch 64, pipeline 32
//! (`--qbits`, `--load`, `--max-conns`, `--ops`, `--batch`,
//! `--pipeline`, `--filter=<kind>[,...]`).
//!
//! Single-core caveat: in a 1-core container the client threads and the
//! server workers timeshare one CPU, so absolute QPS is depressed and
//! connection scaling flattens early; the per-op vs batched *ratio*
//! remains meaningful (framing overhead is CPU work on both sides).

use aqf_bench::{filter_kinds, flag_f64, flag_str, flag_u64, print_table, timed};
use aqf_server::proto::Request;
use aqf_server::{Client, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::KeyStream;
use std::fmt::Write as _;

struct Row {
    kind: String,
    conns: usize,
    perop_qps: f64,
    batched_qps: f64,
}

fn run_clients(
    addr: std::net::SocketAddr,
    conns: usize,
    ops: usize,
    universe: u64,
    batched: Option<usize>,
    pipeline: usize,
) -> f64 {
    let (_, secs) = timed(|| {
        std::thread::scope(|s| {
            for c in 0..conns {
                s.spawn(move || {
                    let mut cl = Client::connect(addr).expect("connect");
                    let mut stream = KeyStream::zipf(universe, 1.5, 7, 42 + c as u64);
                    match batched {
                        Some(batch) => {
                            let mut done = 0usize;
                            while done < ops {
                                let n = batch.min(ops - done);
                                let keys: Vec<u64> = (0..n).map(|_| stream.next_key()).collect();
                                cl.query_batch(&keys).expect("query_batch");
                                done += n;
                            }
                        }
                        None => {
                            // Pipelined per-op frames: keep `pipeline`
                            // requests in flight so the wire stays busy.
                            let mut sent = 0usize;
                            let mut recvd = 0usize;
                            while recvd < ops {
                                while sent < ops && sent - recvd < pipeline {
                                    let k = stream.next_key();
                                    cl.send(&Request::Query { key: k }).expect("send");
                                    sent += 1;
                                }
                                cl.recv().expect("recv");
                                recvd += 1;
                            }
                        }
                    }
                });
            }
        })
    });
    (conns * ops) as f64 / secs
}

fn main() {
    let qbits = flag_u64("qbits", 16) as u32;
    let load = flag_f64("load", 0.6);
    let max_conns = flag_u64("max-conns", 8) as usize;
    let ops = flag_u64("ops", 30_000) as usize;
    let batch = flag_u64("batch", 64) as usize;
    let pipeline = flag_u64("pipeline", 32) as usize;
    let json_path = flag_str("json", "");
    let kinds = filter_kinds(&["aqf", "sharded-aqf", "qf"]);

    let universe = ((1u64 << qbits) as f64 * load) as u64;
    let mut rows: Vec<Row> = Vec::new();
    for kind in &kinds {
        let dir = aqf_workloads::unique_temp_dir(&format!("fig13-{kind}"));
        let db = FilteredDb::new(
            aqf_bench::FilterSpec::new(kind, qbits)
                .with_seed(1)
                .build()
                .expect("registry kind builds"),
            &dir,
            512,
            IoPolicy::default(),
            RevMapMode::Merged,
        )
        .expect("create db");
        let server = Server::start(db, "127.0.0.1:0", ServerConfig::default()).expect("start");
        let addr = server.local_addr();

        // Prefill the member universe through the wire (batched).
        let probe = KeyStream::zipf(universe, 1.5, 7, 0);
        let mut cl = Client::connect(addr).expect("connect");
        let mut buf = Vec::with_capacity(4096);
        for i in 0..universe {
            buf.push((probe.key_for_element(i), i.to_le_bytes().to_vec()));
            if buf.len() == 4096 {
                cl.insert_batch(&buf).expect("prefill");
                buf.clear();
            }
        }
        if !buf.is_empty() {
            cl.insert_batch(&buf).expect("prefill");
        }

        let mut conns = 1usize;
        while conns <= max_conns {
            let perop_qps = run_clients(addr, conns, ops, universe, None, pipeline);
            let batched_qps = run_clients(addr, conns, ops, universe, Some(batch), pipeline);
            rows.push(Row {
                kind: kind.clone(),
                conns,
                perop_qps,
                batched_qps,
            });
            conns *= 2;
        }
        cl.shutdown().expect("shutdown");
        drop(server.wait().expect("drain"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.conns.to_string(),
                format!("{:.0}", r.perop_qps),
                format!("{:.0}", r.batched_qps),
                format!("{:.2}x", r.batched_qps / r.perop_qps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 13: loopback server query throughput \
             (2^{qbits} slots, {ops} queries/conn, batch={batch})"
        ),
        &["Filter", "Conns", "Per-op QPS", "Batched QPS", "Batch gain"],
        &table,
    );

    if !json_path.is_empty() {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"fig13_server\",");
        let _ = writeln!(out, "  \"qbits\": {qbits},");
        let _ = writeln!(out, "  \"ops_per_conn\": {ops},");
        let _ = writeln!(out, "  \"batch\": {batch},");
        let _ = writeln!(out, "  \"pipeline\": {pipeline},");
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"filter\": \"{}\", \"conns\": {}, \"perop_qps\": {:.0}, \
                 \"batched_qps\": {:.0}, \"batch_gain\": {:.3}}}",
                r.kind,
                r.conns,
                r.perop_qps,
                r.batched_qps,
                r.batched_qps / r.perop_qps
            );
            out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&json_path, out).expect("write --json file");
        eprintln!("wrote {json_path}");
    }
}
