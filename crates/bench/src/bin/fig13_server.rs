//! Figure 13 (beyond the paper): loopback server throughput vs client
//! connections, in three modes selected by `--compare` / `--idle-conns`:
//!
//! - `--compare=framing` (default, the PR 7 figure): per-op `QUERY`
//!   frames (pipelined, server-side burst coalescing) against explicit
//!   `QUERY_BATCH` frames, for each filter kind. Batched framing
//!   amortizes framing overhead and per-request lock acquisitions; the
//!   crossover is the figure.
//! - `--compare=locking` (the PR 10 figure): the global-mutex server
//!   baseline against the read/write-split server (seqlock read path)
//!   on a sharded AQF, sweeping connection counts and read/write mixes
//!   (`--mixes=100,90` percent QUERY). `--absent-pct` of queries probe
//!   never-inserted keys — the filter-negative traffic a filter front
//!   exists to absorb — and `--io-us`/`--cache-pages` inject per-page
//!   I/O latency against a small cache, so store-touching operations
//!   stall realistically: under the global mutex those stalls serialize
//!   every connection, while the read/write split lets filter-negative
//!   reads flow past them (the stalls park their thread — `yield_io` —
//!   so even a 1-core box can overlap them). Each (mix, conns) cell
//!   reports geometric-mean QPS over `--reps` interleaved global/rw
//!   rep pairs (machine drift cancels in the ratio) plus merged
//!   p50/p99/p999 in-flight latency from send-stamped pipelined
//!   responses.
//! - `--idle-conns=N`: capacity bench, not throughput — a
//!   thread-per-connection server holding N mostly-idle connections
//!   (one worker thread each) against a `mux` poll-style server holding
//!   `--idle-factor`x as many over two poller threads, comparing
//!   process RSS deltas and thread counts at equal service (every
//!   connection verified live round-trip).
//!
//! Query keys are the shared Zipf stream (`aqf_workloads::KeyStream`)
//! over the prefilled universe; mixed-sweep inserts draw fresh disjoint
//! keys with auto-grow enabled so neither mode ever hits Full.
//! `--json=PATH` writes machine-readable rows (see
//! `scripts/bench_json.sh`, which emits `BENCH_PR7.json` from the
//! framing mode and `BENCH_PR10.json` from the other two).
//!
//! Defaults: 2^16 slots, 60%-load prefill, connections 1,2,4,8,
//! 30k queries per connection, batch 64, pipeline 32
//! (`--qbits`, `--load`, `--max-conns`, `--ops`, `--batch`,
//! `--pipeline`, `--filter=<kind>[,...]`).
//!
//! Single-core caveat: in a 1-core container the client threads and the
//! server workers timeshare one CPU, so absolute QPS is depressed and
//! connection scaling flattens early; the per-op vs batched ratio, the
//! global-vs-rw ratio (lock handoff overhead is CPU work), and the RSS
//! comparison remain meaningful.

use aqf_bench::{filter_kinds, flag_f64, flag_str, flag_u64, print_table, timed};
use aqf_server::proto::Request;
use aqf_server::{Client, Histogram, LockMode, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::KeyStream;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

fn fresh_db(
    kind: &str,
    qbits: u32,
    dir: &std::path::Path,
    auto_grow: bool,
    cache_pages: usize,
    policy: IoPolicy,
) -> FilteredDb {
    let mut db = FilteredDb::new(
        aqf_bench::FilterSpec::new(kind, qbits)
            .with_seed(1)
            .build()
            .expect("registry kind builds"),
        dir,
        cache_pages,
        policy,
        RevMapMode::Merged,
    )
    .expect("create db");
    if auto_grow {
        db.set_auto_grow(Some(0.9)).expect("growable kind");
    }
    db
}

/// Prefill the member universe through the wire (batched).
fn prefill(cl: &mut Client, universe: u64) {
    let probe = KeyStream::zipf(universe, 1.5, 7, 0);
    let mut buf = Vec::with_capacity(4096);
    for i in 0..universe {
        buf.push((probe.key_for_element(i), i.to_le_bytes().to_vec()));
        if buf.len() == 4096 {
            cl.insert_batch(&buf).expect("prefill");
            buf.clear();
        }
    }
    if !buf.is_empty() {
        cl.insert_batch(&buf).expect("prefill");
    }
}

// ---------------------------------------------------------------- framing

struct FramingRow {
    kind: String,
    conns: usize,
    perop_qps: f64,
    batched_qps: f64,
}

fn run_clients(
    addr: std::net::SocketAddr,
    conns: usize,
    ops: usize,
    universe: u64,
    batched: Option<usize>,
    pipeline: usize,
) -> f64 {
    let (_, secs) = timed(|| {
        std::thread::scope(|s| {
            for c in 0..conns {
                s.spawn(move || {
                    let mut cl = Client::connect(addr).expect("connect");
                    let mut stream = KeyStream::zipf(universe, 1.5, 7, 42 + c as u64);
                    match batched {
                        Some(batch) => {
                            let mut done = 0usize;
                            while done < ops {
                                let n = batch.min(ops - done);
                                let keys: Vec<u64> = (0..n).map(|_| stream.next_key()).collect();
                                cl.query_batch(&keys).expect("query_batch");
                                done += n;
                            }
                        }
                        None => {
                            // Pipelined per-op frames: keep `pipeline`
                            // requests in flight so the wire stays busy.
                            let mut sent = 0usize;
                            let mut recvd = 0usize;
                            while recvd < ops {
                                while sent < ops && sent - recvd < pipeline {
                                    let k = stream.next_key();
                                    cl.send(&Request::Query { key: k }).expect("send");
                                    sent += 1;
                                }
                                cl.recv().expect("recv");
                                recvd += 1;
                            }
                        }
                    }
                });
            }
        })
    });
    (conns * ops) as f64 / secs
}

fn bench_framing(
    qbits: u32,
    ops: usize,
    batch: usize,
    pipeline: usize,
    max_conns: usize,
) -> String {
    let load = flag_f64("load", 0.6);
    let kinds = filter_kinds(&["aqf", "sharded-aqf", "qf"]);
    let universe = ((1u64 << qbits) as f64 * load) as u64;
    let mut rows: Vec<FramingRow> = Vec::new();
    for kind in &kinds {
        let dir = aqf_workloads::unique_temp_dir(&format!("fig13-{kind}"));
        let db = fresh_db(kind, qbits, &dir, false, 512, IoPolicy::default());
        let server = Server::start(db, "127.0.0.1:0", ServerConfig::default()).expect("start");
        let addr = server.local_addr();
        let mut cl = Client::connect(addr).expect("connect");
        prefill(&mut cl, universe);

        let mut conns = 1usize;
        while conns <= max_conns {
            let perop_qps = run_clients(addr, conns, ops, universe, None, pipeline);
            let batched_qps = run_clients(addr, conns, ops, universe, Some(batch), pipeline);
            rows.push(FramingRow {
                kind: kind.clone(),
                conns,
                perop_qps,
                batched_qps,
            });
            conns *= 2;
        }
        cl.shutdown().expect("shutdown");
        drop(server.wait().expect("drain"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.conns.to_string(),
                format!("{:.0}", r.perop_qps),
                format!("{:.0}", r.batched_qps),
                format!("{:.2}x", r.batched_qps / r.perop_qps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 13: loopback server query throughput \
             (2^{qbits} slots, {ops} queries/conn, batch={batch})"
        ),
        &["Filter", "Conns", "Per-op QPS", "Batched QPS", "Batch gain"],
        &table,
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig13_server\",");
    let _ = writeln!(out, "  \"mode\": \"framing\",");
    let _ = writeln!(out, "  \"qbits\": {qbits},");
    let _ = writeln!(out, "  \"ops_per_conn\": {ops},");
    let _ = writeln!(out, "  \"batch\": {batch},");
    let _ = writeln!(out, "  \"pipeline\": {pipeline},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"filter\": \"{}\", \"conns\": {}, \"perop_qps\": {:.0}, \
             \"batched_qps\": {:.0}, \"batch_gain\": {:.3}}}",
            r.kind,
            r.conns,
            r.perop_qps,
            r.batched_qps,
            r.batched_qps / r.perop_qps
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------- locking

struct LockRow {
    mix: u64,
    conns: usize,
    global_qps: f64,
    rw_qps: f64,
    rw_lat: Histogram,
    global_lat: Histogram,
}

/// Shape of one mixed read/write cell, shared by every rep of a sweep.
#[derive(Clone, Copy)]
struct MixWorkload {
    ops: usize,
    universe: u64,
    write_pct: u64,
    absent_pct: u64,
    pipeline: usize,
}

/// Pipelined mixed read/write run; returns (qps, merged in-flight
/// latency histogram). Inserts draw globally fresh keys (disjoint from
/// the query universe) so repeated runs against one server never
/// re-insert; `absent_pct` of queries probe never-inserted keys — the
/// filter-negative fast path that skips the backing store entirely,
/// which is the traffic a filter front exists to absorb.
fn run_mixed(
    addr: std::net::SocketAddr,
    conns: usize,
    wl: MixWorkload,
    fresh_keys: &AtomicU64,
) -> (f64, Histogram) {
    let MixWorkload {
        ops,
        universe,
        write_pct,
        absent_pct,
        pipeline,
    } = wl;
    let merged = Mutex::new(Histogram::new());
    let (_, secs) = timed(|| {
        std::thread::scope(|s| {
            for c in 0..conns {
                let merged = &merged;
                s.spawn(move || {
                    use rand::RngExt;
                    let mut cl = Client::connect(addr).expect("connect");
                    let mut stream = KeyStream::zipf(universe, 1.5, 7, 42 + c as u64);
                    let mut decide = aqf_workloads::rng(977 + c as u64);
                    let mut lat = Histogram::new();
                    let mut in_flight: std::collections::VecDeque<Instant> =
                        std::collections::VecDeque::with_capacity(pipeline);
                    let mut sent = 0usize;
                    let mut recvd = 0usize;
                    while recvd < ops {
                        while sent < ops && sent - recvd < pipeline {
                            let req = if decide.random_range(0..100u64) < write_pct {
                                let k = (1 << 40) + fresh_keys.fetch_add(1, Relaxed);
                                Request::Insert {
                                    key: k,
                                    value: k.to_le_bytes().to_vec(),
                                }
                            } else if decide.random_range(0..100u64) < absent_pct {
                                // Disjoint bit region: never inserted.
                                Request::Query {
                                    key: (1 << 41) | stream.next_key(),
                                }
                            } else {
                                Request::Query {
                                    key: stream.next_key(),
                                }
                            };
                            in_flight.push_back(Instant::now());
                            cl.send(&req).expect("send");
                            sent += 1;
                        }
                        cl.recv().expect("recv");
                        let t = in_flight.pop_front().expect("stamped");
                        lat.record(t.elapsed().as_nanos() as u64);
                        recvd += 1;
                    }
                    merged.lock().unwrap().merge(&lat);
                });
            }
        })
    });
    ((conns * ops) as f64 / secs, merged.into_inner().unwrap())
}

fn bench_locking(qbits: u32, ops: usize, pipeline: usize, max_conns: usize) -> String {
    let load = flag_f64("load", 0.6);
    let reps = flag_u64("reps", 3) as usize;
    let absent_pct = flag_u64("absent-pct", 50).min(100);
    let io_us = flag_u64("io-us", 20);
    let cache_pages = flag_u64("cache-pages", 64) as usize;
    let policy = IoPolicy {
        read_delay: (io_us > 0).then(|| std::time::Duration::from_micros(io_us)),
        write_delay: (io_us > 0).then(|| std::time::Duration::from_micros(io_us)),
        // Blocking-I/O model: a stalled worker parks its thread so other
        // workers can use the core — the regime the read/write split is
        // built for (a spinning stall would monopolize a 1-core box and
        // hide the contrast entirely).
        yield_io: true,
    };
    let mixes: Vec<u64> = flag_str("mixes", "100,90")
        .split(',')
        .map(|m| m.trim().parse().expect("--mixes takes percents"))
        .collect();
    let universe = ((1u64 << qbits) as f64 * load) as u64;
    let mut rows: Vec<LockRow> = Vec::new();

    for &mix in &mixes {
        let write_pct = 100 - mix.min(100);
        // Both lock-mode servers live at once, with reps interleaved
        // global/rw/global/rw, so machine-level drift (CPU frequency,
        // cache state) pairs out instead of landing on whichever mode
        // ran its whole sweep second. Each server keeps its own fresh
        // insert range; keys never collide across reps or cells.
        let runs: Vec<_> = [LockMode::GlobalLock, LockMode::ReadWrite]
            .into_iter()
            .map(|lock_mode| {
                let dir = aqf_workloads::unique_temp_dir(&format!("fig13-lock-{mix}"));
                let db = fresh_db("sharded-aqf", qbits, &dir, true, cache_pages, policy);
                let cfg = ServerConfig {
                    lock_mode,
                    ..ServerConfig::default()
                };
                let server = Server::start(db, "127.0.0.1:0", cfg).expect("start");
                let addr = server.local_addr();
                let mut cl = Client::connect(addr).expect("connect");
                prefill(&mut cl, universe);
                (server, cl, addr, dir, AtomicU64::new(0))
            })
            .collect();

        let mut conns = 1usize;
        while conns <= max_conns {
            // Each rep measures global then rw back-to-back, so the pair
            // shares whatever machine state that half-second had. Report
            // the geometric-mean QPS per mode over all reps: the ratio of
            // geomeans equals the geomean of per-rep paired ratios, so
            // machine drift between reps cancels exactly, and per-rep
            // scheduling noise averages down by sqrt(reps). Latency
            // histograms are merged across reps.
            let mut ln_qps = [0.0f64; 2];
            let mut lats = [Histogram::new(), Histogram::new()];
            let wl = MixWorkload {
                ops,
                universe,
                write_pct,
                absent_pct,
                pipeline,
            };
            for _ in 0..reps {
                for (i, (_, _, addr, _, fresh_keys)) in runs.iter().enumerate() {
                    let (qps, lat) = run_mixed(*addr, conns, wl, fresh_keys);
                    ln_qps[i] += qps.ln();
                    lats[i].merge(&lat);
                }
            }
            let [global_qps, rw_qps] = ln_qps.map(|s| (s / reps as f64).exp());
            let [global_lat, rw_lat] = lats;
            rows.push(LockRow {
                mix,
                conns,
                global_qps,
                rw_qps,
                rw_lat,
                global_lat,
            });
            conns *= 2;
        }
        for (server, mut cl, _, dir, _) in runs {
            cl.shutdown().expect("shutdown");
            drop(server.wait().expect("drain"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let us = |ns: u64| ns as f64 / 1000.0;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.mix),
                r.conns.to_string(),
                format!("{:.0}", r.global_qps),
                format!("{:.0}", r.rw_qps),
                format!("{:.2}x", r.rw_qps / r.global_qps),
                format!("{:.0}", us(r.rw_lat.percentile(0.5))),
                format!("{:.0}", us(r.rw_lat.percentile(0.99))),
                format!("{:.0}", us(r.rw_lat.percentile(0.999))),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig 13b: global-lock vs read/write-split server QPS \
             (sharded-aqf, 2^{qbits} slots, {ops} ops/conn, {absent_pct}% absent \
             queries, {io_us}us/IO, geomean of {reps} paired reps)"
        ),
        &[
            "Query mix",
            "Conns",
            "Global QPS",
            "RW QPS",
            "Speedup",
            "RW p50 us",
            "RW p99 us",
            "RW p999 us",
        ],
        &table,
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig13_server\",");
    let _ = writeln!(out, "  \"mode\": \"locking\",");
    let _ = writeln!(out, "  \"qbits\": {qbits},");
    let _ = writeln!(out, "  \"ops_per_conn\": {ops},");
    let _ = writeln!(out, "  \"pipeline\": {pipeline},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"absent_pct\": {absent_pct},");
    let _ = writeln!(out, "  \"io_us\": {io_us},");
    let _ = writeln!(out, "  \"cache_pages\": {cache_pages},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mix_query_pct\": {}, \"conns\": {}, \"global_qps\": {:.0}, \
             \"rw_qps\": {:.0}, \"speedup\": {:.3}, \
             \"rw_p50_us\": {:.1}, \"rw_p99_us\": {:.1}, \"rw_p999_us\": {:.1}, \
             \"global_p50_us\": {:.1}, \"global_p99_us\": {:.1}, \"global_p999_us\": {:.1}}}",
            r.mix,
            r.conns,
            r.global_qps,
            r.rw_qps,
            r.rw_qps / r.global_qps,
            us(r.rw_lat.percentile(0.5)),
            us(r.rw_lat.percentile(0.99)),
            us(r.rw_lat.percentile(0.999)),
            us(r.global_lat.percentile(0.5)),
            us(r.global_lat.percentile(0.99)),
            us(r.global_lat.percentile(0.999)),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

// ------------------------------------------------------------------ idle

/// Read VmRSS (kB) and thread count from /proc/self/status.
fn proc_status() -> (u64, u64) {
    let text = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |name: &str| {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64)
    };
    (field("VmRSS:"), field("Threads:"))
}

/// Hold `conns` live connections against a server and verify each one
/// answers (a STATS round-trip per connection, then a sampled second
/// pass); returns (rss_delta_kb, threads) measured while all are held.
fn hold_idle(cfg: ServerConfig, qbits: u32, conns: usize, label: &str) -> (u64, u64) {
    let dir = aqf_workloads::unique_temp_dir(&format!("fig13-idle-{label}"));
    let db = fresh_db("sharded-aqf", qbits, &dir, false, 512, IoPolicy::default());
    let (rss_before, _) = proc_status();
    let server = Server::start(db, "127.0.0.1:0", cfg).expect("start");
    let addr = server.local_addr();
    let mut clients: Vec<Client> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut cl = Client::connect(addr).expect("connect");
        cl.stats().expect("every connection must be served");
        clients.push(cl);
    }
    // Sampled second pass proves connections stay live, not
    // served-once-and-dropped.
    for cl in clients.iter_mut().step_by(7) {
        cl.stats().expect("idle connection must still answer");
    }
    let (rss_after, threads) = proc_status();
    clients[0].shutdown().expect("shutdown");
    drop(clients);
    server.wait().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
    (rss_after.saturating_sub(rss_before), threads)
}

fn bench_idle(qbits: u32, idle_conns: usize) -> String {
    let factor = flag_u64("idle-factor", 4) as usize;
    // Thread-per-connection: one worker thread per held connection.
    let threaded = hold_idle(
        ServerConfig {
            worker_cap: idle_conns,
            snapshot_on_shutdown: false,
            ..ServerConfig::default()
        },
        qbits,
        idle_conns,
        "threaded",
    );
    // Mux: factor-x the connections over two poller threads.
    let mux = hold_idle(
        ServerConfig {
            mux: true,
            mux_pollers: 2,
            snapshot_on_shutdown: false,
            ..ServerConfig::default()
        },
        qbits,
        idle_conns * factor,
        "mux",
    );

    let rows = [
        ("thread-per-conn", idle_conns, threaded),
        ("mux", idle_conns * factor, mux),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(mode, conns, (rss, threads))| {
            vec![
                mode.to_string(),
                conns.to_string(),
                format!("{rss}"),
                format!("{threads}"),
            ]
        })
        .collect();
    print_table(
        "Fig 13c: idle-connection capacity (all connections verified live)",
        &["Server mode", "Idle conns", "RSS delta kB", "Threads"],
        &table,
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fig13_server\",");
    let _ = writeln!(out, "  \"mode\": \"idle\",");
    let _ = writeln!(out, "  \"qbits\": {qbits},");
    let _ = writeln!(out, "  \"idle_factor\": {factor},");
    out.push_str("  \"rows\": [\n");
    for (i, (mode, conns, (rss, threads))) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"server\": \"{mode}\", \"conns\": {conns}, \
             \"rss_delta_kb\": {rss}, \"threads\": {threads}}}"
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let qbits = flag_u64("qbits", 16) as u32;
    let max_conns = flag_u64("max-conns", 8) as usize;
    let ops = flag_u64("ops", 30_000) as usize;
    let batch = flag_u64("batch", 64) as usize;
    let pipeline = flag_u64("pipeline", 32) as usize;
    let json_path = flag_str("json", "");
    let idle_conns = flag_u64("idle-conns", 0) as usize;
    let compare = flag_str("compare", "framing");

    let out = if idle_conns > 0 {
        bench_idle(qbits, idle_conns)
    } else {
        match compare.as_str() {
            "framing" => bench_framing(qbits, ops, batch, pipeline, max_conns),
            "locking" => bench_locking(qbits, ops, pipeline, max_conns),
            other => {
                eprintln!("unknown --compare={other} (expected framing|locking)");
                std::process::exit(2);
            }
        }
    };
    if !json_path.is_empty() {
        std::fs::write(&json_path, out).expect("write --json file");
        eprintln!("wrote {json_path}");
    }
}
